"""Shared infrastructure for the per-figure benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
scale suited to a pure-Python simulator (see DESIGN.md §3 for the scale
substitutions).  Results are printed and also written to
``benchmarks/results/<name>.txt`` (pretty table) and
``benchmarks/results/<name>.json`` (machine-readable payload, so BENCH
trajectories can be diffed programmatically).

The packet-level benches share a common scaled configuration:

* k=4 or k=8 fat-trees (16 / 128 servers) instead of the paper's k=16;
* 1 Gbps links instead of 10 Gbps (events scale with bytes simulated);
* pFabric web-search flow sizes scaled to a 200 KB mean so a load point
  simulates in seconds; the short/long flow boundary and the HYB
  Q-threshold are scaled by the same factor to preserve the workload's
  short/long structure.

Sweep-style benches fan their independent points out over the
``repro.harness`` worker pool (:func:`run_harness` /
:func:`packet_point_spec`): each (topology, workload, load, routing,
seed) point is a declarative :class:`repro.harness.ExperimentSpec`,
executed in parallel.  Set ``REPRO_BENCH_CACHE=1`` to also reuse the
content-addressed result cache between runs (off by default so a bench
always measures the current code).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro import registry
from repro.analysis import format_series
from repro.version import SPEC_HASH_VERSION, __version__
from repro.harness import ExperimentSpec, ResultCache, Runner, RunRecord
from repro.ioutils import atomic_write_text
from repro.sim import NetworkParams, PacketSimulation
from repro.sim.stats import FlowStats
from repro.traffic import (
    FlowSpec,
    PoissonArrivals,
    Workload,
    pareto_hull,
    pfabric_web_search,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
HARNESS_CACHE_DIR = os.path.join(RESULTS_DIR, ".repro-cache")

#: Scaled packet-sim defaults (paper: 10 Gbps, mean 2.4 MB, Q=100 KB).
LINK_RATE = 1e9
SIZE_SCALE = 200_000 / 2_400_000  # pFabric mean 2.4 MB -> 200 KB
MEAN_FLOW_BYTES = 200_000
SHORT_FLOW_BYTES = int(100_000 * SIZE_SCALE)  # ~8.3 KB
HYB_Q_BYTES = SHORT_FLOW_BYTES
MEASURE_START = 0.02
MEASURE_END = 0.08


def save_result(name: str, text: str, data: Optional[dict] = None) -> str:
    """Print a rendered table and persist it under benchmarks/results/.

    Alongside the pretty ``<name>.txt`` a machine-readable
    ``<name>.json`` is written: the structured ``data`` payload when the
    bench provides one, else a minimal ``{"name": ..., "text": ...}``
    wrapper — so every bench trajectory can be diffed programmatically.
    """
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    atomic_write_text(path, text + "\n")
    payload = dict(data) if data is not None else {"name": name, "text": text}
    # Stamp provenance so stored bench trajectories are checkable
    # against the code that produced them (see repro.version).
    payload.setdefault("library_version", __version__)
    payload.setdefault("spec_hash_version", SPEC_HASH_VERSION)
    atomic_write_text(
        os.path.join(RESULTS_DIR, f"{name}.json"),
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )
    print("\n" + text)
    return path


def network_params(server_link_rate: Optional[float] = LINK_RATE) -> NetworkParams:
    """Scaled physical parameters for packet benches."""
    return NetworkParams(
        link_rate_bps=LINK_RATE, server_link_rate_bps=server_link_rate
    )


def run_packet(
    topology,
    flows: Sequence[FlowSpec],
    routing: str,
    measure_start: float = MEASURE_START,
    measure_end: float = MEASURE_END,
    server_link_rate: Optional[float] = LINK_RATE,
    seed: int = 0,
) -> FlowStats:
    """One scaled packet-level run with the benchmark conventions.

    The HYB threshold and the short-flow statistics boundary are both
    scaled by SIZE_SCALE to match the scaled flow-size distribution.
    """
    defaults = {"seed": seed}
    if routing == "hyb":
        defaults["hyb_threshold_bytes"] = HYB_Q_BYTES
    policy = registry.routing(routing, topology, **defaults)
    sim = PacketSimulation(
        topology,
        routing=policy,
        network_params=network_params(server_link_rate),
        seed=seed,
    )
    sim.inject(flows)
    stats = sim.run(measure_start, measure_end)
    stats.short_flow_bytes = SHORT_FLOW_BYTES
    return stats


def run_workload_point(
    topology,
    pairs,
    sizes,
    rate: float,
    routing: str,
    measure_start: float = MEASURE_START,
    measure_end: float = MEASURE_END,
    server_link_rate: Optional[float] = LINK_RATE,
    seed: int = 0,
) -> FlowStats:
    """One (workload, load, routing) point of a paper sweep."""
    wl = Workload(pairs, sizes, PoissonArrivals(rate), seed=seed)
    horizon = measure_end + (measure_end - measure_start)
    flows = wl.generate(horizon=horizon)
    return run_packet(
        topology,
        flows,
        routing,
        measure_start=measure_start,
        measure_end=measure_end,
        server_link_rate=server_link_rate,
        seed=seed,
    )


def scaled_pfabric():
    """The pFabric web-search distribution at the benchmark's 200 KB mean."""
    return pfabric_web_search(MEAN_FLOW_BYTES)


def scaled_pareto_hull():
    """The Pareto-HULL distribution scaled by the same size factor."""
    return pareto_hull(
        mean_bytes=100_000 * SIZE_SCALE, cap_bytes=1e9 * SIZE_SCALE
    )


def saturation_rate(num_servers: int, load: float, mean_bytes: float) -> float:
    """Aggregate flow arrival rate producing ``load`` fraction of capacity."""
    return load * num_servers * LINK_RATE / 8.0 / mean_bytes


def fct_series_table(
    name: str,
    x_label: str,
    x_values: Sequence[float],
    metric_by_system: Dict[str, List[float]],
    title: str,
) -> str:
    """Render one figure's series and persist it (txt + json)."""
    text = format_series(x_label, x_values, metric_by_system, title=title)
    return save_result(
        name,
        text,
        data={
            "title": title,
            "x_label": x_label,
            "x": list(x_values),
            "series": {k: list(v) for k, v in metric_by_system.items()},
        },
    )


# ----------------------------------------------------------------------
# Harness-driven sweeps
# ----------------------------------------------------------------------
def packet_point_spec(
    name: str,
    topology: Dict,
    routing: str,
    workload: Dict,
    seed: int = 0,
    measure_start: float = MEASURE_START,
    measure_end: float = MEASURE_END,
    server_link_rate: Optional[float] = LINK_RATE,
) -> ExperimentSpec:
    """An :class:`ExperimentSpec` with the scaled benchmark conventions.

    ``workload`` holds the pattern fields (``pattern``, ``fraction``,
    ``pattern_seed``, ``take_first``, ...) plus ``load`` or ``rate``;
    sizes default to the scaled pFabric distribution.
    """
    wl = {"sizes": "pfabric", "mean_flow_bytes": MEAN_FLOW_BYTES, **workload}
    return ExperimentSpec(
        name=name,
        topology=topology,
        workload=wl,
        routing=routing,
        engine="packet",
        seed=seed,
        measure_start=measure_start,
        measure_end=measure_end,
        link_rate_bps=LINK_RATE,
        server_link_rate_bps=server_link_rate,
        hyb_threshold_bytes=HYB_Q_BYTES,
        short_flow_bytes=SHORT_FLOW_BYTES,
    )


def run_harness(
    specs: Sequence[ExperimentSpec], jobs: Optional[int] = None
) -> List[RunRecord]:
    """Run sweep points through the parallel harness; raise on failures.

    Records come back in spec order.  The content-addressed cache is
    only attached when ``REPRO_BENCH_CACHE=1`` so that a default bench
    run always measures the code as it is now.
    """
    cache = None
    if os.environ.get("REPRO_BENCH_CACHE") == "1":
        cache = ResultCache(HARNESS_CACHE_DIR)
    runner = Runner(
        jobs=jobs or min(os.cpu_count() or 1, 4), cache=cache, retries=1
    )
    result = runner.run(specs)
    bad = [r for r in result.records if not r.ok]
    if bad:
        raise RuntimeError(
            "harness points failed: "
            + "; ".join(f"{r.name}: {r.error}" for r in bad)
        )
    return result.records
