"""Ablation: resilience to random link failures.

Not a paper figure, but a deployment property the paper's §3/§4.2
argument leans on: statically-wired expanders degrade gracefully (their
capacity is spread over many equivalent links) while fat-trees lose
structured capacity.  Measures fluid-flow throughput on a fixed
permutation TM as an increasing fraction of links fail.
"""

from helpers import save_result

from repro.analysis import format_series
from repro.throughput import max_concurrent_throughput
from repro.topologies import fattree, xpander
from repro.traffic import permutation_tm

FAILURE_FRACTIONS = [0.0, 0.05, 0.1, 0.2]


def measure():
    xp = xpander(5, 8, 3)  # 48 switches
    ft = fattree(6)
    series = {"Xpander": [], "Fat-tree": []}
    for frac in FAILURE_FRACTIONS:
        for name, topo in (("Xpander", xp), ("Fat-tree", ft.topology)):
            degraded = (
                topo
                if frac == 0
                else topo.degrade(f"links:fraction={frac},seed=7,lcc=true")
            )
            surviving_tors = [
                t for t in degraded.tors if degraded.servers_at(t) > 0
            ]
            tm = permutation_tm(surviving_tors, 3, fraction=0.5, seed=0)
            res = max_concurrent_throughput(degraded, tm)
            series[name].append(res.per_server)
    return series


def test_ablation_resilience(benchmark):
    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_series(
        "failed link fraction",
        FAILURE_FRACTIONS,
        series,
        title=(
            "Ablation: per-server throughput (Permute(0.5), fluid model) "
            "under random link failures"
        ),
    )
    save_result("ablation_resilience", text)
    # Graceful degradation: at 10% failures, the expander keeps most of
    # its baseline throughput.
    xp = series["Xpander"]
    assert xp[2] >= 0.5 * xp[0]
    # Throughput never increases with more failures (tolerance for the
    # random TM over the shrinking survivor set).
    assert xp[-1] <= xp[0] + 0.05
