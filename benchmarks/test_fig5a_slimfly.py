"""Fig 5(a): SlimFly and same-equipment Jellyfish vs TP and dynamic models.

Paper configuration: SlimFly q=17 (578 ToRs, 25 network + 24 server
ports).  Scaled here to q=5 (50 ToRs, 7 network + 6 server ports) with a
Jellyfish built from exactly the same equipment.  Longest-matching TMs
(near-worst-case) drive the exact fluid-flow LP; the dynamic models use
delta = 1.5, and the equal-cost fat-tree curve is the analytic
flexibility curve at the port budget's oversubscription.
"""

from helpers import save_result

from repro.analysis import format_series
from repro.throughput import skew_sweep, tp_curve, fattree_flexibility_curve
from repro.topologies import (
    DynamicNetworkModel,
    equal_cost_dynamic_ports,
    jellyfish,
    slimfly,
)

FRACTIONS = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
Q = 5
SERVERS = 6
DELTA = 1.5


def measure():
    sf = slimfly(Q, SERVERS)  # 50 ToRs, degree 7
    degree = sf.network_degree(sf.switches[0])
    jf = jellyfish(sf.num_switches, degree, SERVERS, seed=1, strict=True)

    sf_sweep = skew_sweep(sf, FRACTIONS, seed=0)
    jf_sweep = skew_sweep(jf, FRACTIONS, seed=0)

    dyn = DynamicNetworkModel(
        num_tors=sf.num_switches,
        network_ports=equal_cost_dynamic_ports(degree, DELTA),
        server_ports=SERVERS,
    )
    unrestricted = [dyn.unrestricted_throughput()] * len(FRACTIONS)
    restricted = [dyn.restricted_throughput(x) for x in FRACTIONS]

    # TP ideal anchored at Jellyfish's full-participation throughput.
    tp = tp_curve(min(1.0, jf_sweep.throughput[-1]), FRACTIONS)

    # Equal-cost fat-tree (analytic): same servers and network-port spend.
    # A full fat-tree uses 4 network port-ends per server, so the budget's
    # oversubscription is (ports/server) / 4.
    net_ports = 2 * sf.num_links
    alpha_ft = min(1.0, net_ports / sf.num_servers / 4.0)
    ft = fattree_flexibility_curve(alpha_ft, 12, FRACTIONS)

    return {
        "Throughput proportional": tp,
        "Jellyfish": jf_sweep.throughput,
        f"Unrestricted dyn (d={DELTA})": unrestricted,
        "SlimFly": sf_sweep.throughput,
        f"Restricted dyn (d={DELTA})": restricted,
        "Equal-cost fat-tree": ft,
    }


def test_fig5a_slimfly(benchmark):
    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_series(
        "fraction of servers with traffic",
        FRACTIONS,
        series,
        title=(
            "Fig 5(a): throughput vs traffic skew — SlimFly (q=5 scaled "
            "from q=17) and same-equipment Jellyfish vs TP and dynamic "
            "models at delta=1.5"
        ),
    )
    save_result("fig5a_slimfly", text)

    jf = series["Jellyfish"]
    restricted = series[f"Restricted dyn (d=1.5)"]
    ft = series["Equal-cost fat-tree"]
    # Paper shape: static expanders beat the restricted dynamic model and
    # the equal-cost fat-tree throughout the regime of interest.
    for i, x in enumerate(FRACTIONS):
        assert jf[i] >= restricted[i] - 0.05
        assert jf[i] >= ft[i] - 0.02
    # Full throughput in the skewed regime (left side of the figure).
    assert jf[0] > 0.95
    assert series["SlimFly"][0] > 0.95
