"""Fig 4 / §4.1 toy example: static vs un/restricted dynamic networks.

54 ToRs with 6 servers + 6 flexible ports (dynamic) vs equal-cost static
Jellyfish configurations (delta = 1.5), with all-to-all traffic among 9
active racks.  Paper numbers: restricted dynamic <= 80%, unrestricted
100% (modulo duty cycle), equal-cost static 100%.
"""

import pytest
from helpers import save_result

from repro.analysis import format_table
from repro.throughput import max_concurrent_throughput
from repro.topologies import (
    DynamicNetworkModel,
    jellyfish,
    moore_bound_mean_distance,
)
from repro.traffic import all_to_all_tm


def measure():
    num_tors, servers, active = 54, 6, 9
    dyn = DynamicNetworkModel(num_tors, 6, servers)

    jf_a = jellyfish(54, 9, servers, seed=1, strict=True)
    tm_a = all_to_all_tm(jf_a.tors, servers, fraction=active / 54, seed=0)
    static_a = max_concurrent_throughput(jf_a, tm_a).per_server

    jf_b = jellyfish(81, 6, 4, seed=1, strict=True)
    tm_b = all_to_all_tm(jf_b.tors, 4, fraction=active / 81, seed=0)
    static_b = max_concurrent_throughput(jf_b, tm_b).per_server

    return {
        "unrestricted": dyn.unrestricted_throughput(),
        "restricted": dyn.restricted_throughput(active / num_tors),
        "jellyfish_more_ports": static_a,
        "jellyfish_more_switches": static_b,
        "moore": moore_bound_mean_distance(active, 6),
    }


def test_fig4_toy_example(benchmark):
    r = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        ["design", "per-server throughput"],
        [
            ["unrestricted dynamic (ideal)", round(r["unrestricted"], 3)],
            ["restricted dynamic (bound)", round(r["restricted"], 3)],
            ["Jellyfish 54sw x 9 net ports", round(r["jellyfish_more_ports"], 3)],
            ["Jellyfish 81sw x 6 net ports", round(r["jellyfish_more_switches"], 3)],
        ],
        title=(
            "Fig 4 toy example (paper: restricted dynamic capped at 0.80; "
            "equal-cost static networks achieve full throughput)"
        ),
    )
    save_result("fig4_toy_example", text)
    assert r["restricted"] == pytest.approx(0.8)
    assert r["unrestricted"] == 1.0
    assert r["jellyfish_more_ports"] > 0.95
    assert r["jellyfish_more_switches"] > 0.95
