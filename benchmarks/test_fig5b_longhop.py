"""Fig 5(b): LongHop and same-equipment Jellyfish vs TP and dynamic models.

Paper configuration: LongHop with 512 ToRs, 10 network + 8 server ports.
Scaled here to 64 ToRs (n=6) with 8 network + 6 server ports and a
Jellyfish built from the same equipment.  Same methodology as Fig 5(a).
"""

from helpers import save_result

from repro.analysis import format_series
from repro.throughput import fattree_flexibility_curve, skew_sweep, tp_curve
from repro.topologies import (
    DynamicNetworkModel,
    equal_cost_dynamic_ports,
    jellyfish,
    longhop,
)

FRACTIONS = [0.1, 0.2, 0.4, 0.7, 1.0]
N = 6
DEGREE = 8
SERVERS = 6
DELTA = 1.5


def measure():
    lh = longhop(N, DEGREE, SERVERS)  # 64 ToRs
    jf = jellyfish(lh.num_switches, DEGREE, SERVERS, seed=1, strict=True)

    lh_sweep = skew_sweep(lh, FRACTIONS, seed=0)
    jf_sweep = skew_sweep(jf, FRACTIONS, seed=0)

    dyn = DynamicNetworkModel(
        num_tors=lh.num_switches,
        network_ports=equal_cost_dynamic_ports(DEGREE, DELTA),
        server_ports=SERVERS,
    )
    unrestricted = [dyn.unrestricted_throughput()] * len(FRACTIONS)
    restricted = [dyn.restricted_throughput(x) for x in FRACTIONS]
    tp = tp_curve(min(1.0, jf_sweep.throughput[-1]), FRACTIONS)

    net_ports = 2 * lh.num_links
    alpha_ft = min(1.0, net_ports / lh.num_servers / 4.0)
    ft = fattree_flexibility_curve(alpha_ft, 12, FRACTIONS)

    return {
        "Throughput proportional": tp,
        "Jellyfish": jf_sweep.throughput,
        f"Unrestricted dyn (d={DELTA})": unrestricted,
        "LongHop": lh_sweep.throughput,
        f"Restricted dyn (d={DELTA})": restricted,
        "Equal-cost fat-tree": ft,
    }


def test_fig5b_longhop(benchmark):
    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_series(
        "fraction of servers with traffic",
        FRACTIONS,
        series,
        title=(
            "Fig 5(b): throughput vs traffic skew — LongHop (64 ToRs "
            "scaled from 512) and same-equipment Jellyfish vs TP and "
            "dynamic models at delta=1.5"
        ),
    )
    save_result("fig5b_longhop", text)

    jf = series["Jellyfish"]
    lh = series["LongHop"]
    restricted = series[f"Restricted dyn (d=1.5)"]
    for i in range(len(FRACTIONS)):
        assert jf[i] >= restricted[i] - 0.05
    # Skewed regime: near-full throughput for the expanders.
    assert jf[0] > 0.9
    assert lh[0] > 0.85
    # Jellyfish (a near-optimal expander) at least matches LongHop, as in
    # the paper where Jellyfish tracks or exceeds it.
    assert jf[-1] >= lh[-1] - 0.1
