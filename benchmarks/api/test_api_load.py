"""Load bench for the ``repro.api`` service: warm state must pay for itself.

Boots a real :class:`ApiServer` on an ephemeral port and drives it with
concurrent stdlib HTTP clients in two phases over the same query mix:

* **cold** — every request carries ``"warm": false``, so the server
  rebuilds the topology, its path cache, and the exact-LP ArcTable and
  re-solves from scratch per request: the process-per-query baseline.
* **warm** — the same requests with the warm layers on: topologies,
  solver contexts, and the shared path cache persist across requests,
  and repeated queries short-circuit into the content-addressed result
  memo.

Requests-per-second and latency percentiles for both phases land in
``BENCH_api.json`` at the repo root.  Acceptance (full mode): warm
throughput >= 3x cold.  Set ``REPRO_PERF_QUICK=1`` for the reduced CI
grid (ratio still reported, only sanity-asserted).
"""

from __future__ import annotations

import os
import threading
import time

from repro.api import ApiServer, ApiService, HttpClient
from repro.ioutils import atomic_write_json
from repro.version import SPEC_HASH_VERSION, __version__

QUICK = os.environ.get("REPRO_PERF_QUICK") == "1"
BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "BENCH_api.json"
)

TOPOLOGY = (
    "jellyfish:switches=14,degree=4,servers=2"
    if QUICK
    else "jellyfish:switches=24,degree=5,servers=3"
)
FRACTIONS = [0.25, 0.5, 0.75, 1.0]
CLIENTS = 4
REQUESTS_PER_CLIENT = 8 if QUICK else 32


def _percentile(values, q):
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _drive(server, warm: bool):
    """All clients hammer the same query mix; returns timing stats."""
    latencies = []
    failures = []
    lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS + 1)

    def worker(worker_id):
        client = HttpClient(server.host, server.port, timeout=300.0)
        try:
            barrier.wait(timeout=30)
            for i in range(REQUESTS_PER_CLIENT):
                body = {
                    "topology": TOPOLOGY,
                    "fraction": FRACTIONS[(worker_id + i) % len(FRACTIONS)],
                    "warm": warm,
                }
                t0 = time.perf_counter()
                resp = client.post("/throughput", body)
                elapsed = time.perf_counter() - t0
                with lock:
                    latencies.append(elapsed)
                    if resp.status != 200:
                        failures.append(resp.json)
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    barrier.wait(timeout=30)
    t0 = time.perf_counter()
    for t in threads:
        t.join(timeout=600)
    wall = time.perf_counter() - t0
    assert not failures, failures[:2]
    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(latencies) == total
    return {
        "requests": total,
        "clients": CLIENTS,
        "wall_s": round(wall, 4),
        "rps": round(total / wall, 2),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
    }


def test_api_load_warm_vs_cold():
    service = ApiService()
    with ApiServer(service, port=0, workers=CLIENTS) as server:
        # Prime once so the warm phase measures steady state, not the
        # first-touch build (the cold phase rebuilds per request anyway).
        HttpClient(server.host, server.port, timeout=300.0).post(
            "/throughput", {"topology": TOPOLOGY, "fractions": FRACTIONS}
        ).raise_for_status()

        cold = _drive(server, warm=False)
        warm = _drive(server, warm=True)
        cache_stats = service.state.stats()

    ratio = round(warm["rps"] / cold["rps"], 2)
    payload = {
        "suite": "api-load",
        "quick": QUICK,
        "library_version": __version__,
        "spec_hash_version": SPEC_HASH_VERSION,
        "topology": TOPOLOGY,
        "fractions": FRACTIONS,
        "cold": cold,
        "warm": warm,
        "warm_over_cold": ratio,
        "warm_caches": {
            "topologies": cache_stats["topologies"]["entries"],
            "solver_contexts": cache_stats["solver_contexts"]["entries"],
            "results": cache_stats["results"]["entries"],
            "result_hits": cache_stats["results"]["hits"],
        },
    }
    atomic_write_json(os.path.abspath(BENCH_PATH), payload, sort_keys=True)
    print(
        f"\napi-load: cold {cold['rps']} rps (p99 {cold['p99_ms']} ms), "
        f"warm {warm['rps']} rps (p99 {warm['p99_ms']} ms), {ratio}x"
    )

    # The warm phase must have actually exercised the warm layers.
    assert cache_stats["results"]["hits"] > 0
    assert cache_stats["topologies"]["entries"] == 1
    if QUICK:
        assert ratio > 1.0, payload
    else:
        # Acceptance: warm serving >= 3x the cold-rebuild baseline.
        assert ratio >= 3.0, payload
