"""Fig 12: A2A(0.31) with the Pareto-HULL flow-size distribution.

Paper: with almost all flows short, FCT is RTT-bound rather than
bandwidth-bound, and Xpander's shorter paths give it *lower* short-flow
tail FCT than the full-bandwidth fat-tree.
"""

from helpers import (
    LINK_RATE,
    fct_series_table,
    run_workload_point,
    scaled_pareto_hull,
)

from repro.topologies import fattree, xpander
from repro.traffic import a2a_pair_distribution

LOADS = [0.05, 0.1, 0.2]
FRACTION = 0.31


def measure():
    ft = fattree(6).topology
    xp = xpander(4, 6, 2)
    sizes = scaled_pareto_hull()
    # The shape-preserving truncated Pareto's true mean (well below the
    # 100 KB nominal) sets the arrival rate for a target load.
    mean = sizes.mean()
    systems = (
        ("Fat-tree", ft, "ecmp"),
        ("Xpander ECMP", xp, "ecmp"),
        ("Xpander HYB", xp, "hyb"),
    )
    rates = []
    p99s = {n: [] for n, _, _ in systems}
    for load in LOADS:
        rate = load * 54 * LINK_RATE / 8.0 / mean
        rates.append(round(rate))
        for name, topo, routing in systems:
            pairs = a2a_pair_distribution(
                topo, FRACTION, seed=9, take_first=(name == "Fat-tree")
            )
            stats = run_workload_point(
                topo, pairs, sizes, rate, routing,
                measure_start=0.015, measure_end=0.03, seed=10,
            )
            p99s[name].append(stats.short_flow_p99_fct() * 1e6)
    return rates, p99s


def test_fig12_hull(benchmark):
    rates, p99s = benchmark.pedantic(measure, rounds=1, iterations=1)
    fct_series_table(
        "fig12_hull_short_p99", "flow starts per second", rates, p99s,
        "Fig 12: A2A(0.31), Pareto-HULL sizes — 99th-percentile "
        "short-flow FCT (us) (paper: Xpander's shorter paths beat the "
        "fat-tree when flows are RTT-bound)",
    )
    # Paper shape: Xpander at or below the fat-tree's short-flow tail.
    for i in range(len(rates)):
        assert p99s["Xpander ECMP"][i] <= 1.5 * p99s["Fat-tree"][i]
    # At the lightest load, strictly better (pure path-length effect).
    assert p99s["Xpander ECMP"][0] < p99s["Fat-tree"][0] * 1.05
