"""Hyperscale probe: how far does each layer actually stretch?

The sharded harness (PR 8) only matters if the layers under it keep up,
so this probe pushes four stages to their practical limits and records
the frontier in ``BENCH_scale.json`` at the repo root:

* **Generation** — jellyfish and xpander construction on a doubling
  switch-count ladder: largest size built within the per-trial budget,
  plus switches/second at the frontier.
* **Chunked all-pairs BFS** — unweighted ``csgraph.shortest_path``
  swept over *source chunks* (the ``indices=`` parameter) so the
  working set stays one chunk × N instead of N × N; records pair
  throughput, diameter, and mean path length at the largest rung.
* **TM generation** — ``longest_matching_tm`` on a doubling rack
  ladder (above 256 active ToRs it switches to the greedy pairing over
  chunked PathCache distances, so neither the dense distance matrix nor
  the O(n^3) blossom matching caps the climb).
* **Per-engine solves** — the largest jellyfish each evaluation engine
  (``flowsim``, ``highs-exact``, ``highs-incremental``,
  ``highs-colgen``, ``mcf-approx``) completes within the per-trial
  budget, with the headline metric and wall time at that frontier.

Every stage climbs a ×2 ladder.  Schema ``repro.scale/2`` records two
distinct frontiers per stage, which v1 conflated:

* ``max_ok`` — the largest rung that finished *within* the trial
  budget (the climb continues past it only while rungs stay on
  budget);
* ``max_completed`` — the largest rung that finished at all.  The
  first over-budget rung still completes and is recorded here, then
  stops the climb.

``stopped_by`` names the rung and reason (``over budget``, ``cap``, or
the exception) that ended the climb.  A regression (or improvement) in
any engine shows up as a trajectory diff in the committed JSON.

Set ``REPRO_PERF_QUICK=1`` for a reduced ladder (the CI ``scale-smoke``
job, which also asserts the quick-ladder floors below); the committed
``BENCH_scale.json`` comes from a full run.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
from scipy.sparse import csgraph

from repro.harness import ExperimentSpec
from repro.harness.execute import execute_spec
from repro.ioutils import atomic_write_json
from repro.perf import PathCache
from repro.topologies import jellyfish, xpander
from repro.traffic import longest_matching_tm

QUICK = os.environ.get("REPRO_PERF_QUICK") == "1"
BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "BENCH_scale.json"
)

#: Per-trial wall-clock budget (s): the first rung past this completes,
#: is recorded as ``max_completed``, and stops the climb.
TRIAL_BUDGET_S = 2.0 if QUICK else 20.0

#: Generation is cheap; give it a tighter budget and a taller ladder.
GEN_BUDGET_S = 1.0 if QUICK else 10.0
GEN_CAP = 2048 if QUICK else 65536
BFS_CAP = 1024 if QUICK else 16384
TM_CAP = 1024 if QUICK else 8192
ENGINE_CAP = 256 if QUICK else 8192
BASE_SWITCHES = 16
DEGREE = 10
SERVERS = 2
BFS_CHUNK = 256

#: Engine name -> ExperimentSpec fragment (topology filled per rung).
ENGINE_SPECS = {
    "flowsim": {
        "engine": "flow",
        "routing": "ecmp",
        "workload": {
            "pattern": "permute", "fraction": 0.5, "rate": 400.0,
            "sizes": "pfabric", "mean_flow_bytes": 200_000,
        },
        "measure_start": 0.0,
        "measure_end": 0.02,
    },
    "highs-exact": {
        "engine": "lp",
        "workload": {
            "pattern": "longest_matching", "solver": "highs-exact",
            "fraction": 1.0,
        },
    },
    "highs-incremental": {
        "engine": "lp",
        "workload": {
            "pattern": "longest_matching", "solver": "highs-incremental",
            "fraction": 1.0,
        },
    },
    "highs-colgen": {
        "engine": "lp",
        "workload": {
            "pattern": "longest_matching", "solver": "highs-colgen",
            "fraction": 1.0,
        },
    },
    "mcf-approx": {
        "engine": "lp",
        "workload": {
            "pattern": "longest_matching", "solver": "mcf-approx",
            "fraction": 1.0,
        },
    },
}

#: Headline metric per engine for the frontier entry.
ENGINE_METRIC = {
    "flowsim": "avg_fct_ms",
    "highs-exact": "per_server_throughput",
    "highs-incremental": "per_server_throughput",
    "highs-colgen": "per_server_throughput",
    "mcf-approx": "per_server_throughput",
}

#: Quick-ladder floors the CI scale-smoke job holds every engine to:
#: the largest *completed* rung must reach at least this many switches.
QUICK_ENGINE_FLOORS = {
    "flowsim": 64,
    "highs-exact": 32,
    "highs-incremental": 32,
    "highs-colgen": 64,
    "mcf-approx": 16,
}
QUICK_TM_FLOOR = 512

_RESULTS: dict = {}


def _ladder(cap: int):
    n = BASE_SWITCHES
    while n <= cap:
        yield n
        n *= 2


def _degree(switches: int) -> int:
    # jellyfish needs degree < switches and degree * switches even.
    return min(DEGREE, switches - 2)


def _climb(cap: int, budget_s: float, trial):
    """Run ``trial(switches)`` up the ×2 ladder; return the frontier.

    ``trial`` returns a JSON-ready dict on success (must include
    ``wall_s``) or raises.  Every rung that returns is recorded in
    ``max_completed``; only rungs whose wall time stays within
    ``budget_s`` advance ``max_ok``, and the first over-budget rung (or
    the first failure) stops the climb.  v1 of this schema recorded an
    over-budget rung as ``max_ok``, which both inflated the frontier
    and hid how far past the budget the layer could actually reach.
    """
    last_ok = None
    last_completed = None
    stopped_by = None
    for switches in _ladder(cap):
        try:
            entry = trial(switches)
        except Exception as exc:  # noqa: BLE001 - frontier, not failure
            stopped_by = {
                "switches": switches,
                "reason": f"{type(exc).__name__}: {exc}"[:200],
            }
            break
        last_completed = {"switches": switches, **entry}
        if entry["wall_s"] > budget_s:
            stopped_by = {"switches": switches, "reason": "over budget"}
            break
        last_ok = last_completed
    if stopped_by is None:
        stopped_by = {
            "switches": (
                last_completed["switches"] if last_completed else None
            ),
            "reason": "cap",
        }
    return {
        "max_ok": last_ok,
        "max_completed": last_completed,
        "stopped_by": stopped_by,
    }


def _write_results() -> None:
    path = os.path.abspath(BENCH_PATH)
    payload = {}
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    payload["schema"] = "repro.scale/2"
    payload["quick"] = QUICK
    payload.update(_RESULTS)
    atomic_write_json(path, payload, sort_keys=True)


# ----------------------------------------------------------------------
# Stage 1: topology generation
# ----------------------------------------------------------------------
def test_scale_generation():
    def gen_jellyfish(switches: int):
        t0 = time.perf_counter()
        topo = jellyfish(switches, _degree(switches), SERVERS, seed=1)
        wall = time.perf_counter() - t0
        assert topo.num_switches == switches
        return {
            "wall_s": round(wall, 4),
            "switches_per_s": round(switches / wall, 1),
            "links": topo.num_links,
        }

    def gen_xpander(switches: int):
        lift = max(switches // (DEGREE + 1), 1)
        t0 = time.perf_counter()
        topo = xpander(DEGREE, lift, SERVERS)
        wall = time.perf_counter() - t0
        return {
            "wall_s": round(wall, 4),
            "switches": topo.num_switches,
            "switches_per_s": round(topo.num_switches / wall, 1),
            "links": topo.num_links,
        }

    _RESULTS["generation"] = {
        "jellyfish": _climb(GEN_CAP, GEN_BUDGET_S, gen_jellyfish),
        "xpander": _climb(GEN_CAP, GEN_BUDGET_S, gen_xpander),
    }
    for family, frontier in _RESULTS["generation"].items():
        assert frontier["max_completed"] is not None, family
        assert frontier["max_completed"]["switches"] >= BASE_SWITCHES
    _write_results()


# ----------------------------------------------------------------------
# Stage 2: chunked all-pairs BFS
# ----------------------------------------------------------------------
def test_scale_chunked_bfs():
    def bfs(switches: int):
        topo = jellyfish(switches, _degree(switches), SERVERS, seed=1)
        adjacency = PathCache(topo.graph)._adjacency
        n = adjacency.shape[0]
        t0 = time.perf_counter()
        total = 0.0
        finite = 0
        diameter = 0.0
        # One chunk of sources at a time: peak memory is
        # BFS_CHUNK × n, never n × n.
        for start in range(0, n, BFS_CHUNK):
            sources = np.arange(start, min(start + BFS_CHUNK, n))
            dist = csgraph.shortest_path(
                adjacency, method="D", directed=False, unweighted=True,
                indices=sources,
            )
            mask = np.isfinite(dist) & (dist > 0)
            total += float(dist[mask].sum())
            finite += int(mask.sum())
            diameter = max(diameter, float(dist[mask].max()))
        wall = time.perf_counter() - t0
        assert finite == n * (n - 1), "jellyfish rung is disconnected"
        return {
            "wall_s": round(wall, 4),
            "pairs_per_s": round(finite / wall, 1),
            "chunk": BFS_CHUNK,
            "diameter": int(diameter),
            "avg_path_length": round(total / finite, 4),
        }

    _RESULTS["chunked_bfs"] = _climb(BFS_CAP, TRIAL_BUDGET_S, bfs)
    assert _RESULTS["chunked_bfs"]["max_completed"] is not None
    _write_results()


# ----------------------------------------------------------------------
# Stage 3: traffic-matrix generation
# ----------------------------------------------------------------------
def test_scale_tm_generation():
    def gen_tm(switches: int):
        topo = jellyfish(switches, _degree(switches), SERVERS, seed=1)
        t0 = time.perf_counter()
        tm = longest_matching_tm(topo, 1.0, seed=1)
        wall = time.perf_counter() - t0
        # Validation rides along (one-pass hose check) but is asserted,
        # not timed: the frontier measures generation.
        tm.validate_hose({t: SERVERS for t in topo.tors})
        assert tm.num_flows >= switches - 2, "matching left racks unpaired"
        return {
            "wall_s": round(wall, 4),
            "flows": tm.num_flows,
            "flows_per_s": round(tm.num_flows / wall, 1),
        }

    _RESULTS["tm_generation"] = {
        "longest_matching": _climb(TM_CAP, TRIAL_BUDGET_S, gen_tm),
    }
    frontier = _RESULTS["tm_generation"]["longest_matching"]
    assert frontier["max_completed"] is not None
    assert frontier["max_completed"]["switches"] >= BASE_SWITCHES
    if QUICK:
        assert frontier["max_completed"]["switches"] >= QUICK_TM_FLOOR
    _write_results()


# ----------------------------------------------------------------------
# Stage 4: per-engine solve frontier
# ----------------------------------------------------------------------
def test_scale_engines():
    frontiers = {}
    for engine, fragment in ENGINE_SPECS.items():
        def solve(switches: int, fragment=fragment, engine=engine):
            spec = ExperimentSpec.from_dict({
                "name": f"scale/{engine}/n={switches}",
                "topology": {
                    "family": "jellyfish", "switches": switches,
                    "degree": _degree(switches), "servers": SERVERS,
                    "seed": 1,
                },
                "seed": 1,
                **{k: (dict(v) if isinstance(v, dict) else v)
                   for k, v in fragment.items()},
            })
            record = execute_spec(spec)
            if not record.ok:
                raise RuntimeError(record.error or "engine failed")
            metric = ENGINE_METRIC[engine]
            return {
                "wall_s": round(record.wall_clock_s, 4),
                metric: record.metrics.get(metric),
            }

        frontiers[engine] = _climb(ENGINE_CAP, TRIAL_BUDGET_S, solve)
        assert frontiers[engine]["max_completed"] is not None, engine
        assert frontiers[engine]["max_completed"]["switches"] >= BASE_SWITCHES
        if QUICK:
            assert (
                frontiers[engine]["max_completed"]["switches"]
                >= QUICK_ENGINE_FLOORS[engine]
            ), engine
    _RESULTS["engines"] = frontiers
    _write_results()
