"""Ablation: the paper's HYB vs its congestion-aware variant vs adaptive ECMP.

§6.3 first sketches a hybrid that switches a flow from ECMP to VLB after a
threshold number of ECN marks, then simplifies to the byte-count HYB; §7
asks whether adaptive routing (CONGA-style) helps expanders.  This bench
compares all four schemes on the two corner-case scenarios of Fig 7.
"""

from helpers import (
    LINK_RATE,
    MEAN_FLOW_BYTES,
    run_workload_point,
    save_result,
    scaled_pfabric,
)

from repro.analysis import format_table
from repro.topologies import xpander
from repro.traffic import a2a_pair_distribution
from repro.traffic.patterns import RackPairDistribution

ROUTINGS = ("ecmp", "vlb", "hyb", "chyb", "aecmp", "ksp")


def measure():
    xp = xpander(4, 6, 2)
    sizes = scaled_pfabric()

    u, v = next(iter(xp.graph.edges()))
    two_rack = RackPairDistribution(
        {(u, v): 1.0, (v, u): 1.0}, xp.tor_to_servers()
    )
    a2a = a2a_pair_distribution(xp, 1.0, seed=0)
    a2a_rate = 0.4 * 60 * LINK_RATE / 8.0 / MEAN_FLOW_BYTES

    rows = []
    for routing in ROUTINGS:
        # 1300 flows/s at a 200 KB mean pushes ~1.04 Gbps per direction
        # through the racks' single 1 Gbps direct link: ECMP saturates.
        two = run_workload_point(
            xp, two_rack, sizes, 1300.0, routing,
            measure_start=0.02, measure_end=0.06, seed=1,
        )
        uni = run_workload_point(
            xp, a2a, sizes, a2a_rate, routing,
            measure_start=0.02, measure_end=0.05, seed=2,
        )
        rows.append(
            [
                routing,
                round(two.avg_fct() * 1e3, 3),
                round(uni.avg_fct() * 1e3, 3),
            ]
        )
    return rows


def test_ablation_routing_extensions(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        ["routing", "two-rack avg FCT (ms)", "a2a avg FCT (ms)"],
        rows,
        title=(
            "Ablation: ECMP / VLB / HYB / congestion-aware hybrid (chyb) "
            "/ queue-aware ECMP (aecmp) / k-shortest-paths source routing "
            "(ksp) on the Fig 7 corner cases"
        ),
    )
    save_result("ablation_routing_extensions", text)
    by = {r[0]: r for r in rows}
    # The hybrids must escape the two-rack ECMP bottleneck...
    assert by["hyb"][1] < by["ecmp"][1]
    assert by["chyb"][1] < by["ecmp"][1]
    # ...while staying far from VLB's all-to-all collapse.
    assert by["hyb"][2] < by["vlb"][2]
    assert by["chyb"][2] < by["vlb"][2]
