"""Fig 8: the two flow-size distributions used in the experiments.

Regenerates the CDF table for the pFabric web-search distribution (mean
2.4 MB) and the Pareto-HULL distribution (nominal mean 100 KB, 90th
percentile < 100 KB), at the paper's unscaled sizes.
"""

import random

from helpers import save_result

from repro.analysis import format_table
from repro.traffic import pareto_hull, pfabric_web_search


PROBE_SIZES = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9]


def measure():
    ws = pfabric_web_search()
    hull = pareto_hull()
    rows = [
        [f"{int(s):,}", round(ws.cdf(s), 4), round(hull.cdf(s), 4)]
        for s in PROBE_SIZES
    ]
    rng = random.Random(0)
    ws_mean = sum(ws.sample(rng) for _ in range(20_000)) / 20_000
    hull_samples = sorted(hull.sample(rng) for _ in range(20_000))
    hull_p90 = hull_samples[int(0.9 * len(hull_samples))]
    return rows, ws, hull, ws_mean, hull_p90


def test_fig8_flow_sizes(benchmark):
    rows, ws, hull, ws_mean, hull_p90 = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    text = format_table(
        ["flow size (bytes)", "pFabric web search CDF", "Pareto-HULL CDF"],
        rows,
        title=(
            "Fig 8: flow size distributions (paper: web-search mean "
            "2.4 MB; Pareto-HULL 90th percentile < 100 KB)"
        ),
    )
    save_result("fig8_flow_sizes", text)
    assert abs(ws.mean() - 2_400_000) < 1
    assert abs(ws_mean - 2_400_000) / 2_400_000 < 0.1
    assert hull_p90 < 100_000
    # Web search is the heavier distribution everywhere above ~100 KB.
    assert ws.cdf(1e6) < hull.cdf(1e6)
