"""§3's topology landscape: structural properties across the families.

Not a numbered figure, but the quantitative backing for two of the
paper's statements: "there are sizable differences in performance even
across flat topologies" (Jellyfish/Xpander expand near-optimally) and
footnote 1's warning that bisection bandwidth is not a sound flexibility
metric (it can sit a variable factor away from throughput).
"""


from helpers import save_result

from repro.analysis import format_table
from repro.throughput import max_concurrent_throughput
from repro.topologies import (
    analyze,
    bisection_bandwidth,
    fattree,
    jellyfish,
    longhop,
    slimfly,
    xpander,
)
from repro.traffic import longest_matching_tm


def measure_properties():
    topologies = [
        fattree(6).topology,
        jellyfish(36, 5, 3, seed=1),
        xpander(5, 6, 3),
        slimfly(5, 3),
        longhop(5, 7, 3),
    ]
    return [analyze(t).as_row() for t in topologies]


def measure_footnote1():
    """Bisection-per-server vs LP throughput: the ratio varies."""
    rows = []
    for topo in (
        jellyfish(24, 5, 3, seed=1),
        xpander(5, 4, 3),
        longhop(4, 6, 3),
    ):
        tm = longest_matching_tm(topo, fraction=1.0, seed=0)
        t = max_concurrent_throughput(topo, tm).per_server
        b = bisection_bandwidth(topo) / topo.num_servers
        rows.append([topo.name, round(b, 4), round(t, 4), round(b / t, 3)])
    return rows


def test_topology_properties(benchmark):
    rows = benchmark.pedantic(measure_properties, rounds=1, iterations=1)
    text = format_table(
        [
            "topology",
            "switches",
            "servers",
            "diam",
            "avg path",
            "spectral gap",
            "bisection",
            "bisection/server",
            "path diversity",
        ],
        rows,
        title="Structural properties across topology families (paper §3)",
    )
    save_result("topology_properties", text)
    by_name = {r[0]: r for r in rows}
    # Expanders have much shorter average paths than the fat-tree.
    ft = next(v for k, v in by_name.items() if k.startswith("fat-tree"))
    xp = next(v for k, v in by_name.items() if k.startswith("xpander"))
    assert xp[4] < ft[4]
    # SlimFly's signature: diameter 2.
    sf = next(v for k, v in by_name.items() if k.startswith("slimfly"))
    assert sf[3] == 2


def test_footnote1_bisection_vs_throughput(benchmark):
    rows = benchmark.pedantic(measure_footnote1, rounds=1, iterations=1)
    text = format_table(
        ["topology", "bisection/server", "LP throughput", "ratio"],
        rows,
        title=(
            "Footnote 1: bisection bandwidth is not throughput — the "
            "ratio between them varies across topologies"
        ),
    )
    save_result("footnote1_bisection", text)
    ratios = [r[3] for r in rows]
    # The paper's point: the factor is not a constant across topologies.
    assert max(ratios) / min(ratios) > 1.1
