"""Fig 13: the ProjecToR-style comparison (paper §6.6).

Paper configuration: 128 ToRs, 8 servers each; the fat-tree's ToRs have 8
network ports (plus 192 agg/core switches), the Xpander's ToRs have 16
static network ports (2x) and *no* other switches.  Evaluated (a, b)
ignoring server-link bottlenecks — ProjecToR's methodology, which
effectively oversubscribes the fat-tree at the ToR — and (c) with them
modeled.

Scaled: k=8 fat-tree (32 ToRs x 4 servers x 4 uplinks + 48 agg/core) vs a
flat Xpander on the same 32 ToRs with 7 network ports each (the closest
(d+1) | 32 gives to the paper's 2x ratio).  The hotspot structure is the
synthetic ProjecToR-like TM (77% of bytes on 4% of rack pairs, hot pairs
clustered on a quarter of the racks); loads stress hot-rack uplinks, not
the whole fabric, as in the paper.
"""

from helpers import (
    LINK_RATE,
    MEAN_FLOW_BYTES,
    fct_series_table,
    run_workload_point,
    scaled_pfabric,
)

from repro.topologies import fattree, xpander
from repro.traffic import projector_like_pair_distribution

LOADS = [0.1, 0.18, 0.25]
NUM_SERVERS = 128
# At 32 racks, reproducing the real trace's *rack-level* hotspot structure
# requires concentrating the hot pairs more than the published 4%-of-pairs
# figure implies at 128-rack scale: 1.5% of pairs clustered on 12% of the
# racks (see DESIGN.md §3 on the ProjecToR-TM substitution).
HOT_PAIR_FRACTION = 0.015
HOT_RACK_FRACTION = 0.12


def measure():
    ft = fattree(8).topology  # 32 ToRs: 4 uplinks + 4 servers
    xp = xpander(7, 4, 4)  # same 32 ToRs: 7 network ports, flat
    sizes = scaled_pfabric()
    systems = (
        ("Fat-tree", ft, "ecmp"),
        ("Xpander ECMP", xp, "ecmp"),
        ("Xpander HYB", xp, "hyb"),
    )
    rates = []
    avg_free = {n: [] for n, _, _ in systems}
    p99_free = {n: [] for n, _, _ in systems}
    avg_capped = {n: [] for n, _, _ in systems}
    for load in LOADS:
        rate = load * NUM_SERVERS * LINK_RATE / 8.0 / MEAN_FLOW_BYTES
        rates.append(round(rate))
        for name, topo, routing in systems:
            pairs = projector_like_pair_distribution(
                topo,
                hot_pair_fraction=HOT_PAIR_FRACTION,
                hot_rack_fraction=HOT_RACK_FRACTION,
                seed=11,
            )
            free = run_workload_point(
                topo, pairs, sizes, rate, routing,
                measure_start=0.015, measure_end=0.035,
                server_link_rate=None, seed=12,
            )
            capped = run_workload_point(
                topo, pairs, sizes, rate, routing,
                measure_start=0.015, measure_end=0.035, seed=12,
            )
            avg_free[name].append(free.avg_fct() * 1e3)
            p99_free[name].append(free.short_flow_p99_fct() * 1e3)
            avg_capped[name].append(capped.avg_fct() * 1e3)
    return rates, avg_free, p99_free, avg_capped


def test_fig13_projector(benchmark):
    rates, avg_free, p99_free, avg_capped = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    fct_series_table(
        "fig13a_projector_avg_fct_free", "flow starts per second", rates,
        avg_free,
        "Fig 13(a): ProjecToR-like TM, server bottlenecks ignored — "
        "average FCT (ms) (paper: Xpander's 2x ToR ports give up to 90% "
        "lower FCT than the fat-tree, matching ProjecToR's claimed gains)",
    )
    fct_series_table(
        "fig13b_projector_short_p99_free", "flow starts per second", rates,
        p99_free,
        "Fig 13(b): ProjecToR-like TM, server bottlenecks ignored — "
        "99th-percentile short-flow FCT (ms)",
    )
    fct_series_table(
        "fig13c_projector_avg_fct_capped", "flow starts per second", rates,
        avg_capped,
        "Fig 13(c): ProjecToR-like TM, server bottlenecks modeled — "
        "average FCT (ms) (paper: the full-bandwidth fat-tree leaves "
        "little room; Xpander matches it)",
    )
    # (a/b) Without server bottlenecks, the Xpander's 2x ToR fabric beats
    # the ToR-limited fat-tree at the highest load.
    assert avg_free["Xpander HYB"][-1] < avg_free["Fat-tree"][-1]
    # (c) With server bottlenecks, Xpander stays comparable.
    for i in range(len(rates)):
        assert avg_capped["Xpander HYB"][i] <= 2.5 * avg_capped["Fat-tree"][i]
