"""Perf bench: warm-started incremental LP solving across a load sweep.

A load sweep fixes the topology *and* the demand support, scaling only
the demand values — the best case for ``highs-incremental``: the first
point builds the model, every later point patches coefficients and
re-solves.  The reference arm is what a sweep without any reuse pays:
one self-contained ``max_concurrent_throughput`` per point (fresh
ArcTable, fresh assembly, cold simplex).

Records ``lp_warm_sweep`` into ``BENCH_perf.json`` (read-modify-write
after the kernel writer, like ``test_solver_batched.py``) together with
an equivalence check against ``highs-exact``.  The acceptance gate
depends on the engine actually available:

* with ``highspy`` (the ``[perf]`` extra): dual-simplex basis reuse —
  gate >= 3x on the 14-point sweep;
* pure-scipy fallback: structure/assembly reuse only (every point still
  pays a cold simplex), so the gate is parity (1.0) and the teeth are in
  the byte-identity assertions.

Set ``REPRO_PERF_QUICK=1`` for a reduced grid (CI smoke).
"""

from __future__ import annotations

import json
import os
import time

from repro.solvers import HighsIncrementalBackend, have_highspy
from repro.throughput import max_concurrent_throughput
from repro.topologies import jellyfish
from repro.traffic import longest_matching_tm

QUICK = os.environ.get("REPRO_PERF_QUICK") == "1"
BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "BENCH_perf.json"
)

SWITCHES = 12
NUM_POINTS = 6 if QUICK else 14

_RESULTS: dict = {}


def _workload():
    topo = jellyfish(SWITCHES, 4, 2, seed=1)
    base = longest_matching_tm(topo, 1.0, seed=1)
    scales = [
        round(0.3 + 1.2 * i / (NUM_POINTS - 1), 4) for i in range(NUM_POINTS)
    ]
    return topo, [base.scaled(s) for s in scales]


def _best(fn, repeats: int = 2):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_warm_sweep_speedup_and_equivalence():
    topo, tms = _workload()

    def cold():
        return [max_concurrent_throughput(topo, tm) for tm in tms]

    def warm():
        # Fresh backend per repeat: the measurement includes the one
        # cold model build (a sweep costs ~1 cold + N-1 warm solves).
        return HighsIncrementalBackend().solve_many(topo, tms)

    cold_s, cold_results = _best(cold)
    warm_s, warm_outcomes = _best(warm)

    assert all(o.ok for o in warm_outcomes)
    assert [o.warm_started for o in warm_outcomes] == (
        [False] + [True] * (NUM_POINTS - 1)
    )
    highspy = have_highspy()
    for exact, outcome in zip(cold_results, warm_outcomes):
        # Equivalence gate vs highs-exact: byte-identical on the scipy
        # fallback, 1e-9 with the highspy engine.
        if highspy:
            assert abs(outcome.result.throughput - exact.throughput) <= 1e-9
        else:
            assert outcome.result.throughput == exact.throughput
            assert outcome.result.link_utilization == exact.link_utilization

    gate = 3.0 if highspy else 1.0
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    _RESULTS["lp_warm_sweep"] = {
        "reference_s": cold_s,
        "accelerated_s": warm_s,
        "speedup": round(speedup, 2),
        "gate": gate,
        "params": {
            "switches": SWITCHES,
            "points": NUM_POINTS,
            "mode": "highspy" if highspy else "fallback",
            "basis_reused": sum(o.basis_reused for o in warm_outcomes),
        },
    }
    if QUICK:
        assert speedup > 0.5
    elif highspy:
        assert speedup >= 3.0, _RESULTS["lp_warm_sweep"]
    else:
        # Fallback: structure reuse must not be slower than cold solves
        # (the simplex dominates; allow generous scheduler noise).
        assert speedup > 0.7, _RESULTS["lp_warm_sweep"]


def test_zzz_update_bench_json():
    """Merge this suite's result into BENCH_perf.json (runs last)."""
    assert _RESULTS, "warm-sweep bench did not run"
    path = os.path.abspath(BENCH_PATH)
    try:
        with open(path) as f:
            payload = json.load(f)
    except (OSError, ValueError):
        payload = {"suite": "perf-kernels", "quick": QUICK, "kernels": {}}
    payload["kernels"].update(_RESULTS)
    payload["speedups_ge_3x"] = sorted(
        k for k, v in payload["kernels"].items() if v["speedup"] >= 3.0
    )
    from repro.ioutils import atomic_write_json

    atomic_write_json(path, payload, sort_keys=True)
    entry = payload["kernels"]["lp_warm_sweep"]
    if not QUICK:
        assert entry["speedup"] >= entry["gate"], entry
