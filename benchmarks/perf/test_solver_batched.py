"""Perf bench: harness auto-batching of fixed-topology lp sweeps.

A fig2-style skew sweep fixes the topology and varies only the TM
fraction.  The per-point path pays a worker fork plus a fresh
topology/ArcTable build per point; ``highs-batched`` lets the Runner
group the whole sweep into one in-process ``solve_many`` that hoists the
shared structure.  The LPs themselves are identical — results must be
byte-identical — so all of the speedup is orchestration overhead
removed.

Records ``lp_batched_sweep`` into ``BENCH_perf.json`` next to the kernel
benches (read-modify-write: the kernels' writer runs first in this
directory).  Acceptance (full mode): >= 3x.

Set ``REPRO_PERF_QUICK=1`` for a reduced grid (CI smoke) — the quick
assertion is loose because a multicore box parallelizes the per-point
baseline across workers, shrinking the gap the batch path removes.
"""

from __future__ import annotations

import json
import os
import time

from repro.harness import ExperimentSpec, Runner

QUICK = os.environ.get("REPRO_PERF_QUICK") == "1"
BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "BENCH_perf.json"
)

TOPOLOGY = {
    "family": "jellyfish", "switches": 12, "degree": 4,
    "servers": 2, "seed": 1,
}
NUM_POINTS = 6 if QUICK else 14

_RESULTS: dict = {}


def _fractions():
    return [
        round(0.3 + 0.7 * i / (NUM_POINTS - 1), 4) for i in range(NUM_POINTS)
    ]


def _specs(solver: str):
    return [
        ExperimentSpec(
            name=f"{solver}/f={f:g}",
            engine="lp",
            topology=dict(TOPOLOGY),
            workload={"solver": solver, "fraction": f},
        )
        for f in _fractions()
    ]


def _run(solver: str, repeats: int = 2):
    """Best-of-N sweep wall time (best filters scheduler/fork noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        runner = Runner(retries=0)  # no cache: measure the compute path
        t0 = time.perf_counter()
        result = runner.run(_specs(solver))
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_batched_sweep_speedup():
    base_s, base = _run("exact")
    batch_s, batch = _run("highs-batched")

    assert base.ok and batch.ok
    for a, b in zip(base.records, batch.records):
        # Identical solves: the batched backend shares the per-call LP
        # implementation, so this is equality, not approx.
        assert a.metrics["per_server_throughput"] == (
            b.metrics["per_server_throughput"]
        )

    speedup = base_s / batch_s if batch_s > 0 else float("inf")
    _RESULTS["lp_batched_sweep"] = {
        "reference_s": base_s,
        "accelerated_s": batch_s,
        "speedup": round(speedup, 2),
        "gate": 3.0,
        "params": {**TOPOLOGY, "points": NUM_POINTS},
    }
    if QUICK:
        assert speedup > 0.7
    else:
        assert speedup >= 3.0, _RESULTS["lp_batched_sweep"]


def test_zzz_update_bench_json():
    """Merge this suite's result into BENCH_perf.json (runs last)."""
    assert _RESULTS, "batched-sweep bench did not run"
    path = os.path.abspath(BENCH_PATH)
    try:
        with open(path) as f:
            payload = json.load(f)
    except (OSError, ValueError):
        payload = {"suite": "perf-kernels", "quick": QUICK, "kernels": {}}
    payload["kernels"].update(_RESULTS)
    payload["speedups_ge_3x"] = sorted(
        k for k, v in payload["kernels"].items() if v["speedup"] >= 3.0
    )
    from repro.ioutils import atomic_write_json

    atomic_write_json(path, payload, sort_keys=True)
    if not QUICK:
        assert "lp_batched_sweep" in payload["speedups_ge_3x"], payload
