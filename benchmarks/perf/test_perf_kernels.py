"""Perf-regression microbenches for the accelerated hot-path kernels.

Each bench times a retained reference implementation against its
vectorized/cached replacement on fixed seeds, asserts the accelerated
kernel is no slower, and records the ratios in ``BENCH_perf.json`` at
the repo root so regressions show up as trajectory diffs.

Kernels covered (ISSUE acceptance: >= 3x on at least two):

* ECMP table construction — one networkx BFS per destination vs. a
  single csgraph all-pairs sweep (:class:`repro.perf.PathCache`).
* Exact-LP constraint assembly — per-(destination, node) Python loops
  vs. broadcast block construction.
* K-shortest-path enumeration across a demand set — fresh Yen's per
  request vs. the memoizing cache over repeated passes.
* Max-min fair-share recompute at >= 500 flows — dict-of-dicts
  progressive filling vs. the CSR water-fill.
* DES event loop throughput (events/sec) — the peek-then-pop reference
  loop vs. the pop-then-reschedule loop with hoisted heap ops and
  same-timestamp batching (``Engine.run`` vs ``Engine.run_reference``).

Each kernel carries a ``gate``: the minimum speedup the CI perf-guard
accepts from the *committed* ``BENCH_perf.json`` (3.0 for the headline
kernels; 1.0 for micro-opts like the DES loop whose win is real but
interpreter-bound).

Set ``REPRO_PERF_QUICK=1`` for a reduced grid (CI smoke).
"""

from __future__ import annotations

import os
import random
import time


from repro.flowsim.fairshare import (
    max_min_allocation,
    max_min_allocation_reference,
)
from repro.perf import PathCache
from repro.throughput.arcs import ArcTable
from repro.throughput.lp import (
    _assemble_exact_reference,
    _assemble_exact_vectorized,
    _demands_by_destination,
)
from repro.throughput.paths import ecmp_next_hops, k_shortest_paths
from repro.topologies import jellyfish
from repro.traffic import permutation_tm

QUICK = os.environ.get("REPRO_PERF_QUICK") == "1"
BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "BENCH_perf.json"
)

_RESULTS: dict = {}


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn()`` (best filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _record(
    kernel: str, ref_s: float, acc_s: float, params: dict, gate: float = 3.0
) -> float:
    speedup = ref_s / acc_s if acc_s > 0 else float("inf")
    _RESULTS[kernel] = {
        "reference_s": ref_s,
        "accelerated_s": acc_s,
        "speedup": round(speedup, 2),
        "gate": gate,
        "params": params,
    }
    return speedup


def _topo(switches: int, ports: int, seed: int = 7):
    return jellyfish(
        num_switches=switches,
        network_ports=ports,
        servers_per_switch=2,
        seed=seed,
    )


def test_ecmp_table_construction():
    topo = _topo(24 if QUICK else 128, 5 if QUICK else 10)
    g = topo.graph

    def reference():
        return {dst: ecmp_next_hops(g, dst) for dst in g.nodes()}

    def accelerated():
        # Fresh cache: the measurement includes the all-pairs sweep.
        return PathCache(g).ecmp_tables()

    ref_tables = reference()
    acc_tables = accelerated()
    assert ref_tables == acc_tables  # identical, not just equivalent

    speedup = _record(
        "ecmp_tables",
        _time(reference),
        _time(accelerated),
        {"switches": topo.num_switches},
    )
    assert speedup > 1.0


def test_exact_lp_assembly():
    topo = _topo(20 if QUICK else 48, 5 if QUICK else 8)
    tm = permutation_tm(topo.switches, servers_per_tor=2, seed=3)
    table = ArcTable.from_topology(topo)
    dests, demand_to = _demands_by_destination(tm)

    a_eq_r, b_r, a_ub_r = _assemble_exact_reference(table, dests, demand_to)
    a_eq_v, b_v, a_ub_v = _assemble_exact_vectorized(table, dests, demand_to)
    assert (a_eq_r != a_eq_v).nnz == 0
    assert (a_ub_r != a_ub_v).nnz == 0

    speedup = _record(
        "lp_assembly",
        _time(lambda: _assemble_exact_reference(table, dests, demand_to)),
        _time(lambda: _assemble_exact_vectorized(table, dests, demand_to)),
        {"switches": topo.num_switches, "destinations": len(dests)},
    )
    assert speedup > 1.0


def test_ksp_enumeration_across_demands():
    topo = _topo(16 if QUICK else 32, 4 if QUICK else 6)
    g = topo.graph
    k = 4
    passes = 4  # a sweep revisits each pair (e.g. per routing policy)
    rng = random.Random(11)
    pairs = [tuple(rng.sample(topo.switches, 2)) for _ in range(8 if QUICK else 32)]

    def reference():
        out = []
        for _ in range(passes):
            for s, d in pairs:
                out.append(k_shortest_paths(g, s, d, k))
        return out

    def accelerated():
        cache = PathCache(g)
        out = []
        for _ in range(passes):
            for s, d in pairs:
                out.append(cache.k_shortest_paths(s, d, k))
        return out

    assert reference() == accelerated()

    speedup = _record(
        "ksp_enumeration",
        _time(reference, repeats=2),
        _time(accelerated, repeats=2),
        {"pairs": len(pairs), "passes": passes, "k": k},
    )
    assert speedup > 1.0


def test_fairshare_recompute_500_flows():
    topo = _topo(20, 5, seed=2)
    rng = random.Random(13)
    arcs = []
    capacities = {}
    for u, v in topo.graph.edges():
        for arc in [(u, v), (v, u)]:
            arcs.append(arc)
            capacities[arc] = rng.choice([1.0, 2.0, 4.0])
    n_flows = 200 if QUICK else 600
    flow_paths = {
        fid: [rng.choice(arcs) for _ in range(rng.randint(2, 6))]
        for fid in range(n_flows)
    }

    ref = max_min_allocation_reference(flow_paths, capacities)
    vec = max_min_allocation(flow_paths, capacities)
    assert set(ref) == set(vec)
    assert all(abs(ref[f] - vec[f]) < 1e-9 for f in ref)

    speedup = _record(
        "fairshare_recompute",
        _time(lambda: max_min_allocation_reference(flow_paths, capacities)),
        _time(lambda: max_min_allocation(flow_paths, capacities)),
        {"flows": n_flows, "arcs": len(arcs)},
    )
    assert speedup > 1.0


def test_des_event_loop():
    """Events/sec: optimized ``Engine.run`` vs the retained reference.

    The workload stresses what the optimization targets: dense runs of
    same-timestamp events (batched dispatch), cheap callbacks (loop
    overhead dominates), and a cancelled-timer fraction (the dead-entry
    path).  Semantics are pinned by
    ``tests/sim/test_engine_determinism.py``; here both loops are also
    checked for equal processed counts and final clocks.
    """
    import gc

    from repro.sim import Engine

    num_events = 30_000 if QUICK else 200_000
    batch = 64  # events sharing one timestamp

    def _load(engine):
        rng = random.Random(17)
        noop = lambda: None  # noqa: E731 - minimal callback overhead
        cancelled = []
        for i in range(num_events):
            t = (i // batch) * 1e-6
            if rng.random() < 0.1:
                cancelled.append(engine.schedule_cancellable(t, noop))
            else:
                engine.schedule(t, noop)
        for handle in cancelled[::2]:
            handle.cancel()

    def _drive(run_method):
        engine = Engine()
        _load(engine)
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            processed = run_method(engine)
            elapsed = time.perf_counter() - t0
        finally:
            gc.enable()
        return elapsed, processed, engine.now

    # Interleaved best-of-N: alternating the arms keeps allocator and
    # frequency drift from biasing whichever runs second.
    ref_s = acc_s = float("inf")
    for _ in range(3 if QUICK else 5):
        elapsed, ref_processed, ref_now = _drive(Engine.run_reference)
        ref_s = min(ref_s, elapsed)
        elapsed, acc_processed, acc_now = _drive(Engine.run)
        acc_s = min(acc_s, elapsed)
        assert (acc_processed, acc_now) == (ref_processed, ref_now)

    speedup = _record(
        "des_event_loop",
        ref_s,
        acc_s,
        {
            "events": num_events,
            "batch": batch,
            "events_per_sec": round(acc_processed / acc_s),
        },
        gate=0.9,
    )
    # An interpreter-bound micro-opt: assert no regression (the 3x
    # gate story belongs to the LP kernels), semantics are pinned by
    # tests/sim/test_engine_determinism.py.
    assert speedup > 0.8, _RESULTS["des_event_loop"]


def test_zzz_write_bench_json():
    """Aggregate the kernel timings into BENCH_perf.json (runs last)."""
    assert _RESULTS, "kernel benches did not run"
    from repro.version import SPEC_HASH_VERSION, __version__

    payload = {
        "suite": "perf-kernels",
        "quick": QUICK,
        "library_version": __version__,
        "spec_hash_version": SPEC_HASH_VERSION,
        "kernels": _RESULTS,
        "speedups_ge_3x": sorted(
            k for k, v in _RESULTS.items() if v["speedup"] >= 3.0
        ),
    }
    from repro.ioutils import atomic_write_json

    atomic_write_json(os.path.abspath(BENCH_PATH), payload, sort_keys=True)
    if not QUICK:
        # Acceptance: >= 3x on at least two kernels at full scale.
        assert len(payload["speedups_ge_3x"]) >= 2, payload
