"""Fig 2: the throughput-proportionality ideal vs the fat-tree.

Renders the analytic curves of Fig 2 (TP: min(alpha/x, 1); fat-tree:
pinned at alpha down to beta = 2/k) and verifies Theorem 2.1 empirically:
measured Jellyfish throughput never exceeds the TP ideal anchored at its
own full-participation (worst-case) throughput.
"""

from helpers import save_result

from repro.analysis import format_series
from repro.throughput import (
    fattree_flexibility_curve,
    max_concurrent_throughput,
    skew_sweep,
    tp_curve,
)
from repro.topologies import jellyfish


FRACTIONS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0]
ALPHA = 0.5
K = 8


def measure():
    jf = jellyfish(20, 5, 4, seed=1)
    measured = skew_sweep(jf, FRACTIONS, seed=0)
    alpha_jf = measured.throughput[-1]
    return {
        "TP ideal (alpha=0.5)": tp_curve(ALPHA, FRACTIONS),
        f"fat-tree k={K} (alpha=0.5)": fattree_flexibility_curve(ALPHA, K, FRACTIONS),
        "Jellyfish measured": measured.throughput,
        "Jellyfish TP ideal": tp_curve(min(1.0, alpha_jf), FRACTIONS),
    }


def test_fig2_tp_curve(benchmark):
    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_series(
        "fraction",
        FRACTIONS,
        series,
        title=(
            "Fig 2: throughput proportionality vs the fat-tree's "
            "flexibility curve (analytic), plus measured Jellyfish vs "
            "its own TP ideal (Theorem 2.1: measured <= ideal)"
        ),
    )
    save_result("fig2_tp_curve", text)
    # Theorem 2.1 check: measured never exceeds the TP ideal (tolerance
    # for sampled-permutation noise in the alpha anchor).
    for measured, ideal in zip(
        series["Jellyfish measured"], series["Jellyfish TP ideal"]
    ):
        assert measured <= ideal * 1.1 + 1e-9
    # Fig 2 shape: the fat-tree curve sits at alpha over most of the range.
    ft = series[f"fat-tree k={K} (alpha=0.5)"]
    assert ft[-1] == ALPHA and ft[3] == ALPHA
