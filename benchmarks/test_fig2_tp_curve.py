"""Fig 2: the throughput-proportionality ideal vs the fat-tree.

Renders the analytic curves of Fig 2 (TP: min(alpha/x, 1); fat-tree:
pinned at alpha down to beta = 2/k) and verifies Theorem 2.1 empirically:
measured Jellyfish throughput never exceeds the TP ideal anchored at its
own full-participation (worst-case) throughput.

The per-fraction LP solves are independent, so the measured curve runs
as ``engine="lp"`` points through the ``repro.harness`` worker pool.
"""

from helpers import run_harness, save_result

from repro.analysis import format_series
from repro.harness import ExperimentSpec
from repro.throughput import fattree_flexibility_curve, tp_curve


FRACTIONS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0]
ALPHA = 0.5
K = 8

JELLYFISH = {"family": "jellyfish", "switches": 20, "degree": 5,
             "servers": 4, "seed": 1}


def measure():
    specs = [
        ExperimentSpec(
            name=f"jellyfish x={x}",
            topology=JELLYFISH,
            workload={"pattern": "longest_matching", "fraction": x},
            engine="lp",
            seed=0,
        )
        for x in FRACTIONS
    ]
    measured = [
        r.metrics["per_server_throughput"] for r in run_harness(specs)
    ]
    alpha_jf = measured[-1]
    return {
        "TP ideal (alpha=0.5)": tp_curve(ALPHA, FRACTIONS),
        f"fat-tree k={K} (alpha=0.5)": fattree_flexibility_curve(ALPHA, K, FRACTIONS),
        "Jellyfish measured": measured,
        "Jellyfish TP ideal": tp_curve(min(1.0, alpha_jf), FRACTIONS),
    }


def test_fig2_tp_curve(benchmark):
    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_series(
        "fraction",
        FRACTIONS,
        series,
        title=(
            "Fig 2: throughput proportionality vs the fat-tree's "
            "flexibility curve (analytic), plus measured Jellyfish vs "
            "its own TP ideal (Theorem 2.1: measured <= ideal)"
        ),
    )
    save_result(
        "fig2_tp_curve",
        text,
        data={"x_label": "fraction", "x": FRACTIONS, "series": series},
    )
    # Theorem 2.1 check: measured never exceeds the TP ideal (tolerance
    # for sampled-permutation noise in the alpha anchor).
    for measured, ideal in zip(
        series["Jellyfish measured"], series["Jellyfish TP ideal"]
    ):
        assert measured <= ideal * 1.1 + 1e-9
    # Fig 2 shape: the fat-tree curve sits at alpha over most of the range.
    ft = series[f"fat-tree k={K} (alpha=0.5)"]
    assert ft[-1] == ALPHA and ft[3] == ALPHA
