"""Fig 15: the skewed-traffic comparison at larger scale.

Paper: a k=24 fat-tree (720 switches) vs an Xpander at only 45% of its
cost (322 switches) under Skew(0.04, 0.77) — Xpander+HYB matches; ECMP
improves at scale but still degrades at the highest loads.  Scaled here
to a k=8 fat-tree (80 switches, 128 servers) vs a 35-switch (44%-cost)
Xpander; theta = 0.1 so hot racks round to a meaningful count.
"""

from helpers import (
    LINK_RATE,
    MEAN_FLOW_BYTES,
    fct_series_table,
    run_workload_point,
    scaled_pfabric,
)

from repro.topologies import fattree, xpander
from repro.traffic import skew_pair_distribution

# The paper's Fig 15 load range is light network-wide (skew stresses hot
# racks, not the fabric): ~4% global at its maximum.  We sweep slightly
# higher so the ECMP degradation at the top of the range is visible.
LOADS = [0.02, 0.06, 0.12]
THETA, PHI = 0.1, 0.77


def measure():
    ft = fattree(8).topology  # 80 switches, 128 servers
    xp = xpander(4, 7, 4)  # 35 switches (44% of 80), 140 servers
    sizes = scaled_pfabric()
    systems = (
        ("Fat-tree", ft, "ecmp"),
        ("Xpander ECMP", xp, "ecmp"),
        ("Xpander HYB", xp, "hyb"),
    )
    rates = []
    avg = {n: [] for n, _, _ in systems}
    p99s = {n: [] for n, _, _ in systems}
    ltput = {n: [] for n, _, _ in systems}
    for load in LOADS:
        rate = load * 128 * LINK_RATE / 8.0 / MEAN_FLOW_BYTES
        rates.append(round(rate))
        for name, topo, routing in systems:
            pairs = skew_pair_distribution(topo, THETA, PHI, seed=15)
            stats = run_workload_point(
                topo, pairs, sizes, rate, routing,
                measure_start=0.015, measure_end=0.035, seed=16,
            )
            avg[name].append(stats.avg_fct() * 1e3)
            p99s[name].append(stats.short_flow_p99_fct() * 1e3)
            ltput[name].append(stats.long_flow_avg_throughput_bps() / 1e9)
    return rates, avg, p99s, ltput


def test_fig15_skew_scale(benchmark):
    rates, avg, p99s, ltput = benchmark.pedantic(measure, rounds=1, iterations=1)
    fct_series_table(
        "fig15a_skew_scale_avg_fct", "flow starts per second", rates, avg,
        f"Fig 15(a): Skew({THETA},{PHI}) at k=8 scale, Xpander at 44% of "
        "the fat-tree's switches — average FCT (ms)",
    )
    fct_series_table(
        "fig15b_skew_scale_short_p99", "flow starts per second", rates,
        p99s,
        "Fig 15(b): 99th-percentile short-flow FCT (ms)",
    )
    fct_series_table(
        "fig15c_skew_scale_long_tput", "flow starts per second", rates,
        ltput,
        "Fig 15(c): average long-flow throughput (Gbps)",
    )
    # Paper shape: Xpander+HYB matches the full fat-tree at <half cost
    # throughout the paper's light-load skew regime.
    for i in range(len(rates)):
        assert avg["Xpander HYB"][i] <= 2.5 * avg["Fat-tree"][i]
        assert p99s["Xpander HYB"][i] <= 3.0 * p99s["Fat-tree"][i]
