"""Fig 14: Skew(theta, phi) — the paper's parameterized skew model.

Skew(0.04, 0.77) models the ProjecToR Microsoft-cluster TM: 4% of racks
are hot and attract 77% of the traffic.  At our 32-rack scale, 4% rounds
to barely one rack, so theta = 0.1 is used (3 hot racks; phi kept at
0.77); DESIGN.md documents the substitution.  Same topologies as the
Fig 13 comparison; loads are chosen so hot-rack uplinks — not the whole
fabric — are the contended resource, as in the paper.
"""

from helpers import (
    LINK_RATE,
    MEAN_FLOW_BYTES,
    fct_series_table,
    run_workload_point,
    scaled_pfabric,
)

from repro.topologies import fattree, xpander
from repro.traffic import skew_pair_distribution

LOADS = [0.05, 0.1, 0.16]
THETA, PHI = 0.1, 0.77
NUM_SERVERS = 128


def measure():
    ft = fattree(8).topology
    xp = xpander(7, 4, 4)
    sizes = scaled_pfabric()
    systems = (
        ("Fat-tree", ft, "ecmp"),
        ("Xpander ECMP", xp, "ecmp"),
        ("Xpander HYB", xp, "hyb"),
    )
    rates = []
    avg_free = {n: [] for n, _, _ in systems}
    p99_free = {n: [] for n, _, _ in systems}
    avg_capped = {n: [] for n, _, _ in systems}
    for load in LOADS:
        rate = load * NUM_SERVERS * LINK_RATE / 8.0 / MEAN_FLOW_BYTES
        rates.append(round(rate))
        for name, topo, routing in systems:
            pairs = skew_pair_distribution(topo, THETA, PHI, seed=13)
            free = run_workload_point(
                topo, pairs, sizes, rate, routing,
                measure_start=0.015, measure_end=0.035,
                server_link_rate=None, seed=14,
            )
            capped = run_workload_point(
                topo, pairs, sizes, rate, routing,
                measure_start=0.015, measure_end=0.035, seed=14,
            )
            avg_free[name].append(free.avg_fct() * 1e3)
            p99_free[name].append(free.short_flow_p99_fct() * 1e3)
            avg_capped[name].append(capped.avg_fct() * 1e3)
    return rates, avg_free, p99_free, avg_capped


def test_fig14_skew(benchmark):
    rates, avg_free, p99_free, avg_capped = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    fct_series_table(
        "fig14a_skew_avg_fct_free", "flow starts per second", rates,
        avg_free,
        f"Fig 14(a): Skew({THETA},{PHI}), server bottlenecks ignored — "
        "average FCT (ms)",
    )
    fct_series_table(
        "fig14b_skew_short_p99_free", "flow starts per second", rates,
        p99_free,
        f"Fig 14(b): Skew({THETA},{PHI}), server bottlenecks ignored — "
        "99th-percentile short-flow FCT (ms)",
    )
    fct_series_table(
        "fig14c_skew_avg_fct_capped", "flow starts per second", rates,
        avg_capped,
        f"Fig 14(c): Skew({THETA},{PHI}), server bottlenecks modeled — "
        "average FCT (ms)",
    )
    # Paper: results largely mirror the ProjecToR-TM comparison (Fig 13).
    assert avg_free["Xpander HYB"][-1] < avg_free["Fat-tree"][-1]
    for i in range(len(rates)):
        assert avg_capped["Xpander HYB"][i] <= 2.5 * avg_capped["Fat-tree"][i]
