"""Fig 6(a): oversubscribed Jellyfish vs a full-bandwidth fat-tree.

Paper: Jellyfish built with 80% / 50% / 40% of a k=20 fat-tree's switches
while supporting the same servers still provides nearly full bandwidth to
any <40% subset.  Scaled here to a k=8 fat-tree (80 switches, 128
servers, 8-port switches).
"""

from helpers import save_result

from repro.analysis import format_series
from repro.throughput import max_concurrent_throughput
from repro.topologies import jellyfish_degree_sequence
from repro.traffic import longest_matching_tm

FRACTIONS = [0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0]
PORTS = 8
SERVERS_TOTAL = 128
FULL_SWITCHES = 80


def jellyfish_with_budget(num_switches: int, seed: int = 1):
    """Jellyfish on ``num_switches`` x 8-port switches hosting 128 servers.

    Servers are spread as evenly as possible; every port not used by a
    server becomes a network port (non-uniform degree sequence when the
    server count does not divide evenly).
    """
    base, extra = divmod(SERVERS_TOTAL, num_switches)
    servers = {
        i: base + (1 if i < extra else 0) for i in range(num_switches)
    }
    ports = {i: PORTS - servers[i] for i in range(num_switches)}
    if sum(ports.values()) % 2:
        ports[num_switches - 1] -= 1  # park one odd port
    topo = jellyfish_degree_sequence(ports, servers, seed=seed)
    assert topo.num_servers == SERVERS_TOTAL
    return topo


def measure():
    series = {"Full fat-tree (analytic)": [1.0] * len(FRACTIONS)}
    for pct in (80, 50, 40):
        switches = round(FULL_SWITCHES * pct / 100)
        topo = jellyfish_with_budget(switches)
        values = []
        for x in FRACTIONS:
            tm = longest_matching_tm(topo, fraction=x, seed=0)
            values.append(
                max_concurrent_throughput(topo, tm).per_server
            )
        series[f"{pct}% switches Jellyfish"] = values
    return series


def test_fig6a_jellyfish_oversub(benchmark):
    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_series(
        "fraction of servers with traffic",
        FRACTIONS,
        series,
        title=(
            "Fig 6(a): Jellyfish at 80/50/40% of a k=8 fat-tree's "
            "switches, same 128 servers, longest-matching TMs "
            "(paper: k=20; 50% switches ~= full bandwidth below 40%)"
        ),
    )
    save_result("fig6a_jellyfish_oversub", text)

    # Paper claim (scaled): the 50%-switch Jellyfish delivers nearly full
    # bandwidth while <40% of servers participate.
    half = series["50% switches Jellyfish"]
    for x, v in zip(FRACTIONS, half):
        if x <= 0.3:
            assert v > 0.85
    # More switches never hurt.
    for i in range(len(FRACTIONS)):
        assert (
            series["80% switches Jellyfish"][i]
            >= series["40% switches Jellyfish"][i] - 0.05
        )
