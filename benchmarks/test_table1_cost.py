"""Table 1: per-port cost of static and dynamic network technologies.

Regenerates the paper's cost table from the component model and derives
the flexible-port cost ratio delta used throughout the equal-cost
comparisons (paper: delta = 1.5 from the lowest dynamic estimate).
"""

from helpers import save_result

from repro.analysis import format_table
from repro.cost import (
    FIREFLY_PORT,
    PROJECTOR_PORT_HIGH,
    PROJECTOR_PORT_LOW,
    STATIC_PORT,
    delta_ratio,
)


def build_table() -> str:
    components = [
        ("sr_transceiver", "SR transceiver"),
        ("optical_cable", "Optical cable (300m @ $0.3/m, /2)"),
        ("tor_port", "ToR port"),
        ("projector_tx_rx", "ProjecToR Tx+Rx"),
        ("dmd", "DMD"),
        ("mirror_assembly_lens", "Mirror assembly, lens"),
        ("galvo_mirror", "Galvo mirror"),
    ]
    ports = [STATIC_PORT, FIREFLY_PORT, PROJECTOR_PORT_LOW, PROJECTOR_PORT_HIGH]
    rows = []
    for key, label in components:
        rows.append(
            [label] + [p.components.get(key, 0.0) or "-" for p in ports]
        )
    rows.append(["Total"] + [p.total for p in ports])
    rows.append(
        ["delta (vs static)"] + [round(delta_ratio(p), 3) for p in ports]
    )
    return format_table(
        ["component ($)", "static", "firefly", "projector-low", "projector-high"],
        rows,
        title="Table 1: cost per network port (paper: static $215, "
        "FireFly $370, ProjecToR $320-420, delta ~= 1.5)",
    )


def test_table1_cost(benchmark):
    text = benchmark.pedantic(build_table, rounds=1, iterations=1)
    save_result("table1_cost", text)
    assert STATIC_PORT.total == 215.0
    assert FIREFLY_PORT.total == 370.0
    assert PROJECTOR_PORT_LOW.total == 320.0
    assert PROJECTOR_PORT_HIGH.total == 420.0
    assert 1.45 < delta_ratio() < 1.55
