"""Ablations over the design choices DESIGN.md calls out.

Not paper figures, but sensitivity studies on the knobs the paper fixes:

* HYB's Q threshold (paper §6.3 fixes Q = 100 KB);
* the DCTCP ECN marking threshold K (paper: 20 packets);
* Xpander's matching style (deterministic shift vs random lifts);
* the path-based LP's k (number of shortest paths) vs the exact LP.
"""

from helpers import HYB_Q_BYTES, LINK_RATE, MEAN_FLOW_BYTES, save_result, scaled_pfabric

from repro.analysis import format_table
from repro.sim import NetworkParams, PacketSimulation
from repro.sim.routing import HybRouting
from repro.throughput import max_concurrent_throughput, path_throughput
from repro.topologies import xpander
from repro.traffic import (
    PoissonArrivals,
    Workload,
    longest_matching_tm,
    permute_pair_distribution,
)


def _hyb_point(topo, flows, q_bytes, ecn_threshold=None):
    routing = HybRouting(topo.graph, q_threshold_bytes=q_bytes, seed=0)
    params = NetworkParams(link_rate_bps=LINK_RATE)
    if ecn_threshold is not None:
        params.ecn_threshold_bytes = ecn_threshold
    sim = PacketSimulation(topo, routing=routing, network_params=params)
    sim.inject(flows)
    stats = sim.run(0.02, 0.05)
    stats.short_flow_bytes = HYB_Q_BYTES
    return stats


def measure_q_threshold():
    topo = xpander(4, 6, 2)
    wl = Workload(
        permute_pair_distribution(topo, 0.4, seed=1),
        scaled_pfabric(),
        PoissonArrivals(0.3 * 24 * LINK_RATE / 8.0 / MEAN_FLOW_BYTES),
        seed=2,
    )
    flows = wl.generate(horizon=0.08)
    qs = [0, HYB_Q_BYTES, 10 * HYB_Q_BYTES, 10**9]
    labels = ["pure VLB (Q=0)", "Q=paper", "Q=10x paper", "pure ECMP (Q=inf)"]
    rows = []
    for q, label in zip(qs, labels):
        stats = _hyb_point(topo, flows, q)
        s = stats.summary()
        rows.append(
            [label, round(s["avg_fct_ms"], 3), round(s["short_p99_fct_ms"], 3)]
        )
    return rows


def test_ablation_hyb_q_threshold(benchmark):
    rows = benchmark.pedantic(measure_q_threshold, rounds=1, iterations=1)
    text = format_table(
        ["Q threshold", "avg FCT (ms)", "p99 short FCT (ms)"],
        rows,
        title="Ablation: HYB Q-threshold on Permute(0.4) (paper fixes "
        "Q=100 KB; scaled here by the size factor)",
    )
    save_result("ablation_hyb_q", text)
    by_label = {r[0]: r for r in rows}
    # The paper's Q keeps short-flow tail at or below pure VLB's: short
    # flows ride shortest paths instead of detours.
    assert by_label["Q=paper"][2] <= by_label["pure VLB (Q=0)"][2] * 1.5


def measure_ecn_threshold():
    topo = xpander(4, 6, 2)
    wl = Workload(
        permute_pair_distribution(topo, 0.4, seed=1),
        scaled_pfabric(),
        PoissonArrivals(0.3 * 24 * LINK_RATE / 8.0 / MEAN_FLOW_BYTES),
        seed=3,
    )
    flows = wl.generate(horizon=0.08)
    pkt = 1520
    rows = []
    for k_pkts in (5, 20, 80):
        stats = _hyb_point(topo, flows, HYB_Q_BYTES, ecn_threshold=k_pkts * pkt)
        s = stats.summary()
        rows.append(
            [k_pkts, round(s["avg_fct_ms"], 3), round(s["short_p99_fct_ms"], 3)]
        )
    return rows


def test_ablation_ecn_threshold(benchmark):
    rows = benchmark.pedantic(measure_ecn_threshold, rounds=1, iterations=1)
    text = format_table(
        ["K (packets)", "avg FCT (ms)", "p99 short FCT (ms)"],
        rows,
        title="Ablation: DCTCP ECN marking threshold (paper: K=20)",
    )
    save_result("ablation_ecn_threshold", text)
    assert len(rows) == 3


def measure_xpander_matchings():
    rows = []
    for style in ("shift", "random"):
        topo = xpander(5, 8, 4, matching=style, seed=2)
        tm = longest_matching_tm(topo, fraction=0.5, seed=0)
        t = max_concurrent_throughput(topo, tm).per_server
        rows.append(
            [style, topo.diameter(), round(topo.average_shortest_path_length(), 3),
             round(t, 4)]
        )
    return rows


def test_ablation_xpander_matching_style(benchmark):
    rows = benchmark.pedantic(measure_xpander_matchings, rounds=1, iterations=1)
    text = format_table(
        ["matching", "diameter", "avg path", "throughput @ x=0.5"],
        rows,
        title="Ablation: Xpander deterministic shift vs random lifts",
    )
    save_result("ablation_xpander_matching", text)
    # Both constructions should be near-equivalent expanders.
    assert abs(rows[0][3] - rows[1][3]) < 0.15


def measure_path_lp_k():
    topo = xpander(5, 8, 4)
    tm = longest_matching_tm(topo, fraction=0.6, seed=0)
    exact = max_concurrent_throughput(topo, tm).throughput
    rows = []
    for k in (1, 2, 4, 8, 16):
        approx = path_throughput(topo, tm, k=k).throughput
        rows.append([k, round(approx, 4), round(approx / exact, 4)])
    rows.append(["exact", round(exact, 4), 1.0])
    return rows


def test_ablation_path_lp_k(benchmark):
    rows = benchmark.pedantic(measure_path_lp_k, rounds=1, iterations=1)
    text = format_table(
        ["k paths", "throughput", "fraction of exact"],
        rows,
        title="Ablation: path-based LP k vs the exact edge LP "
        "(longest-matching TM at x=0.6 on a 48-switch Xpander)",
    )
    save_result("ablation_path_lp_k", text)
    fractions = [r[2] for r in rows[:-1]]
    # More paths monotonically approach the exact optimum.
    assert fractions == sorted(fractions)
    assert fractions[-1] > 0.85
