"""Fig 11: Permute(0.31) with increasing aggregate flow arrival rate.

Paper: Xpander+HYB closely matches the full-bandwidth fat-tree as load
grows, while an oversubscribed ("77%") fat-tree deteriorates much
earlier.  Scaled: k=6 fat-tree vs 30-switch Xpander; the oversubscribed
fat-tree keeps 1/3 of its core (an ~87%-cost fat-tree — the closest
core-trim to the paper's 77% at this arity; see DESIGN.md).
"""

from helpers import (
    LINK_RATE,
    MEAN_FLOW_BYTES,
    fct_series_table,
    run_workload_point,
    scaled_pfabric,
)

from repro.topologies import fattree, oversubscribed_fattree, xpander
from repro.traffic import permute_pair_distribution

LOADS = [0.1, 0.25, 0.4, 0.55]
FRACTION = 0.31


def measure():
    ft = fattree(6).topology
    ft_oversub = oversubscribed_fattree(6, 1 / 3).topology
    xp = xpander(4, 6, 2)
    sizes = scaled_pfabric()
    systems = (
        ("Fat-tree", ft, "ecmp"),
        ("Xpander ECMP", xp, "ecmp"),
        ("Xpander HYB", xp, "hyb"),
        ("Oversub fat-tree", ft_oversub, "ecmp"),
    )
    rates = []
    avg = {n: [] for n, _, _ in systems}
    p99s = {n: [] for n, _, _ in systems}
    ltput = {n: [] for n, _, _ in systems}
    for load in LOADS:
        rate = load * 54 * LINK_RATE / 8.0 / MEAN_FLOW_BYTES
        rates.append(round(rate))
        for name, topo, routing in systems:
            pairs = permute_pair_distribution(
                topo, FRACTION, seed=7, take_first="fat-tree" in name.lower()
            )
            stats = run_workload_point(
                topo, pairs, sizes, rate, routing,
                measure_start=0.02, measure_end=0.05, seed=8,
            )
            avg[name].append(stats.avg_fct() * 1e3)
            p99s[name].append(stats.short_flow_p99_fct() * 1e3)
            ltput[name].append(stats.long_flow_avg_throughput_bps() / 1e9)
    return rates, avg, p99s, ltput


def test_fig11_permute_load(benchmark):
    rates, avg, p99s, ltput = benchmark.pedantic(measure, rounds=1, iterations=1)
    fct_series_table(
        "fig11a_permute_load_avg_fct", "flow starts per second", rates, avg,
        "Fig 11(a): Permute(0.31) average FCT (ms) vs aggregate load",
    )
    fct_series_table(
        "fig11b_permute_load_short_p99", "flow starts per second", rates,
        p99s,
        "Fig 11(b): Permute(0.31) 99th-percentile short-flow FCT (ms)",
    )
    fct_series_table(
        "fig11c_permute_load_long_tput", "flow starts per second", rates,
        ltput,
        "Fig 11(c): Permute(0.31) average long-flow throughput (Gbps)",
    )
    # Paper shape: HYB tracks the full fat-tree across the load range.
    for i in range(len(rates)):
        assert avg["Xpander HYB"][i] <= 2.5 * avg["Fat-tree"][i]
    # The oversubscribed fat-tree deteriorates earlier/harder at high load.
    assert avg["Oversub fat-tree"][-1] > avg["Fat-tree"][-1]
