"""Fig 7: failure scenarios for ECMP and VLB (paper §6.1-6.2).

(b) Two adjacent Xpander racks exchange all traffic: ECMP can only use
    the single direct link and its FCT blows up with load, while VLB
    bounces traffic through the idle fabric; the fat-tree (two racks in
    one pod) is unaffected.
(c) All-to-all traffic: VLB's detours consume double capacity and lose;
    ECMP matches the fat-tree.

Scaled configuration: k=6 fat-tree vs a 30-switch Xpander; 1 Gbps links;
pFabric sizes at a 200 KB mean (see helpers.py).
"""


from helpers import (
    MEAN_FLOW_BYTES,
    fct_series_table,
    run_workload_point,
    scaled_pfabric,
    saturation_rate,
)

from repro.topologies import fattree, xpander
from repro.traffic import a2a_pair_distribution
from repro.traffic.patterns import RackPairDistribution


def _two_rack_distribution(topo, rack_a, rack_b):
    return RackPairDistribution(
        {(rack_a, rack_b): 1.0, (rack_b, rack_a): 1.0}, topo.tor_to_servers()
    )


def measure_fig7b():
    """Average FCT vs load for two-adjacent-rack traffic."""
    xp = xpander(4, 6, 5)  # 30 switches, 5 servers per rack
    u, v = next(iter(xp.graph.edges()))
    xp_pairs = _two_rack_distribution(xp, u, v)

    ft = fattree(6, servers_per_edge=5)
    pod_edges = ft.edge_switches_in_pod(0)
    ft_pairs = _two_rack_distribution(ft.topology, pod_edges[0], pod_edges[1])

    sizes = scaled_pfabric()
    # Bidirectional traffic splits over the two directions of the single
    # 1 Gbps direct link, which saturates near 1250 flows/s at 200 KB —
    # the sweep crosses it, as the paper's does.
    rates = [200.0, 500.0, 900.0, 1400.0]
    series = {"Fat-tree": [], "Xpander ECMP": [], "Xpander VLB": []}
    for rate in rates:
        for name, topo, pairs, routing in (
            ("Fat-tree", ft.topology, ft_pairs, "ecmp"),
            ("Xpander ECMP", xp, xp_pairs, "ecmp"),
            ("Xpander VLB", xp, xp_pairs, "vlb"),
        ):
            stats = run_workload_point(
                topo, pairs, sizes, rate, routing,
                measure_start=0.02, measure_end=0.08, seed=1,
            )
            series[name].append(stats.avg_fct() * 1e3)
    return rates, series


def measure_fig7c():
    """Average FCT vs load for all-to-all traffic."""
    xp = xpander(4, 6, 2)  # the 2/3-cost configuration (60 servers)
    ft = fattree(6)  # 54 servers
    sizes = scaled_pfabric()
    loads = [0.15, 0.3, 0.5, 0.7]
    series = {"Fat-tree": [], "Xpander ECMP": [], "Xpander VLB": []}
    for load in loads:
        for name, topo, routing in (
            ("Fat-tree", ft.topology, "ecmp"),
            ("Xpander ECMP", xp, "ecmp"),
            ("Xpander VLB", xp, "vlb"),
        ):
            rate = saturation_rate(topo.num_servers, load, MEAN_FLOW_BYTES)
            pairs = a2a_pair_distribution(topo, 1.0, seed=0)
            stats = run_workload_point(
                topo, pairs, sizes, rate, routing,
                measure_start=0.02, measure_end=0.05, seed=2,
            )
            series[name].append(stats.avg_fct() * 1e3)
    return loads, series


def test_fig7b_two_adjacent_racks(benchmark):
    rates, series = benchmark.pedantic(measure_fig7b, rounds=1, iterations=1)
    fct_series_table(
        "fig7b_two_rack",
        "flow starts per second",
        rates,
        series,
        "Fig 7(b): avg FCT (ms), traffic between two adjacent racks "
        "(10 active servers; paper: ECMP blows up once the direct link "
        "saturates, VLB stays low)",
    )
    # Past saturation of the single link, ECMP must be far worse than VLB.
    assert series["Xpander ECMP"][-1] > 2.0 * series["Xpander VLB"][-1]
    # The fat-tree (full bandwidth between pods' racks) stays low.
    assert series["Fat-tree"][-1] < series["Xpander ECMP"][-1]


def test_fig7c_all_to_all(benchmark):
    loads, series = benchmark.pedantic(measure_fig7c, rounds=1, iterations=1)
    fct_series_table(
        "fig7c_all_to_all",
        "offered load (fraction of capacity)",
        loads,
        series,
        "Fig 7(c): avg FCT (ms), all-to-all traffic (paper: VLB "
        "deteriorates with load; ECMP matches the fat-tree)",
    )
    # At the highest load VLB is clearly worse than ECMP on Xpander.
    assert series["Xpander VLB"][-1] > series["Xpander ECMP"][-1]
    # Xpander-ECMP stays in the fat-tree's ballpark on uniform traffic.
    assert series["Xpander ECMP"][-1] < 4.0 * series["Fat-tree"][-1]
