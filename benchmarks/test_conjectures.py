"""§2's open questions, probed empirically.

* Conjecture 2.4 — permutations are worst-case TMs: compare the worst
  sampled permutation TM against the worst sampled saturating hose TM on
  several topologies.
* The adversarial-matching refinement: how much harder than plain
  longest-matching TMs can an LP-guided search make the workload?
"""

from helpers import save_result

from repro.analysis import format_table
from repro.throughput import (
    adversarial_matching_tm,
    conjecture_2_4_evidence,
    max_concurrent_throughput,
)
from repro.traffic import longest_matching_tm
from repro.topologies import jellyfish, xpander


def measure_conjecture():
    rows = []
    topologies = [
        ("xpander(4,4)", xpander(4, 4, 2)),
        ("xpander(5,4)", xpander(5, 4, 2)),
        ("jellyfish(16,4)", jellyfish(16, 4, 2, seed=0)),
    ]
    all_consistent = True
    for name, topo in topologies:
        ev = conjecture_2_4_evidence(topo, servers_per_tor=2, trials=4, seed=0)
        all_consistent &= ev.consistent
        rows.append(
            [
                name,
                round(ev.worst_permutation, 4),
                round(ev.worst_hose, 4),
                "yes" if ev.consistent else "NO",
            ]
        )
    return rows, all_consistent


def measure_adversarial():
    rows = []
    for name, topo in (
        ("xpander(5,6)", xpander(5, 6, 3)),
        ("jellyfish(20,5)", jellyfish(20, 5, 3, seed=1)),
    ):
        base = max_concurrent_throughput(
            topo, longest_matching_tm(topo, fraction=1.0, seed=0)
        ).throughput
        _, adv = adversarial_matching_tm(topo, fraction=1.0, iterations=3, seed=0)
        rows.append([name, round(base, 4), round(adv, 4), round(adv / base, 4)])
    return rows


def test_conjecture_2_4(benchmark):
    rows, all_consistent = benchmark.pedantic(
        measure_conjecture, rounds=1, iterations=1
    )
    text = format_table(
        ["topology", "worst permutation t", "worst hose t", "consistent w/ Conj 2.4"],
        rows,
        title=(
            "Conjecture 2.4 evidence: sampled permutation TMs vs sampled "
            "saturating hose TMs (consistency = permutations at least as "
            "hard; sampling cannot prove, only refute)"
        ),
    )
    save_result("conjecture_2_4", text)
    assert all_consistent


def test_adversarial_matching(benchmark):
    rows = benchmark.pedantic(measure_adversarial, rounds=1, iterations=1)
    text = format_table(
        ["topology", "longest-matching t", "adversarial t", "ratio"],
        rows,
        title=(
            "Adversarial matching search vs plain longest-matching TMs "
            "(LP-utilization-guided re-matching; ratio <= 1 means the "
            "search found a harder TM)"
        ),
    )
    save_result("adversarial_matching", text)
    for _, base, adv, ratio in rows:
        assert adv <= base + 1e-9
