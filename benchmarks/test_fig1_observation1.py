"""Fig 1 / Observation 1: oversubscribed fat-trees are pinned by tiny TMs.

A fat-tree oversubscribed to an x fraction of its core cannot exceed x
per-server throughput on a pod-to-pod permutation touching only 2/k of
its servers — measured here with the exact fluid-flow LP across several
oversubscription levels and arities.
"""

import pytest
from helpers import save_result

from repro.analysis import format_table
from repro.throughput import max_concurrent_throughput
from repro.topologies import oversubscribed_fattree
from repro.traffic import TrafficMatrix


def measure():
    rows = []
    for k in (4, 8):
        for x in (0.25, 0.5, 0.75, 1.0):
            ft = oversubscribed_fattree(k, x)
            pod_a = ft.edge_switches_in_pod(0)
            pod_b = ft.edge_switches_in_pod(1)
            tm = TrafficMatrix(
                {(a, b): float(k // 2) for a, b in zip(pod_a, pod_b)}
            )
            res = max_concurrent_throughput(ft.topology, tm)
            servers_frac = 2 / k
            rows.append(
                [k, x, round(servers_frac, 3), round(res.per_server, 4)]
            )
    return rows


def test_fig1_observation1(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        ["k", "core fraction x", "servers involved", "per-server throughput"],
        rows,
        title=(
            "Observation 1: pod-to-pod TM throughput equals the core "
            "fraction (paper: with >75% capacity intact, 50%-of-servers "
            "TM gets only 75%)"
        ),
    )
    save_result("fig1_observation1", text)
    # The measured throughput must track the oversubscription level.
    for k, x, _, tput in rows:
        assert tput == pytest.approx(x, abs=0.05)
