"""Fig 9: A2A(x) — all-to-all over an x-fraction of racks, x swept.

Paper: with pFabric sizes at 167 flow-starts/s/server, Xpander+HYB
matches the full-bandwidth fat-tree while the active fraction is not
large; short-flow tail FCT matches across nearly the whole range; ECMP
on Xpander is also fine for this uniform-like workload.

Scaled: k=6 fat-tree (54 servers) vs a 30-switch (2/3-cost) Xpander;
the per-active-server flow rate corresponds to the paper's ~32% load.
"""

from helpers import (
    MEAN_FLOW_BYTES,
    LINK_RATE,
    fct_series_table,
    run_workload_point,
    scaled_pfabric,
)

from repro.topologies import fattree, xpander
from repro.traffic import a2a_pair_distribution

FRACTIONS = [0.2, 0.4, 0.6, 0.8, 1.0]
LOAD_PER_ACTIVE_SERVER = 0.30


def measure():
    ft = fattree(6).topology  # 54 servers
    xp = xpander(4, 6, 2)  # 30 switches, 60 servers, 2/3 switch cost
    sizes = scaled_pfabric()
    systems = (
        ("Fat-tree", ft, "ecmp"),
        ("Xpander ECMP", xp, "ecmp"),
        ("Xpander HYB", xp, "hyb"),
    )
    avg = {n: [] for n, _, _ in systems}
    p99s = {n: [] for n, _, _ in systems}
    ltput = {n: [] for n, _, _ in systems}
    for x in FRACTIONS:
        for name, topo, routing in systems:
            pairs = a2a_pair_distribution(
                topo, x, seed=3, take_first=(name == "Fat-tree")
            )
            active_servers = sum(
                topo.servers_at(t) for t in pairs.active_racks()
            )
            rate = (
                LOAD_PER_ACTIVE_SERVER * active_servers * LINK_RATE / 8.0
            ) / MEAN_FLOW_BYTES
            stats = run_workload_point(
                topo, pairs, sizes, rate, routing,
                measure_start=0.02, measure_end=0.05, seed=4,
            )
            avg[name].append(stats.avg_fct() * 1e3)
            p99s[name].append(stats.short_flow_p99_fct() * 1e3)
            ltput[name].append(stats.long_flow_avg_throughput_bps() / 1e9)
    return avg, p99s, ltput


def test_fig9_a2a_sweep(benchmark):
    avg, p99s, ltput = benchmark.pedantic(measure, rounds=1, iterations=1)
    fct_series_table(
        "fig9a_a2a_avg_fct", "fraction of active servers", FRACTIONS, avg,
        "Fig 9(a): A2A(x) average FCT (ms), pFabric sizes, ~30% load per "
        "active server",
    )
    fct_series_table(
        "fig9b_a2a_short_p99", "fraction of active servers", FRACTIONS, p99s,
        "Fig 9(b): A2A(x) 99th-percentile short-flow FCT (ms)",
    )
    fct_series_table(
        "fig9c_a2a_long_tput", "fraction of active servers", FRACTIONS, ltput,
        "Fig 9(c): A2A(x) average long-flow throughput (Gbps)",
    )
    # Paper shape: for skewed TMs (small x), Xpander tracks the fat-tree.
    for i, x in enumerate(FRACTIONS):
        if x <= 0.4:
            assert avg["Xpander HYB"][i] <= 2.0 * avg["Fat-tree"][i]
            assert avg["Xpander ECMP"][i] <= 2.0 * avg["Fat-tree"][i]
    # Short-flow tail matches across nearly the entire range.
    for i in range(len(FRACTIONS) - 1):
        assert p99s["Xpander HYB"][i] <= 3.0 * p99s["Fat-tree"][i]
