"""Resilience campaign: equal-cost graceful degradation, end-to-end.

Runs the reduced ``benchmarks/sweeps/resilience_quick.json`` campaign
through the harness and checks the paper's §4.2 deployment claim: at
equal cost, the statically-wired expanders (Xpander, Jellyfish) retain
strictly more of their healthy throughput than the fat-tree once a
nontrivial fraction of links fail.
"""

import os

from helpers import save_result

from repro.harness import Runner
from repro.resilience import load_campaign_file, run_campaign

CAMPAIGN_FILE = os.path.join(
    os.path.dirname(__file__), "sweeps", "resilience_quick.json"
)


def measure():
    campaign = load_campaign_file(CAMPAIGN_FILE)
    return run_campaign(campaign, runner=Runner())


def test_resilience_campaign(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_result("resilience_campaign", result.render())

    # The campaign must complete with zero unhandled failures.
    assert result.ok, result.counts
    assert result.counts["failed"] == 0

    # Healthy baseline retains exactly itself.
    for label in result.series:
        assert abs(result.retained(label, 0.0) - 1.0) < 1e-9

    # Graceful vs. structured degradation at >= 10% random link loss.
    for fraction in [f for f in result.fractions if f >= 0.1]:
        ft = result.retained("Fat-tree", fraction)
        for expander in ("Xpander", "Jellyfish"):
            assert result.retained(expander, fraction) > ft, (
                expander,
                fraction,
                result.series,
            )
