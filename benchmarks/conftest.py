"""Benchmark-suite configuration.

Each benchmark regenerates a paper table/figure; runs are expensive
simulations, so every bench executes exactly once per session
(``benchmark.pedantic`` with one round) — pytest-benchmark records the
wall time, and the rendered result lands in ``benchmarks/results/``.
"""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))
