"""Ablation: MPTCP-over-k-paths vs the paper's simple oblivious schemes.

§6 opens by noting that pre-HYB routing for expanders "depended on MPTCP
over k-shortest paths", which poses deployment challenges.  The paper's
point is that simple HYB suffices; this bench checks that claim at our
scale: HYB should be competitive with an MPTCP baseline on the skewed
workload, and MPTCP should fix the two-adjacent-rack ECMP pathology just
as VLB does (by aggregating the non-direct paths).
"""

from helpers import (
    LINK_RATE,
    MEAN_FLOW_BYTES,
    SHORT_FLOW_BYTES,
    network_params,
    save_result,
    scaled_pfabric,
)

from repro import registry
from repro.analysis import format_table
from repro.sim import PacketSimulation
from repro.topologies import xpander
from repro.traffic import PoissonArrivals, Workload, permute_pair_distribution
from repro.traffic.patterns import RackPairDistribution


def _run(topo, flows, routing, transport, measure=(0.02, 0.06)):
    sim = PacketSimulation(
        topo,
        routing=registry.routing(
            routing, topo,
            **({"hyb_threshold_bytes": SHORT_FLOW_BYTES} if routing == "hyb" else {}),
        ),
        network_params=network_params(),
        transport=transport,
        mptcp_subflows=4,
    )
    sim.inject(flows)
    stats = sim.run(*measure)
    stats.short_flow_bytes = SHORT_FLOW_BYTES
    return stats


def measure():
    xp = xpander(4, 6, 2)
    sizes = scaled_pfabric()

    u, v = next(iter(xp.graph.edges()))
    two_rack_pairs = RackPairDistribution(
        {(u, v): 1.0, (v, u): 1.0}, xp.tor_to_servers()
    )
    two_rack = Workload(
        two_rack_pairs, sizes, PoissonArrivals(1300.0), seed=1
    ).generate(horizon=0.10)

    permute_pairs = permute_pair_distribution(xp, 0.4, seed=2)
    rate = 0.25 * 24 * LINK_RATE / 8.0 / MEAN_FLOW_BYTES
    permute = Workload(
        permute_pairs, sizes, PoissonArrivals(rate), seed=3
    ).generate(horizon=0.10)

    rows = []
    for label, routing, transport in (
        ("ECMP + DCTCP", "ecmp", "dctcp"),
        ("HYB + DCTCP", "hyb", "dctcp"),
        ("MPTCP x4 over ECMP", "ecmp", "mptcp"),
    ):
        t = _run(xp, two_rack, routing, transport)
        p = _run(xp, permute, routing, transport)
        rows.append(
            [
                label,
                round(t.avg_fct() * 1e3, 3),
                round(p.avg_fct() * 1e3, 3),
                round(p.short_flow_p99_fct() * 1e3, 3),
            ]
        )
    return rows


def test_ablation_mptcp(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        [
            "scheme",
            "two-rack avg FCT (ms)",
            "Permute(0.4) avg FCT (ms)",
            "Permute(0.4) p99 short (ms)",
        ],
        rows,
        title=(
            "Ablation: the paper's simple schemes vs MPTCP-over-paths "
            "(the pre-HYB approach for expanders)"
        ),
    )
    save_result("ablation_mptcp", text)
    by = {r[0]: r for r in rows}
    # MPTCP also escapes the two-rack trap (extra paths via subflows)...
    assert by["MPTCP x4 over ECMP"][1] < by["ECMP + DCTCP"][1]
    # ...but plain HYB is competitive with it on the skewed workload —
    # the paper's claim that simple routing suffices.
    assert by["HYB + DCTCP"][2] <= 1.5 * by["MPTCP x4 over ECMP"][2]
