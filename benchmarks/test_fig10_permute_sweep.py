"""Fig 10: Permute(x) — rack-level random permutation over an x-fraction.

The challenging consolidated workload: rack-to-rack aggregation limits
load-balancing opportunities.  Paper: Xpander+HYB matches the fat-tree
for skewed TMs (small x) and deteriorates gracefully as x grows; ECMP on
Xpander performs very poorly here (single shortest-path bottlenecks).

The 15 (fraction, system) points are independent, so this bench drives
them through the ``repro.harness`` worker pool instead of a serial loop;
each point is a declarative spec whose ``load`` is resolved against the
active servers of its Permute(x) pair distribution inside the worker.
"""

from helpers import fct_series_table, packet_point_spec, run_harness

FRACTIONS = [0.2, 0.4, 0.6, 0.8, 1.0]
LOAD_PER_ACTIVE_SERVER = 0.30

SYSTEMS = (
    ("Fat-tree", {"family": "fattree", "k": 6}, "ecmp"),
    ("Xpander ECMP", {"family": "xpander", "degree": 4, "lift": 6, "servers": 2}, "ecmp"),
    ("Xpander HYB", {"family": "xpander", "degree": 4, "lift": 6, "servers": 2}, "hyb"),
)


def measure():
    specs = [
        packet_point_spec(
            name=f"{name} x={x}",
            topology=topo,
            routing=routing,
            workload={
                "pattern": "permute",
                "fraction": x,
                "pattern_seed": 5,
                "take_first": name == "Fat-tree",
                "load": LOAD_PER_ACTIVE_SERVER,
            },
            seed=6,
            measure_start=0.02,
            measure_end=0.05,
        )
        for x in FRACTIONS
        for name, topo, routing in SYSTEMS
    ]
    records = iter(run_harness(specs))
    avg = {n: [] for n, _, _ in SYSTEMS}
    p99s = {n: [] for n, _, _ in SYSTEMS}
    ltput = {n: [] for n, _, _ in SYSTEMS}
    for _x in FRACTIONS:
        for name, _, _ in SYSTEMS:
            metrics = next(records).metrics
            avg[name].append(metrics["avg_fct_ms"])
            p99s[name].append(metrics["short_p99_fct_ms"])
            ltput[name].append(metrics["long_avg_throughput_gbps"])
    return avg, p99s, ltput


def test_fig10_permute_sweep(benchmark):
    avg, p99s, ltput = benchmark.pedantic(measure, rounds=1, iterations=1)
    fct_series_table(
        "fig10a_permute_avg_fct", "fraction of active servers", FRACTIONS,
        avg,
        "Fig 10(a): Permute(x) average FCT (ms), pFabric sizes, ~30% load "
        "per active server",
    )
    fct_series_table(
        "fig10b_permute_short_p99", "fraction of active servers", FRACTIONS,
        p99s,
        "Fig 10(b): Permute(x) 99th-percentile short-flow FCT (ms)",
    )
    fct_series_table(
        "fig10c_permute_long_tput", "fraction of active servers", FRACTIONS,
        ltput,
        "Fig 10(c): Permute(x) average long-flow throughput (Gbps)",
    )
    # Paper shape: HYB stays close to the fat-tree in the skewed regime...
    for i, x in enumerate(FRACTIONS):
        if x <= 0.4:
            assert avg["Xpander HYB"][i] <= 2.5 * avg["Fat-tree"][i]
    # ...and pure ECMP's short-flow tail is the worst of the Xpander
    # options for consolidated permutation traffic (paper Fig 10(b):
    # "ECMP over Xpander performs extremely poorly for Permute").
    assert max(p99s["Xpander ECMP"]) > max(p99s["Xpander HYB"])
