"""Fig 10: Permute(x) — rack-level random permutation over an x-fraction.

The challenging consolidated workload: rack-to-rack aggregation limits
load-balancing opportunities.  Paper: Xpander+HYB matches the fat-tree
for skewed TMs (small x) and deteriorates gracefully as x grows; ECMP on
Xpander performs very poorly here (single shortest-path bottlenecks).
"""

from helpers import (
    LINK_RATE,
    MEAN_FLOW_BYTES,
    fct_series_table,
    run_workload_point,
    scaled_pfabric,
)

from repro.topologies import fattree, xpander
from repro.traffic import permute_pair_distribution

FRACTIONS = [0.2, 0.4, 0.6, 0.8, 1.0]
LOAD_PER_ACTIVE_SERVER = 0.30


def measure():
    ft = fattree(6).topology
    xp = xpander(4, 6, 2)
    sizes = scaled_pfabric()
    systems = (
        ("Fat-tree", ft, "ecmp"),
        ("Xpander ECMP", xp, "ecmp"),
        ("Xpander HYB", xp, "hyb"),
    )
    avg = {n: [] for n, _, _ in systems}
    p99s = {n: [] for n, _, _ in systems}
    ltput = {n: [] for n, _, _ in systems}
    for x in FRACTIONS:
        for name, topo, routing in systems:
            pairs = permute_pair_distribution(
                topo, x, seed=5, take_first=(name == "Fat-tree")
            )
            active_servers = sum(
                topo.servers_at(t) for t in pairs.active_racks()
            )
            rate = (
                LOAD_PER_ACTIVE_SERVER * active_servers * LINK_RATE / 8.0
            ) / MEAN_FLOW_BYTES
            stats = run_workload_point(
                topo, pairs, sizes, rate, routing,
                measure_start=0.02, measure_end=0.05, seed=6,
            )
            avg[name].append(stats.avg_fct() * 1e3)
            p99s[name].append(stats.short_flow_p99_fct() * 1e3)
            ltput[name].append(stats.long_flow_avg_throughput_bps() / 1e9)
    return avg, p99s, ltput


def test_fig10_permute_sweep(benchmark):
    avg, p99s, ltput = benchmark.pedantic(measure, rounds=1, iterations=1)
    fct_series_table(
        "fig10a_permute_avg_fct", "fraction of active servers", FRACTIONS,
        avg,
        "Fig 10(a): Permute(x) average FCT (ms), pFabric sizes, ~30% load "
        "per active server",
    )
    fct_series_table(
        "fig10b_permute_short_p99", "fraction of active servers", FRACTIONS,
        p99s,
        "Fig 10(b): Permute(x) 99th-percentile short-flow FCT (ms)",
    )
    fct_series_table(
        "fig10c_permute_long_tput", "fraction of active servers", FRACTIONS,
        ltput,
        "Fig 10(c): Permute(x) average long-flow throughput (Gbps)",
    )
    # Paper shape: HYB stays close to the fat-tree in the skewed regime...
    for i, x in enumerate(FRACTIONS):
        if x <= 0.4:
            assert avg["Xpander HYB"][i] <= 2.5 * avg["Fat-tree"][i]
    # ...and pure ECMP's short-flow tail is the worst of the Xpander
    # options for consolidated permutation traffic (paper Fig 10(b):
    # "ECMP over Xpander performs extremely poorly for Permute").
    assert max(p99s["Xpander ECMP"]) > max(p99s["Xpander HYB"])
