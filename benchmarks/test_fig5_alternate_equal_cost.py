"""§5's alternate equal-cost comparison: give Jellyfish the delta factor.

Instead of handicapping the dynamic network to 1/delta ports, the paper
also runs the comparison the other way: give Jellyfish delta x the
dynamic network's resources — (a) delta x as many switches of the same
port count, or (b) the same switches with delta x the network ports.  In
both settings, "even with delta = 1.5, Jellyfish achieved full throughput
in the regime of interest."
"""

from helpers import save_result

from repro.analysis import format_series
from repro.throughput import skew_sweep
from repro.topologies import jellyfish

FRACTIONS = [0.1, 0.2, 0.3, 0.4]
DELTA = 1.5
BASE_SWITCHES = 32
BASE_PORTS = 6  # dynamic network's flexible ports per ToR
SERVERS = 6  # dynamic: 12-port ToRs, 192 servers total


def measure():
    # (a) delta x switches of the same 12-port count, hosting the SAME
    # 192 servers: 4 servers and 8 network ports per switch (as in the
    # paper's 81-switch variant of the 4.1 example).
    total_servers = BASE_SWITCHES * SERVERS
    switches_a = round(BASE_SWITCHES * DELTA)
    servers_a = total_servers // switches_a
    ports_a = (BASE_PORTS + SERVERS) - servers_a
    more_switches = jellyfish(switches_a, ports_a, servers_a, seed=1, strict=True)
    # (b) same switches, delta x network ports each.
    more_ports = jellyfish(
        BASE_SWITCHES, round(BASE_PORTS * DELTA), SERVERS, seed=1, strict=True
    )
    series = {}
    for label, topo in (
        (f"{DELTA}x switches", more_switches),
        (f"{DELTA}x ports", more_ports),
    ):
        sweep = skew_sweep(topo, FRACTIONS, seed=0)
        series[label] = sweep.throughput
    return series


def test_fig5_alternate_equal_cost(benchmark):
    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_series(
        "fraction of servers with traffic",
        FRACTIONS,
        series,
        title=(
            "paper §5 alternate equal-cost comparison: Jellyfish given "
            "delta=1.5 x the dynamic network's switches or ports achieves "
            "full throughput in the regime of interest (longest-matching "
            "TMs, fraction <= 0.4)"
        ),
    )
    save_result("fig5_alternate_equal_cost", text)
    # Paper's claim: full throughput throughout the regime of interest.
    for label, values in series.items():
        for x, v in zip(FRACTIONS, values):
            assert v > 0.9, f"{label} at x={x}: {v}"
