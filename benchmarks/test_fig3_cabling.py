"""Fig 3: Xpander's cabling-friendly structure, quantified.

The paper's Fig 3 shows a 486-switch Xpander whose inter-meta-node cables
aggregate into a small number of bundles, citing Jupiter Rising's ~40%
fiber-cost saving from bundling.  This bench reproduces the claim at the
paper's own configuration (scaled-down alongside): bundle counts, bundle
thickness, and the bundled-fiber cost against an unbundleable random
graph (Jellyfish) of identical equipment.
"""

from helpers import save_result

from repro.analysis import format_table
from repro.topologies import (
    fattree,
    fattree_cabling,
    flat_cabling,
    jellyfish,
    xpander,
    xpander_cabling,
)


def measure():
    rows = []
    # The paper's Fig 3 instance: 486 24-port switches, 3402 servers ->
    # 18 meta-nodes of 27 switches, network degree 17.
    configs = [
        ("paper Fig 3 (d=17, lift=27)", 17, 27, 7),
        ("scaled (d=5, lift=6)", 5, 6, 3),
    ]
    reports = {}
    for label, d, lift, servers in configs:
        xp = xpander(d, lift, servers)
        jf = jellyfish(xp.num_switches, d, servers, seed=1)
        xr = xpander_cabling(xp)
        jr = flat_cabling(jf)
        reports[label] = (xr, jr)
        rows.append(
            [
                label + " / Xpander",
                xr.num_cables,
                xr.num_bundles,
                round(xr.cables_per_bundle, 1),
                round(xr.fiber_cost(), 0),
            ]
        )
        rows.append(
            [
                label + " / Jellyfish",
                jr.num_cables,
                jr.num_bundles,
                round(jr.cables_per_bundle, 1),
                round(jr.fiber_cost(), 0),
            ]
        )
    ft = fattree(8)
    fr = fattree_cabling(ft)
    rows.append(
        [
            "fat-tree k=8",
            fr.num_cables,
            fr.num_bundles,
            round(fr.cables_per_bundle, 1),
            round(fr.fiber_cost(), 0),
        ]
    )
    return rows, reports


def test_fig3_cabling(benchmark):
    rows, reports = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        ["configuration", "cables", "bundles", "cables/bundle", "fiber $ (bundled)"],
        rows,
        title=(
            "Fig 3: cable aggregation — Xpander bundles every meta-node "
            "pair's cables; an equal-equipment random graph cannot bundle "
            "(bundling saves ~40% of fiber cost, per Jupiter Rising)"
        ),
    )
    save_result("fig3_cabling", text)

    xr, jr = reports["paper Fig 3 (d=17, lift=27)"]
    # Paper structure: 18 meta-nodes -> C(18, 2) = 153 bundles of 27.
    assert xr.num_bundles == 153
    assert xr.cables_per_bundle == 27
    # The random graph needs an order of magnitude more bundles.
    assert jr.num_bundles > 10 * xr.num_bundles
    # Bundling discount materializes in fiber cost.
    assert xr.fiber_cost() < jr.fiber_cost()
