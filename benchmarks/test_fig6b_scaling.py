"""Fig 6(b): the Jellyfish advantage is consistent (or grows) with scale.

Paper: Jellyfish built from the same switches as full fat-trees with
k = 12 / 24 / 36 but carrying 2x the servers still achieves high
throughput on skewed TMs.  Scaled here to k = 6 / 8 / 10; the sweep stays
in the skewed regime (<= 50% participation), which is both the regime of
interest and where the exact LP is fast at k=10 scale.
"""

from helpers import save_result

from repro.analysis import format_series
from repro.throughput import max_concurrent_throughput
from repro.topologies import fattree, jellyfish_degree_sequence
from repro.traffic import longest_matching_tm

FRACTIONS = [0.1, 0.2, 0.3, 0.4, 0.5]
KS = (6, 8, 10)


def double_server_jellyfish(k: int, seed: int = 1):
    """Jellyfish from a k-fat-tree's switches with twice its servers."""
    ft = fattree(k).topology
    switches = ft.num_switches
    servers_total = 2 * ft.num_servers
    base, extra = divmod(servers_total, switches)
    servers = {i: base + (1 if i < extra else 0) for i in range(switches)}
    ports = {i: k - servers[i] for i in range(switches)}
    if sum(ports.values()) % 2:
        ports[switches - 1] -= 1  # park one odd port
    topo = jellyfish_degree_sequence(ports, servers, seed=seed)
    assert topo.num_servers == servers_total
    return topo


def measure():
    series = {}
    for k in KS:
        topo = double_server_jellyfish(k)
        values = []
        for x in FRACTIONS:
            tm = longest_matching_tm(topo, fraction=x, seed=0)
            values.append(max_concurrent_throughput(topo, tm).per_server)
        series[f"k = {k}"] = values
    return series


def test_fig6b_scaling(benchmark):
    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_series(
        "fraction of servers with traffic",
        FRACTIONS,
        series,
        title=(
            "Fig 6(b): Jellyfish from a k-fat-tree's switches with 2x "
            "servers, longest-matching TMs (paper: k=12/24/36, scaled "
            "to k=6/8/10; advantage consistent or improves with k)"
        ),
    )
    save_result("fig6b_scaling", text)

    # Paper shape: larger k does not do worse at equal fractions.
    for i in range(len(FRACTIONS)):
        assert series["k = 10"][i] >= series["k = 6"][i] - 0.08
    # Strongly skewed traffic gets (near-)full throughput at every scale.
    for k in KS:
        assert series[f"k = {k}"][0] > 0.85
