#!/usr/bin/env python3
"""Fluid-model skew sweep (the engine behind the paper's Figs 5-6).

Sweeps the fraction of racks participating in a near-worst-case
(longest-matching) traffic matrix and reports per-server throughput for:

* Jellyfish (random regular graph),
* an equal-cost oversubscribed fat-tree,
* the throughput-proportionality (TP) ideal,
* the unrestricted and restricted dynamic-network models at delta = 1.5.

The paper's question: as traffic concentrates on fewer racks (leftward),
how much of its capacity can each network redirect to them?

Run:  python examples/skewed_traffic.py
"""

from repro.analysis import format_series
from repro.cost import delta_ratio
from repro.throughput import max_concurrent_throughput, skew_sweep, tp_curve
from repro.topologies import (
    DynamicNetworkModel,
    equal_cost_dynamic_ports,
    jellyfish,
    oversubscribed_fattree,
)
from repro.traffic import longest_matching_tm


def main() -> None:
    fractions = [0.2, 0.4, 0.6, 0.8, 1.0]
    servers_per_tor = 6
    network_ports = 9
    num_tors = 24

    # -- Jellyfish under longest-matching TMs -----------------------------
    jf = jellyfish(num_tors, network_ports, servers_per_tor, seed=1)
    jf_sweep = skew_sweep(jf, fractions, seed=0, trials=2)

    # -- Equal-cost oversubscribed fat-tree --------------------------------
    # Jellyfish above uses 24 switches; a k=6 fat-tree stripped to a
    # comparable switch/port budget (core halved) is the fat-tree baseline.
    ft = oversubscribed_fattree(6, 0.5, servers_per_edge=6)
    ft_vals = []
    for x in fractions:
        tm = longest_matching_tm(ft.topology, fraction=x, seed=0)
        ft_vals.append(max_concurrent_throughput(ft.topology, tm).per_server)

    # -- Dynamic models at equal cost (delta = 1.5) ------------------------
    delta = 1.5
    dyn = DynamicNetworkModel(
        num_tors=num_tors,
        network_ports=equal_cost_dynamic_ports(network_ports, delta),
        server_ports=servers_per_tor,
    )
    unrestricted = [dyn.unrestricted_throughput()] * len(fractions)
    restricted = [dyn.restricted_throughput(x) for x in fractions]

    # -- TP ideal, anchored at Jellyfish's full-participation value --------
    alpha = jf_sweep.throughput[-1]
    tp = tp_curve(alpha, fractions)

    print(
        format_series(
            "fraction",
            fractions,
            {
                "TP ideal": tp,
                "Jellyfish": jf_sweep.throughput,
                f"Unrestr dyn (d={delta})": unrestricted,
                f"Restr dyn (d={delta})": restricted,
                "Equal-cost fat-tree": ft_vals,
            },
            title=(
                "Per-server throughput vs fraction of racks in a "
                "longest-matching TM (cf. paper Fig 5); "
                f"measured component-cost delta = {delta_ratio():.2f}"
            ),
        )
    )
    print(
        "\nExpected shape: Jellyfish tracks the TP ideal and beats the\n"
        "restricted dynamic model everywhere; the fat-tree is pinned flat."
    )


if __name__ == "__main__":
    main()
