#!/usr/bin/env python3
"""Quickstart: build a fat-tree and a cheaper Xpander, run the same skewed
workload on both, and compare flow completion times.

This is the paper's headline experiment in miniature: an Xpander built at
two-thirds of a full-bandwidth fat-tree's cost, running the simple
oblivious HYB routing scheme (ECMP for a flow's first 100 KB, VLB after),
matches the fat-tree on a skewed workload.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.cost import equal_cost_switch_budget, topology_port_cost
from repro.sim import NetworkParams, run_packet_experiment
from repro.topologies import fattree, xpander_from_budget
from repro.traffic import (
    PoissonArrivals,
    Workload,
    permute_pair_distribution,
    pfabric_web_search,
)


def main() -> None:
    # -- Topologies ------------------------------------------------------
    # A full-bandwidth k=4 fat-tree (16 servers, 20 switches) and an
    # Xpander with ~2/3 the switches supporting the same servers.
    ft = fattree(4).topology
    budget = equal_cost_switch_budget(ft.num_switches, 2 / 3)
    xp = xpander_from_budget(
        num_switches=budget, ports_per_switch=6, servers_total=ft.num_servers
    )
    print(f"fat-tree: {ft}")
    print(f"xpander:  {xp}")
    print(
        f"port-cost ratio (xpander/fat-tree): "
        f"{topology_port_cost(xp) / topology_port_cost(ft):.2f}\n"
    )

    # -- Workload ---------------------------------------------------------
    # Permute(0.3): a random rack-level permutation over 30% of the racks
    # (the skewed regime where dynamic topologies claim their advantage),
    # pFabric web-search flow sizes, Poisson arrivals.
    rows = []
    for topo, routing, label in (
        (ft, "ecmp", "fat-tree ECMP"),
        (xp, "ecmp", "Xpander ECMP"),
        (xp, "hyb", "Xpander HYB"),
    ):
        workload = Workload(
            pairs=permute_pair_distribution(topo, 0.3, seed=2),
            sizes=pfabric_web_search(200_000),
            arrivals=PoissonArrivals(3000.0),
            seed=1,
        )
        stats = run_packet_experiment(
            topo,
            workload,
            routing=routing,
            measure_start=0.02,
            measure_end=0.08,
            network_params=NetworkParams(link_rate_bps=1e9),
        )
        s = stats.summary()
        rows.append(
            [
                label,
                s["flows"],
                round(s["avg_fct_ms"], 3),
                round(s["short_p99_fct_ms"], 3),
                round(s["long_avg_throughput_gbps"], 3),
            ]
        )

    print(
        format_table(
            ["network", "flows", "avg FCT (ms)", "p99 short FCT (ms)", "long tput (Gbps)"],
            rows,
            title="Permute(0.3), pFabric sizes, 3000 flows/s (1 Gbps links)",
        )
    )
    print(
        "\nExpected shape: Xpander+HYB tracks the full-bandwidth fat-tree "
        "despite using ~2/3 of the switches."
    )


if __name__ == "__main__":
    main()
