#!/usr/bin/env python3
"""Routing corner cases on an Xpander (the paper's Fig 7 and §6.1-6.3).

Two scenarios that pull ECMP and VLB in opposite directions:

1. **Two adjacent racks** — all traffic between two directly connected
   ToRs.  ECMP sees exactly one shortest path (the direct link) and
   bottlenecks; VLB bounces traffic off random intermediates and wins.
2. **All-to-all** — uniform network-wide traffic.  VLB's detours now
   consume twice the capacity per byte and lose; ECMP wins.

HYB (ECMP below 100 KB, VLB above) stays near the better scheme in both.

Run:  python examples/routing_comparison.py
"""

from repro.analysis import format_table
from repro.sim import NetworkParams, run_packet_experiment
from repro.topologies import xpander
from repro.traffic import (
    FlowSpec,
    PoissonArrivals,
    Workload,
    a2a_pair_distribution,
    pfabric_web_search,
)

NET = NetworkParams(link_rate_bps=1e9)
ROUTINGS = ("ecmp", "vlb", "hyb")


def two_adjacent_racks(xp) -> list:
    """Flows only between two directly connected racks (cf. Fig 7(b))."""
    u, v = next(iter(xp.graph.edges()))
    su, sv = xp.tor_to_servers()[u], xp.tor_to_servers()[v]
    flows = []
    t = 0.0
    for i in range(60):
        a, b = su[i % len(su)], sv[(i + 1) % len(sv)]
        if i % 2:
            a, b = b, a
        flows.append(FlowSpec(i, a, b, 150_000, t))
        t += 0.0004
    return flows


def all_to_all(xp) -> list:
    """Uniform all-to-all Poisson workload (cf. Fig 7(c))."""
    wl = Workload(
        a2a_pair_distribution(xp, 1.0),
        pfabric_web_search(150_000),
        PoissonArrivals(10_000.0),
        seed=4,
    )
    return wl.generate(horizon=0.06)


def main() -> None:
    xp = xpander(4, 6, 4)  # 20 switches, 4 servers each
    print(f"topology: {xp}\n")

    scenarios = (
        ("two adjacent racks", two_adjacent_racks(xp), 0.0, 0.02),
        ("all-to-all", all_to_all(xp), 0.01, 0.05),
    )
    for name, flows, m0, m1 in scenarios:
        rows = []
        for routing in ROUTINGS:
            stats = run_packet_experiment(
                xp, flows, routing=routing,
                measure_start=m0, measure_end=m1, network_params=NET,
            )
            s = stats.summary()
            rows.append(
                [
                    routing.upper(),
                    s["flows"],
                    round(s["avg_fct_ms"], 3),
                    round(s["short_p99_fct_ms"], 3),
                ]
            )
        print(
            format_table(
                ["routing", "flows", "avg FCT (ms)", "p99 short FCT (ms)"],
                rows,
                title=f"Scenario: {name}",
            )
        )
        print()

    print(
        "Expected shape: VLB wins the two-rack scenario (ECMP is stuck on\n"
        "the single direct link); ECMP wins all-to-all (VLB wastes\n"
        "capacity on detours); HYB is competitive in both."
    )


if __name__ == "__main__":
    main()
