#!/usr/bin/env python3
"""Failure resilience of static topologies (supporting the paper's §4.2).

One argument for static expanders over both fat-trees and dynamic
networks is operational robustness: capacity is spread over many
interchangeable links, so random failures shave throughput smoothly
instead of knocking out structured capacity.  This example degrades an
Xpander and a fat-tree with increasing random link failures and measures
fluid-model throughput and packet-level FCT on the survivors.

Run:  python examples/failure_resilience.py
"""

from repro.analysis import format_series
from repro.sim import NetworkParams, run_packet_experiment
from repro.throughput import max_concurrent_throughput
from repro.topologies import (
    fattree,
    largest_connected_component,
    random_link_failures,
    xpander,
)
from repro.traffic import FlowSpec, permutation_tm

FAILURES = [0.0, 0.05, 0.1, 0.2]


def fluid_throughput(topo, frac: float) -> float:
    degraded = (
        topo
        if frac == 0
        else largest_connected_component(random_link_failures(topo, frac, seed=7))
    )
    tors = [t for t in degraded.tors if degraded.servers_at(t) > 0]
    tm = permutation_tm(tors, 3, fraction=0.5, seed=0)
    return max_concurrent_throughput(degraded, tm).per_server


def packet_fct_ms(topo, frac: float) -> float:
    degraded = (
        topo
        if frac == 0
        else largest_connected_component(random_link_failures(topo, frac, seed=7))
    )
    servers = sorted(degraded.server_to_tor())
    flows = [
        FlowSpec(i, servers[i], servers[-(i + 1)], 100_000, 0.0002 * i)
        for i in range(min(24, len(servers) // 2))
    ]
    stats = run_packet_experiment(
        degraded,
        flows,
        routing="hyb",
        measure_start=0.0,
        measure_end=0.02,
        network_params=NetworkParams(link_rate_bps=1e9),
    )
    return stats.avg_fct() * 1e3


def main() -> None:
    xp = xpander(5, 8, 3)  # 48 switches
    ft = fattree(6)

    fluid = {
        "Xpander": [fluid_throughput(xp, f) for f in FAILURES],
        "Fat-tree": [fluid_throughput(ft.topology, f) for f in FAILURES],
    }
    print(
        format_series(
            "failed links",
            FAILURES,
            fluid,
            title="Fluid-model per-server throughput, Permute(0.5)",
        )
    )
    print()
    fct = {
        "Xpander HYB": [packet_fct_ms(xp, f) for f in FAILURES],
        "Fat-tree": [packet_fct_ms(ft.topology, f) for f in FAILURES],
    }
    print(
        format_series(
            "failed links",
            FAILURES,
            fct,
            title="Packet-level avg FCT (ms), 100 KB permutation flows",
        )
    )
    print(
        "\nExpected shape: the expander's throughput declines smoothly "
        "with failures,\nwhile the fat-tree loses structured capacity "
        "faster at high failure rates."
    )


if __name__ == "__main__":
    main()
