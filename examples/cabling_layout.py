#!/usr/bin/env python3
"""Cabling-friendliness of Xpander (the paper's Fig 3 argument).

Builds the paper's actual Fig 3 instance — an Xpander of 486 24-port
switches (18 meta-nodes x 27 switches, network degree 17, 3402 servers) —
and compares its cable-bundle structure against a Jellyfish of identical
equipment and a fat-tree, using a grid floor plan and the Jupiter-Rising
~40% bundled-fiber discount.

Run:  python examples/cabling_layout.py
"""

from repro.analysis import format_table
from repro.topologies import (
    fattree,
    fattree_cabling,
    flat_cabling,
    jellyfish,
    xpander,
    xpander_cabling,
)


def main() -> None:
    # The paper's Fig 3 configuration.
    xp = xpander(17, 27, 7)
    assert xp.num_switches == 486 and xp.num_servers == 3402
    jf = jellyfish(486, 17, 7, seed=1)
    ft = fattree(24)  # 3456 servers, for reference

    reports = [
        ("Xpander (Fig 3)", xpander_cabling(xp)),
        ("Jellyfish (same equipment)", flat_cabling(jf)),
        ("Fat-tree k=24", fattree_cabling(ft)),
    ]
    rows = []
    for label, r in reports:
        rows.append(
            [
                label,
                r.num_cables,
                r.num_bundles,
                round(r.cables_per_bundle, 1),
                round(r.total_length_m / 1000, 2),
                round(r.fiber_cost() / 1000, 2),
            ]
        )
    print(
        format_table(
            [
                "network",
                "cables",
                "bundles",
                "cables/bundle",
                "fiber (km)",
                "fiber cost ($k)",
            ],
            rows,
            title=(
                "Fig 3: cable aggregation. Xpander's 18 meta-nodes give "
                "C(18,2)=153 bundles of 27 cables; a random graph of the "
                "same gear needs thousands of single-cable runs."
            ),
        )
    )
    print(
        "\nTakeaway: deterministic structure (meta-nodes) keeps an "
        "expander deployable —\nthe cabling objection to random graphs "
        "does not apply to Xpander."
    )


if __name__ == "__main__":
    main()
