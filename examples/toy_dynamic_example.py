#!/usr/bin/env python3
"""The paper's §4.1 toy example: static vs un/restricted dynamic networks.

Setting: 54 switches with 12 ports each (6 servers + 6 network), but only
the servers on 9 racks are active.

* The **unrestricted** dynamic model trivially achieves full throughput.
* The **restricted** dynamic model (direct connections, no buffering)
  is no better than the best degree-6 static graph over the 9 active
  racks — upper-bounded at exactly 80% by the NSDI'14 Moore-bound
  argument.
* An equal-cost **Jellyfish** (9 network ports per switch, delta = 1.5)
  delivers full throughput to the same 9 racks *without knowing in
  advance which racks would be active*.

Run:  python examples/toy_dynamic_example.py
"""

from repro.analysis import format_table
from repro.throughput import max_concurrent_throughput
from repro.topologies import (
    DynamicNetworkModel,
    equal_cost_dynamic_ports,
    jellyfish,
    moore_bound_mean_distance,
)
from repro.traffic import all_to_all_tm


def main() -> None:
    num_tors, servers, dyn_ports, delta = 54, 6, 6, 1.5
    active = 9

    # Dynamic models.
    dyn = DynamicNetworkModel(num_tors, dyn_ports, servers)
    unrestricted = dyn.unrestricted_throughput()
    restricted = dyn.restricted_throughput(active / num_tors)
    print(
        f"Moore bound on mean distance over {active} racks at degree "
        f"{dyn_ports}: {moore_bound_mean_distance(active, dyn_ports):.3f}"
    )

    # Equal-cost static alternative (a): same switches, 9 network ports.
    static_ports = equal_cost_dynamic_ports(9, 1.0)  # 9 static = 6 dynamic @ delta=1.5
    jf_a = jellyfish(num_tors, 9, servers, seed=1, strict=True)
    tm = all_to_all_tm(jf_a.tors, servers, fraction=active / num_tors, seed=0)
    static_a = max_concurrent_throughput(jf_a, tm).per_server

    # Equal-cost static alternative (b): same 12 ports, 1.5x the switches.
    jf_b = jellyfish(81, 6, 4, seed=1, strict=True)
    tm_b = all_to_all_tm(jf_b.tors, 4, fraction=active / 81, seed=0)
    static_b = max_concurrent_throughput(jf_b, tm_b).per_server

    print(
        format_table(
            ["design", "per-server throughput"],
            [
                ["unrestricted dynamic (ideal)", round(unrestricted, 3)],
                ["restricted dynamic (upper bound)", round(restricted, 3)],
                ["Jellyfish, 9 net ports x 54 sw", round(static_a, 3)],
                ["Jellyfish, 6 net ports x 81 sw", round(static_b, 3)],
            ],
            title=(
                "9 active racks of 6 servers (paper 4.1); "
                f"equal cost at delta = {delta}"
            ),
        )
    )
    print(
        "\nExpected: restricted dynamic tops out at 0.8; both equal-cost\n"
        "Jellyfish configurations reach (near-)full throughput, obliviously."
    )


if __name__ == "__main__":
    main()
