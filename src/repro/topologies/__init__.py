"""Data center topology generators.

Static topologies: fat-trees (full and oversubscribed), Jellyfish (random
regular graphs), Xpander (deterministic expanders), SlimFly (MMS graphs),
LongHop (Cayley graphs over GF(2)^n).  Dynamic (reconfigurable) networks are
represented by the paper's unrestricted/restricted analytic models.
"""

from .base import Topology, TopologyError
from .cabling import (
    BUNDLING_DISCOUNT,
    CablingReport,
    FloorPlan,
    fattree_cabling,
    flat_cabling,
    xpander_cabling,
)
from .dynamic import (
    DynamicNetworkModel,
    duty_cycle,
    equal_cost_dynamic_ports,
    moore_bound_mean_distance,
    restricted_dynamic_throughput,
    unrestricted_dynamic_throughput,
)
from .failures import (
    DegradedTopology,
    degrade_topology,
    fail_links,
    fail_switches,
    largest_connected_component,
    random_link_failures,
    random_switch_failures,
)
from .fattree import FatTree, fattree, oversubscribed_fattree
from .jellyfish import (
    jellyfish,
    jellyfish_degree_sequence,
    random_regular_topology,
)
from .longhop import cayley_graph_gf2, longhop, select_generators, spectral_gap_gf2
from .properties import (
    TopologyProperties,
    algebraic_connectivity,
    analyze,
    bisection_bandwidth,
    distance_distribution,
    path_diversity,
    spectral_gap,
)
from .slimfly import is_valid_slimfly_q, slimfly, slimfly_network_degree
from .xpander import xpander, xpander_from_budget, xpander_num_switches

__all__ = [
    "Topology",
    "TopologyError",
    "FloorPlan",
    "CablingReport",
    "xpander_cabling",
    "fattree_cabling",
    "flat_cabling",
    "BUNDLING_DISCOUNT",
    "DegradedTopology",
    "degrade_topology",
    "fail_links",
    "fail_switches",
    "random_link_failures",
    "random_switch_failures",
    "largest_connected_component",
    "TopologyProperties",
    "analyze",
    "spectral_gap",
    "algebraic_connectivity",
    "bisection_bandwidth",
    "path_diversity",
    "distance_distribution",
    "FatTree",
    "fattree",
    "oversubscribed_fattree",
    "jellyfish",
    "jellyfish_degree_sequence",
    "random_regular_topology",
    "xpander",
    "xpander_from_budget",
    "xpander_num_switches",
    "slimfly",
    "slimfly_network_degree",
    "is_valid_slimfly_q",
    "longhop",
    "cayley_graph_gf2",
    "select_generators",
    "spectral_gap_gf2",
    "DynamicNetworkModel",
    "duty_cycle",
    "equal_cost_dynamic_ports",
    "moore_bound_mean_distance",
    "restricted_dynamic_throughput",
    "unrestricted_dynamic_throughput",
]
