"""k-ary fat-tree topologies (Al-Fares et al., SIGCOMM 2008).

A full fat-tree built from ``k``-port switches has:

* ``(k/2)^2`` core switches,
* ``k`` pods, each with ``k/2`` aggregation and ``k/2`` edge (ToR) switches,
* ``k/2`` servers per edge switch, for ``k^3/4`` servers total.

The network is rearrangeably non-blocking: full bandwidth between every pair
of servers.  The paper's baseline in every experiment is such a full
fat-tree; oversubscribed variants (fewer core switches, i.e. the network of
Fig. 1 and Observation 1) are produced by :func:`oversubscribed_fattree`.

Switch ids are dense integers; use the :class:`FatTree` wrapper to map ids
back to (layer, pod, index) coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from .base import Topology, TopologyError

__all__ = ["FatTree", "fattree", "oversubscribed_fattree"]

CORE = "core"
AGG = "agg"
EDGE = "edge"


@dataclass
class FatTree:
    """A fat-tree :class:`Topology` plus layer/pod coordinate metadata.

    Attributes
    ----------
    topology:
        The underlying switch graph with servers attached to edge switches.
    k:
        Switch port count (even).
    coordinates:
        Mapping of switch id to ``(layer, pod, index)``; core switches use
        pod ``-1`` and index ``(group, member)`` flattened to
        ``group * (k/2) + member``.
    """

    topology: Topology
    k: int
    coordinates: Dict[int, Tuple[str, int, int]]

    @property
    def pods(self) -> int:
        """Number of pods."""
        return self.k

    def switches_in_layer(self, layer: str) -> List[int]:
        """All switch ids in ``layer`` (one of 'core', 'agg', 'edge')."""
        return sorted(s for s, (lay, _, _) in self.coordinates.items() if lay == layer)

    def edge_switches_in_pod(self, pod: int) -> List[int]:
        """Edge (ToR) switch ids within ``pod``."""
        return sorted(
            s
            for s, (lay, p, _) in self.coordinates.items()
            if lay == EDGE and p == pod
        )

    def pod_of(self, switch: int) -> int:
        """Pod number of ``switch`` (-1 for core switches)."""
        return self.coordinates[switch][1]


def fattree(k: int, servers_per_edge: int | None = None) -> FatTree:
    """Build a full-bandwidth k-ary fat-tree.

    Parameters
    ----------
    k:
        Port count of every switch; must be even and >= 2.
    servers_per_edge:
        Servers attached to each edge switch.  Defaults to ``k/2`` (the
        standard full-bandwidth configuration).  Values above ``k/2``
        oversubscribe at the ToR.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree arity k must be even and >= 2, got {k}")
    half = k // 2
    if servers_per_edge is None:
        servers_per_edge = half
    if servers_per_edge < 0:
        raise TopologyError("servers_per_edge must be non-negative")

    g = nx.Graph()
    coordinates: Dict[int, Tuple[str, int, int]] = {}
    next_id = 0

    # Layer/pod node annotations let failure scenarios (pod wipeout,
    # aggregation attrition) work from a bare Topology, mirroring how
    # the xpander generator stamps meta_node.
    core_ids: List[List[int]] = []  # core_ids[group][member]
    for group in range(half):
        row = []
        for member in range(half):
            coordinates[next_id] = (CORE, -1, group * half + member)
            g.add_node(next_id, layer=CORE, pod=-1)
            row.append(next_id)
            next_id += 1
        core_ids.append(row)

    servers_per_switch: Dict[int, int] = {}
    for pod in range(k):
        agg_ids = []
        for a in range(half):
            coordinates[next_id] = (AGG, pod, a)
            g.add_node(next_id, layer=AGG, pod=pod)
            agg_ids.append(next_id)
            next_id += 1
        edge_ids = []
        for e in range(half):
            coordinates[next_id] = (EDGE, pod, e)
            g.add_node(next_id, layer=EDGE, pod=pod)
            edge_ids.append(next_id)
            servers_per_switch[next_id] = servers_per_edge
            next_id += 1
        # Wire pod internals: complete bipartite agg <-> edge.
        for agg in agg_ids:
            for edge in edge_ids:
                g.add_edge(agg, edge, capacity=1.0)
        # Wire agg switch a to core group a.
        for a, agg in enumerate(agg_ids):
            for core in core_ids[a]:
                g.add_edge(agg, core, capacity=1.0)

    topo = Topology(
        name=f"fat-tree(k={k})",
        graph=g,
        servers_per_switch=servers_per_switch,
    )
    if servers_per_edge <= half:
        topo.validate_port_budget(k)
    return FatTree(topology=topo, k=k, coordinates=coordinates)


def oversubscribed_fattree(
    k: int,
    core_fraction: float,
    servers_per_edge: int | None = None,
) -> FatTree:
    """Build a fat-tree with only a fraction of its core switches.

    This is the oversubscription of Fig. 1 / Observation 1: keeping an
    ``x`` fraction of the core layer caps pod-to-pod throughput at ``x`` per
    server even when only two pods (a ``2/k`` fraction of servers) are
    active.

    Core switches are removed round-robin across the ``k/2`` core groups so
    every aggregation switch loses uplinks as evenly as possible.

    Parameters
    ----------
    k:
        Switch arity of the underlying full fat-tree.
    core_fraction:
        Fraction of core switches to keep, in ``(0, 1]``.
    servers_per_edge:
        Servers per edge switch (default ``k/2``).
    """
    if not 0 < core_fraction <= 1:
        raise TopologyError(f"core_fraction must be in (0, 1], got {core_fraction}")
    ft = fattree(k, servers_per_edge=servers_per_edge)
    half = k // 2
    total_core = half * half
    keep = max(1, round(core_fraction * total_core))
    if keep == total_core:
        ft.topology.name = f"fat-tree(k={k})"
        return ft

    # Enumerate core switches as (member, group) so that removal order cycles
    # across groups: removing n switches takes ~n/(k/2) from each group.
    cores = ft.switches_in_layer(CORE)
    by_member_then_group = sorted(
        cores,
        key=lambda s: (ft.coordinates[s][2] % half, ft.coordinates[s][2] // half),
    )
    drop = by_member_then_group[keep:]
    ft.topology.graph.remove_nodes_from(drop)
    for s in drop:
        del ft.coordinates[s]
    ft.topology.name = f"fat-tree(k={k},core={core_fraction:.2f})"
    if not ft.topology.is_connected():
        raise TopologyError(
            "oversubscription disconnected the fat-tree; raise core_fraction"
        )
    return ft
