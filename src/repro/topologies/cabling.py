"""Cabling and physical layout analysis (paper §3, Fig 3).

The paper argues Xpander is *cabling-friendly*: its meta-node structure
lets all cables between a pair of meta-nodes be aggregated into one
bundle, and (citing Jupiter Rising) "such bundling can reduce fiber cost
(capex + opex) by nearly 40%".  This module makes that argument
quantitative:

* a floor-plan model (racks in rows of meta-nodes/pods, Manhattan cable
  runs over an overhead tray, as in Fig 3's right panel);
* per-topology cable enumeration: bundle counts, cable counts, and total
  fiber length for Xpander (meta-node bundles), fat-trees (edge-agg /
  agg-core bundles), and arbitrary flat topologies (rack-pair bundles);
* a bundled-fiber discount model for the cost comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .base import Topology, TopologyError
from .fattree import AGG, CORE, EDGE, FatTree

__all__ = [
    "FloorPlan",
    "CablingReport",
    "xpander_cabling",
    "fattree_cabling",
    "flat_cabling",
    "BUNDLING_DISCOUNT",
]

#: Jupiter-Rising-style capex+opex saving for fully bundled fiber runs.
BUNDLING_DISCOUNT = 0.4

#: Physical constants for the floor-plan model (meters).
RACK_PITCH = 0.8  # rack-to-rack spacing along a row
ROW_PITCH = 1.8  # aisle spacing between rows
SLACK = 4.0  # per-cable service loop + vertical runs


@dataclass
class FloorPlan:
    """Racks arranged on a grid: ``positions[group] = (row, col)`` slots.

    Groups are layout units — meta-nodes for Xpander, pods for a fat-tree,
    individual racks for arbitrary flat networks.  Cable length between
    groups is the Manhattan distance between their slots plus slack.
    """

    positions: Dict[int, Tuple[int, int]]

    @classmethod
    def grid(cls, num_groups: int, columns: Optional[int] = None) -> "FloorPlan":
        """Lay groups out in a near-square grid, row-major."""
        if num_groups < 1:
            raise TopologyError("need at least one group")
        if columns is None:
            columns = max(1, math.ceil(math.sqrt(num_groups)))
        positions = {
            g: (g // columns, g % columns) for g in range(num_groups)
        }
        return cls(positions)

    def distance_m(self, a: int, b: int) -> float:
        """Cable-run length between two groups in meters."""
        (r1, c1), (r2, c2) = self.positions[a], self.positions[b]
        return (
            abs(r1 - r2) * ROW_PITCH + abs(c1 - c2) * RACK_PITCH + SLACK
        )


@dataclass
class CablingReport:
    """Cable inventory of one topology under a floor plan."""

    name: str
    num_cables: int
    num_bundles: int
    total_length_m: float
    bundled_fraction: float

    @property
    def cables_per_bundle(self) -> float:
        """Mean bundle thickness."""
        if self.num_bundles == 0:
            return 0.0
        return self.num_cables / self.num_bundles

    def fiber_cost(self, dollars_per_m: float = 0.3) -> float:
        """Fiber cost with the bundling discount on bundled runs."""
        discounted = 1.0 - BUNDLING_DISCOUNT * self.bundled_fraction
        return self.total_length_m * dollars_per_m * discounted


def xpander_cabling(
    topology: Topology, plan: Optional[FloorPlan] = None
) -> CablingReport:
    """Cable inventory of an Xpander: one bundle per meta-node pair.

    Every inter-meta-node matching (``lift`` cables) shares a single
    bundle between the two meta-nodes' rows, as in Fig 3: all of a
    meta-node's cables leave through its cable aggregator.
    """
    metas = {
        v: topology.graph.nodes[v].get("meta_node")
        for v in topology.graph.nodes()
    }
    if any(m is None for m in metas.values()):
        raise TopologyError(
            "topology has no meta_node annotations; build it with xpander()"
        )
    groups = sorted(set(metas.values()))
    if plan is None:
        plan = FloorPlan.grid(len(groups))

    bundles: Dict[Tuple[int, int], int] = {}
    total_length = 0.0
    for u, v in topology.graph.edges():
        a, b = sorted((metas[u], metas[v]))
        bundles[(a, b)] = bundles.get((a, b), 0) + 1
        total_length += plan.distance_m(a, b)
    return CablingReport(
        name=topology.name,
        num_cables=topology.num_links,
        num_bundles=len(bundles),
        total_length_m=total_length,
        bundled_fraction=1.0,
    )


def fattree_cabling(
    ft: FatTree, plan: Optional[FloorPlan] = None
) -> CablingReport:
    """Cable inventory of a fat-tree.

    Intra-pod (edge-agg) cables stay within the pod's floor slot (slack
    only).  Agg-core cables bundle per (pod, core-group) pair, with the
    core layer occupying one extra slot.  Everything is bundleable, as in
    production Clos fabrics (Jupiter).
    """
    k = ft.k
    pods = ft.pods
    if plan is None:
        plan = FloorPlan.grid(pods + 1)  # last slot: core switches
    core_slot = pods

    bundles: Dict[Tuple[int, int, int], int] = {}
    total_length = 0.0
    half = k // 2
    for u, v in ft.topology.graph.edges():
        lay_u = ft.coordinates[u][0]
        lay_v = ft.coordinates[v][0]
        if {lay_u, lay_v} == {EDGE, AGG}:
            pod = ft.pod_of(u if lay_u == AGG else v)
            bundles[(0, pod, pod)] = bundles.get((0, pod, pod), 0) + 1
            total_length += SLACK
        else:  # agg-core
            agg = u if lay_u == AGG else v
            core = v if lay_v == CORE else u
            pod = ft.pod_of(agg)
            group = ft.coordinates[core][2] // half
            key = (1, pod, group)
            bundles[key] = bundles.get(key, 0) + 1
            total_length += plan.distance_m(pod, core_slot)
    return CablingReport(
        name=ft.topology.name,
        num_cables=ft.topology.num_links,
        num_bundles=len(bundles),
        total_length_m=total_length,
        bundled_fraction=1.0,
    )


def flat_cabling(
    topology: Topology, plan: Optional[FloorPlan] = None
) -> CablingReport:
    """Cable inventory of an arbitrary flat (ToR-to-ToR) topology.

    Without structural grouping (e.g. Jellyfish), each rack is its own
    layout group and each connected rack pair is a 'bundle' of however
    many parallel cables it has — for a random graph, almost all bundles
    have exactly one cable, which is the cabling-unfriendliness the
    Xpander paper contrasts against.
    """
    racks = topology.switches
    index = {r: i for i, r in enumerate(racks)}
    if plan is None:
        plan = FloorPlan.grid(len(racks))
    bundles: Dict[Tuple[int, int], int] = {}
    total_length = 0.0
    for u, v in topology.graph.edges():
        a, b = sorted((index[u], index[v]))
        bundles[(a, b)] = bundles.get((a, b), 0) + 1
        total_length += plan.distance_m(a, b)
    singleton = sum(1 for c in bundles.values() if c == 1)
    bundled_cables = topology.num_links - singleton
    return CablingReport(
        name=topology.name,
        num_cables=topology.num_links,
        num_bundles=len(bundles),
        total_length_m=total_length,
        bundled_fraction=(
            bundled_cables / topology.num_links if topology.num_links else 0.0
        ),
    )
