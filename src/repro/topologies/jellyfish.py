"""Jellyfish: random regular graph topologies (Singla et al., NSDI 2012).

Jellyfish wires every top-of-rack switch's network ports to other ToRs
uniformly at random, producing (an approximation of) a random regular graph.
Random regular graphs are near-optimal expanders with high probability, which
is the structural property behind Jellyfish's throughput.

Two constructions are offered:

* :func:`jellyfish` — the incremental construction of the Jellyfish paper:
  repeatedly join random pairs of switches with free ports; when stuck,
  break an existing link to free ports up.  Works for any (n, r) with
  ``n * r`` even and ``r < n``.
* networkx's configuration-model based ``random_regular_graph`` as a
  fallback for exact regularity (used when ``strict=True``).

Both are deterministic given ``seed``.
"""

from __future__ import annotations

import random
from typing import Dict

import networkx as nx

from .base import Topology, TopologyError

__all__ = [
    "jellyfish",
    "random_regular_topology",
    "jellyfish_degree_sequence",
]


def _incremental_random_graph(
    free: Dict[int, int], rng: random.Random
) -> nx.Graph:
    """Jellyfish's incremental random-graph construction.

    ``free`` maps each switch to its number of open network ports (the
    uniform-degree Jellyfish is the special case of all-equal values).
    Joins random switch pairs with free ports; when no joinable pair
    remains but free ports do, removes a random existing edge incident to
    neither endpoint and splices the free-port switch in.
    """
    g = nx.Graph()
    g.add_nodes_from(free)
    free = dict(free)

    def add_random_edges() -> None:
        """Join random free-port pairs until no joinable pair remains."""
        while True:
            open_nodes = [v for v, f in free.items() if f > 0]
            if len(open_nodes) < 2:
                return
            # Fast path: random sampling with bounded retries.
            joined = False
            for _ in range(64):
                u, v = rng.sample(open_nodes, 2)
                if not g.has_edge(u, v):
                    g.add_edge(u, v)
                    free[u] -= 1
                    free[v] -= 1
                    joined = True
                    break
            if joined:
                continue
            # Slow path: exhaustive scan for any joinable pair.
            pair = None
            for i, u in enumerate(open_nodes):
                for v in open_nodes[i + 1 :]:
                    if not g.has_edge(u, v):
                        pair = (u, v)
                        break
                if pair:
                    break
            if pair is None:
                return
            u, v = pair
            g.add_edge(u, v)
            free[u] -= 1
            free[v] -= 1

    while True:
        add_random_edges()
        # All remaining free ports are on switches already adjacent to every
        # other free-port switch.  Splice into a random existing edge.
        open_nodes = [v for v, f in free.items() if f >= 2]
        if not open_nodes:
            break
        w = rng.choice(open_nodes)
        candidates = [
            (u, v) for u, v in g.edges() if u != w and v != w and not (
                g.has_edge(u, w) and g.has_edge(v, w)
            )
        ]
        if not candidates:
            break  # pathological; accept slightly irregular graph
        u, v = rng.choice(candidates)
        g.remove_edge(u, v)
        # Attach w to whichever endpoints it is not yet adjacent to.
        for x in (u, v):
            if not g.has_edge(w, x) and free[w] > 0:
                g.add_edge(w, x)
                free[w] -= 1
            else:
                free[x] += 1
    return g


def random_regular_topology(
    n: int, r: int, seed: int = 0, strict: bool = False
) -> nx.Graph:
    """Random r-regular graph on n nodes, connected, seeded.

    With ``strict=True`` uses networkx's pairing-model generator (exactly
    regular); otherwise uses the Jellyfish incremental construction (regular
    except possibly a handful of ports in pathological cases).
    """
    if r >= n:
        raise TopologyError(f"degree r={r} must be < number of switches n={n}")
    if (n * r) % 2 != 0:
        raise TopologyError(f"n*r must be even, got n={n}, r={r}")
    rng = random.Random(seed)
    for attempt in range(50):
        if strict:
            g = nx.random_regular_graph(r, n, seed=rng.randrange(2**31))
        else:
            g = _incremental_random_graph({v: r for v in range(n)}, rng)
        if nx.is_connected(g):
            return g
    raise TopologyError(
        f"failed to build a connected random regular graph (n={n}, r={r})"
    )


def jellyfish_degree_sequence(
    network_ports: Dict[int, int],
    servers_per_switch: Dict[int, int],
    seed: int = 0,
) -> Topology:
    """Jellyfish with a non-uniform degree/server layout.

    The incremental random construction naturally generalizes to
    heterogeneous port counts (Jellyfish §3 notes it handles heterogeneous
    switches); this is needed for equal-cost comparisons where the server
    budget does not divide evenly across switches (e.g. the paper's Fig 6
    configurations), so some switches host one extra server and expose one
    fewer network port.

    Parameters
    ----------
    network_ports:
        Mapping of switch id to its number of network-facing ports.
    servers_per_switch:
        Mapping of switch id to its server count (same key set).
    """
    if set(network_ports) != set(servers_per_switch):
        raise TopologyError("network_ports and servers_per_switch keys differ")
    if sum(network_ports.values()) % 2 != 0:
        raise TopologyError("sum of network ports must be even")
    if any(r < 0 for r in network_ports.values()):
        raise TopologyError("negative network port count")
    rng = random.Random(seed)
    for attempt in range(50):
        g = _incremental_random_graph(network_ports, rng)
        if nx.is_connected(g):
            break
    else:
        raise TopologyError("failed to build a connected degree-sequence graph")
    nx.set_edge_attributes(g, 1.0, "capacity")
    return Topology(
        name=f"jellyfish-ds(n={len(network_ports)},seed={seed})",
        graph=g,
        servers_per_switch=dict(servers_per_switch),
    )


def jellyfish(
    num_switches: int,
    network_ports: int,
    servers_per_switch: int,
    seed: int = 0,
    strict: bool = False,
) -> Topology:
    """Build a Jellyfish topology.

    Parameters
    ----------
    num_switches:
        Number of ToR switches.
    network_ports:
        Switch-facing ports per switch (the random-regular-graph degree).
    servers_per_switch:
        Servers attached to every switch.
    seed:
        RNG seed; identical seeds give identical topologies.
    strict:
        Use networkx's exactly-regular generator instead of the incremental
        Jellyfish construction.
    """
    g = random_regular_topology(num_switches, network_ports, seed=seed, strict=strict)
    nx.set_edge_attributes(g, 1.0, "capacity")
    topo = Topology(
        name=f"jellyfish(n={num_switches},r={network_ports},seed={seed})",
        graph=g,
        servers_per_switch={v: servers_per_switch for v in g.nodes()},
    )
    topo.validate_port_budget(network_ports + servers_per_switch)
    return topo
