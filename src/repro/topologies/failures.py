"""Degraded topologies: the low-level surface behind failure scenarios.

The expander-topology literature the paper builds on (Jellyfish, Xpander)
evaluates resilience to random link and switch failures — expanders
degrade gracefully (no structural cut-points), fat-trees lose whole
subtrees.  This module owns the *mechanics* of degradation: a
:class:`DegradedTopology` is a :class:`Topology` copy with elements
removed that additionally records *which* links and switches failed and
the :class:`~repro.resilience.FailureScenario` that selected them, so
every downstream consumer (routing, path cache, harness records, obs)
can see that — and how — a failure happened.

Selection policy (random fractions, correlated pod/meta-node wipeouts,
bisection cuts) lives in :mod:`repro.resilience.scenario`; the idiomatic
entry point is ``topology.degrade(scenario)``.  The historical free
functions (``fail_links``, ``fail_switches``, ``random_link_failures``,
``random_switch_failures``) remain as :class:`DeprecationWarning` shims
that delegate to the scenario machinery and are pinned bit-for-bit
against it by ``tests/resilience/test_shims.py``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

import networkx as nx

from .base import Topology, TopologyError

__all__ = [
    "DegradedTopology",
    "degrade_topology",
    "fail_links",
    "fail_switches",
    "random_link_failures",
    "random_switch_failures",
    "largest_connected_component",
]


@dataclass
class DegradedTopology(Topology):
    """A :class:`Topology` copy with failed elements removed — and recorded.

    Attributes
    ----------
    failed_links:
        The switch-to-switch cables removed, as sorted ``(u, v)`` pairs
        with ``u < v``; for switch failures this includes every incident
        cable that died with its switch.
    failed_switches:
        The switches (and their servers) removed, sorted.
    scenario:
        The :class:`~repro.resilience.FailureScenario` that selected the
        failures (``None`` when elements were named explicitly through
        the deprecated free functions).
    base_switches / base_links / base_servers:
        Size of the *original* (pre-degradation) topology, preserved
        across chained degradations and LCC restriction so retention
        ratios stay anchored to the healthy network.
    """

    failed_links: Tuple[Tuple[int, int], ...] = ()
    failed_switches: Tuple[int, ...] = ()
    scenario: Optional[Any] = None
    base_switches: int = 0
    base_links: int = 0
    base_servers: int = 0

    # ------------------------------------------------------------------
    # Retention ratios (the obs `connectivity` gauge family)
    # ------------------------------------------------------------------
    @property
    def links_retained(self) -> float:
        """Fraction of the original cables still present."""
        return self.num_links / self.base_links if self.base_links else 1.0

    @property
    def switches_retained(self) -> float:
        """Fraction of the original switches still present."""
        return (
            self.num_switches / self.base_switches if self.base_switches else 1.0
        )

    @property
    def servers_retained(self) -> float:
        """Fraction of the original servers still attached."""
        return self.num_servers / self.base_servers if self.base_servers else 1.0

    def connectivity(self) -> float:
        """Largest-component switch count over the original switch count.

        1.0 means every surviving switch sits in one component and no
        switch failed; the value drops both when switches die and when
        the surviving graph fragments.
        """
        if not self.base_switches:
            return 1.0
        giant = max(
            (len(c) for c in nx.connected_components(self.graph)), default=0
        )
        return giant / self.base_switches

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DegradedTopology({self.name!r}, switches={self.num_switches}, "
            f"links={self.num_links}, servers={self.num_servers}, "
            f"failed_links={len(self.failed_links)}, "
            f"failed_switches={len(self.failed_switches)})"
        )


def _copy_graph(topology: Topology) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(topology.graph.nodes(data=True))
    g.add_edges_from(topology.graph.edges(data=True))
    return g


def _base_counts(topology: Topology) -> Tuple[int, int, int]:
    """Original-network sizes, carried through chained degradations."""
    if isinstance(topology, DegradedTopology):
        return (
            topology.base_switches,
            topology.base_links,
            topology.base_servers,
        )
    return topology.num_switches, topology.num_links, topology.num_servers


def degrade_topology(
    topology: Topology,
    links: Sequence[Tuple[int, int]] = (),
    switches: Sequence[int] = (),
    scenario: Optional[Any] = None,
) -> DegradedTopology:
    """Remove the given cables and switches; record what was lost.

    The workhorse behind :meth:`FailureScenario.apply` and the deprecated
    ``fail_*`` shims.  Exactly mirrors their historical semantics: a
    missing link or switch raises :class:`TopologyError` (failing the
    same element twice is a selection bug, not a degraded network), as
    does removing every switch.  The name suffix — ``-swfail(N)`` when
    switches fail, else ``-linkfail(N)`` — is part of the bit-for-bit
    shim-equivalence contract.
    """
    base_sw, base_ln, base_srv = _base_counts(topology)
    suffix = (
        f"-swfail({len(switches)})" if switches else f"-linkfail({len(links)})"
    )
    g = _copy_graph(topology)
    servers = dict(topology.servers_per_switch)

    dead_links = set(
        tuple(topology.failed_links)
        if isinstance(topology, DegradedTopology)
        else ()
    )
    for u, v in links:
        if not g.has_edge(u, v):
            raise TopologyError(f"link {u}-{v} not present")
        g.remove_edge(u, v)
        dead_links.add((u, v) if u <= v else (v, u))
    for s in switches:
        if s not in g:
            raise TopologyError(f"switch {s} not present")
        for nbr in g.neighbors(s):
            dead_links.add((s, nbr) if s <= nbr else (nbr, s))
        g.remove_node(s)
        servers.pop(s, None)
    if g.number_of_nodes() == 0:
        raise TopologyError("all switches failed")

    dead_switches = set(
        tuple(topology.failed_switches)
        if isinstance(topology, DegradedTopology)
        else ()
    )
    dead_switches.update(switches)

    return DegradedTopology(
        name=topology.name + suffix,
        graph=g,
        servers_per_switch=servers,
        failed_links=tuple(sorted(dead_links)),
        failed_switches=tuple(sorted(dead_switches)),
        scenario=scenario,
        base_switches=base_sw,
        base_links=base_ln,
        base_servers=base_srv,
    )


def largest_connected_component(topology: Topology) -> Topology:
    """Restrict a (possibly disconnected) degraded topology to its largest
    component, dropping stranded switches and their servers.

    Simulations and the LP require a connected graph; after heavy failures
    this models the operational network (stranded racks are simply down).
    Degradation provenance (failed elements, scenario, base sizes) is
    preserved when the input is a :class:`DegradedTopology`.
    """
    if topology.is_connected():
        return topology
    giant = max(nx.connected_components(topology.graph), key=len)
    g = _copy_graph(topology)
    g.remove_nodes_from(set(g.nodes()) - giant)
    servers = {
        s: n for s, n in topology.servers_per_switch.items() if s in giant
    }
    if isinstance(topology, DegradedTopology):
        return DegradedTopology(
            name=topology.name + "-lcc",
            graph=g,
            servers_per_switch=servers,
            failed_links=topology.failed_links,
            failed_switches=topology.failed_switches,
            scenario=topology.scenario,
            base_switches=topology.base_switches,
            base_links=topology.base_links,
            base_servers=topology.base_servers,
        )
    return Topology(
        name=topology.name + "-lcc",
        graph=g,
        servers_per_switch=servers,
    )


# ----------------------------------------------------------------------
# Deprecated free functions (shims over the scenario machinery)
# ----------------------------------------------------------------------
def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )


def fail_links(
    topology: Topology, links: Sequence[Tuple[int, int]]
) -> Topology:
    """Deprecated: a copy of ``topology`` with the given cables removed.

    Use ``topology.degrade(FailureScenario(mode="links", links=...))``.
    """
    _deprecated(
        "fail_links", 'Topology.degrade(FailureScenario(mode="links", ...))'
    )
    return degrade_topology(topology, links=links)


def fail_switches(topology: Topology, switches: Sequence[int]) -> Topology:
    """Deprecated: a copy of ``topology`` with the given switches (and
    their servers) removed.

    Use ``topology.degrade(FailureScenario(mode="switches", switches=...))``.
    """
    _deprecated(
        "fail_switches",
        'Topology.degrade(FailureScenario(mode="switches", ...))',
    )
    return degrade_topology(topology, switches=switches)


def random_link_failures(
    topology: Topology, fraction: float, seed: int = 0
) -> Topology:
    """Deprecated: fail a uniform-random ``fraction`` of the cables.

    Use ``topology.degrade(f"links:fraction={fraction},seed={seed}")``.
    """
    _deprecated("random_link_failures", 'Topology.degrade("links:...")')
    from ..resilience import FailureScenario

    return FailureScenario(mode="links", fraction=fraction, seed=seed).apply(
        topology
    )


def random_switch_failures(
    topology: Topology, fraction: float, seed: int = 0
) -> Topology:
    """Deprecated: fail a uniform-random ``fraction`` of the switches.

    Use ``topology.degrade(f"switches:fraction={fraction},seed={seed}")``.
    """
    _deprecated("random_switch_failures", 'Topology.degrade("switches:...")')
    from ..resilience import FailureScenario

    return FailureScenario(
        mode="switches", fraction=fraction, seed=seed
    ).apply(topology)
