"""Failure injection: degraded topologies for resilience analysis.

The expander-topology literature the paper builds on (Jellyfish, Xpander)
evaluates resilience to random link and switch failures — expanders
degrade gracefully (no structural cut-points), fat-trees lose whole
subtrees.  This module produces degraded copies of a topology so the
throughput engine and the simulators can measure performance under
failures; the resilience ablation bench uses it.
"""

from __future__ import annotations

import copy
import random
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from .base import Topology, TopologyError

__all__ = [
    "fail_links",
    "fail_switches",
    "random_link_failures",
    "random_switch_failures",
    "largest_connected_component",
]


def _copy_topology(topology: Topology, name_suffix: str) -> Topology:
    g = nx.Graph()
    g.add_nodes_from(topology.graph.nodes(data=True))
    g.add_edges_from(topology.graph.edges(data=True))
    return Topology(
        name=topology.name + name_suffix,
        graph=g,
        servers_per_switch=dict(topology.servers_per_switch),
    )


def fail_links(
    topology: Topology, links: Sequence[Tuple[int, int]]
) -> Topology:
    """A copy of ``topology`` with the given cables removed."""
    out = _copy_topology(topology, f"-linkfail({len(links)})")
    for u, v in links:
        if not out.graph.has_edge(u, v):
            raise TopologyError(f"link {u}-{v} not present")
        out.graph.remove_edge(u, v)
    return out


def fail_switches(topology: Topology, switches: Sequence[int]) -> Topology:
    """A copy of ``topology`` with the given switches (and their servers)
    removed."""
    out = _copy_topology(topology, f"-swfail({len(switches)})")
    for s in switches:
        if s not in out.graph:
            raise TopologyError(f"switch {s} not present")
        out.graph.remove_node(s)
        out.servers_per_switch.pop(s, None)
    if out.graph.number_of_nodes() == 0:
        raise TopologyError("all switches failed")
    return out


def random_link_failures(
    topology: Topology, fraction: float, seed: int = 0
) -> Topology:
    """Fail a uniform-random ``fraction`` of the cables."""
    if not 0 <= fraction < 1:
        raise TopologyError(f"failure fraction must be in [0, 1), got {fraction}")
    rng = random.Random(seed)
    edges = sorted(tuple(sorted(e)) for e in topology.graph.edges())
    count = round(fraction * len(edges))
    return fail_links(topology, rng.sample(edges, count))


def random_switch_failures(
    topology: Topology, fraction: float, seed: int = 0
) -> Topology:
    """Fail a uniform-random ``fraction`` of the switches."""
    if not 0 <= fraction < 1:
        raise TopologyError(f"failure fraction must be in [0, 1), got {fraction}")
    rng = random.Random(seed)
    count = round(fraction * topology.num_switches)
    return fail_switches(topology, rng.sample(topology.switches, count))


def largest_connected_component(topology: Topology) -> Topology:
    """Restrict a (possibly disconnected) degraded topology to its largest
    component, dropping stranded switches and their servers.

    Simulations and the LP require a connected graph; after heavy failures
    this models the operational network (stranded racks are simply down).
    """
    if topology.is_connected():
        return topology
    giant = max(nx.connected_components(topology.graph), key=len)
    out = _copy_topology(topology, "-lcc")
    out.graph.remove_nodes_from(set(out.graph.nodes()) - giant)
    out.servers_per_switch = {
        s: n for s, n in out.servers_per_switch.items() if s in giant
    }
    return out
