"""Graph-theoretic properties of topologies (paper §3 and footnote 1).

The paper's §3 notes "sizable differences in performance even across flat
topologies" and attributes Jellyfish/Xpander's strength to their being
near-optimal expanders; footnote 1 recalls that bisection bandwidth can
be a logarithmic factor away from throughput and that the gap varies per
topology — so bisection is *not* a sound flexibility metric.  This module
computes the structural quantities behind those statements:

* spectral gap / algebraic connectivity (expansion quality),
* bisection bandwidth (spectral split refined by Kernighan–Lin, reported
  as an upper bound on the sparsest balanced cut found),
* path-diversity and distance statistics,
* a one-call summary used by the properties benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from .base import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..perf import PathCache

__all__ = [
    "spectral_gap",
    "algebraic_connectivity",
    "bisection_bandwidth",
    "path_diversity",
    "distance_distribution",
    "TopologyProperties",
    "analyze",
]


def spectral_gap(topology: Topology) -> float:
    """d_avg - lambda_2 of the adjacency matrix (expansion quality).

    For regular graphs this is the standard spectral gap; for mildly
    irregular graphs the mean degree replaces d.  Larger is better; a
    Ramanujan-quality d-regular expander achieves ~ d - 2 sqrt(d - 1).
    """
    g = topology.graph
    a = nx.to_numpy_array(g, nodelist=topology.switches)
    eigenvalues = np.sort(np.linalg.eigvalsh(a))[::-1]
    mean_degree = 2.0 * g.number_of_edges() / g.number_of_nodes()
    second = max(abs(eigenvalues[1]), abs(eigenvalues[-1]))
    return float(mean_degree - second)


def algebraic_connectivity(topology: Topology) -> float:
    """Second-smallest Laplacian eigenvalue (Fiedler value)."""
    lap = nx.laplacian_matrix(
        topology.graph, nodelist=topology.switches
    ).toarray()
    eigenvalues = np.sort(np.linalg.eigvalsh(lap))
    return float(eigenvalues[1])


def _cut_capacity(topology: Topology, side: Set[int]) -> float:
    return sum(
        data["capacity"]
        for u, v, data in topology.graph.edges(data=True)
        if (u in side) != (v in side)
    )


def _kernighan_lin_refine(
    topology: Topology, side: Set[int], passes: int = 4
) -> Set[int]:
    """Greedy balanced-swap refinement of a bisection."""
    side = set(side)
    other = set(topology.switches) - side
    g = topology.graph

    def gain(v: int, own: Set[int]) -> float:
        external = internal = 0.0
        for w in g.neighbors(v):
            cap = g.edges[v, w]["capacity"]
            if w in own:
                internal += cap
            else:
                external += cap
        return external - internal

    for _ in range(passes):
        best_pair: Optional[Tuple[int, int]] = None
        best_gain = 1e-12
        for a in list(side):
            ga = gain(a, side)
            if ga <= -best_gain:
                continue
            for b in list(other):
                gb = gain(b, other)
                cross = (
                    g.edges[a, b]["capacity"] if g.has_edge(a, b) else 0.0
                )
                total = ga + gb - 2 * cross
                if total > best_gain:
                    best_gain = total
                    best_pair = (a, b)
        if best_pair is None:
            break
        a, b = best_pair
        side.remove(a)
        side.add(b)
        other.remove(b)
        other.add(a)
    return side


def bisection_bandwidth(topology: Topology, refine_passes: int = 4) -> float:
    """Upper bound on the bisection bandwidth (balanced min cut found).

    Splits the switches by the Fiedler vector's median and refines with
    Kernighan–Lin swaps.  Exact minimum bisection is NP-hard; this is the
    standard heuristic and is exact on the structured cases the tests pin
    down (e.g. a ring).
    """
    nodes = topology.switches
    if len(nodes) < 2:
        return 0.0
    lap = nx.laplacian_matrix(topology.graph, nodelist=nodes).toarray()
    eigenvalues, eigenvectors = np.linalg.eigh(lap)
    fiedler = eigenvectors[:, 1]
    order = np.argsort(fiedler)
    half = len(nodes) // 2
    side = {nodes[i] for i in order[:half]}
    side = _kernighan_lin_refine(topology, side, passes=refine_passes)
    return _cut_capacity(topology, side)


def path_diversity(
    topology: Topology, samples: int = 50, seed: int = 0
) -> float:
    """Mean number of distinct shortest paths over sampled switch pairs."""
    import random

    rng = random.Random(seed)
    nodes = topology.switches
    total = 0
    count = 0
    for _ in range(samples):
        a, b = rng.sample(nodes, 2)
        paths = 0
        for _ in nx.all_shortest_paths(topology.graph, a, b):
            paths += 1
            if paths >= 64:
                break
        total += paths
        count += 1
    return total / count if count else 0.0


def distance_distribution(
    topology: Topology, path_cache: Optional["PathCache"] = None
) -> Dict[int, float]:
    """Fraction of ordered switch pairs at each hop distance."""
    from ..perf import shared_path_cache

    cache = path_cache or shared_path_cache(topology.graph)
    return cache.hop_distance_distribution()


@dataclass
class TopologyProperties:
    """Structural summary of one topology."""

    name: str
    switches: int
    links: int
    servers: int
    diameter: int
    avg_path_length: float
    spectral_gap: float
    algebraic_connectivity: float
    bisection_bandwidth: float
    bisection_per_server: float
    path_diversity: float

    def as_row(self) -> List[object]:
        """Row for the properties table."""
        return [
            self.name,
            self.switches,
            self.servers,
            self.diameter,
            round(self.avg_path_length, 3),
            round(self.spectral_gap, 3),
            round(self.bisection_bandwidth, 1),
            round(self.bisection_per_server, 3),
            round(self.path_diversity, 2),
        ]


def analyze(
    topology: Topology,
    seed: int = 0,
    path_cache: Optional["PathCache"] = None,
) -> TopologyProperties:
    """Compute the full structural summary of a topology.

    Distance statistics come from the shared :class:`~repro.perf.PathCache`
    (one all-pairs BFS per topology, reused across metrics and callers).
    """
    from ..perf import shared_path_cache

    cache = path_cache or shared_path_cache(topology.graph)
    bisection = bisection_bandwidth(topology)
    servers = topology.num_servers
    return TopologyProperties(
        name=topology.name,
        switches=topology.num_switches,
        links=topology.num_links,
        servers=servers,
        diameter=cache.diameter(),
        avg_path_length=cache.average_path_length(),
        spectral_gap=spectral_gap(topology),
        algebraic_connectivity=algebraic_connectivity(topology),
        bisection_bandwidth=bisection,
        bisection_per_server=bisection / servers if servers else 0.0,
        path_diversity=path_diversity(topology, seed=seed),
    )
