"""SlimFly: MMS-graph topologies (Besta & Hoefler, SC 2014).

SlimFly arranges ``2 q^2`` routers as a McKay–Miller–Širáň (MMS) graph over
the finite field GF(q), achieving diameter 2 with network degree
``(3q - δ)/2`` where ``q = 4w + δ``.  The paper's Fig. 5(a) uses the
``q = 17`` instance: 578 ToRs with 25 network ports each.

This module implements the ``δ = +1`` family (``q ≡ 1 (mod 4)``, q prime),
which covers every configuration used in the paper and in this repository's
benchmarks (q = 5, 13, 17, 29, ...).  For these q, -1 is a quadratic
residue, so the quadratic residues X and non-residues X' are both closed
under negation and the construction below yields a well-defined undirected
graph:

* vertices ``(0, x, y)`` and ``(1, m, c)`` with ``x, y, m, c ∈ GF(q)``;
* ``(0, x, y) ~ (0, x, y')``  iff ``y - y' ∈ X`` (quadratic residues);
* ``(1, m, c) ~ (1, m, c')``  iff ``c - c' ∈ X'`` (non-residues);
* ``(0, x, y) ~ (1, m, c)``   iff ``y = m x + c``.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx

from .base import Topology, TopologyError

__all__ = ["slimfly", "slimfly_network_degree", "is_valid_slimfly_q"]


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    f = 2
    while f * f <= n:
        if n % f == 0:
            return False
        f += 1
    return True


def is_valid_slimfly_q(q: int) -> bool:
    """Whether q is a prime with q ≡ 1 (mod 4) (the supported MMS family)."""
    return _is_prime(q) and q % 4 == 1


def slimfly_network_degree(q: int) -> int:
    """Network degree of the δ=+1 MMS graph: (3q - 1) / 2."""
    return (3 * q - 1) // 2


def _primitive_root(q: int) -> int:
    """Smallest primitive root modulo prime q."""
    if q == 2:
        return 1
    factors = []
    n = q - 1
    f = 2
    while f * f <= n:
        if n % f == 0:
            factors.append(f)
            while n % f == 0:
                n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for g in range(2, q):
        if all(pow(g, (q - 1) // p, q) != 1 for p in factors):
            return g
    raise TopologyError(f"no primitive root found modulo {q}")  # pragma: no cover


def _generator_sets(q: int) -> Tuple[set, set]:
    """Quadratic residues X and non-residues X' of GF(q)*, via a primitive root."""
    xi = _primitive_root(q)
    powers = [pow(xi, e, q) for e in range(q - 1)]
    residues = set(powers[0::2])
    non_residues = set(powers[1::2])
    return residues, non_residues


def slimfly(q: int, servers_per_switch: int) -> Topology:
    """Build a SlimFly (MMS) topology with ``2 q^2`` switches.

    Parameters
    ----------
    q:
        Prime with ``q ≡ 1 (mod 4)``.  Network degree is ``(3q - 1)/2``.
    servers_per_switch:
        Servers attached to every switch (the paper's q=17 instance uses 24).
    """
    if not is_valid_slimfly_q(q):
        raise TopologyError(
            f"q={q} unsupported: need a prime q ≡ 1 (mod 4) (e.g. 5, 13, 17, 29)"
        )
    residues, non_residues = _generator_sets(q)

    def vid(group: int, a: int, b: int) -> int:
        return group * q * q + a * q + b

    g = nx.Graph()
    g.add_nodes_from(range(2 * q * q))

    # Intra-group edges.
    for x in range(q):
        for y in range(q):
            for yp in range(y + 1, q):
                if (y - yp) % q in residues:
                    g.add_edge(vid(0, x, y), vid(0, x, yp), capacity=1.0)
    for m in range(q):
        for c in range(q):
            for cp in range(c + 1, q):
                if (c - cp) % q in non_residues:
                    g.add_edge(vid(1, m, c), vid(1, m, cp), capacity=1.0)

    # Cross-group edges: (0, x, y) ~ (1, m, c) iff y = m*x + c (mod q).
    for x in range(q):
        for m in range(q):
            for c in range(q):
                y = (m * x + c) % q
                g.add_edge(vid(0, x, y), vid(1, m, c), capacity=1.0)

    expected_degree = slimfly_network_degree(q)
    degrees = {d for _, d in g.degree()}
    if degrees != {expected_degree}:
        raise TopologyError(
            f"MMS construction for q={q} produced degrees {sorted(degrees)}, "
            f"expected uniform {expected_degree}"
        )

    topo = Topology(
        name=f"slimfly(q={q})",
        graph=g,
        servers_per_switch={v: servers_per_switch for v in g.nodes()},
    )
    return topo
