"""Xpander: deterministic expander topologies (Valadarsky et al., CoNEXT 2016).

An Xpander with network degree ``d`` and lift size ``l`` consists of
``d + 1`` *meta-nodes*, each containing ``l`` switches.  Every pair of
meta-nodes is connected by a perfect matching of ``l`` cables, and no two
switches within a meta-node are connected.  Hence every switch has exactly
one link into each other meta-node (network degree ``d``), and the graph is
an ``l``-lift of the complete graph ``K_{d+1}`` — which preserves
``K_{d+1}``'s excellent spectral expansion when the matchings are chosen
well.

Two matching styles are provided:

* ``"shift"`` — deterministic: the matching between meta-nodes ``a < b``
  connects switch ``i`` of ``a`` to switch ``(i + shift(a, b)) mod l`` of
  ``b``, with distinct shifts per meta-node pair.  Fully reproducible with
  no RNG, and the style used for the cabling-friendly layout of the paper's
  Fig. 3 (meta-nodes map to rows of racks, matchings to cable bundles).
* ``"random"`` — seeded random permutations per meta-node pair, matching
  the random-lift analysis of the Xpander paper.

The paper's §6 uses an Xpander at 2/3 the cost of a fat-tree; use
:func:`xpander_from_budget` to size one from a switch budget.
"""

from __future__ import annotations

import random

import networkx as nx

from .base import Topology, TopologyError

__all__ = ["xpander", "xpander_num_switches", "xpander_from_budget"]


def xpander_num_switches(network_degree: int, lift: int) -> int:
    """Switch count of an Xpander with the given degree and lift size."""
    return (network_degree + 1) * lift


def _matching_shift(a: int, b: int, lift: int) -> int:
    """Deterministic shift for the matching between meta-nodes a < b.

    Distinct meta-node pairs get well-spread shifts; pair (a, b) uses
    ``(a * b + a + b) mod lift`` which avoids the degenerate all-zero
    assignment (identity matchings everywhere would create ``l`` disjoint
    copies of ``K_{d+1}``).
    """
    return (a * b + a + b) % lift


def xpander(
    network_degree: int,
    lift: int,
    servers_per_switch: int,
    matching: str = "shift",
    seed: int = 0,
) -> Topology:
    """Build an Xpander topology.

    Parameters
    ----------
    network_degree:
        Switch-facing ports per switch; the Xpander has ``network_degree+1``
        meta-nodes.
    lift:
        Switches per meta-node (the lift size), >= 1.
    servers_per_switch:
        Servers attached to every switch.
    matching:
        ``"shift"`` (deterministic) or ``"random"`` (seeded permutations).
    seed:
        RNG seed, used only for ``matching="random"``.
    """
    if network_degree < 1:
        raise TopologyError("network_degree must be >= 1")
    if lift < 1:
        raise TopologyError("lift must be >= 1")
    if matching not in ("shift", "random"):
        raise TopologyError(f"unknown matching style {matching!r}")

    d = network_degree
    meta_nodes = d + 1

    def build(style: str, rng_seed: int) -> nx.Graph:
        rng = random.Random(rng_seed)
        g = nx.Graph()
        g.add_nodes_from(range(meta_nodes * lift))
        for a in range(meta_nodes):
            for b in range(a + 1, meta_nodes):
                if style == "shift":
                    shift = _matching_shift(a, b, lift)
                    perm = [(i + shift) % lift for i in range(lift)]
                else:
                    perm = list(range(lift))
                    rng.shuffle(perm)
                for i, j in enumerate(perm):
                    g.add_edge(a * lift + i, b * lift + j, capacity=1.0)
        return g

    # Tiny lifts can produce disconnected lifts for an unlucky matching
    # assignment; retry with re-seeded random matchings, which connect
    # with overwhelming probability.
    g = build(matching, seed)
    attempts = 0
    while not nx.is_connected(g) and attempts < 32:
        attempts += 1
        g = build("random", seed + attempts)
    if not nx.is_connected(g):
        raise TopologyError("random-lift Xpander came out disconnected; change seed")

    topo = Topology(
        name=f"xpander(d={d},lift={lift},{matching})",
        graph=g,
        servers_per_switch={v: servers_per_switch for v in g.nodes()},
    )
    topo.validate_port_budget(d + servers_per_switch)
    # Record meta-node membership for layout/analysis consumers.
    for v in g.nodes():
        g.nodes[v]["meta_node"] = v // lift
    return topo


def xpander_from_budget(
    num_switches: int,
    ports_per_switch: int,
    servers_total: int,
    matching: str = "shift",
    seed: int = 0,
) -> Topology:
    """Size an Xpander from a switch budget and a server requirement.

    Chooses the server/network port split so that ``servers_total`` servers
    fit on ``num_switches`` switches of ``ports_per_switch`` ports, spending
    every remaining port on the network, then picks the largest
    ``(degree + 1) * lift`` switch count not exceeding the budget.

    Returns the built topology; its switch count may be slightly below
    ``num_switches`` when the budget is not expressible as
    ``(d + 1) * lift``.
    """
    if num_switches < 2:
        raise TopologyError("need at least 2 switches")
    servers_per_switch = -(-servers_total // num_switches)  # ceil
    network_degree = ports_per_switch - servers_per_switch
    if network_degree < 1:
        raise TopologyError(
            f"{servers_total} servers on {num_switches} x "
            f"{ports_per_switch}-port switches leave no network ports"
        )
    meta_nodes = network_degree + 1
    lift = num_switches // meta_nodes
    if lift < 1:
        raise TopologyError(
            f"budget of {num_switches} switches cannot host "
            f"{meta_nodes} meta-nodes"
        )
    # Flooring the lift can undershoot the server requirement; round up to
    # the next full lift in that case (the paper does the same: its
    # 2/3-cost budget of 213 switches becomes 216 = 12 x 18).
    if lift * meta_nodes * servers_per_switch < servers_total:
        lift += 1
    return xpander(
        network_degree, lift, servers_per_switch, matching=matching, seed=seed
    )
