"""Core topology abstraction shared by every network in the library.

A :class:`Topology` is a switch-level graph: vertices are switches, edges are
bidirectional switch-to-switch cables.  Servers are not graph vertices;
instead each switch records how many servers hang off it (``servers_at``),
which matches how the paper reasons about networks (top-of-rack switches with
server ports and network ports).  The packet simulator expands servers into
real simulated hosts when it builds a network from a topology.

All link capacities are expressed as multiples of the server line rate, so a
throughput of ``1.0`` per server means line-rate connectivity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = [
    "Topology",
    "TopologyError",
]


class TopologyError(ValueError):
    """Raised when a topology is misconfigured or structurally invalid."""


@dataclass
class Topology:
    """A statically-wired switch-level network.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"fat-tree(k=8)"``.
    graph:
        Undirected multigraph-free :class:`networkx.Graph` of switches.  Edge
        attribute ``capacity`` (default 1.0) is the link capacity in units of
        the server line rate.
    servers_per_switch:
        Mapping from switch id to the number of servers attached there.
        Switches absent from the mapping host zero servers (e.g. fat-tree
        aggregation and core switches).
    """

    name: str
    graph: nx.Graph
    servers_per_switch: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.graph.number_of_nodes() == 0:
            raise TopologyError("topology must contain at least one switch")
        for node, count in self.servers_per_switch.items():
            if node not in self.graph:
                raise TopologyError(f"server host switch {node!r} not in graph")
            if count < 0:
                raise TopologyError(f"negative server count at switch {node!r}")
        for u, v, data in self.graph.edges(data=True):
            data.setdefault("capacity", 1.0)
            if data["capacity"] <= 0:
                raise TopologyError(f"non-positive capacity on link {u}-{v}")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_switches(self) -> int:
        """Number of switches in the network."""
        return self.graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        """Number of bidirectional switch-to-switch cables."""
        return self.graph.number_of_edges()

    @property
    def num_servers(self) -> int:
        """Total number of servers across all switches."""
        return sum(self.servers_per_switch.values())

    @property
    def switches(self) -> List[int]:
        """All switch ids, sorted for determinism."""
        return sorted(self.graph.nodes())

    @property
    def tors(self) -> List[int]:
        """Switches that host at least one server (top-of-rack switches)."""
        return sorted(s for s, n in self.servers_per_switch.items() if n > 0)

    def servers_at(self, switch: int) -> int:
        """Number of servers attached to ``switch`` (0 if none)."""
        return self.servers_per_switch.get(switch, 0)

    def network_degree(self, switch: int) -> int:
        """Number of network (switch-facing) ports used at ``switch``."""
        return self.graph.degree(switch)

    def total_ports(self) -> int:
        """Total switch ports in use: two per cable plus one per server."""
        return 2 * self.num_links + self.num_servers

    def capacity(self, u: int, v: int) -> float:
        """Capacity of the link between switches ``u`` and ``v``."""
        return self.graph.edges[u, v]["capacity"]

    # ------------------------------------------------------------------
    # Structural checks
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether every switch can reach every other switch."""
        return nx.is_connected(self.graph)

    def validate_port_budget(self, ports_per_switch: int) -> None:
        """Check that no switch uses more ports than physically available.

        Raises :class:`TopologyError` listing the first offending switch.
        """
        for s in self.graph.nodes():
            used = self.graph.degree(s) + self.servers_at(s)
            if used > ports_per_switch:
                raise TopologyError(
                    f"switch {s} uses {used} ports "
                    f"(degree {self.graph.degree(s)} + "
                    f"{self.servers_at(s)} servers) "
                    f"but only {ports_per_switch} are available"
                )

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def shortest_path_lengths(
        self, sources: Optional[Iterable[int]] = None
    ) -> Dict[int, Dict[int, int]]:
        """Hop-count distances from each source switch to all switches."""
        if sources is None:
            sources = self.graph.nodes()
        return {s: nx.single_source_shortest_path_length(self.graph, s) for s in sources}

    def average_shortest_path_length(self) -> float:
        """Mean hop count over all ordered switch pairs."""
        from ..perf import shared_path_cache

        return shared_path_cache(self.graph).average_path_length()

    def diameter(self) -> int:
        """Maximum hop count between any two switches."""
        from ..perf import shared_path_cache

        return shared_path_cache(self.graph).diameter()

    def iter_server_ids(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(server_id, tor_switch)`` pairs with dense sequential ids.

        Servers are numbered 0..num_servers-1, grouped by sorted ToR id, so
        that the mapping is deterministic across runs.
        """
        server_id = itertools.count()
        for tor in self.tors:
            for _ in range(self.servers_per_switch[tor]):
                yield next(server_id), tor

    def server_to_tor(self) -> Dict[int, int]:
        """Mapping of dense server ids to their ToR switch."""
        return dict(self.iter_server_ids())

    def tor_to_servers(self) -> Dict[int, List[int]]:
        """Mapping of ToR switch to the dense server ids it hosts."""
        out: Dict[int, List[int]] = {}
        for server, tor in self.iter_server_ids():
            out.setdefault(tor, []).append(server)
        return out

    # ------------------------------------------------------------------
    # Degradation
    # ------------------------------------------------------------------
    def degrade(self, scenario) -> "Topology":
        """Apply a failure scenario; returns a ``DegradedTopology``.

        ``scenario`` is a :class:`~repro.resilience.FailureScenario`, a
        compact registry string (``"links:fraction=0.08,seed=3"``), or a
        mapping with a ``mode`` key.  This topology is left untouched.
        """
        apply = getattr(scenario, "apply", None)
        if apply is None:
            from ..registry import failure

            scenario = failure(scenario)
            apply = scenario.apply
        return apply(self)

    # ------------------------------------------------------------------
    # Mutation helpers used by generators
    # ------------------------------------------------------------------
    def attach_servers_uniformly(self, servers_per_tor: int, tors: Sequence[int]) -> None:
        """Attach ``servers_per_tor`` servers to each switch in ``tors``."""
        if servers_per_tor < 0:
            raise TopologyError("servers_per_tor must be non-negative")
        for t in tors:
            if t not in self.graph:
                raise TopologyError(f"switch {t!r} not in graph")
            self.servers_per_switch[t] = servers_per_tor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology({self.name!r}, switches={self.num_switches}, "
            f"links={self.num_links}, servers={self.num_servers})"
        )
