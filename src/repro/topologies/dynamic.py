"""Abstract models of dynamic (reconfigurable) network topologies (paper §4).

Instead of modeling any specific reconfigurable design (FireFly, ProjecToR,
Helios, ...), the paper evaluates two abstractions that bracket them all:

* **Unrestricted** — ignores reconfiguration delay, buffering, and any
  connectivity constraint: at every instant each ToR's ``r`` flexible ports
  carry traffic directly to where it is needed.  As long as bottlenecks are
  not at the servers, per-server throughput is ``min(1, r / s)`` for a ToR
  with ``r`` network and ``s`` server ports, independent of the traffic
  matrix and of how many ToRs participate.

* **Restricted** — prioritizes direct connections between communicating
  ToR pairs and has no buffering, so all flows must be serviced
  concurrently.  For all-to-all traffic among the active racks this is no
  better than the *best possible static topology* of the same degree over
  those racks (paper §4.1), which is upper-bounded by the throughput bound
  of Singla et al. (NSDI 2014): total link capacity divided by the minimum
  capacity the flows must consume, with path lengths lower-bounded by the
  Moore bound.

Both models take δ (the flexible-to-static port cost ratio, ≥ 1, paper
estimate 1.5) into account via :func:`equal_cost_dynamic_ports`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "moore_bound_mean_distance",
    "unrestricted_dynamic_throughput",
    "restricted_dynamic_throughput",
    "equal_cost_dynamic_ports",
    "duty_cycle",
    "DynamicNetworkModel",
]


def duty_cycle(slot_time: float, reconfiguration_time: float) -> float:
    """Fraction of time a reconfigurable link actually carries traffic.

    Dynamic designs must periodically pause a port to re-point it; with a
    data slot of ``slot_time`` between reconfigurations costing
    ``reconfiguration_time``, capacity scales by
    ``slot / (slot + reconfig)``.  The paper's §4.1 notes ProjecToR's
    recommended duty cycle "could achieve 90% of full throughput" — e.g.
    a 90% duty cycle from slots 9x the reconfiguration time.
    """
    if slot_time <= 0:
        raise ValueError("slot_time must be positive")
    if reconfiguration_time < 0:
        raise ValueError("reconfiguration_time must be non-negative")
    return slot_time / (slot_time + reconfiguration_time)


def moore_bound_mean_distance(num_nodes: int, degree: int) -> float:
    """Lower bound on mean shortest-path distance in any degree-``d`` graph.

    From one node, at most ``d`` others lie at distance 1, at most
    ``d (d-1)`` at distance 2, and so on; fill shells greedily with the
    ``num_nodes - 1`` other nodes and average the distances.
    """
    if num_nodes < 2:
        return 0.0
    if degree < 1:
        return math.inf
    if degree == 1:
        # Degree-1 graphs are disjoint edges; only 1 reachable other node.
        return 1.0 if num_nodes == 2 else math.inf
    remaining = num_nodes - 1
    total = 0.0
    shell = degree
    dist = 1
    while remaining > 0:
        here = min(shell, remaining)
        total += here * dist
        remaining -= here
        shell *= degree - 1
        dist += 1
    return total / (num_nodes - 1)


def unrestricted_dynamic_throughput(network_ports: int, server_ports: int) -> float:
    """Per-server throughput of the unrestricted dynamic model: min(1, r/s)."""
    if server_ports <= 0:
        return 1.0
    return min(1.0, network_ports / server_ports)


def restricted_dynamic_throughput(
    active_tors: int, network_ports: int, server_ports: int
) -> float:
    """Upper bound on per-server throughput of the restricted dynamic model.

    All-to-all traffic among ``active_tors`` racks, each with ``s`` servers
    demanding throughput ``t`` and ``r`` network ports: no topology on the
    active racks can beat ``t <= r / (s * mean_distance)`` with the mean
    distance Moore-bounded (NSDI'14 bound, reproduced in paper §4.1 where it
    yields the 80% figure for the 9-rack toy example).
    """
    if active_tors < 2:
        return 1.0
    if server_ports <= 0:
        return 1.0
    dbar = moore_bound_mean_distance(active_tors, network_ports)
    if math.isinf(dbar):
        return 0.0
    bound = network_ports / (server_ports * dbar)
    return min(1.0, bound)


def equal_cost_dynamic_ports(static_ports: int, delta: float = 1.5) -> int:
    """Flexible ports purchasable for the cost of ``static_ports`` static ones.

    δ is the per-port cost of a flexible (dynamic) port normalized to a
    static port including its share of cabling (paper Table 1: δ ≈ 1.5).
    """
    if delta < 1.0:
        raise ValueError(f"delta must be >= 1 (flexible ports cost more), got {delta}")
    return int(static_ports / delta)


@dataclass
class DynamicNetworkModel:
    """A sized dynamic network for equal-cost comparisons.

    Parameters
    ----------
    num_tors:
        Number of top-of-rack switches.
    network_ports:
        Flexible network ports per ToR (already δ-adjusted if comparing
        against a static design — see :func:`equal_cost_dynamic_ports`).
    server_ports:
        Servers per ToR.
    """

    num_tors: int
    network_ports: int
    server_ports: int

    def unrestricted_throughput(self) -> float:
        """Per-server throughput under the unrestricted model (TM-independent)."""
        return unrestricted_dynamic_throughput(self.network_ports, self.server_ports)

    def restricted_throughput(self, fraction_active: float) -> float:
        """Restricted-model throughput bound when ``fraction_active`` of racks talk."""
        if not 0 < fraction_active <= 1:
            raise ValueError("fraction_active must be in (0, 1]")
        active = max(2, round(fraction_active * self.num_tors))
        return restricted_dynamic_throughput(
            active, self.network_ports, self.server_ports
        )

    def unrestricted_throughput_with_duty_cycle(
        self, slot_time: float, reconfiguration_time: float
    ) -> float:
        """Unrestricted-model throughput discounted by the duty cycle.

        §4.1: even the ideal round-robin schedule pays for reconfiguration
        time (ProjecToR's recommended duty cycle reaches 90%).
        """
        return self.unrestricted_throughput() * duty_cycle(
            slot_time, reconfiguration_time
        )
