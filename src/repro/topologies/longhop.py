"""LongHop: Cayley-graph topologies over GF(2)^n (Tomic, ANCS 2013).

A LongHop network with ``2^n`` switches and network degree ``d`` is the
Cayley graph of the group (GF(2)^n, XOR) with a generator set ``G`` of
``d`` distinct non-zero binary vectors: switch ``i`` connects to switch
``i XOR g`` for every ``g in G``.  Every generator is its own inverse over
GF(2), so the graph is undirected and ``d``-regular by construction.  With
``G`` = the ``n`` unit vectors the graph is the hypercube; LongHop adds
"long hop" generators derived from error-correcting codes to shrink the
diameter and raise throughput.

Tomic's paper selects generators from optimal linear-code generator
matrices (tables not available to us).  **Substitution** (documented in
DESIGN.md): we keep the exact Cayley structure, node count, and degree, and
choose the extra generators greedily to maximize the spectral gap.  For
Cayley graphs over GF(2)^n the full spectrum is available in closed form —
eigenvalues are the Walsh–Hadamard transform of the generator-set indicator
vector — so the greedy step is exact and cheap.

The paper's Fig. 5(b) instance is ``2^9 = 512`` ToRs with 10 network ports;
scaled-down benchmark instances use n = 6 or 7.
"""

from __future__ import annotations

from typing import List, Sequence

import networkx as nx
import numpy as np

from .base import Topology, TopologyError

__all__ = ["longhop", "cayley_graph_gf2", "cayley_spectrum_gf2", "spectral_gap_gf2", "select_generators"]


def _walsh_hadamard(values: np.ndarray) -> np.ndarray:
    """In-place fast Walsh–Hadamard transform of a length-2^n vector."""
    out = values.astype(float).copy()
    h = 1
    n = len(out)
    while h < n:
        for i in range(0, n, h * 2):
            a = out[i : i + h].copy()
            b = out[i + h : i + 2 * h].copy()
            out[i : i + h] = a + b
            out[i + h : i + 2 * h] = a - b
        h *= 2
    return out


def cayley_spectrum_gf2(n: int, generators: Sequence[int]) -> np.ndarray:
    """All 2^n eigenvalues of the Cayley graph of GF(2)^n with ``generators``.

    Eigenvalue for character ``s`` is ``sum_g (-1)^{<s, g>}``, i.e. the
    Walsh–Hadamard transform of the generator indicator vector.
    """
    indicator = np.zeros(2**n)
    for g in generators:
        indicator[g] = 1.0
    return _walsh_hadamard(indicator)


def spectral_gap_gf2(n: int, generators: Sequence[int]) -> float:
    """Spectral gap d - max_{s != 0} |lambda_s| of the Cayley graph."""
    spectrum = cayley_spectrum_gf2(n, generators)
    d = float(len(generators))
    return d - float(np.max(np.abs(spectrum[1:])))


def select_generators(n: int, degree: int) -> List[int]:
    """Greedy generator selection: unit vectors + gap-maximizing extras.

    Starts from the ``n`` unit vectors (guaranteeing connectivity) and adds
    generators one at a time, each time picking the non-zero vector that
    maximizes the resulting spectral gap (ties broken by smallest vector
    value for determinism).
    """
    if degree < n:
        raise TopologyError(
            f"degree {degree} < n={n}: generators could not span GF(2)^{n} "
            "and the graph would be disconnected"
        )
    if degree > 2**n - 1:
        raise TopologyError(
            f"degree {degree} exceeds the {2**n - 1} non-zero vectors of GF(2)^{n}"
        )
    generators = [1 << b for b in range(n)]
    candidates = [v for v in range(1, 2**n) if v not in set(generators)]
    while len(generators) < degree:
        best_v, best_gap = None, -np.inf
        for v in candidates:
            gap = spectral_gap_gf2(n, generators + [v])
            if gap > best_gap + 1e-12:
                best_v, best_gap = v, gap
        assert best_v is not None
        generators.append(best_v)
        candidates.remove(best_v)
    return generators


def cayley_graph_gf2(n: int, generators: Sequence[int]) -> nx.Graph:
    """Cayley graph of (GF(2)^n, XOR) with the given generator set."""
    gens = sorted(set(generators))
    if len(gens) != len(list(generators)):
        raise TopologyError("duplicate generators")
    if any(g <= 0 or g >= 2**n for g in gens):
        raise TopologyError("generators must be non-zero n-bit vectors")
    g = nx.Graph()
    g.add_nodes_from(range(2**n))
    for v in range(2**n):
        for gen in gens:
            g.add_edge(v, v ^ gen, capacity=1.0)
    return g


def longhop(n: int, network_degree: int, servers_per_switch: int) -> Topology:
    """Build a LongHop topology with ``2^n`` switches.

    Parameters
    ----------
    n:
        log2 of the switch count (paper: 9 → 512 ToRs).
    network_degree:
        Switch-facing ports per switch (paper: 10); must be >= n.
    servers_per_switch:
        Servers attached to every switch (paper: 8).
    """
    generators = select_generators(n, network_degree)
    graph = cayley_graph_gf2(n, generators)
    if not nx.is_connected(graph):  # pragma: no cover - unit vectors span
        raise TopologyError("LongHop generator set does not span GF(2)^n")
    topo = Topology(
        name=f"longhop(n={n},d={network_degree})",
        graph=graph,
        servers_per_switch={v: servers_per_switch for v in graph.nodes()},
    )
    return topo
