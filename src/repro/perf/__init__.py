"""Hot-path acceleration: shared per-topology path/routing caches.

See :mod:`repro.perf.pathcache` for the design.  The vectorized compute
kernels themselves live next to the code they accelerate
(:mod:`repro.throughput.lp`, :mod:`repro.flowsim.fairshare`); this
package owns the structures they share.
"""

from .pathcache import (
    PathCache,
    clear_shared_caches,
    invalidate_shared_cache,
    shared_cache_stats,
    shared_path_cache,
    topology_content_hash,
)

__all__ = [
    "PathCache",
    "shared_path_cache",
    "shared_cache_stats",
    "topology_content_hash",
    "clear_shared_caches",
    "invalidate_shared_cache",
]
