"""Shared per-topology path/routing cache (the hot-path accelerator).

Every layer of the library needs the same derived routing structures for
a given topology — hop-count distance matrices, ECMP next-hop tables,
k-shortest-path sets — and before this module each layer recomputed them
from scratch (one ``networkx`` BFS per destination per routing-policy
instance, Yen's algorithm per demand per LP call).  A :class:`PathCache`
computes each structure **once per topology**:

* the all-pairs hop-count matrix comes from a single C-speed sweep over
  a CSR adjacency (``scipy.sparse.csgraph``), replacing ``n`` Python
  BFS traversals;
* ECMP next-hop tables are derived from that matrix with vectorized
  arc filters (an arc ``v -> w`` is a valid next hop toward ``d`` iff
  ``dist[w, d] == dist[v, d] - 1``), byte-identical to the reference
  :func:`repro.throughput.paths.ecmp_next_hops` tables;
* k-shortest-path sets are memoized per ``(src, dst)`` pair with the
  largest ``k`` computed so far, so a sweep over routings or ``k``
  values enumerates Yen's algorithm exactly once per pair.

Caches are shared through :func:`shared_path_cache`, an in-process LRU
registry keyed on a stable *content hash* of the switch graph (node and
edge sets only — capacities do not affect hop counts), so any number of
routing policies, LP calls, and property analyses on equal topologies
hit one cache.  Optional disk persistence under ``.repro-cache/`` reuses
the atomic-write machinery of the result cache (PR 1), letting repeated
sweeps skip even the first computation.

Graphs are treated as immutable once cached (mutating a cached graph in
place yields stale tables, exactly as it would have with the previously
per-instance precomputation); topology *generators* in this library
always build fresh graphs, and the content-hash registry key means a
rebuilt or edited graph never aliases a stale entry.

Both the shared registry and each :class:`PathCache` are thread-safe:
the registry's LRU get/insert/evict runs under one module lock, and a
cache's lazy structures (distance matrix, ECMP tables, k-shortest-path
sets) are computed under a per-instance lock, so the threaded request
handlers of :mod:`repro.api` can share one warm cache without ever
observing a half-built table or computing one twice.  Content addressing
already made the caches safe across *processes*; the locks make them
safe across *threads*.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from .. import obs
from ..ioutils import atomic_write_bytes, atomic_write_json

__all__ = [
    "PathCache",
    "topology_content_hash",
    "shared_path_cache",
    "shared_cache_stats",
    "clear_shared_caches",
    "invalidate_shared_cache",
]


def _as_graph(graph_or_topology):
    """Accept either a networkx graph or anything exposing ``.graph``."""
    if hasattr(graph_or_topology, "edges"):
        return graph_or_topology
    graph = getattr(graph_or_topology, "graph", None)
    if graph is None or not hasattr(graph, "edges"):
        raise TypeError(
            f"expected a networkx graph or a Topology, got {graph_or_topology!r}"
        )
    return graph


def topology_content_hash(graph_or_topology) -> str:
    """Stable SHA-256 of a switch graph's structure (nodes + edges).

    Capacities are deliberately excluded: hop-count distances, ECMP
    tables, and k-shortest-path sets depend only on the unweighted
    structure, so equal-structure topologies with different link speeds
    share one cache entry.
    """
    graph = _as_graph(graph_or_topology)
    nodes = sorted(graph.nodes())
    edges = sorted(tuple(sorted((u, v))) for u, v in graph.edges())
    blob = json.dumps([nodes, edges], separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class PathCache:
    """All-pairs routing structures for one topology, computed once.

    Parameters
    ----------
    graph_or_topology:
        The switch-level ``networkx`` graph (or a :class:`Topology`).
    persist_dir:
        Optional directory for on-disk persistence of the distance
        matrix and k-shortest-path sets (``None`` disables persistence).
        Writes are atomic (temp file + rename).
    """

    def __init__(self, graph_or_topology, persist_dir: Optional[str] = None) -> None:
        graph = _as_graph(graph_or_topology)
        self.graph = graph
        self.nodes: List[int] = sorted(graph.nodes())
        self.node_index: Dict[int, int] = {v: i for i, v in enumerate(self.nodes)}
        self.content_hash = topology_content_hash(graph)
        self.persist_dir = persist_dir

        tails: List[int] = []
        heads: List[int] = []
        for u, v in graph.edges():
            ui, vi = self.node_index[u], self.node_index[v]
            tails.append(ui)
            heads.append(vi)
            tails.append(vi)
            heads.append(ui)
        tails_arr = np.asarray(tails, dtype=np.intp)
        heads_arr = np.asarray(heads, dtype=np.intp)
        # Arcs sorted by (tail, head) so per-tail next-hop lists come out
        # sorted — matching the reference tables' determinism contract.
        order = np.lexsort((heads_arr, tails_arr))
        self._arc_tails = tails_arr[order]
        self._arc_heads = heads_arr[order]
        n = len(self.nodes)
        self._adjacency = sp.csr_matrix(
            (np.ones(len(tails_arr)), (tails_arr, heads_arr)), shape=(n, n)
        )

        self._dist: Optional[np.ndarray] = None
        self._tables: Optional[Dict[int, Dict[int, List[int]]]] = None
        # (src, dst) -> (k_computed, paths); serves any k <= k_computed,
        # and any k at all once Yen's has been exhausted (fewer than
        # k_computed simple paths exist).
        self._ksp: Dict[Tuple[int, int], Tuple[int, List[List[int]]]] = {}
        # Reentrant: ecmp_tables -> ecmp_next_hops -> distances nest.
        self._lock = threading.RLock()
        if persist_dir is not None:
            self._load_persisted()

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def distances(self) -> np.ndarray:
        """All-pairs hop-count matrix (``inf`` for unreachable pairs).

        Row/column order follows :attr:`nodes` (sorted switch ids).
        Computed by one C-speed unweighted sweep; cached thereafter.
        """
        with self._lock:
            if self._dist is None:
                obs.add("pathcache.misses")
                with obs.span("pathcache.distances", nodes=self.num_nodes):
                    self._dist = csgraph.shortest_path(
                        self._adjacency, method="D", directed=False,
                        unweighted=True,
                    )
                if self.persist_dir is not None:
                    self._persist_distances()
            else:
                obs.add("pathcache.hits")
            return self._dist

    def distances_from(self, sources) -> np.ndarray:
        """Hop-count rows for ``sources`` only, without the full matrix.

        The all-pairs matrix is O(n^2) memory — at 4096+ switches that is
        the scale wall, not the BFS time.  This computes just the
        requested rows in one C-speed multi-source sweep and does **not**
        cache them, so callers can stream a large node set in bounded
        chunks.  When the full matrix happens to be cached already, rows
        are sliced from it for free.

        Returns an array of shape ``(len(sources), num_nodes)`` with rows
        in the order given (columns follow :attr:`nodes`); ``inf`` marks
        unreachable pairs.
        """
        idx = np.asarray(
            [self.node_index[s] for s in sources], dtype=np.intp
        )
        with self._lock:
            if self._dist is not None:
                obs.add("pathcache.hits")
                return self._dist[idx]
        obs.add("pathcache.misses")
        with obs.span(
            "pathcache.distances_from", nodes=self.num_nodes,
            sources=int(idx.size),
        ):
            return csgraph.shortest_path(
                self._adjacency, method="D", directed=False,
                unweighted=True, indices=idx,
            )

    def distance(self, src: int, dst: int) -> float:
        """Hop distance between two switches (``inf`` if unreachable)."""
        d = self.distances()
        return float(d[self.node_index[src], self.node_index[dst]])

    def diameter(self) -> int:
        """Maximum hop count between any two switches.

        Raises :class:`ValueError` on a disconnected graph.
        """
        d = self.distances()
        if not np.all(np.isfinite(d)):
            raise ValueError("graph is not connected: diameter is infinite")
        return int(d.max())

    def average_path_length(self) -> float:
        """Mean hop count over all ordered switch pairs."""
        n = self.num_nodes
        if n < 2:
            raise ValueError("average path length needs at least two switches")
        d = self.distances()
        if not np.all(np.isfinite(d)):
            raise ValueError("graph is not connected")
        return float(d.sum() / (n * (n - 1)))

    def hop_distance_distribution(self) -> Dict[int, float]:
        """Fraction of ordered reachable switch pairs at each hop count."""
        d = self.distances()
        finite = d[np.isfinite(d) & (d > 0)].astype(np.int64)
        total = finite.size
        if total == 0:
            return {}
        counts = np.bincount(finite)
        return {
            int(hops): int(c) / total
            for hops, c in enumerate(counts)
            if c > 0
        }

    # ------------------------------------------------------------------
    # ECMP next-hop tables
    # ------------------------------------------------------------------
    def ecmp_next_hops(self, dst: int) -> Dict[int, List[int]]:
        """ECMP next-hop sets toward ``dst`` for every switch.

        Identical to :func:`repro.throughput.paths.ecmp_next_hops`
        (sorted next hops; empty list at the destination and at switches
        that cannot reach it), derived from the cached distance matrix.
        """
        dist_d = self.distances()[:, self.node_index[dst]]
        tail_dist = dist_d[self._arc_tails]
        ok = np.isfinite(tail_dist) & (dist_d[self._arc_heads] == tail_dist - 1.0)
        table: Dict[int, List[int]] = {v: [] for v in self.nodes}
        nodes = self.nodes
        for ti, hi in zip(
            self._arc_tails[ok].tolist(), self._arc_heads[ok].tolist()
        ):
            table[nodes[ti]].append(nodes[hi])
        return table

    def ecmp_tables(self) -> Dict[int, Dict[int, List[int]]]:
        """Next-hop tables for every destination, computed once and shared.

        The returned mapping is cached on the :class:`PathCache` and
        handed out by reference — callers must treat it as read-only.
        """
        with self._lock:
            if self._tables is None:
                obs.add("pathcache.misses")
                with obs.span("pathcache.ecmp_tables", nodes=self.num_nodes):
                    self._tables = {
                        dst: self.ecmp_next_hops(dst) for dst in self.nodes
                    }
            else:
                obs.add("pathcache.hits")
            return self._tables

    # ------------------------------------------------------------------
    # K-shortest paths
    # ------------------------------------------------------------------
    def k_shortest_paths(self, src: int, dst: int, k: int) -> List[List[int]]:
        """The k shortest loopless paths from ``src`` to ``dst`` (memoized).

        Delegates to the reference Yen's implementation on a miss; a
        request for a smaller ``k`` than previously computed — or any
        ``k`` once the pair's simple paths are exhausted — is served
        from memory without touching the graph.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        key = (src, dst)
        with self._lock:
            cached = self._ksp.get(key)
            if cached is not None:
                k_computed, paths = cached
                if k <= k_computed or len(paths) < k_computed:
                    obs.add("pathcache.hits")
                    return [list(p) for p in paths[:k]]
            from ..throughput.paths import k_shortest_paths as yen

            obs.add("pathcache.misses")
            with obs.span("pathcache.ksp", k=k):
                paths = yen(self.graph, src, dst, k)
            self._ksp[key] = (k, paths)
            return [list(p) for p in paths]

    # ------------------------------------------------------------------
    # Disk persistence (atomic, under e.g. .repro-cache/)
    # ------------------------------------------------------------------
    def _dist_path(self) -> str:
        return os.path.join(
            self.persist_dir, f"paths-{self.content_hash[:32]}-dist.npy"
        )

    def _ksp_path(self) -> str:
        return os.path.join(
            self.persist_dir, f"paths-{self.content_hash[:32]}-ksp.json"
        )

    def _persist_distances(self) -> None:
        buf = io.BytesIO()
        np.save(buf, self._dist)
        atomic_write_bytes(self._dist_path(), buf.getvalue())

    def _load_persisted(self) -> None:
        n = self.num_nodes
        try:
            dist = np.load(self._dist_path())
            if dist.shape == (n, n):
                self._dist = dist
        except (OSError, ValueError):
            pass
        try:
            with open(self._ksp_path()) as f:
                raw = json.load(f)
            for key, (k_computed, paths) in raw.items():
                s, d = key.split("|")
                self._ksp[(int(s), int(d))] = (int(k_computed), paths)
        except (OSError, ValueError, TypeError):
            pass

    def save(self) -> None:
        """Persist the computed structures (no-op without ``persist_dir``).

        The distance matrix is already written when first computed; this
        additionally flushes the accumulated k-shortest-path sets.
        """
        if self.persist_dir is None:
            return
        with self._lock:
            if self._dist is not None:
                self._persist_distances()
            if self._ksp:
                payload = {
                    f"{s}|{d}": [k_computed, paths]
                    for (s, d), (k_computed, paths) in sorted(self._ksp.items())
                }
                atomic_write_json(self._ksp_path(), payload)


# ----------------------------------------------------------------------
# In-process shared registry
# ----------------------------------------------------------------------
_REGISTRY: "OrderedDict[Tuple[str, Optional[str]], PathCache]" = OrderedDict()
_REGISTRY_MAX = 16
# One lock for the LRU's get/insert/evict: the registry is tiny and the
# guarded section never computes anything (PathCache construction builds
# only the CSR adjacency; the expensive structures stay lazy), so a
# single lock is cheap and keeps two threads from racing an insert with
# an eviction.
_REGISTRY_LOCK = threading.RLock()


def shared_path_cache(
    graph_or_topology, persist_dir: Optional[str] = None
) -> PathCache:
    """The process-wide :class:`PathCache` for a topology.

    Keyed on the graph's content hash, so every routing policy, LP call,
    and property analysis over structurally equal topologies shares one
    cache (and its already-computed tables).  A small LRU bound keeps
    long sweeps over many distinct topologies from accumulating matrices.
    Thread-safe: concurrent callers with equal graphs get the *same*
    instance, whose lazy tables are themselves computed under the
    instance lock.
    """
    graph = _as_graph(graph_or_topology)
    key = (topology_content_hash(graph), persist_dir)
    with _REGISTRY_LOCK:
        cache = _REGISTRY.get(key)
        if cache is None:
            obs.add("pathcache.shared_misses")
            cache = PathCache(graph, persist_dir=persist_dir)
            _REGISTRY[key] = cache
            while len(_REGISTRY) > _REGISTRY_MAX:
                _REGISTRY.popitem(last=False)
                obs.add("pathcache.evictions")
        else:
            obs.add("pathcache.shared_hits")
            _REGISTRY.move_to_end(key)
        return cache


def shared_cache_stats() -> Dict[str, int]:
    """Registry occupancy plus per-entry computed-structure counts.

    A cheap, lock-consistent snapshot for status surfaces (the
    ``repro.api`` ``/context`` manifest): how many topologies are warm
    and how many have their distance matrix / ECMP tables / k-shortest
    path sets already computed.
    """
    with _REGISTRY_LOCK:
        caches = list(_REGISTRY.values())
    return {
        "entries": len(caches),
        "max_entries": _REGISTRY_MAX,
        "with_distances": sum(1 for c in caches if c._dist is not None),
        "with_ecmp_tables": sum(1 for c in caches if c._tables is not None),
        "ksp_pairs": sum(len(c._ksp) for c in caches),
    }


def clear_shared_caches() -> int:
    """Drop every registry entry; returns the number removed (tests)."""
    with _REGISTRY_LOCK:
        removed = len(_REGISTRY)
        _REGISTRY.clear()
        return removed


def invalidate_shared_cache(graph_or_topology) -> int:
    """Drop the shared entries for one topology; returns how many.

    Called when a topology is degraded: any cache keyed on the degraded
    graph's content hash (e.g. from a graph that was mutated in place
    through the deprecated ``fail_*`` path) is discarded so distance
    matrices, ECMP tables, and path sets are rebuilt against the actual
    degraded structure on next use.
    """
    content = topology_content_hash(graph_or_topology)
    with _REGISTRY_LOCK:
        stale = [key for key in _REGISTRY if key[0] == content]
        for key in stale:
            del _REGISTRY[key]
    if stale:
        obs.add("pathcache.invalidations", len(stale))
    return len(stale)
