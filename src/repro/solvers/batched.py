"""Structure-sharing exact solves: fixed topology, many traffic matrices.

The exact LP's per-call cost splits into topology-dependent work (the
:class:`~repro.throughput.arcs.ArcTable` incidence structure,
connected-component labels for demand pre-filtering) and TM-dependent
work (destination aggregation, the ``b_eq``/demand column, the HiGHS
solve).  A fixed-topology sweep — the fig2/fig5/fig6 shape, one topology
across a grid of traffic fractions — re-derives the former for every
point.  :class:`BatchedTopologyContext` hoists it once and re-solves
with only the demand side swapped.

Byte-identity guarantee: each :meth:`BatchedTopologyContext.solve` call
runs the *same* code path as
:func:`~repro.throughput.lp.max_concurrent_throughput`
(``repro.throughput.lp._solve_exact``: identical constraint matrices,
identical ``linprog(method="highs")`` invocation, identical extraction),
so results are bit-for-bit equal to the per-call path — not merely
within tolerance.  The agreement property test in
``tests/solvers/test_agreement.py`` pins this down.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..throughput.arcs import ArcTable
from ..throughput.lp import (
    ThroughputResult,
    _component_labels,
    _drop_by_labels,
    _solve_exact,
)

__all__ = ["BatchedTopologyContext"]


class BatchedTopologyContext:
    """Prepared per-topology state for repeated exact throughput solves."""

    def __init__(self, topology):
        self.topology = topology
        self.table = ArcTable.from_topology(topology)
        self.labels: Dict[int, int] = _component_labels(topology.graph)

    def solve(
        self, tm, per_server_demand: float = 1.0
    ) -> ThroughputResult:
        """Exact solve of one TM, reusing the hoisted topology structure.

        Degenerate conventions and failure taxonomy are exactly those of
        :func:`~repro.throughput.lp.max_concurrent_throughput`.
        """
        if tm.num_flows == 0:
            return ThroughputResult(throughput=float("inf"), per_server=1.0)
        tm, dropped = _drop_by_labels(tm, self.labels)
        if tm.num_flows == 0:
            return ThroughputResult(
                throughput=0.0, per_server=0.0, disconnected_pairs=dropped
            )
        context: Optional[Dict[str, object]] = {
            "topology": self.topology.name,
            "demands": tm.num_flows,
        }
        return _solve_exact(
            self.table, tm, per_server_demand, dropped, context=context
        )
