"""The built-in solver backends and their registry bindings.

Five backends (plus the two legacy aliases the harness/CLI historically
exposed):

* ``highs-exact`` (alias ``exact``) — one exact edge-LP call per TM via
  :func:`~repro.throughput.lp.max_concurrent_throughput`.
* ``highs-batched`` — exact edge LP with per-topology structure reuse
  (:class:`~repro.solvers.batched.BatchedTopologyContext`); results are
  byte-identical to ``highs-exact``.  ``solve_many`` is where it wins.
* ``highs-incremental`` — exact edge LP with warm starts across sweep
  points *and* across calls
  (:class:`~repro.solvers.incremental.HighsIncrementalBackend`): cached
  constraint structure per demand support, and with the optional
  ``highspy`` dependency (the ``[perf]`` extra) dual-simplex re-solves
  from the previous basis.  Knob ``mode`` (auto / highspy / fallback).
* ``highs-colgen`` — exact *path* LP by column generation
  (:class:`~repro.solvers.colgen.HighsColgenBackend`): restricted
  master over a generated path pool + dual-price pricing loop,
  converging to the same optimum as ``highs-exact`` with masters small
  enough to scale an order of magnitude further.  Knobs ``k``,
  ``phases``, ``passes``, ``max_rounds``, ``mode`` (auto / core /
  fallback).
* ``highs-paths`` (alias ``paths``) — k-shortest-paths LP lower bound
  via :func:`~repro.throughput.lp.path_throughput`; knob ``k``.
* ``mcf-approx`` — the Fleischer/Garg–Könemann FPTAS
  (:func:`~repro.throughput.mcf.approx_concurrent_throughput`); knob
  ``epsilon`` in (0, 0.5), guaranteeing a (1 - O(epsilon)) fraction of
  the exact optimum (never above it).
"""

from __future__ import annotations

from typing import List, Sequence

from .. import obs
from ..throughput.lp import (
    ThroughputResult,
    max_concurrent_throughput,
    path_throughput,
)
from ..throughput.mcf import approx_concurrent_throughput
from .base import SolveOutcome, SolverBackend, solve_outcome
from .batched import BatchedTopologyContext
from .colgen import HighsColgenBackend
from .incremental import HighsIncrementalBackend

__all__ = [
    "HighsExactBackend",
    "HighsBatchedBackend",
    "HighsPathsBackend",
    "HighsIncrementalBackend",
    "HighsColgenBackend",
    "McfApproxBackend",
    "register_builtin_solvers",
]


class HighsExactBackend(SolverBackend):
    """Exact edge LP, one self-contained HiGHS call per TM."""

    name = "highs-exact"

    def _solve_result(self, topology, tm, per_server_demand: float) -> ThroughputResult:
        return max_concurrent_throughput(topology, tm, per_server_demand)


class HighsBatchedBackend(SolverBackend):
    """Exact edge LP with per-topology structure hoisted across a batch.

    ``solve`` on a single TM builds a one-shot context (still
    byte-identical to ``highs-exact``); ``solve_many`` amortizes the
    ArcTable + component labels over the whole batch and runs in the
    calling process, which is what the harness Runner exploits for
    fixed-topology sweeps.
    """

    name = "highs-batched"
    supports_batching = True

    def solve(self, topology, tm, per_server_demand: float = 1.0) -> SolveOutcome:
        return self.solve_many(topology, [tm], per_server_demand)[0]

    def solve_many(
        self,
        topology,
        tms: Sequence,
        per_server_demand: float = 1.0,
        warm: bool = True,
    ) -> List[SolveOutcome]:
        del warm  # structure is rebuilt per batch; nothing outlives the call
        context = BatchedTopologyContext(topology)
        with obs.span("solver.solve_many", backend=self.name, points=len(tms)):
            return [
                solve_outcome(
                    self.name,
                    lambda tm=tm: context.solve(tm, per_server_demand),
                )
                for tm in tms
            ]


class HighsPathsBackend(SolverBackend):
    """k-shortest-paths LP: a lower bound that scales past the exact LP."""

    name = "highs-paths"

    def __init__(self, k: int = 8):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)

    def _solve_result(self, topology, tm, per_server_demand: float) -> ThroughputResult:
        return path_throughput(
            topology, tm, k=self.k, per_server_demand=per_server_demand
        )


class McfApproxBackend(SolverBackend):
    """Fleischer FPTAS: (1 - O(epsilon))-approximate, LP-free."""

    name = "mcf-approx"

    def __init__(self, epsilon: float = 0.05):
        if not 0 < epsilon < 0.5:
            raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.epsilon = float(epsilon)

    def _solve_result(self, topology, tm, per_server_demand: float) -> ThroughputResult:
        return approx_concurrent_throughput(
            topology, tm, epsilon=self.epsilon,
            per_server_demand=per_server_demand,
        )


def register_builtin_solvers(registry) -> None:
    """Register the built-in backends (idempotent; called by the lazy
    loader of :data:`repro.registry.SOLVERS`)."""
    registry.register(
        "highs-exact", HighsExactBackend,
        "exact edge LP, one HiGHS call per TM",
    )
    registry.register(
        "exact", HighsExactBackend, "alias of highs-exact"
    )
    registry.register(
        "highs-batched", HighsBatchedBackend,
        "exact edge LP, per-topology structure reuse; byte-identical "
        "to highs-exact, batches fixed-topology sweeps",
    )
    registry.register(
        "highs-incremental", HighsIncrementalBackend,
        "exact edge LP, warm-started across sweep points (structure + "
        "basis reuse with the optional highspy [perf] extra; pure-scipy "
        "fallback stays byte-identical to highs-exact); mode",
    )
    registry.register(
        "highs-colgen", HighsColgenBackend,
        "exact path LP by column generation (restricted master + "
        "dual-price pricing loop); scales past the edge LP; persistent "
        "path pool warm-starts repeat solves; k, phases, passes, "
        "max_rounds, mode",
    )
    registry.register(
        "highs-paths", HighsPathsBackend,
        "k-shortest-paths LP lower bound; k",
    )
    registry.register(
        "paths", HighsPathsBackend, "alias of highs-paths; k"
    )
    registry.register(
        "mcf-approx", McfApproxBackend,
        "Fleischer (1-O(eps)) FPTAS; epsilon in (0, 0.5)",
    )
