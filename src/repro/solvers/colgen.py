"""The ``highs-colgen`` backend: exact throughput by column generation.

Wraps :mod:`repro.throughput.colgen` in the solver-backend contract
(:class:`~repro.solvers.base.SolveOutcome`, ``solve_many`` batching,
registry knobs) and adds the cross-solve warm start the formulation
makes natural: a per-topology **path pool**.  Columns generated for one
TM are remembered per ``(src, dst)`` pair; a later solve over the same
pairs seeds its first master from the stored pool, skips the
multiplicative-weights pool-building sweep entirely, and typically
converges in one or two pricing rounds — the path-formulation analogue
of ``highs-incremental``'s basis reuse.

Like :class:`~repro.solvers.incremental.HighsIncrementalBackend`, the
context is keyed on a **capacity-aware** topology fingerprint: a changed
capacity changes the optimum's support, so the pool (whose arc ids are
also table-specific) must not survive any topology change.

Warm/cold decisions share the process-global ``solver.warm_start.*``
counters and each solve's ``solver.solve`` span carries
``warm_started`` (pool covered every demand pair) — ``basis_reused``
stays ``False``: the master is rebuilt per solve; only columns persist.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..throughput.colgen import ColgenStats, colgen_solve, have_highs_core
from ..throughput.arcs import ArcTable
from ..throughput.errors import SolverFailure
from ..throughput.lp import (
    ThroughputResult,
    _component_labels,
    _drop_by_labels,
)
from .incremental import _note, topology_fingerprint

__all__ = [
    "ColgenTopologyContext",
    "HighsColgenBackend",
    "colgen_solve_outcome",
]


class ColgenTopologyContext:
    """Prepared per-topology state for warm-started colgen solves.

    Hoists the :class:`~repro.throughput.arcs.ArcTable` and the shared
    :class:`~repro.perf.PathCache`, and persists the generated column
    pool across solves (``(src, dst) -> [arc-id paths]``, bounded per
    pair by :data:`~repro.throughput.colgen.POOL_CAP_PER_PAIR`).

    Thread-safe: solves serialize on a per-context lock (they mutate the
    shared pool and the cached CSR weights).
    """

    def __init__(
        self,
        topology,
        k: int = 2,
        phases: Optional[int] = None,
        passes: int = 4,
        max_rounds: int = 200,
        use_core: Optional[bool] = None,
    ):
        from ..perf import shared_path_cache

        self.topology = topology
        self.fingerprint = topology_fingerprint(topology)
        self.table = ArcTable.from_topology(topology)
        self.labels: Dict[int, int] = _component_labels(topology.graph)
        self.cache = shared_path_cache(topology.graph)
        self.k = int(k)
        self.phases = phases
        self.passes = int(passes)
        self.max_rounds = int(max_rounds)
        self.use_core = use_core
        self._pool: Dict[Tuple[int, int], List[Tuple[int, ...]]] = {}
        self._lock = threading.RLock()
        self.solves = 0
        self.warm_solves = 0
        self.pricing_rounds = 0
        self.columns_added = 0
        self.last_solve: Dict[str, bool] = {
            "warm_started": False,
            "basis_reused": False,
        }
        self.last_stats: Optional[ColgenStats] = None

    # ------------------------------------------------------------------
    def solve(
        self, tm, per_server_demand: float = 1.0, reuse_pool: bool = True
    ) -> ThroughputResult:
        """Solve one TM, seeding the master from the persistent pool.

        Degenerate conventions and the failure taxonomy are exactly
        those of
        :func:`~repro.throughput.lp.max_concurrent_throughput`.  With
        ``reuse_pool=False`` the solve neither reads nor extends the
        pool (the cold-bypass contract of ``warm=False``).
        """
        with self._lock:
            return self._solve_locked(tm, per_server_demand, reuse_pool)

    def _solve_locked(
        self, tm, per_server_demand: float, reuse_pool: bool
    ) -> ThroughputResult:
        self.last_solve = {"warm_started": False, "basis_reused": False}
        if tm.num_flows == 0:
            return ThroughputResult(throughput=float("inf"), per_server=1.0)
        tm, dropped = _drop_by_labels(tm, self.labels)
        if tm.num_flows == 0:
            return ThroughputResult(
                throughput=0.0, per_server=0.0, disconnected_pairs=dropped
            )
        result, stats = colgen_solve(
            self.table,
            self.cache,
            tm,
            per_server_demand=per_server_demand,
            dropped=dropped,
            k=self.k,
            phases=self.phases,
            passes=self.passes,
            max_rounds=self.max_rounds,
            pool_store=self._pool if reuse_pool else None,
            use_core=self.use_core,
            context={
                "topology": self.topology.name,
                "demands": tm.num_flows,
            },
        )
        self.solves += 1
        self.pricing_rounds += stats.rounds
        self.columns_added += stats.columns_added
        self.last_stats = stats
        if stats.pool_warm:
            self.warm_solves += 1
            self.last_solve["warm_started"] = True
            _note("hit")
        else:
            _note("miss")
        return result

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """JSON-ready per-context counters (for ``/context`` surfacing)."""
        with self._lock:
            return {
                "pool_pairs": len(self._pool),
                "solves": self.solves,
                "warm_solves": self.warm_solves,
                "pricing_rounds": self.pricing_rounds,
                "columns_added": self.columns_added,
                "engine": (
                    self.last_stats.engine
                    if self.last_stats is not None
                    else ("highs-core" if have_highs_core() else "linprog")
                ),
            }


# ----------------------------------------------------------------------
# Outcome wrapper: SolveOutcome with warm-start flags + observed span
# ----------------------------------------------------------------------
def colgen_solve_outcome(
    context: ColgenTopologyContext,
    tm,
    per_server_demand: float = 1.0,
    backend_name: str = "highs-colgen",
    reuse_pool: bool = True,
):
    """One colgen solve, classified like :func:`~.base.solve_outcome`
    but carrying the per-solve ``warm_started`` flag (pool covered every
    demand pair) on the outcome *and* the recorded ``solver.solve``
    span."""
    from .base import SolveOutcome, SolveStatus, _status_of

    t0 = time.perf_counter()
    status = SolveStatus.OPTIMAL
    result: Optional[ThroughputResult] = None
    message = ""
    error: Optional[SolverFailure] = None
    iterations = 0
    try:
        result = context.solve(tm, per_server_demand, reuse_pool=reuse_pool)
        iterations = result.iterations
    except SolverFailure as exc:
        status = _status_of(exc)
        message = str(exc)
        error = exc
        iterations = exc.iterations
    elapsed = time.perf_counter() - t0
    info = context.last_solve
    run = obs.current()
    if run is not None:
        run.record_span(
            "solver.solve",
            t0,
            elapsed,
            attrs={
                "backend": backend_name,
                "warm_started": info["warm_started"],
                "basis_reused": info["basis_reused"],
                "pricing_rounds": (
                    context.last_stats.rounds
                    if context.last_stats is not None
                    else 0
                ),
            },
        )
    obs.add(f"solver.status.{status.value}")
    return SolveOutcome(
        status=status,
        backend=backend_name,
        result=result,
        iterations=iterations,
        wall_time_s=elapsed,
        message=message,
        error=error,
        warm_started=info["warm_started"],
        basis_reused=info["basis_reused"],
    )


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class HighsColgenBackend:
    """Exact path LP by column generation, with a persistent path pool.

    Holds one :class:`ColgenTopologyContext` for the most recent
    topology (capacity-aware fingerprint, like ``highs-incremental``).
    ``solve_many(..., warm=True)`` reuses the context — and its column
    pool — across calls; ``warm=False`` solves every point cold and
    caches nothing.

    ``mode`` selects the engine: ``"auto"`` uses the scipy-bundled
    HiGHS core when importable (warm ``addCols`` re-solves) and the
    pure-``linprog`` loop otherwise; ``"core"`` requires the bundled
    core; ``"fallback"`` forces ``linprog`` (tests, portability).
    """

    name = "highs-colgen"
    supports_batching = True

    def __init__(
        self,
        k: int = 2,
        phases: Optional[int] = None,
        passes: int = 4,
        max_rounds: int = 200,
        mode: str = "auto",
    ):
        if mode not in ("auto", "core", "fallback"):
            raise ValueError(
                f"mode must be auto/core/fallback, got {mode!r}"
            )
        if mode == "core" and not have_highs_core():
            raise ValueError(
                "mode='core' needs scipy's bundled HiGHS core "
                "(scipy.optimize._highspy), which this scipy build lacks; "
                "use mode='auto' or 'fallback'"
            )
        if int(k) < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if int(max_rounds) < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.k = int(k)
        self.phases = None if phases is None else int(phases)
        self.passes = int(passes)
        self.max_rounds = int(max_rounds)
        self.mode = mode
        self._context: Optional[ColgenTopologyContext] = None
        self._lock = threading.Lock()

    @property
    def _use_core(self) -> Optional[bool]:
        if self.mode == "auto":
            return None
        return self.mode == "core"

    def _build_context(self, topology) -> ColgenTopologyContext:
        return ColgenTopologyContext(
            topology,
            k=self.k,
            phases=self.phases,
            passes=self.passes,
            max_rounds=self.max_rounds,
            use_core=self._use_core,
        )

    def context_for(
        self, topology, warm: bool = True
    ) -> Tuple[ColgenTopologyContext, bool]:
        """The (possibly reused) context for ``topology``.

        Returns ``(context, was_reused)``.  Reuse requires ``warm`` and
        a matching capacity-aware fingerprint; anything else builds (and
        with ``warm``, installs) a fresh context with an empty pool.
        """
        fingerprint = topology_fingerprint(topology)
        with self._lock:
            context = self._context
            if (
                warm
                and context is not None
                and context.fingerprint == fingerprint
            ):
                _note("context_hit")
                return context, True
            _note("context_miss")
            context = self._build_context(topology)
            if warm:
                self._context = context
            return context, False

    def context_stats(self) -> Optional[Dict[str, Any]]:
        """Stats of the live context (``None`` before the first solve)."""
        with self._lock:
            return None if self._context is None else self._context.stats()

    def solve(self, topology, tm, per_server_demand: float = 1.0):
        """Solve one TM; the pool warm-starts repeat calls on the topology."""
        return self.solve_many(topology, [tm], per_server_demand)[0]

    def solve_many(
        self,
        topology,
        tms: Sequence,
        per_server_demand: float = 1.0,
        warm: bool = True,
    ) -> List:
        """Solve many TMs, sharing one context (and pool) per topology.

        With ``warm=False`` every point runs cold: no pool is read or
        written, matching the cold-bypass contract of the other warm
        backends.
        """
        context, reused = self.context_for(topology, warm=warm)
        with obs.span(
            "solver.solve_many",
            backend=self.name,
            points=len(tms),
            context_reused=reused,
        ):
            return [
                colgen_solve_outcome(
                    context,
                    tm,
                    per_server_demand,
                    backend_name=self.name,
                    reuse_pool=warm,
                )
                for tm in tms
            ]
