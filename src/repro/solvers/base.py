"""Solver-backend protocol: typed outcomes instead of raw exceptions.

A :class:`SolverBackend` turns ``(topology, traffic matrix)`` into a
:class:`SolveOutcome` — a status enum plus the
:class:`~repro.throughput.lp.ThroughputResult` when the solve reached an
optimum.  Non-optimal solves do not raise out of ``solve``: the typed
:class:`~repro.throughput.errors.SolverFailure` is caught, classified,
and carried on the outcome so sweeps and campaigns can record the point
and continue.  Callers that want the exception back (e.g. the harness,
whose failure records are built from exceptions) call
:meth:`SolveOutcome.raise_for_status`.

Every solve is observed: a ``solver.solve`` span per call and a
``solver.status.<status>`` counter per outcome.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Sequence

from .. import obs
from ..throughput.errors import InfeasibleError, SolverFailure, UnboundedError
from ..throughput.lp import ThroughputResult

__all__ = [
    "SolveStatus",
    "SolveOutcome",
    "SolverBackend",
    "solve_outcome",
]


class SolveStatus(str, Enum):
    """Terminal state of one solve (string-valued: JSON/counter ready)."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NUMERICAL = "numerical"


def _status_of(exc: SolverFailure) -> SolveStatus:
    if isinstance(exc, InfeasibleError):
        return SolveStatus.INFEASIBLE
    if isinstance(exc, UnboundedError):
        return SolveStatus.UNBOUNDED
    return SolveStatus.NUMERICAL


@dataclass
class SolveOutcome:
    """One solve, classified.

    Attributes
    ----------
    status:
        Terminal :class:`SolveStatus`.
    backend:
        Name of the backend that produced this outcome.
    result:
        The :class:`ThroughputResult` when ``status`` is optimal, else
        ``None``.
    iterations:
        Solver iterations spent (phases for ``mcf-approx``).
    wall_time_s:
        Wall-clock time of this solve, including assembly.
    message:
        Failure message (empty on optimal outcomes).
    error:
        The caught :class:`SolverFailure` for non-optimal outcomes.
    warm_started:
        True when the solve reused a previously assembled model
        structure (incremental backends; always False for cold paths).
    basis_reused:
        True when the solver additionally re-solved with dual simplex
        from the previous basis (``highs-incremental`` with ``highspy``
        installed; the scipy fallback reuses structure but not bases).
    """

    status: SolveStatus
    backend: str
    result: Optional[ThroughputResult] = None
    iterations: int = 0
    wall_time_s: float = 0.0
    message: str = ""
    error: Optional[SolverFailure] = field(default=None, repr=False)
    warm_started: bool = False
    basis_reused: bool = False

    @property
    def ok(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def raise_for_status(self) -> "SolveOutcome":
        """Re-raise the typed failure for non-optimal outcomes; else self."""
        if self.ok:
            return self
        if self.error is not None:
            raise self.error
        raise SolverFailure(
            self.message or f"solver reported {self.status.value}",
            context={"backend": self.backend},
        )


def solve_outcome(
    backend: str, call: Callable[[], ThroughputResult]
) -> SolveOutcome:
    """Run one solve callable under observability and classify the result.

    ``call`` either returns a :class:`ThroughputResult` (→ optimal) or
    raises a :class:`SolverFailure` subclass (→ the matching non-optimal
    status).  Non-solver exceptions propagate untouched — a bug in the
    formulation should not masquerade as a solver outcome.
    """
    t0 = time.perf_counter()
    status = SolveStatus.OPTIMAL
    result: Optional[ThroughputResult] = None
    message = ""
    error: Optional[SolverFailure] = None
    iterations = 0
    with obs.span("solver.solve", backend=backend):
        try:
            result = call()
            iterations = result.iterations
        except SolverFailure as exc:
            status = _status_of(exc)
            message = str(exc)
            error = exc
            iterations = exc.iterations
    obs.add(f"solver.status.{status.value}")
    return SolveOutcome(
        status=status,
        backend=backend,
        result=result,
        iterations=iterations,
        wall_time_s=time.perf_counter() - t0,
        message=message,
        error=error,
    )


class SolverBackend:
    """Base class for throughput solver backends.

    Subclasses set :attr:`name`, implement :meth:`_solve_result`
    (returning a ``ThroughputResult`` or raising ``SolverFailure``), and
    may override :meth:`solve_many` to amortize per-topology work across
    a batch — setting :attr:`supports_batching` so the harness
    :class:`~repro.harness.runner.Runner` knows it can group
    fixed-topology sweep points through one backend instance.
    """

    name: str = "abstract"
    #: True when solve_many amortizes shared structure across a batch
    #: (the Runner batches fixed-topology lp points through it).
    supports_batching: bool = False

    def _solve_result(self, topology, tm, per_server_demand: float) -> ThroughputResult:
        raise NotImplementedError

    def solve(self, topology, tm, per_server_demand: float = 1.0) -> SolveOutcome:
        """Solve one TM on one topology; never raises on solver failure."""
        return solve_outcome(
            self.name, lambda: self._solve_result(topology, tm, per_server_demand)
        )

    def solve_many(
        self,
        topology,
        tms: Sequence,
        per_server_demand: float = 1.0,
        warm: bool = True,
    ) -> List[SolveOutcome]:
        """Solve many TMs on one topology (default: sequential solves).

        ``warm=True`` permits the backend to reuse state from earlier
        points or earlier calls (model structure, simplex bases); cold
        backends ignore it.  ``warm=False`` demands every point be
        solved from scratch — the contract equivalence tests and cold
        baselines rely on.
        """
        del warm  # sequential per-point solves carry no reusable state
        return [self.solve(topology, tm, per_server_demand) for tm in tms]
