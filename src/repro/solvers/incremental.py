"""Warm-started incremental exact-LP solving: basis and structure reuse.

A sweep solves dozens of *near-identical* LPs: adjacent load/skew points
share the topology (so the :class:`~repro.throughput.arcs.ArcTable`,
component labels, and the constraint sparsity pattern are all equal) and
usually the demand *support* (so only the coefficient of ``t`` in each
conservation row changes).  ``highs-batched`` already hoists the
topology side; this module hoists the rest:

* :class:`IncrementalTopologyContext` keeps, per demand structure
  (destination set + demand support), the fully assembled LP.  A
  subsequent solve with the same structure patches only the changed
  demand coefficients and re-solves.
* With ``highspy`` installed (the optional ``[perf]`` extra), the model
  lives inside a persistent ``highspy.Highs`` instance: mutated
  coefficients go through ``changeCoeff`` and the re-solve runs dual
  simplex **from the previous basis** — a 14-point sweep costs ~1 cold
  solve + 13 warm ones.
* Without ``highspy`` the pure-scipy fallback still reuses the cached
  canonical CSR matrices (patching values in place yields *identical*
  matrices to fresh assembly, so results are byte-identical to
  ``highs-exact`` — by construction, not tolerance) and re-solves cold
  through the shared :func:`~repro.throughput.lp._solve_exact_assembled`
  path.  No new hard dependency; CI without the extra passes the full
  equivalence suite.

The structure cache is bounded (LRU) and capacity-aware: the context is
keyed on a fingerprint covering nodes, edges, *and* per-edge capacities,
so a changed topology forces a full refactorization instead of silently
reusing a stale basis.

Every warm/cold decision is observed: ``solver.warm_start.hit`` /
``solver.warm_start.miss`` count per-solve structure reuse,
``solver.warm_start.context_hit`` / ``context_miss`` count per-batch
context reuse, and each solve's span carries ``warm_started`` /
``basis_reused`` attributes.  The same counts are mirrored into
process-global :func:`warm_start_stats` so long-lived services
(:mod:`repro.api`) can surface them without an obs session.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..throughput.arcs import ArcTable
from ..throughput.errors import (
    InfeasibleError,
    SolverFailure,
    SolverNumericalError,
    UnboundedError,
)
from ..throughput.lp import (
    ThroughputResult,
    _assemble_exact_vectorized,
    _component_labels,
    _demands_by_destination,
    _drop_by_labels,
    _solve_exact_assembled,
    _c_for_exact,
)

__all__ = [
    "have_highspy",
    "topology_fingerprint",
    "IncrementalTopologyContext",
    "HighsIncrementalBackend",
    "incremental_solve_outcome",
    "warm_start_stats",
    "reset_warm_start_stats",
]

#: Bound on cached LP structures per context (distinct demand supports).
DEFAULT_MAX_STRUCTURES = 32

# ----------------------------------------------------------------------
# Optional highspy dependency (the [perf] extra)
# ----------------------------------------------------------------------
_HIGHSPY: Optional[Any] = None
_HIGHSPY_CHECKED = False


def have_highspy() -> bool:
    """Whether the optional ``highspy`` module (``[perf]`` extra) imports."""
    return _highspy() is not None


def _highspy() -> Optional[Any]:
    global _HIGHSPY, _HIGHSPY_CHECKED
    if not _HIGHSPY_CHECKED:
        _HIGHSPY_CHECKED = True
        try:
            import highspy  # type: ignore

            _HIGHSPY = highspy
        except ImportError:
            _HIGHSPY = None
    return _HIGHSPY


# ----------------------------------------------------------------------
# Process-global warm-start counters (mirrored to obs)
# ----------------------------------------------------------------------
_STATS_LOCK = threading.Lock()
_STATS_KEYS = (
    "hit",
    "miss",
    "context_hit",
    "context_miss",
    "basis_reused",
    "models_built",
)
_STATS: Dict[str, int] = {k: 0 for k in _STATS_KEYS}


def _note(key: str, amount: int = 1) -> None:
    with _STATS_LOCK:
        _STATS[key] += amount
    obs.add(f"solver.warm_start.{key}", amount)


def warm_start_stats() -> Dict[str, int]:
    """Process-wide ``solver.warm_start.*`` counts (JSON-ready copy)."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_warm_start_stats() -> None:
    """Zero the process-wide counters (tests)."""
    with _STATS_LOCK:
        for k in _STATS_KEYS:
            _STATS[k] = 0


# ----------------------------------------------------------------------
# Topology fingerprinting (capacity-aware, unlike the path cache's hash)
# ----------------------------------------------------------------------
def topology_fingerprint(topology) -> str:
    """A stable content hash of a topology's LP-relevant structure.

    Unlike :func:`repro.perf.topology_content_hash` (hop counts only,
    capacities deliberately ignored), this covers nodes, edges, *and*
    per-edge capacities — everything the exact LP's constraint matrices
    bake in.  Two topologies with equal fingerprints produce identical
    ArcTables; anything else must force a model rebuild.
    """
    g = topology.graph
    h = hashlib.sha256()
    for v in sorted(g.nodes()):
        h.update(repr(v).encode())
        h.update(b";")
    h.update(b"|")
    for u, v, cap in sorted(
        (min(u, v), max(u, v), data.get("capacity"))
        for u, v, data in g.edges(data=True)
    ):
        h.update(repr((u, v, cap)).encode())
        h.update(b";")
    return h.hexdigest()


# ----------------------------------------------------------------------
# Prepared LP structures
# ----------------------------------------------------------------------
def _structure_key(
    dests: List[int], demand_to: Dict[int, Dict[int, float]]
) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...]]:
    """The demand-structure identity: destination set + nonzero support.

    Zero-valued demands are excluded exactly as assembly excludes them,
    so a TM whose entry drops to zero keys a different (correct)
    structure instead of patching a coefficient that does not exist.
    """
    support = tuple(
        sorted(
            (d, v)
            for d in dests
            for v, dem in demand_to[d].items()
            if dem
        )
    )
    return tuple(dests), support


@dataclass
class _LpStructure:
    """One fully assembled exact LP, ready for coefficient patching."""

    dests: List[int]
    support: Tuple[Tuple[int, int], ...]
    num_dests: int
    a_eq: Any  # scipy CSR; data patched in place between solves
    b_eq: np.ndarray
    a_ub: Any
    demand_slots: np.ndarray  # index into a_eq.data per support entry
    demand_rows: np.ndarray  # equality-row index per support entry
    values: np.ndarray  # current (positive) demand values, support order
    highs: Any = None  # persistent highspy.Highs, when available
    solved_once: bool = field(default=False)
    solves: int = 0


class IncrementalTopologyContext:
    """Prepared per-topology state for warm-started exact solves.

    Extends :class:`~repro.solvers.batched.BatchedTopologyContext`'s
    topology hoisting (ArcTable + component labels) with a bounded LRU
    of assembled LP structures keyed by demand structure, so repeated
    solves over the same support pay only a coefficient patch + re-solve
    (dual simplex from the previous basis when ``highspy`` is present).

    Thread-safe: solves serialize on a per-context lock (they mutate
    cached matrices / the embedded solver instance).
    """

    def __init__(
        self,
        topology,
        use_highspy: Optional[bool] = None,
        max_structures: int = DEFAULT_MAX_STRUCTURES,
    ):
        self.topology = topology
        self.fingerprint = topology_fingerprint(topology)
        self.table = ArcTable.from_topology(topology)
        self.labels: Dict[int, int] = _component_labels(topology.graph)
        self.use_highspy = have_highspy() if use_highspy is None else bool(use_highspy)
        if self.use_highspy and not have_highspy():
            raise ValueError(
                "highspy is not installed; install the [perf] extra "
                "(pip install 'repro[perf]') or use the scipy fallback"
            )
        self.max_structures = int(max_structures)
        self._structures: "OrderedDict[Any, _LpStructure]" = OrderedDict()
        self._lock = threading.RLock()
        self.models_built = 0
        self.warm_solves = 0
        self.cold_solves = 0
        self.last_solve: Dict[str, bool] = {
            "warm_started": False,
            "basis_reused": False,
        }

    # ------------------------------------------------------------------
    def solve(
        self, tm, per_server_demand: float = 1.0, reuse_structure: bool = True
    ) -> ThroughputResult:
        """Solve one TM, warm-starting off any cached matching structure.

        Degenerate conventions and the failure taxonomy are exactly
        those of
        :func:`~repro.throughput.lp.max_concurrent_throughput`.  With
        ``reuse_structure=False`` the solve assembles fresh and caches
        nothing (the cold-bypass contract of ``warm=False``).
        """
        with self._lock:
            return self._solve_locked(tm, per_server_demand, reuse_structure)

    def _solve_locked(
        self, tm, per_server_demand: float, reuse_structure: bool
    ) -> ThroughputResult:
        self.last_solve = {"warm_started": False, "basis_reused": False}
        if tm.num_flows == 0:
            return ThroughputResult(throughput=float("inf"), per_server=1.0)
        tm, dropped = _drop_by_labels(tm, self.labels)
        if tm.num_flows == 0:
            return ThroughputResult(
                throughput=0.0, per_server=0.0, disconnected_pairs=dropped
            )

        obs.add("lp.calls")
        dests, demand_to = _demands_by_destination(tm)
        key = _structure_key(dests, demand_to)
        structure = self._structures.get(key) if reuse_structure else None
        values = np.asarray(
            [demand_to[d][v] for d, v in key[1]], dtype=float
        )
        context = {"topology": self.topology.name, "demands": tm.num_flows}

        if structure is None:
            structure = self._build_structure(dests, demand_to, key[1])
            if reuse_structure:
                self._structures[key] = structure
                while len(self._structures) > self.max_structures:
                    self._structures.popitem(last=False)
            self.cold_solves += 1
            _note("miss")
        else:
            self._structures.move_to_end(key)
            self._patch_values(structure, values)
            self.warm_solves += 1
            self.last_solve["warm_started"] = True
            _note("hit")
            if structure.highs is not None and structure.solved_once:
                self.last_solve["basis_reused"] = True
                _note("basis_reused")

        if structure.highs is not None:
            result = self._solve_highspy(
                structure, per_server_demand, dropped, context
            )
        else:
            result = _solve_exact_assembled(
                self.table,
                structure.num_dests,
                structure.a_eq,
                structure.b_eq,
                structure.a_ub,
                per_server_demand,
                dropped,
                context=context,
            )
        structure.solved_once = True
        structure.solves += 1
        return result

    # ------------------------------------------------------------------
    def _build_structure(
        self,
        dests: List[int],
        demand_to: Dict[int, Dict[int, float]],
        support: Tuple[Tuple[int, int], ...],
    ) -> _LpStructure:
        table = self.table
        num_dests = len(dests)
        n = table.num_nodes
        num_vars = num_dests * table.num_arcs + 1
        t_var = num_vars - 1
        with obs.span(
            "lp.assemble", formulation="exact", demands=len(support)
        ):
            a_eq, b_eq, a_ub = _assemble_exact_vectorized(
                table, dests, demand_to
            )
        dest_index = {d: i for i, d in enumerate(dests)}
        rows = np.empty(len(support), dtype=np.intp)
        slots = np.empty(len(support), dtype=np.intp)
        for i, (d, v) in enumerate(support):
            dn_i = table.node_index[d]
            vi = table.node_index[v]
            row = dest_index[d] * (n - 1) + vi - (vi > dn_i)
            slot = a_eq.indptr[row + 1] - 1
            # t has the largest column index, so its coefficient is the
            # last entry of its (canonically sorted) row.
            if a_eq.indices[slot] != t_var:  # pragma: no cover - invariant
                raise SolverNumericalError(
                    "incremental assembly lost a demand coefficient",
                    formulation="exact",
                )
            rows[i] = row
            slots[i] = slot
        structure = _LpStructure(
            dests=list(dests),
            support=support,
            num_dests=num_dests,
            a_eq=a_eq,
            b_eq=b_eq,
            a_ub=a_ub,
            demand_slots=slots,
            demand_rows=rows,
            values=-a_eq.data[slots].copy(),
        )
        if self.use_highspy:
            structure.highs = self._build_highs_model(structure)
        self.models_built += 1
        _note("models_built")
        return structure

    def _patch_values(
        self, structure: _LpStructure, values: np.ndarray
    ) -> None:
        """Mutate only the changed demand coefficients (scipy + highspy)."""
        changed = np.nonzero(values != structure.values)[0]
        if changed.size == 0:
            return
        structure.a_eq.data[structure.demand_slots[changed]] = -values[changed]
        if structure.highs is not None:
            t_var = structure.num_dests * self.table.num_arcs
            for i in changed:
                structure.highs.changeCoeff(
                    int(structure.demand_rows[i]), t_var, float(-values[i])
                )
        structure.values = values.copy()

    # ------------------------------------------------------------------
    # highspy model: built once, mutated + re-solved from the basis
    # ------------------------------------------------------------------
    def _build_highs_model(self, structure: _LpStructure):
        import scipy.sparse as sp

        highspy = _highspy()
        table = self.table
        num_vars = structure.num_dests * table.num_arcs + 1
        num_eq = structure.a_eq.shape[0]
        matrix = sp.vstack([structure.a_eq, structure.a_ub]).tocsc()
        inf = highspy.kHighsInf

        lp = highspy.HighsLp()
        lp.num_col_ = num_vars
        lp.num_row_ = num_eq + table.num_arcs
        lp.col_cost_ = _c_for_exact(num_vars)
        lp.col_lower_ = np.zeros(num_vars)
        lp.col_upper_ = np.full(num_vars, inf)
        lp.row_lower_ = np.concatenate(
            [np.zeros(num_eq), np.full(table.num_arcs, -inf)]
        )
        lp.row_upper_ = np.concatenate(
            [np.zeros(num_eq), np.asarray(table.caps, dtype=float)]
        )
        lp.a_matrix_.format_ = highspy.MatrixFormat.kColwise
        lp.a_matrix_.start_ = matrix.indptr
        lp.a_matrix_.index_ = matrix.indices
        lp.a_matrix_.value_ = matrix.data

        h = highspy.Highs()
        h.setOptionValue("output_flag", False)
        h.setOptionValue("threads", 1)
        h.passModel(lp)
        return h

    def _solve_highspy(
        self,
        structure: _LpStructure,
        per_server_demand: float,
        dropped: int,
        context: Dict[str, Any],
    ) -> ThroughputResult:
        highspy = _highspy()
        table = self.table
        num_arcs = table.num_arcs
        num_dests = structure.num_dests
        t_var = num_dests * num_arcs
        h = structure.highs
        with obs.span(
            "lp.solve", formulation="exact", variables=t_var + 1,
            warm=structure.solved_once,
        ):
            h.run()
        status = h.getModelStatus()
        info = h.getInfo()
        iterations = int(getattr(info, "simplex_iteration_count", 0) or 0)
        obs.add("lp.solver_iterations", iterations)
        if status != highspy.HighsModelStatus.kOptimal:
            raise self._classify_highs_status(
                highspy, status, iterations, context
            )
        x = np.asarray(h.getSolution().col_value, dtype=float)
        t = float(x[t_var])

        utilization: Dict[Tuple[int, int], float] = {}
        flows = x[:t_var].reshape(num_dests, num_arcs).sum(axis=0)
        caps = table.caps
        for a, (u, v) in enumerate(table.arcs):
            utilization[(u, v)] = float(flows[a] / caps[a]) if caps[a] else 0.0
        return ThroughputResult(
            throughput=t,
            per_server=min(1.0, t * per_server_demand),
            link_utilization=utilization,
            disconnected_pairs=dropped,
            iterations=iterations,
        )

    @staticmethod
    def _classify_highs_status(
        highspy, status, iterations: int, context: Dict[str, Any]
    ) -> SolverFailure:
        name = str(status)
        kinds = {
            getattr(highspy.HighsModelStatus, "kInfeasible", None):
                InfeasibleError,
            getattr(highspy.HighsModelStatus, "kUnbounded", None):
                UnboundedError,
            getattr(highspy.HighsModelStatus, "kUnboundedOrInfeasible", None):
                InfeasibleError,
        }
        cls = kinds.get(status, SolverNumericalError)
        return cls(
            f"throughput LP failed: HiGHS reported {name}",
            formulation="exact",
            iterations=iterations,
            context=context,
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """JSON-ready per-context counters (for ``/context`` surfacing)."""
        with self._lock:
            return {
                "structures": len(self._structures),
                "max_structures": self.max_structures,
                "models_built": self.models_built,
                "warm_solves": self.warm_solves,
                "cold_solves": self.cold_solves,
                "highspy": self.use_highspy,
            }


# ----------------------------------------------------------------------
# Outcome wrapper: SolveOutcome with warm-start flags + observed span
# ----------------------------------------------------------------------
def incremental_solve_outcome(
    context: IncrementalTopologyContext,
    tm,
    per_server_demand: float = 1.0,
    backend_name: str = "highs-incremental",
    reuse_structure: bool = True,
):
    """One incremental solve, classified like :func:`~.base.solve_outcome`
    but carrying the per-solve ``warm_started`` / ``basis_reused`` flags
    on the outcome *and* on the recorded ``solver.solve`` span."""
    from .base import SolveOutcome, SolveStatus, _status_of

    t0 = time.perf_counter()
    status = SolveStatus.OPTIMAL
    result: Optional[ThroughputResult] = None
    message = ""
    error: Optional[SolverFailure] = None
    iterations = 0
    try:
        result = context.solve(
            tm, per_server_demand, reuse_structure=reuse_structure
        )
        iterations = result.iterations
    except SolverFailure as exc:
        status = _status_of(exc)
        message = str(exc)
        error = exc
        iterations = exc.iterations
    elapsed = time.perf_counter() - t0
    info = context.last_solve
    run = obs.current()
    if run is not None:
        run.record_span(
            "solver.solve",
            t0,
            elapsed,
            attrs={
                "backend": backend_name,
                "warm_started": info["warm_started"],
                "basis_reused": info["basis_reused"],
            },
        )
    obs.add(f"solver.status.{status.value}")
    return SolveOutcome(
        status=status,
        backend=backend_name,
        result=result,
        iterations=iterations,
        wall_time_s=elapsed,
        message=message,
        error=error,
        warm_started=info["warm_started"],
        basis_reused=info["basis_reused"],
    )


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class HighsIncrementalBackend:
    """Exact edge LP with cross-point *and* cross-call warm starts.

    Holds one :class:`IncrementalTopologyContext` for the most recent
    topology (fingerprint-keyed, so a changed topology — including a
    capacity-only change — rebuilds the model rather than reusing a
    stale basis).  ``solve_many(..., warm=True)`` reuses the context
    across calls; ``warm=False`` solves every point from fresh assembly,
    caching nothing.

    ``mode`` selects the engine: ``"auto"`` uses ``highspy`` when the
    ``[perf]`` extra is installed and falls back to the pure-scipy
    structure-reuse path otherwise; ``"highspy"`` requires the extra;
    ``"fallback"`` forces scipy (the byte-identical-to-``highs-exact``
    path) even when ``highspy`` is available.
    """

    name = "highs-incremental"
    supports_batching = True

    def __init__(self, mode: str = "auto"):
        if mode not in ("auto", "highspy", "fallback"):
            raise ValueError(
                f"mode must be auto/highspy/fallback, got {mode!r}"
            )
        if mode == "highspy" and not have_highspy():
            raise ValueError(
                "mode='highspy' needs the optional highspy dependency; "
                "install the [perf] extra (pip install 'repro[perf]')"
            )
        self.mode = mode
        self._context: Optional[IncrementalTopologyContext] = None
        self._lock = threading.Lock()

    @property
    def _use_highspy(self) -> Optional[bool]:
        if self.mode == "auto":
            return None
        return self.mode == "highspy"

    def context_for(
        self, topology, warm: bool = True
    ) -> Tuple[IncrementalTopologyContext, bool]:
        """The (possibly reused) context for ``topology``.

        Returns ``(context, was_reused)``.  Reuse requires ``warm`` and
        a matching capacity-aware fingerprint; anything else builds (and
        with ``warm``, installs) a fresh context — the forced
        refactorization path.
        """
        fingerprint = topology_fingerprint(topology)
        with self._lock:
            context = self._context
            if (
                warm
                and context is not None
                and context.fingerprint == fingerprint
            ):
                _note("context_hit")
                return context, True
            _note("context_miss")
            context = IncrementalTopologyContext(
                topology, use_highspy=self._use_highspy
            )
            if warm:
                self._context = context
            return context, False

    def context_stats(self) -> Optional[Dict[str, int]]:
        """Stats of the live context (``None`` before the first solve)."""
        with self._lock:
            return None if self._context is None else self._context.stats()

    def solve(self, topology, tm, per_server_demand: float = 1.0):
        """Solve one TM; warm-starts off prior calls on the same topology."""
        return self.solve_many(topology, [tm], per_server_demand)[0]

    def solve_many(
        self,
        topology,
        tms: Sequence,
        per_server_demand: float = 1.0,
        warm: bool = True,
    ) -> List:
        """Solve many TMs with cross-point (and cross-call) warm starts.

        With ``warm=False`` every point is solved from fresh assembly —
        the cold bypass used by equivalence tests and cold baselines.
        """
        context, reused = self.context_for(topology, warm=warm)
        with obs.span(
            "solver.solve_many",
            backend=self.name,
            points=len(tms),
            context_reused=reused,
        ):
            return [
                incremental_solve_outcome(
                    context,
                    tm,
                    per_server_demand,
                    backend_name=self.name,
                    reuse_structure=warm,
                )
                for tm in tms
            ]
