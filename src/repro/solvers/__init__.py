"""Multi-backend throughput solving behind the fluid-flow engine.

The throughput engine historically hard-wired two code paths (exact /
paths LP) and raised bare exceptions on failure.  This package puts a
backend abstraction in front of it:

* :class:`SolverBackend` — ``solve(topology, tm)`` →
  :class:`SolveOutcome` (status enum: optimal / infeasible / unbounded /
  numerical, iterations, wall time), plus ``solve_many`` for batches;
* ``highs-exact`` / ``highs-batched`` / ``highs-paths`` / ``mcf-approx``
  — the built-in backends (see :mod:`repro.solvers.backends`);
* registry integration — backends live in
  :data:`repro.registry.SOLVERS` and are selectable from
  ``ExperimentSpec`` (``workload.solver``), sweep JSON, and the CLI
  (``--solver``); ``repro.registry.solver("mcf-approx:epsilon=0.1")``
  builds one from a compact spec string.

``highs-batched`` is byte-identical to ``highs-exact`` (same linprog
calls on the same matrices); ``mcf-approx`` is guaranteed within its
(1 - O(epsilon)) bound and never above the exact optimum.  See
``docs/solvers.md``.
"""

from .backends import (
    HighsBatchedBackend,
    HighsExactBackend,
    HighsPathsBackend,
    McfApproxBackend,
    register_builtin_solvers,
)
from .base import SolveOutcome, SolveStatus, SolverBackend, solve_outcome
from .batched import BatchedTopologyContext

__all__ = [
    "SolveStatus",
    "SolveOutcome",
    "SolverBackend",
    "solve_outcome",
    "HighsExactBackend",
    "HighsBatchedBackend",
    "HighsPathsBackend",
    "McfApproxBackend",
    "BatchedTopologyContext",
    "register_builtin_solvers",
]
