"""Multi-backend throughput solving behind the fluid-flow engine.

The throughput engine historically hard-wired two code paths (exact /
paths LP) and raised bare exceptions on failure.  This package puts a
backend abstraction in front of it:

* :class:`SolverBackend` — ``solve(topology, tm)`` →
  :class:`SolveOutcome` (status enum: optimal / infeasible / unbounded /
  numerical, iterations, wall time), plus ``solve_many`` for batches;
* ``highs-exact`` / ``highs-batched`` / ``highs-incremental`` /
  ``highs-paths`` / ``mcf-approx`` — the built-in backends (see
  :mod:`repro.solvers.backends`);
* registry integration — backends live in
  :data:`repro.registry.SOLVERS` and are selectable from
  ``ExperimentSpec`` (``workload.solver``), sweep JSON, and the CLI
  (``--solver``); ``repro.registry.solver("mcf-approx:epsilon=0.1")``
  builds one from a compact spec string.

``highs-batched`` is byte-identical to ``highs-exact`` (same linprog
calls on the same matrices), and so is ``highs-incremental``'s
pure-scipy fallback (patched cached matrices equal fresh assembly);
with the optional ``highspy`` dependency (the ``[perf]`` extra)
``highs-incremental`` re-solves each sweep point with dual simplex from
the previous basis.  ``mcf-approx`` is guaranteed within its
(1 - O(epsilon)) bound and never above the exact optimum.  See
``docs/solvers.md`` and the warm-start section of
``docs/performance.md``.
"""

from .backends import (
    HighsBatchedBackend,
    HighsColgenBackend,
    HighsExactBackend,
    HighsIncrementalBackend,
    HighsPathsBackend,
    McfApproxBackend,
    register_builtin_solvers,
)
from .base import SolveOutcome, SolveStatus, SolverBackend, solve_outcome
from .batched import BatchedTopologyContext
from .colgen import (
    ColgenTopologyContext,
    colgen_solve_outcome,
)
from .incremental import (
    IncrementalTopologyContext,
    have_highspy,
    incremental_solve_outcome,
    reset_warm_start_stats,
    topology_fingerprint,
    warm_start_stats,
)

__all__ = [
    "SolveStatus",
    "SolveOutcome",
    "SolverBackend",
    "solve_outcome",
    "HighsExactBackend",
    "HighsBatchedBackend",
    "HighsIncrementalBackend",
    "HighsColgenBackend",
    "HighsPathsBackend",
    "McfApproxBackend",
    "BatchedTopologyContext",
    "IncrementalTopologyContext",
    "ColgenTopologyContext",
    "incremental_solve_outcome",
    "colgen_solve_outcome",
    "have_highspy",
    "topology_fingerprint",
    "warm_start_stats",
    "reset_warm_start_stats",
    "register_builtin_solvers",
]
