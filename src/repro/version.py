"""The single source of version and hashing-provenance identifiers.

Everything that stamps stored artifacts — the content-addressed result
cache, observability manifests, ``BENCH_*.json`` records, and the
``repro.api`` ``/context`` manifest — reads the identifiers from here,
so a stored result can always be checked against the code that could
have produced it:

* :data:`__version__` — the library release.  The result cache keys on
  it, so a release never serves stale records.
* :data:`SPEC_HASH_VERSION` — the spec-hash algorithm: how
  :meth:`repro.harness.spec.ExperimentSpec.content_hash` canonicalizes
  and digests a spec.  Bump it if the canonical form or digest ever
  changes; two stores with different values must not be merged.
"""

from __future__ import annotations

__all__ = ["__version__", "SPEC_HASH_VERSION"]

__version__ = "1.2.0"

#: Spec-hash algorithm identifier: SHA-256 over the canonical JSON
#: encoding (sorted keys, compact separators, ``name`` excluded,
#: ``failures: null`` dropped) of an ``ExperimentSpec``.
SPEC_HASH_VERSION = "spec-hash/1-sha256"
