"""Library-wide observability: metrics, spans, and a per-run JSONL sink.

Off by default and effectively free while off: every hook in the hot
layers (packet engine, flowsim, LP/MCF solvers, path cache, harness
runner) is one module-global read.  Enable around a region of work and
read back the atomic ``manifest.json`` + ``trace.jsonl``::

    from repro import obs

    with obs.session(run_dir="runs/fig2", meta={"sweep": "fig2.json"}):
        with obs.span("lp.solve", k=8):
            ...
        obs.add("pathcache.hits")

    # afterwards: runs/fig2/manifest.json, runs/fig2/trace.jsonl

``python -m repro profile <sweep.json>`` wraps this end to end: it runs
a sweep in-process under an obs session and prints the per-stage
breakdown (:func:`render_profile`).
"""

from .core import (
    SCHEMA,
    ObsRun,
    add,
    current,
    disable,
    enable,
    enabled,
    event,
    observe,
    session,
    set_gauge,
    snapshot,
    span,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .netreport import (
    LinkStats,
    NetworkReport,
    emit_network_report,
    network_report,
)
from .profile import load_manifest, render_profile, validate_manifest

__all__ = [
    "SCHEMA",
    "ObsRun",
    "enable",
    "disable",
    "enabled",
    "current",
    "session",
    "span",
    "add",
    "set_gauge",
    "observe",
    "event",
    "snapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LinkStats",
    "NetworkReport",
    "network_report",
    "emit_network_report",
    "load_manifest",
    "render_profile",
    "validate_manifest",
]
