"""The observability run state: spans, events, sink, and module API.

One process has at most one active :class:`ObsRun`.  When none is active
(the default), every instrumentation entry point — :func:`span`,
:func:`add`, :func:`observe`, :func:`set_gauge`, :func:`event` — is a
single global read plus a ``None`` check, so instrumented hot paths pay
effectively nothing.  When a run is active, spans and events accumulate
in memory and are flushed once at :func:`disable` time: the JSONL trace
and the ``manifest.json`` summary are both written atomically through
:mod:`repro.ioutils`, so a killed run never leaves a truncated file.

The state is process-local and not thread-safe by design: the library's
parallelism is process-based (:class:`repro.harness.runner.Runner`), and
worker processes simply run unobserved unless they enable their own run.
"""

from __future__ import annotations

import contextlib
import os
import platform
import time
from typing import Any, Dict, Iterator, List, Optional, Union

from ..ioutils import atomic_write_json, atomic_write_text
from .metrics import MetricsRegistry

__all__ = [
    "SCHEMA",
    "ObsRun",
    "Span",
    "enable",
    "disable",
    "enabled",
    "current",
    "session",
    "span",
    "add",
    "set_gauge",
    "observe",
    "event",
    "snapshot",
]

#: Manifest/trace schema identifier; bump on incompatible layout changes.
SCHEMA = "repro.obs/1"


class _NullSpan:
    """The span handed out while observability is disabled: all no-ops."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """A timed section of work; records itself on exit.

    Nesting is tracked through the run's span stack, so a trace line
    carries the enclosing span's name (``parent``) and per-stage
    breakdowns can attribute child time.
    """

    __slots__ = ("name", "attrs", "_run", "_start")

    def __init__(self, run: "ObsRun", name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self._run = run
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._run._stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        end = time.perf_counter()
        run = self._run
        stack = run._stack
        if stack and stack[-1] == self.name:
            stack.pop()
        run.record_span(
            self.name,
            self._start,
            end - self._start,
            attrs=self.attrs,
            parent=stack[-1] if stack else None,
        )
        return False


class ObsRun:
    """All observability state of one run.

    Parameters
    ----------
    run_dir:
        Directory the trace and manifest are written to at
        :meth:`finalize` (``None`` keeps everything in memory — metrics
        and spans are still queryable through :meth:`manifest`).
    run_id:
        Stable identifier recorded in the manifest; defaults to a
        wall-clock stamp plus the PID.
    meta:
        Free-form mapping stored verbatim in the manifest (e.g. the
        sweep file a profile run came from).
    """

    def __init__(
        self,
        run_dir: Optional[str] = None,
        run_id: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.run_dir = run_dir
        self.run_id = run_id or time.strftime("%Y%m%dT%H%M%S") + f"-{os.getpid()}"
        self.meta = dict(meta or {})
        self.metrics = MetricsRegistry()
        self.spans: List[Dict[str, Any]] = []
        self.events: List[Dict[str, Any]] = []
        self._stack: List[str] = []
        self._t0 = time.perf_counter()
        self.started_at = time.time()
        self.finalized = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_span(
        self,
        name: str,
        start: float,
        duration_s: float,
        attrs: Optional[Dict[str, Any]] = None,
        parent: Optional[str] = None,
    ) -> None:
        """Record a finished span.

        ``start`` is a ``time.perf_counter`` reading, so retrospective
        spans (e.g. a runner task observed from the parent process) can
        be recorded with explicit timing.
        """
        self.spans.append(
            {
                "type": "span",
                "name": name,
                "start_s": round(start - self._t0, 9),
                "duration_s": round(max(duration_s, 0.0), 9),
                "parent": parent,
                "attrs": attrs or {},
            }
        )
        self.metrics.histogram(f"span.{name}").observe(max(duration_s, 0.0))

    def record_event(self, kind: str, payload: Dict[str, Any]) -> None:
        self.events.append(
            {
                "type": "event",
                "kind": kind,
                "t_s": round(time.perf_counter() - self._t0, 9),
                **payload,
            }
        )

    # ------------------------------------------------------------------
    # Aggregation and output
    # ------------------------------------------------------------------
    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregates of every recorded span."""
        summary: Dict[str, Dict[str, float]] = {}
        for rec in self.spans:
            agg = summary.get(rec["name"])
            dur = rec["duration_s"]
            if agg is None:
                summary[rec["name"]] = {
                    "count": 1,
                    "total_s": dur,
                    "min_s": dur,
                    "max_s": dur,
                }
            else:
                agg["count"] += 1
                agg["total_s"] += dur
                agg["min_s"] = min(agg["min_s"], dur)
                agg["max_s"] = max(agg["max_s"], dur)
        return {name: summary[name] for name in sorted(summary)}

    def manifest(self) -> Dict[str, Any]:
        """The JSON-ready run summary (what ``manifest.json`` holds)."""
        return {
            "schema": SCHEMA,
            "run_id": self.run_id,
            "started_at_unix": self.started_at,
            "duration_s": round(time.perf_counter() - self._t0, 6),
            "meta": self.meta,
            "library_version": _library_version(),
            "spec_hash_version": _spec_hash_version(),
            "python_version": platform.python_version(),
            "metrics": self.metrics.snapshot(),
            "spans": {
                "count": len(self.spans),
                "by_name": self.span_summary(),
            },
            "events": len(self.events),
            "trace_file": "trace.jsonl" if self.run_dir else None,
        }

    def trace_lines(self) -> List[str]:
        """Every span and event as a JSON line, in start-time order."""
        import json

        records = sorted(
            self.spans + self.events,
            key=lambda r: r.get("start_s", r.get("t_s", 0.0)),
        )
        return [json.dumps(r, sort_keys=True) for r in records]

    def finalize(self) -> Optional[str]:
        """Write the trace and manifest; returns the manifest path.

        Idempotent; a ``None`` :attr:`run_dir` skips the writes (and
        returns ``None``) but still marks the run finalized.
        """
        if self.finalized:
            return self._manifest_path()
        self.finalized = True
        if self.run_dir is None:
            return None
        os.makedirs(self.run_dir, exist_ok=True)
        atomic_write_text(
            os.path.join(self.run_dir, "trace.jsonl"),
            "\n".join(self.trace_lines()) + "\n",
        )
        path = self._manifest_path()
        atomic_write_json(path, self.manifest(), sort_keys=True, indent=2)
        return path

    def _manifest_path(self) -> Optional[str]:
        if self.run_dir is None:
            return None
        return os.path.join(self.run_dir, "manifest.json")


def _library_version() -> str:
    from ..version import __version__

    return __version__


def _spec_hash_version() -> str:
    from ..version import SPEC_HASH_VERSION

    return SPEC_HASH_VERSION


# ----------------------------------------------------------------------
# Module-level state and API
# ----------------------------------------------------------------------
_RUN: Optional[ObsRun] = None


def enable(
    run_dir: Optional[str] = None,
    run_id: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> ObsRun:
    """Start observing; returns the new active :class:`ObsRun`.

    Raises :class:`RuntimeError` if a run is already active — nested
    enables would silently interleave two runs' spans.
    """
    global _RUN
    if _RUN is not None:
        raise RuntimeError(
            f"observability already enabled (run {_RUN.run_id}); "
            "call disable() first"
        )
    _RUN = ObsRun(run_dir=run_dir, run_id=run_id, meta=meta)
    return _RUN


def disable() -> Optional[str]:
    """Stop observing and finalize; returns the manifest path (or None)."""
    global _RUN
    run = _RUN
    if run is None:
        return None
    _RUN = None
    return run.finalize()


def enabled() -> bool:
    """Whether an :class:`ObsRun` is currently active."""
    return _RUN is not None


def current() -> Optional[ObsRun]:
    """The active run, or ``None``."""
    return _RUN


@contextlib.contextmanager
def session(
    run_dir: Optional[str] = None,
    run_id: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Iterator[ObsRun]:
    """``with obs.session(dir) as run:`` — enable now, finalize on exit."""
    run = enable(run_dir=run_dir, run_id=run_id, meta=meta)
    try:
        yield run
    finally:
        if _RUN is run:
            disable()


def span(name: str, **attrs: Any) -> Union[Span, _NullSpan]:
    """A context manager timing one section of work.

    Free when disabled: the shared no-op span is returned without
    allocating anything.
    """
    run = _RUN
    if run is None:
        return _NULL_SPAN
    return Span(run, name, attrs)


def add(name: str, amount: Union[int, float] = 1) -> None:
    """Increment counter ``name`` (no-op while disabled)."""
    run = _RUN
    if run is not None:
        run.metrics.counter(name).add(amount)


def set_gauge(name: str, value: Union[int, float]) -> None:
    """Set gauge ``name`` (no-op while disabled)."""
    run = _RUN
    if run is not None:
        run.metrics.gauge(name).set(value)


def observe(name: str, value: Union[int, float]) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled)."""
    run = _RUN
    if run is not None:
        run.metrics.histogram(name).observe(value)


def event(kind: str, **payload: Any) -> None:
    """Append a structured event to the trace (no-op while disabled)."""
    run = _RUN
    if run is not None:
        run.record_event(kind, payload)


def snapshot() -> Dict[str, Dict[str, float]]:
    """The active run's metrics snapshot (``{}`` while disabled)."""
    run = _RUN
    return run.metrics.snapshot() if run is not None else {}
