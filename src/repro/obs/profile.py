"""Reading obs output back: manifest validation and profile rendering.

The ``python -m repro profile`` CLI (and the CI ``profile-smoke`` step)
consume a finished run's ``manifest.json`` through this module:
:func:`validate_manifest` checks the structural contract of the
``repro.obs/1`` schema, and :func:`render_profile` turns the span
summary and metrics into the human-readable per-stage breakdown.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .core import SCHEMA

__all__ = ["validate_manifest", "load_manifest", "render_profile"]

#: Keys every ``repro.obs/1`` manifest must carry.
_REQUIRED_KEYS = (
    "schema",
    "run_id",
    "started_at_unix",
    "duration_s",
    "meta",
    "metrics",
    "spans",
)

#: Keys every per-name span aggregate must carry.
_SPAN_AGG_KEYS = ("count", "total_s", "min_s", "max_s")


def validate_manifest(manifest: Dict[str, Any]) -> List[str]:
    """Structural problems with a manifest dict; empty list means valid."""
    problems: List[str] = []
    if not isinstance(manifest, dict):
        return [f"manifest is {type(manifest).__name__}, expected dict"]
    for key in _REQUIRED_KEYS:
        if key not in manifest:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    if manifest["schema"] != SCHEMA:
        problems.append(
            f"schema is {manifest['schema']!r}, expected {SCHEMA!r}"
        )
    if not isinstance(manifest["metrics"], dict):
        problems.append("'metrics' is not a mapping")
    spans = manifest["spans"]
    if not isinstance(spans, dict) or "by_name" not in spans:
        problems.append("'spans' is not a {count, by_name} mapping")
    else:
        for name, agg in spans["by_name"].items():
            for key in _SPAN_AGG_KEYS:
                if key not in agg:
                    problems.append(f"span {name!r} aggregate missing {key!r}")
    return problems


def load_manifest(path: str) -> Dict[str, Any]:
    """Load and validate a manifest file; raises ``ValueError`` if invalid."""
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    problems = validate_manifest(manifest)
    if problems:
        raise ValueError(
            f"invalid manifest {path}: " + "; ".join(problems)
        )
    return manifest


def _format_row(cells: List[str], widths: List[int]) -> str:
    return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [_format_row(header, widths)]
    lines.append(_format_row(["-" * w for w in widths], widths))
    lines.extend(_format_row(r, widths) for r in rows)
    return lines


def render_profile(manifest: Dict[str, Any]) -> str:
    """Human-readable per-stage breakdown of a run manifest.

    Spans are sorted by total time (the profile question is "where did
    the time go"); counters and gauges follow, sorted by name.
    """
    lines: List[str] = []
    lines.append(f"run {manifest['run_id']}  ({manifest['duration_s']:.3f}s wall)")
    meta = manifest.get("meta") or {}
    if meta:
        lines.append(
            "meta: " + ", ".join(f"{k}={meta[k]}" for k in sorted(meta))
        )
    lines.append("")

    by_name = manifest["spans"].get("by_name", {})
    if by_name:
        total_wall = max(float(manifest["duration_s"]), 1e-12)
        rows = []
        for name, agg in sorted(
            by_name.items(), key=lambda kv: -kv[1]["total_s"]
        ):
            total = agg["total_s"]
            mean = total / agg["count"] if agg["count"] else 0.0
            rows.append(
                [
                    name,
                    str(int(agg["count"])),
                    f"{total:.4f}",
                    f"{mean * 1e3:.3f}",
                    f"{agg['max_s'] * 1e3:.3f}",
                    f"{100.0 * total / total_wall:.1f}%",
                ]
            )
        lines.append("spans (by total time):")
        lines.extend(
            _table(
                ["span", "count", "total_s", "mean_ms", "max_ms", "wall%"],
                rows,
            )
        )
        lines.append("")

    counters = []
    gauges = []
    for name, snap in sorted(manifest["metrics"].items()):
        if snap.get("type") == "counter":
            counters.append([name, f"{snap['value']:g}"])
        elif snap.get("type") == "gauge":
            gauges.append([name, f"{snap['value']:g}"])
    if counters:
        lines.append("counters:")
        lines.extend(_table(["counter", "value"], counters))
        lines.append("")
    if gauges:
        lines.append("gauges:")
        lines.extend(_table(["gauge", "value"], gauges))
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
