"""Network telemetry: link-level reports, emitted onto the obs sink.

Absorbs what used to live in ``repro.sim.telemetry``: aggregating the
per-link counters the :class:`~repro.sim.link.Link` objects accumulate —
utilization, peak queue, ECN marks, drops — into a network-wide report.
Useful for diagnosing *where* a routing scheme bottlenecks (e.g.
confirming that ECMP's two-adjacent-rack pathology is a single saturated
direct link, §6.1).

The ``network`` argument is duck-typed (anything with ``engine``,
``switches``, and ``hosts``) so this module needs no import from
``repro.sim`` and sits below it in the dependency graph.
:func:`emit_network_report` additionally folds the report's totals into
the active observability run's metrics and trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from . import core

__all__ = ["LinkStats", "NetworkReport", "network_report", "emit_network_report"]


@dataclass
class LinkStats:
    """Counters for one directed link."""

    description: str
    utilization: float
    transmitted_bytes: int
    dropped_packets: int
    marked_packets: int
    max_queue_bytes: int


@dataclass
class NetworkReport:
    """Network-wide link telemetry."""

    elapsed: float
    links: List[LinkStats]

    @property
    def total_drops(self) -> int:
        return sum(l.dropped_packets for l in self.links)

    @property
    def total_marks(self) -> int:
        return sum(l.marked_packets for l in self.links)

    @property
    def max_utilization(self) -> float:
        return max((l.utilization for l in self.links), default=0.0)

    @property
    def mean_utilization(self) -> float:
        if not self.links:
            return 0.0
        return sum(l.utilization for l in self.links) / len(self.links)

    def hottest(self, count: int = 10) -> List[LinkStats]:
        """The ``count`` most utilized links."""
        return sorted(self.links, key=lambda l: -l.utilization)[:count]


def network_report(network: Any, elapsed: Optional[float] = None) -> NetworkReport:
    """Collect link telemetry from a simulated network.

    ``elapsed`` defaults to the engine's current clock; utilization is
    transmitted bits over capacity x elapsed.
    """
    if elapsed is None:
        elapsed = network.engine.now
    stats: List[LinkStats] = []

    def describe(owner: str, link) -> LinkStats:
        return LinkStats(
            description=owner,
            utilization=link.utilization(elapsed),
            transmitted_bytes=link.transmitted_bytes,
            dropped_packets=link.dropped_packets,
            marked_packets=link.marked_packets,
            max_queue_bytes=link.max_queue_bytes,
        )

    for sid, switch in network.switches.items():
        for neighbor, link in switch.switch_ports.items():
            stats.append(describe(f"switch {sid} -> switch {neighbor}", link))
        for server, link in switch.host_ports.items():
            stats.append(describe(f"switch {sid} -> server {server}", link))
    for hid, host in network.hosts.items():
        if host.uplink is not None:
            stats.append(describe(f"server {hid} -> switch {host.tor}", host.uplink))
    return NetworkReport(elapsed=elapsed, links=stats)


def emit_network_report(
    network: Any, elapsed: Optional[float] = None
) -> NetworkReport:
    """:func:`network_report` plus metrics/trace output when obs is on.

    Folds the report's totals into ``sim.*`` counters and gauges and
    appends a ``network_report`` event summarizing the run's hot links.
    """
    report = network_report(network, elapsed)
    run = core.current()
    if run is not None:
        metrics = run.metrics
        metrics.counter("sim.link_drops").add(report.total_drops)
        metrics.counter("sim.link_ecn_marks").add(report.total_marks)
        metrics.gauge("sim.max_link_utilization").set(report.max_utilization)
        metrics.gauge("sim.mean_link_utilization").set(report.mean_utilization)
        metrics.gauge("sim.max_queue_bytes").set(
            max((l.max_queue_bytes for l in report.links), default=0)
        )
        run.record_event(
            "network_report",
            {
                "elapsed": report.elapsed,
                "links": len(report.links),
                "total_drops": report.total_drops,
                "total_marks": report.total_marks,
                "max_utilization": report.max_utilization,
                "hottest": [
                    {
                        "link": l.description,
                        "utilization": l.utilization,
                        "drops": l.dropped_packets,
                    }
                    for l in report.hottest(3)
                ],
            },
        )
    return report
