"""Metric primitives: counters, gauges, histograms, and their registry.

The primitives are deliberately tiny — a :class:`Counter` is one float
slot, a :class:`Histogram` keeps running ``count/total/min/max`` rather
than buckets — because they sit behind the hot layers of the library and
must cost nothing when observability is disabled and almost nothing when
it is enabled.  Aggregation (per-stage breakdowns, manifests) happens
once at the end of a run from :meth:`MetricsRegistry.snapshot`.
"""

from __future__ import annotations

from typing import Dict, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount

    def snapshot(self) -> Dict[str, float]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, float]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Running summary of observed values (count / total / min / max).

    Bucketless by design: the library's consumers want per-stage totals
    and means (``repro profile``), not quantile sketches, and four float
    slots keep :meth:`observe` cheap enough for per-call span timing.
    """

    __slots__ = ("count", "total", "min", "max")
    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "type": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


_Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, created on first use.

    A name is bound to one metric type for the registry's lifetime;
    asking for the same name as a different type is a bug and raises.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get(self, name: str, cls) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls()
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready state of every metric, sorted by name."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def reset(self) -> None:
        self._metrics.clear()
