"""Result aggregation and plain-text table/series rendering."""

from .tables import format_number, format_series, format_table

__all__ = ["format_table", "format_series", "format_number"]
