"""Plain-text rendering of experiment results.

The benchmark harness regenerates the paper's tables and figure series as
aligned ASCII tables, so results can be compared against the paper by eye
and diffed between runs.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Union

__all__ = ["format_table", "format_series", "format_number"]

Number = Union[int, float]


def format_number(value: object, precision: int = 4) -> str:
    """Human-friendly fixed-width formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[format_number(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(parts: Sequence[str]) -> str:
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in cells:
        out.append(line(row))
    return "\n".join(out)


def format_series(
    x_label: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    title: str = "",
) -> str:
    """Render one x-column and several named y-columns (a 'figure')."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            ys = series[name]
            row.append(ys[i] if i < len(ys) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title)
