"""Atomic file-write helpers shared by the on-disk caches.

Every cache in the library (harness result cache, perf path cache)
writes through these helpers: the payload lands in a temp file in the
destination directory and is moved into place with :func:`os.replace`,
so a concurrent reader never observes a truncated entry and a crashed
writer leaves no partial file behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def atomic_write_bytes(path: str, payload: bytes) -> str:
    """Atomically write ``payload`` to ``path``; returns ``path``.

    The parent directory is created if missing.
    """
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(payload)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


def atomic_write_text(path: str, text: str) -> str:
    """Atomically write ``text`` (UTF-8) to ``path``."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str, payload: Any, **dump_kwargs: Any) -> str:
    """Atomically serialize ``payload`` as JSON to ``path``."""
    return atomic_write_text(path, json.dumps(payload, **dump_kwargs))
