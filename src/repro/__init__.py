"""repro: a reproduction of "Beyond fat-trees without antennae, mirrors,
and disco-balls" (Kassing et al., SIGCOMM 2017).

The package provides:

* :mod:`repro.topologies` — fat-trees, Jellyfish, Xpander, SlimFly,
  LongHop, and analytic models of dynamic (reconfigurable) networks;
* :mod:`repro.traffic` — the paper's traffic matrices, pair
  distributions (A2A, Permute, Skew, ProjecToR-like), flow-size
  distributions (pFabric web search, Pareto-HULL), and workloads;
* :mod:`repro.throughput` — fluid-flow throughput: exact and path-based
  max-concurrent-flow LPs, a Garg–Könemann FPTAS, NSDI'14 upper bounds,
  and the throughput-proportionality flexibility metric;
* :mod:`repro.sim` — a packet-level discrete-event simulator with DCTCP
  and ECMP / VLB / HYB routing;
* :mod:`repro.flowsim` — a fast flow-level (max-min fair) simulator;
* :mod:`repro.perf` — shared per-topology path/routing caches (distance
  matrices, ECMP tables, k-shortest-path sets) behind the hot paths;
* :mod:`repro.cost` — Table 1's per-port cost model and equal-cost
  network sizing;
* :mod:`repro.analysis` — plain-text rendering of results;
* :mod:`repro.harness` — parallel sweep orchestration over declarative
  experiment specs with content-addressed result caching
  (``python -m repro sweep``);
* :mod:`repro.obs` — opt-in observability: metrics, spans, and a
  per-run JSONL trace + manifest (``python -m repro profile``);
* :mod:`repro.registry` — string-spec construction registry for
  topologies, traffic patterns, routing policies, failure modes, and
  throughput solver backends;
* :mod:`repro.solvers` — pluggable throughput solver backends
  (``highs-exact``, ``highs-batched``, ``highs-paths``, ``mcf-approx``)
  returning typed :class:`~repro.solvers.SolveOutcome` values;
* :mod:`repro.resilience` — seeded failure scenarios,
  ``topology.degrade(...)``, and "throughput retained vs. fraction
  failed" campaigns (``python -m repro resilience``);
* :mod:`repro.api` — a long-lived, stdlib-only HTTP service exposing
  throughput/simulate/sweep/compare/design over warm shared state
  (``python -m repro serve``), plus the typed
  :class:`~repro.api.ReproClient` facade;
* :mod:`repro.design` — inverse design: the staged search for the
  cheapest network meeting a declarative SLO target
  (``python -m repro design``).

Quickstart::

    from repro.topologies import fattree, xpander_from_budget
    from repro.traffic import Workload, PoissonArrivals, pfabric_web_search
    from repro.traffic import permute_pair_distribution
    from repro.sim import run_packet_experiment

    ft = fattree(8).topology
    xp = xpander_from_budget(num_switches=53, ports_per_switch=8,
                             servers_total=ft.num_servers)
    wl = Workload(permute_pair_distribution(xp, 0.31),
                  pfabric_web_search(), PoissonArrivals(2000.0))
    stats = run_packet_experiment(xp, wl, routing="hyb")
    print(stats.summary())
"""

from . import (
    analysis,
    api,
    cost,
    design,
    flowsim,
    harness,
    obs,
    perf,
    registry,
    resilience,
    sim,
    solvers,
    throughput,
    topologies,
    traffic,
)
from .version import SPEC_HASH_VERSION, __version__

__all__ = [
    "topologies",
    "traffic",
    "throughput",
    "sim",
    "flowsim",
    "perf",
    "cost",
    "analysis",
    "harness",
    "api",
    "obs",
    "registry",
    "resilience",
    "solvers",
    "design",
    "SPEC_HASH_VERSION",
    "__version__",
]
