"""Fluid-flow throughput engine: LPs, FPTAS, bounds, proportionality."""

from .adversarial import (
    Conjecture24Evidence,
    adversarial_matching_tm,
    conjecture_2_4_evidence,
    random_hose_tm,
)
from .bounds import (
    best_static_throughput_bound,
    moore_bound_mean_distance,
    tm_throughput_upper_bound,
)
from .errors import (
    InfeasibleError,
    SolverFailure,
    SolverNumericalError,
    UnboundedError,
)
from .colgen import path_colgen_throughput
from .lp import ThroughputResult, max_concurrent_throughput, path_throughput
from .mcf import approx_concurrent_throughput
from .paths import all_shortest_paths, ecmp_next_hops, k_shortest_paths, path_edges
from .proportionality import (
    SkewSweepResult,
    fattree_flexibility_curve,
    skew_sweep,
    tp_curve,
)

__all__ = [
    "ThroughputResult",
    "SolverFailure",
    "InfeasibleError",
    "UnboundedError",
    "SolverNumericalError",
    "random_hose_tm",
    "adversarial_matching_tm",
    "conjecture_2_4_evidence",
    "Conjecture24Evidence",
    "max_concurrent_throughput",
    "path_throughput",
    "path_colgen_throughput",
    "approx_concurrent_throughput",
    "tm_throughput_upper_bound",
    "best_static_throughput_bound",
    "moore_bound_mean_distance",
    "k_shortest_paths",
    "all_shortest_paths",
    "ecmp_next_hops",
    "path_edges",
    "tp_curve",
    "fattree_flexibility_curve",
    "SkewSweepResult",
    "skew_sweep",
]
