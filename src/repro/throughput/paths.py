"""Path utilities: k-shortest paths (Yen's algorithm) and ECMP path sets.

Used by the path-based throughput LP and by the routing layer of the
packet simulator (ECMP next-hop sets, VLB segments).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = [
    "k_shortest_paths",
    "all_shortest_paths",
    "ecmp_next_hops",
    "path_edges",
]


def path_edges(path: Sequence[int]) -> List[Tuple[int, int]]:
    """Directed edge list of a node path."""
    return list(zip(path[:-1], path[1:]))


def k_shortest_paths(
    graph: nx.Graph, src: int, dst: int, k: int, weight: Optional[str] = None
) -> List[List[int]]:
    """Yen's algorithm: the k shortest loopless paths from src to dst.

    Delegates to :func:`networkx.shortest_simple_paths` (an implementation
    of Yen's algorithm) and truncates at ``k`` paths.  With ``weight=None``
    paths are compared by hop count.  Disconnected pairs — including an
    endpoint that failures removed from the graph entirely — yield ``[]``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    paths: List[List[int]] = []
    try:
        for p in nx.shortest_simple_paths(graph, src, dst, weight=weight):
            paths.append(list(p))
            if len(paths) == k:
                break
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return []
    return paths


def all_shortest_paths(
    graph: nx.Graph, src: int, dst: int, limit: Optional[int] = None
) -> List[List[int]]:
    """All shortest (hop-count) paths from src to dst, optionally capped."""
    out: List[List[int]] = []
    try:
        for p in nx.all_shortest_paths(graph, src, dst):
            out.append(list(p))
            if limit is not None and len(out) >= limit:
                break
    except nx.NetworkXNoPath:
        return []
    return out


def ecmp_next_hops(graph: nx.Graph, dst: int) -> Dict[int, List[int]]:
    """ECMP next-hop sets toward ``dst`` for every node.

    A neighbor ``w`` of ``v`` is a valid ECMP next hop iff
    ``dist(w, dst) == dist(v, dst) - 1``.  Next hops are sorted for
    deterministic hashing.  The destination maps to an empty list.
    """
    dist = nx.single_source_shortest_path_length(graph, dst)
    table: Dict[int, List[int]] = {}
    for v in graph.nodes():
        if v == dst or v not in dist:
            table[v] = []
            continue
        table[v] = sorted(
            w for w in graph.neighbors(v) if dist.get(w, float("inf")) == dist[v] - 1
        )
    return table
