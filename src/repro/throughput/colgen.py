"""Path-based column generation for the exact max-concurrent-flow LP.

The destination-aggregated edge formulation (:mod:`repro.throughput.lp`)
carries ``#destinations x #arcs`` variables, which stops scaling near 64
switches.  This module solves the *same* problem — to the same optimum —
through its path formulation instead: a **restricted master problem**
over a pool of candidate paths, grown by a **pricing loop** until no
path anywhere in the graph could improve the optimum.

Master (variables: one flow per pooled path, plus the concurrency ``t``)::

    max  t
    s.t. sum(flows on demand i's paths) - t * d_i  = 0     (per demand)
         sum(flows crossing arc a)               <= cap_a  (per arc)

Pricing: at a master optimum, the duals price the network — ``lam_i``
per demand row and a nonnegative congestion price ``w_a`` per arc.  A
path for demand ``i`` has negative reduced cost iff its ``w``-length is
below ``lam_i``, so one multi-source Dijkstra over the arc prices finds
the best candidate column for *every* demand at once.  When no demand
has such a path, LP duality certifies the restricted optimum equals the
full-formulation optimum — the result is exact, not a bound, unlike
:func:`~repro.throughput.lp.path_throughput`'s fixed-k restriction.

Three tricks keep the loop short and the endgame honest:

* the pool is warm-started with k shortest paths per demand (served by
  the shared :class:`~repro.perf.PathCache`) plus a multiplicative-
  weights sweep (Garg–Könemann-style length inflation) that routes every
  demand over progressively congestion-averse trees — so the first
  master already contains a near-optimal support and pricing only has to
  patch the tail;
* the master runs at the solver's default tolerances while columns are
  still arriving, and only after pricing dries up are the feasibility
  tolerances tightened to 1e-10 for a **polish** re-solve from the
  current basis (cheap) followed by a final pricing pass that must come
  back clean — tight tolerances during the loop would pay a large
  simplex tax for duals that are about to change anyway;
* a duality-gap certificate is tracked every round: the master objective
  is a valid lower bound, and for *any* nonnegative arc prices ``w``,
  ``sum(cap * w) / sum(d_i * dist_w(s_i, t_i))`` bounds the optimum from
  above.

Two engines share the formulation:

* the scipy-bundled HiGHS core (``scipy.optimize._highspy._core``) —
  model built once, new columns appended with ``addCols`` and re-solved
  warm from the previous basis;
* a pure ``linprog`` fallback (used when the private module is absent)
  that re-assembles the restricted master each round — same pool, same
  pricing, same stop rule, just without warm re-solves.

Degenerate conventions, the failure taxonomy, and the result type are
exactly those of :func:`~repro.throughput.lp.max_concurrent_throughput`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csgraph

from .. import obs
from ..topologies.base import Topology
from ..traffic.matrix import TrafficMatrix
from .arcs import ArcTable
from .errors import SolverNumericalError, raise_for_linprog
from .lp import (
    ThroughputResult,
    _component_labels,
    _drop_by_labels,
)

__all__ = [
    "ColgenStats",
    "have_highs_core",
    "path_colgen_throughput",
    "colgen_solve",
]

#: Pricing threshold: a path improves iff dist_w < lam - TOL.
_PRICE_TOL = 1e-10
#: Relative duality-gap certificate below which the loop may polish.
_GAP_TOL = 1e-10
#: Multiplicative-weights inflation rate for the pool-building sweep.
_MWU_EPS = 0.25
#: Persistent-pool bound per demand pair (warm contexts; the optimum's
#: support rarely needs more than a few dozen paths per demand).
POOL_CAP_PER_PAIR = 64

# ----------------------------------------------------------------------
# Optional scipy-bundled HiGHS core (no new dependency: scipy ships it)
# ----------------------------------------------------------------------
_CORE: Optional[Any] = None
_CORE_CHECKED = False
_CORE_LOCK = threading.Lock()


def have_highs_core() -> bool:
    """Whether scipy's bundled HiGHS core bindings import.

    This is scipy's own private ``_highspy`` module (present in every
    scipy build that ships the HiGHS ``linprog`` methods), not the
    standalone ``highspy`` package — no extra install involved.  When it
    is absent the column-generation loop falls back to re-assembled
    ``linprog`` masters: same optimum, no warm re-solves.
    """
    return _highs_core() is not None


def _highs_core() -> Optional[Any]:
    global _CORE, _CORE_CHECKED
    with _CORE_LOCK:
        if not _CORE_CHECKED:
            _CORE_CHECKED = True
            try:
                from scipy.optimize._highspy import _core  # type: ignore

                # The surface we need; older/newer layouts fall back.
                for attr in ("_Highs", "HighsLp", "kHighsInf",
                             "MatrixFormat", "HighsModelStatus"):
                    if not hasattr(_core, attr):
                        raise ImportError(f"missing {attr}")
                _CORE = _core
            except ImportError:
                _CORE = None
        return _CORE


@dataclass
class ColgenStats:
    """Per-solve column-generation telemetry (JSON-ready).

    Attributes
    ----------
    engine:
        ``"highs-core"`` (warm ``addCols`` loop) or ``"linprog"``
        (re-assembled fallback masters).
    rounds:
        Pricing rounds run (each = one master optimum priced).
    columns:
        Columns in the final restricted master (excluding ``t``).
    columns_added:
        Columns the pricing loop added beyond the initial pool.
    phases:
        Multiplicative-weights pool-building sweeps run.
    polishes:
        Tight-tolerance endgame re-solves (highs-core engine only).
    pool_warm:
        True when a persistent pool already covered every demand pair
        (warm context re-solve: the MWU sweep is skipped).
    """

    engine: str = "highs-core"
    rounds: int = 0
    columns: int = 0
    columns_added: int = 0
    phases: int = 0
    polishes: int = 0
    pool_warm: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "rounds": self.rounds,
            "columns": self.columns,
            "columns_added": self.columns_added,
            "phases": self.phases,
            "polishes": self.polishes,
            "pool_warm": self.pool_warm,
        }


# ----------------------------------------------------------------------
# Shared per-solve machinery
# ----------------------------------------------------------------------
class _Pricer:
    """Demand arrays + shortest-path-tree column extraction.

    One multi-source Dijkstra (over the unique demand sources) prices
    every demand at once; tree paths are decoded into arc-id tuples via
    a dense (tail, head) -> arc lookup table.
    """

    def __init__(self, table: ArcTable, demands) -> None:
        self.table = table
        self.csr, self.perm = table.csr_structure()
        node_index = table.node_index
        self.nd = len(demands)
        self.dem_vals = np.asarray([v for _, v in demands], dtype=float)
        self.srcs = np.asarray(
            [node_index[s] for (s, _), _ in demands], dtype=np.intp
        )
        self.dsts = np.asarray(
            [node_index[d] for (_, d), _ in demands], dtype=np.intp
        )
        self.unique_srcs, self.inv = np.unique(self.srcs, return_inverse=True)
        n = table.num_nodes
        self._n = n
        lut = np.full(n * n, -1, dtype=np.int64)
        lut[table.tails.astype(np.int64) * n + table.heads.astype(np.int64)] = (
            np.arange(table.num_arcs)
        )
        self.arc_lut = lut

    def tree_paths(
        self, lengths: np.ndarray
    ) -> Tuple[List[Optional[Tuple[int, ...]]], np.ndarray]:
        """Shortest path per demand under per-arc ``lengths``.

        Returns ``(columns, dist)`` where ``columns[i]`` is demand i's
        tree path as an arc-id tuple (``None`` if unreachable) and
        ``dist`` is the raw Dijkstra distance matrix over the unique
        sources.
        """
        self.csr.data = lengths[self.perm]
        dist, pred = csgraph.dijkstra(
            self.csr, directed=True, indices=self.unique_srcs,
            return_predecessors=True,
        )
        n = self._n
        lut = self.arc_lut
        out: List[Optional[Tuple[int, ...]]] = []
        for i in range(self.nd):
            row = self.inv[i]
            dcol = int(self.dsts[i])
            scol = int(self.srcs[i])
            if not np.isfinite(dist[row, dcol]):
                out.append(None)
                continue
            path: List[int] = []
            v = dcol
            while v != scol:
                u = int(pred[row, v])
                path.append(int(lut[u * n + v]))
                v = u
            path.reverse()
            out.append(tuple(path))
        return out, dist

    def demand_dists(self, dist: np.ndarray) -> np.ndarray:
        """Per-demand source->destination distances from a Dijkstra run."""
        return dist[self.inv, self.dsts]


class _Pool:
    """The restricted master's column pool: arc-id tuples per demand."""

    def __init__(self, nd: int) -> None:
        self.cols: List[Tuple[int, ...]] = []
        self.owners: List[int] = []
        self._sets: List[set] = [set() for _ in range(nd)]

    def add(self, di: int, col: Tuple[int, ...]) -> bool:
        if col in self._sets[di]:
            return False
        self._sets[di].add(col)
        self.cols.append(col)
        self.owners.append(di)
        return True

    def __len__(self) -> int:
        return len(self.cols)


def _upper_bound(
    pricer: _Pricer, caps: np.ndarray, w: np.ndarray, dists: np.ndarray
) -> float:
    """Rigorous dual bound: valid for ANY nonnegative arc prices ``w``."""
    denom = float(
        np.dot(pricer.dem_vals, np.where(np.isfinite(dists), dists, 0.0))
    )
    if denom <= 0:
        return float("inf")
    return float(np.dot(caps, w)) / denom


def _mwu_sweep(
    pricer: _Pricer, pool: _Pool, caps: np.ndarray, phases: int
) -> None:
    """Garg–Könemann-style pool builder: route every demand on a
    shortest tree, inflate traversed arc lengths by demand/capacity,
    repeat — the visited trees approximate the optimal support."""
    if phases <= 0:
        return
    lengths = 1.0 / caps
    dem_vals = pricer.dem_vals
    for _ in range(phases):
        paths, _ = pricer.tree_paths(lengths)
        flats = [np.asarray(c, dtype=np.intp) for c in paths if c]
        if not flats:
            return
        flat = np.concatenate(flats)
        vals = np.concatenate(
            [np.full(len(c), dem_vals[i]) for i, c in enumerate(paths) if c]
        )
        for i, col in enumerate(paths):
            if col is not None:
                pool.add(i, col)
        np.multiply.at(lengths, flat, 1.0 + _MWU_EPS * vals / caps[flat])


def _price_round(
    pricer: _Pricer,
    pool: _Pool,
    caps: np.ndarray,
    lam: np.ndarray,
    w: np.ndarray,
    passes: int,
) -> Tuple[int, bool, float]:
    """One pricing round at duals ``(lam, w)``.

    Pass 1 uses the true arc prices (its tree certifies/violates
    optimality and feeds the dual bound); the remaining ``passes - 1``
    sweeps inflate the prices multiplicatively to collect *diverse*
    candidate columns near the congested arcs.  Returns
    ``(new_columns, improving, upper_bound)`` — ``improving`` reflects
    the true-dual pass only.
    """
    paths, dist = pricer.tree_paths(w)
    dists = pricer.demand_dists(dist)
    ub = _upper_bound(pricer, caps, w, dists)
    added = 0
    improving = False
    for i in range(pricer.nd):
        if lam[i] <= _PRICE_TOL:
            continue
        if dists[i] < lam[i] - _PRICE_TOL:
            improving = True
            if paths[i] is not None and pool.add(i, paths[i]):
                added += 1
    if improving and passes > 1:
        wl = w.copy()
        dem_vals = pricer.dem_vals
        for _ in range(passes - 1):
            flats = [np.asarray(c, dtype=np.intp) for c in paths if c]
            if flats:
                flat = np.concatenate(flats)
                vals = np.concatenate(
                    [np.full(len(c), dem_vals[i])
                     for i, c in enumerate(paths) if c]
                )
                np.multiply.at(wl, flat, 1.0 + _MWU_EPS * vals / caps[flat])
            paths, _ = pricer.tree_paths(wl)
            for i, col in enumerate(paths):
                if col is not None and pool.add(i, col):
                    added += 1
    return added, improving, ub


def _master_arrays(
    pool: _Pool, dem_vals: np.ndarray, nd: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized column-wise master assembly.

    Returns ``(starts, idx, val, counts, flat)`` for the ``len(pool)``
    path columns followed by the ``t`` column (entry ``-d_i`` in every
    demand row).  Rows: ``[0, nd)`` demand equalities, ``[nd, nd+m)``
    arc capacities.
    """
    nv = len(pool)
    counts = np.asarray([len(c) for c in pool.cols], dtype=np.int64)
    flat = (
        np.concatenate([np.asarray(c, dtype=np.int64) for c in pool.cols])
        if nv
        else np.empty(0, dtype=np.int64)
    )
    col_nnz = counts + 1  # the owner-row entry plus one entry per arc
    starts = np.zeros(nv + 2, dtype=np.int64)
    starts[1:nv + 1] = np.cumsum(col_nnz)
    starts[nv + 1] = starts[nv] + nd
    total = int(starts[-1])
    idx = np.empty(total, dtype=np.int32)
    val = np.ones(total)
    idx[starts[:nv]] = np.asarray(pool.owners, dtype=np.int32)
    arc_pos = np.repeat(starts[:nv] + 1, counts) + (
        np.concatenate([np.arange(c) for c in counts])
        if nv
        else np.empty(0, dtype=np.int64)
    )
    idx[arc_pos] = (nd + flat).astype(np.int32)
    idx[starts[nv]:] = np.arange(nd, dtype=np.int32)
    val[starts[nv]:] = -dem_vals
    return starts, idx, val, counts, flat


def _raise_for_core_status(hcore, h, context) -> None:
    status = h.getModelStatus()
    if status == hcore.HighsModelStatus.kOptimal:
        return
    from .errors import InfeasibleError, UnboundedError

    name = h.modelStatusToString(status)
    kinds = {
        getattr(hcore.HighsModelStatus, "kInfeasible", None): InfeasibleError,
        getattr(hcore.HighsModelStatus, "kUnbounded", None): UnboundedError,
    }
    raise kinds.get(status, SolverNumericalError)(
        f"colgen master failed: HiGHS reported {name}",
        formulation="colgen",
        context=context,
    )


# ----------------------------------------------------------------------
# Engine 1: warm addCols loop on the scipy-bundled HiGHS core
# ----------------------------------------------------------------------
def _solve_core(
    pricer: _Pricer,
    pool: _Pool,
    caps: np.ndarray,
    passes: int,
    max_rounds: int,
    stats: ColgenStats,
    context: Optional[Dict[str, Any]],
) -> Tuple[float, np.ndarray, int]:
    """Column-generation loop with warm re-solves; returns
    ``(t, per-column flows in pool order, iterations)``."""
    hcore = _highs_core()
    nd = pricer.nd
    m = caps.size
    inf = hcore.kHighsInf
    dem_vals = pricer.dem_vals

    nv0 = len(pool)
    starts, idx, val, _counts, _flat = _master_arrays(pool, dem_vals, nd)
    h = hcore._Highs()
    h.setOptionValue("output_flag", False)
    h.setOptionValue("threads", 1)
    lp = hcore.HighsLp()
    lp.num_col_ = nv0 + 1
    lp.num_row_ = nd + m
    cost = np.zeros(nv0 + 1)
    cost[nv0] = -1.0
    lp.col_cost_ = cost
    lp.col_lower_ = np.zeros(nv0 + 1)
    lp.col_upper_ = np.full(nv0 + 1, inf)
    row_lower = np.full(nd + m, -inf)
    row_lower[:nd] = 0.0
    row_upper = np.empty(nd + m)
    row_upper[:nd] = 0.0
    row_upper[nd:] = caps
    lp.row_lower_ = row_lower
    lp.row_upper_ = row_upper
    lp.a_matrix_.format_ = hcore.MatrixFormat.kColwise
    lp.a_matrix_.start_ = starts.astype(np.int32)
    lp.a_matrix_.index_ = idx
    lp.a_matrix_.value_ = val
    h.passModel(lp)
    # Cold solve: the path LP is massively degenerate under simplex
    # (thousands of equal-length alternatives), while IPM converges in
    # ~25 iterations regardless of size; crossover leaves a basis for
    # the warm addCols re-solves, which then run dual simplex.
    h.setOptionValue("solver", "ipm")
    h.run()
    _raise_for_core_status(hcore, h, context)
    h.setOptionValue("solver", "choose")

    iterations = 0

    def _note_iters() -> None:
        nonlocal iterations
        info = h.getInfo()
        iterations += int(getattr(info, "simplex_iteration_count", 0) or 0)
        iterations += int(getattr(info, "ipm_iteration_count", 0) or 0)

    _note_iters()
    t_col = nv0  # addCols appends after t; its index never moves
    best_ub = float("inf")
    tight = False
    for _ in range(max_rounds):
        stats.rounds += 1
        obs.add("colgen.pricing_rounds")
        t_lb = -h.getObjectiveValue()
        row_dual = np.asarray(h.getSolution().row_dual)
        lam = row_dual[:nd]
        w = np.maximum(-row_dual[nd:], 0.0)
        with obs.span("colgen.pricing", round=stats.rounds):
            added, _improving, ub = _price_round(
                pricer, pool, caps, lam, w, passes
            )
        best_ub = min(best_ub, ub)
        obs.add("colgen.columns_added", added)
        stats.columns_added += added
        gap_closed = best_ub - t_lb <= _GAP_TOL * max(1.0, abs(t_lb))
        if added == 0 or gap_closed:
            if tight or stats.polishes >= 3:
                break
            # Endgame: tighten the feasibility tolerances and re-solve
            # from the current basis (cheap — the basis is optimal or
            # near-optimal already), then loop once more so the final
            # pricing pass certifies optimality at the tight duals.
            stats.polishes += 1
            obs.add("colgen.polishes")
            h.setOptionValue("primal_feasibility_tolerance", 1e-10)
            h.setOptionValue("dual_feasibility_tolerance", 1e-10)
            with obs.span("colgen.polish"):
                h.run()
            _raise_for_core_status(hcore, h, context)
            _note_iters()
            tight = True
            if added == 0:
                continue
        # Append the new columns and re-solve warm from the basis.
        new = list(zip(pool.owners[-added:], pool.cols[-added:]))
        nn = len(new)
        col_counts = np.asarray([len(c) + 1 for _, c in new], dtype=np.int64)
        cstarts = np.zeros(nn + 1, dtype=np.int64)
        cstarts[1:] = np.cumsum(col_counts)
        cidx = np.empty(int(cstarts[-1]), dtype=np.int32)
        cval = np.ones(int(cstarts[-1]))
        for j, (di, col) in enumerate(new):
            s0 = int(cstarts[j])
            cidx[s0] = di
            cidx[s0 + 1:s0 + 1 + len(col)] = nd + np.asarray(
                col, dtype=np.int32
            )
        with obs.span("colgen.master", columns=nn, warm=True):
            h.addCols(
                nn, np.zeros(nn), np.zeros(nn), np.full(nn, inf),
                int(cstarts[-1]), cstarts.astype(np.int32), cidx, cval,
            )
            h.run()
        _raise_for_core_status(hcore, h, context)
        _note_iters()
    else:
        raise SolverNumericalError(
            f"colgen did not converge within max_rounds "
            f"({stats.rounds} rounds, gap {best_ub - (-h.getObjectiveValue()):.3e})",
            formulation="colgen",
            context=context,
        )

    x = np.asarray(h.getSolution().col_value, dtype=float)
    t = float(x[t_col])
    pool_x = np.concatenate([x[:t_col], x[t_col + 1:]])
    return t, pool_x, iterations


# ----------------------------------------------------------------------
# Engine 2: pure-linprog fallback (masters re-assembled per round)
# ----------------------------------------------------------------------
def _solve_linprog(
    pricer: _Pricer,
    pool: _Pool,
    caps: np.ndarray,
    passes: int,
    max_rounds: int,
    stats: ColgenStats,
    context: Optional[Dict[str, Any]],
) -> Tuple[float, np.ndarray, int]:
    import scipy.sparse as sp

    nd = pricer.nd
    m = caps.size
    dem_vals = pricer.dem_vals
    iterations = 0
    res = None
    for _ in range(max_rounds):
        stats.rounds += 1
        obs.add("colgen.pricing_rounds")
        nv = len(pool)
        counts = np.asarray([len(c) for c in pool.cols], dtype=np.intp)
        flat = (
            np.concatenate([np.asarray(c, dtype=np.intp) for c in pool.cols])
            if nv
            else np.empty(0, dtype=np.intp)
        )
        owner = np.asarray(pool.owners, dtype=np.intp)
        eq_rows = np.concatenate([owner, np.arange(nd, dtype=np.intp)])
        eq_cols = np.concatenate(
            [np.arange(nv, dtype=np.intp), np.full(nd, nv, dtype=np.intp)]
        )
        eq_vals = np.concatenate([np.ones(nv), -dem_vals])
        a_eq = sp.csr_matrix((eq_vals, (eq_rows, eq_cols)), shape=(nd, nv + 1))
        ub_cols = np.repeat(np.arange(nv, dtype=np.intp), counts)
        a_ub = sp.csr_matrix(
            (np.ones(flat.size), (flat, ub_cols)), shape=(m, nv + 1)
        )
        c = np.zeros(nv + 1)
        c[nv] = -1.0
        with obs.span("colgen.master", columns=nv, warm=False):
            res = linprog(
                c, A_ub=a_ub, b_ub=caps, A_eq=a_eq, b_eq=np.zeros(nd),
                bounds=[(0, None)] * (nv + 1), method="highs",
            )
        iterations += int(getattr(res, "nit", 0) or 0)
        raise_for_linprog(res, formulation="colgen", context=context)
        lam = res.eqlin.marginals
        w = np.maximum(-res.ineqlin.marginals, 0.0)
        with obs.span("colgen.pricing", round=stats.rounds):
            added, _improving, _ub = _price_round(
                pricer, pool, caps, lam, w, passes
            )
        obs.add("colgen.columns_added", added)
        stats.columns_added += added
        if added == 0:
            break
    else:
        raise SolverNumericalError(
            f"colgen did not converge within max_rounds ({stats.rounds})",
            formulation="colgen",
            context=context,
        )
    nv = int(res.x.size - 1)
    return float(res.x[nv]), np.asarray(res.x[:nv], dtype=float), iterations


# ----------------------------------------------------------------------
# The shared front end
# ----------------------------------------------------------------------
def colgen_solve(
    table: ArcTable,
    path_cache,
    tm: TrafficMatrix,
    per_server_demand: float = 1.0,
    dropped: int = 0,
    k: int = 2,
    phases: Optional[int] = None,
    passes: int = 4,
    max_rounds: int = 200,
    pool_store: Optional[Dict[Tuple[int, int], List[Tuple[int, ...]]]] = None,
    use_core: Optional[bool] = None,
    context: Optional[Dict[str, Any]] = None,
) -> Tuple[ThroughputResult, ColgenStats]:
    """Solve one (pre-filtered, non-empty) TM by column generation.

    ``pool_store`` is an optional persistent ``(src, dst) -> [paths]``
    mapping (arc-id tuples against *this* ArcTable): pre-existing
    entries seed the master, and newly generated columns are written
    back (bounded by :data:`POOL_CAP_PER_PAIR`) — how
    :class:`~repro.solvers.colgen.ColgenTopologyContext` warm-starts
    repeated solves.  ``use_core=None`` auto-detects the bundled HiGHS
    core; ``False`` forces the linprog fallback (tests).
    """
    demands = tm.items()
    nd = len(demands)
    stats = ColgenStats()
    if use_core is None:
        use_core = have_highs_core()
    stats.engine = "highs-core" if use_core else "linprog"

    obs.add("lp.calls")
    with obs.span("lp.assemble", formulation="colgen", demands=nd):
        pricer = _Pricer(table, demands)
        caps = table.caps
        pool = _Pool(nd)
        arc_index = table.index

        covered = 0
        for di, ((s, d), _) in enumerate(demands):
            stored = pool_store.get((s, d)) if pool_store is not None else None
            if stored:
                covered += 1
                for col in stored:
                    pool.add(di, col)
            for p in path_cache.k_shortest_paths(s, d, k):
                pool.add(
                    di, tuple(arc_index[e] for e in zip(p[:-1], p[1:]))
                )
        stats.pool_warm = covered == nd and nd > 0

        if phases is None:
            # Enough sweeps that the initial master already contains a
            # near-optimal support; a warm pool skips them entirely.
            phases = 0 if stats.pool_warm else max(64, min(384, nd))
        stats.phases = phases if not stats.pool_warm else 0
        with obs.span("colgen.pool_build", phases=stats.phases):
            _mwu_sweep(pricer, pool, caps, stats.phases)

    engine = _solve_core if use_core else _solve_linprog
    with obs.span(
        "lp.solve", formulation="colgen", variables=len(pool) + 1
    ):
        t, pool_x, iterations = engine(
            pricer, pool, caps, passes, max_rounds, stats, context
        )
    stats.columns = len(pool)
    obs.add("lp.solver_iterations", iterations)

    if pool_store is not None:
        pairs = [pair for pair, _ in demands]
        per_pair: Dict[Tuple[int, int], List[Tuple[int, ...]]] = {
            pair: [] for pair in pairs
        }
        for di, col in zip(pool.owners, pool.cols):
            bucket = per_pair[pairs[di]]
            if len(bucket) < POOL_CAP_PER_PAIR:
                bucket.append(col)
        pool_store.update(per_pair)

    counts = np.asarray([len(c) for c in pool.cols], dtype=np.intp)
    flat = (
        np.concatenate([np.asarray(c, dtype=np.intp) for c in pool.cols])
        if len(pool)
        else np.empty(0, dtype=np.intp)
    )
    flows = np.zeros(table.num_arcs)
    np.add.at(flows, flat, np.repeat(pool_x, counts))
    utilization = {
        table.arcs[a]: float(flows[a] / caps[a]) if caps[a] else 0.0
        for a in range(table.num_arcs)
    }
    result = ThroughputResult(
        throughput=t,
        per_server=min(1.0, t * per_server_demand),
        link_utilization=utilization,
        disconnected_pairs=dropped,
        iterations=iterations,
    )
    return result, stats


def path_colgen_throughput(
    topology: Topology,
    tm: TrafficMatrix,
    per_server_demand: float = 1.0,
    k: int = 2,
    phases: Optional[int] = None,
    passes: int = 4,
    max_rounds: int = 200,
    path_cache=None,
    use_core: Optional[bool] = None,
) -> ThroughputResult:
    """Exact max-concurrent-flow throughput via column generation.

    Converges to the same optimum as
    :func:`~repro.throughput.lp.max_concurrent_throughput` (within
    solver tolerance — property-tested to 1e-9) with restricted masters
    that are orders of magnitude smaller than the edge formulation, so
    it scales to networks the exact edge LP cannot touch.

    Parameters
    ----------
    k:
        Shortest paths per demand seeding the initial pool (served by
        the shared :class:`~repro.perf.PathCache`).
    phases:
        Multiplicative-weights pool-building sweeps before the first
        master (``None``: auto-scaled with the demand count).
    passes:
        Dijkstra sweeps per pricing round (1 = true duals only; extra
        passes collect diverse columns near congested arcs).
    max_rounds:
        Pricing-round cap; exceeding it raises
        :class:`~repro.throughput.errors.SolverNumericalError`.

    Degenerate conventions match the exact LP: empty TM returns
    ``(inf, 1.0)``; all demands disconnected returns ``(0.0, 0.0)``
    with ``disconnected_pairs`` set.
    """
    if tm.num_flows == 0:
        return ThroughputResult(throughput=float("inf"), per_server=1.0)
    tm, dropped = _drop_by_labels(tm, _component_labels(topology.graph))
    if tm.num_flows == 0:
        return ThroughputResult(
            throughput=0.0, per_server=0.0, disconnected_pairs=dropped
        )
    if path_cache is None:
        from ..perf import shared_path_cache

        path_cache = shared_path_cache(topology.graph)
    table = ArcTable.from_topology(topology)
    result, _stats = colgen_solve(
        table,
        path_cache,
        tm,
        per_server_demand=per_server_demand,
        dropped=dropped,
        k=k,
        phases=phases,
        passes=passes,
        max_rounds=max_rounds,
        use_core=use_core,
        context={"topology": topology.name, "demands": tm.num_flows},
    )
    return result
