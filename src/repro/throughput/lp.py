"""Fluid-flow throughput via linear programming (paper §2.2, §5).

The paper's throughput metric: a network supports a traffic matrix M with
throughput t if every demand can simultaneously achieve a t fraction of its
requested rate without violating link capacities — the optimum of the
classic *maximum concurrent flow* problem.  Two formulations are provided:

* :func:`max_concurrent_throughput` — exact, destination-aggregated
  edge-flow LP.  Commodities are grouped by destination, so the variable
  count is ``(#destinations) x (#arcs)`` rather than
  ``(#pairs) x (#arcs)``; optimal value is unchanged (flows to the same
  destination can always be merged).
* :func:`path_throughput` — restricted to k shortest paths per demand
  (a lower bound on the exact optimum, asymptotically tight as k grows);
  much smaller LPs on large networks.

Both use scipy's HiGHS solver with sparse constraint matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from ..topologies.base import Topology
from ..traffic.matrix import TrafficMatrix
from .paths import k_shortest_paths, path_edges

__all__ = [
    "ThroughputResult",
    "max_concurrent_throughput",
    "path_throughput",
]


@dataclass
class ThroughputResult:
    """Outcome of a fluid-flow throughput computation.

    Attributes
    ----------
    throughput:
        The concurrent-flow fraction t: every demand simultaneously
        achieves ``t x`` its requested rate.
    per_server:
        ``t`` normalized per server: when the TM saturates every active
        server's hose constraint, equals throughput per server as a
        fraction of line rate (the paper's y-axis).
    link_utilization:
        Mapping of directed arc to carried-load fraction at optimum
        (``None`` for solvers that do not expose flows).
    """

    throughput: float
    per_server: float
    link_utilization: Optional[Dict[Tuple[int, int], float]] = None


def _arcs(topology: Topology) -> Tuple[List[Tuple[int, int]], np.ndarray]:
    """Directed arcs (both orientations of every cable) and their capacities."""
    arcs: List[Tuple[int, int]] = []
    caps: List[float] = []
    for u, v, data in topology.graph.edges(data=True):
        arcs.append((u, v))
        caps.append(data["capacity"])
        arcs.append((v, u))
        caps.append(data["capacity"])
    return arcs, np.asarray(caps, dtype=float)


def max_concurrent_throughput(
    topology: Topology,
    tm: TrafficMatrix,
    per_server_demand: float = 1.0,
) -> ThroughputResult:
    """Exact max-concurrent-flow throughput of ``tm`` on ``topology``.

    Parameters
    ----------
    topology:
        The switch-level network (capacities in server line-rate units).
    tm:
        Rack-to-rack demands in line-rate units.
    per_server_demand:
        Demand each active server requests (line-rate fraction); used only
        to normalize ``per_server`` in the result.

    Notes
    -----
    Destination-aggregated arc-flow LP: variables ``f[d, a]`` (flow bound
    for destination ToR ``d`` on arc ``a``) plus the concurrency ``t``;
    conservation at every node except the destination; arc capacity sums
    over destinations.
    """
    if tm.num_flows == 0:
        return ThroughputResult(throughput=float("inf"), per_server=1.0)

    arcs, caps = _arcs(topology)
    arc_index = {a: i for i, a in enumerate(arcs)}
    nodes = topology.switches
    node_index = {v: i for i, v in enumerate(nodes)}
    num_arcs = len(arcs)

    dests = sorted({d for (_, d) in tm.demands})
    dest_index = {d: i for i, d in enumerate(dests)}
    num_dests = len(dests)

    # demand[d][v] = demand from node v toward destination d
    demand_to: Dict[int, Dict[int, float]] = {d: {} for d in dests}
    for (s, d), val in tm.demands.items():
        demand_to[d][s] = demand_to[d].get(s, 0.0) + val

    num_vars = num_dests * num_arcs + 1  # + t
    t_var = num_vars - 1

    def fvar(d_idx: int, a_idx: int) -> int:
        return d_idx * num_arcs + a_idx

    # Equality: conservation per (dest, node != dest):
    #   sum(out arcs) - sum(in arcs) - t * demand(v -> d) = 0
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    row = 0
    out_arcs: Dict[int, List[int]] = {v: [] for v in nodes}
    in_arcs: Dict[int, List[int]] = {v: [] for v in nodes}
    for i, (u, v) in enumerate(arcs):
        out_arcs[u].append(i)
        in_arcs[v].append(i)

    for d in dests:
        di = dest_index[d]
        for v in nodes:
            if v == d:
                continue
            for a in out_arcs[v]:
                eq_rows.append(row)
                eq_cols.append(fvar(di, a))
                eq_vals.append(1.0)
            for a in in_arcs[v]:
                eq_rows.append(row)
                eq_cols.append(fvar(di, a))
                eq_vals.append(-1.0)
            dem = demand_to[d].get(v, 0.0)
            if dem:
                eq_rows.append(row)
                eq_cols.append(t_var)
                eq_vals.append(-dem)
            row += 1
    a_eq = sp.csr_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(row, num_vars)
    )
    b_eq = np.zeros(row)

    # Inequality: per-arc capacity, sum over destinations.
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    for a in range(num_arcs):
        for di in range(num_dests):
            ub_rows.append(a)
            ub_cols.append(fvar(di, a))
            ub_vals.append(1.0)
    a_ub = sp.csr_matrix(
        (ub_vals, (ub_rows, ub_cols)), shape=(num_arcs, num_vars)
    )
    b_ub = caps

    c = np.zeros(num_vars)
    c[t_var] = -1.0
    bounds = [(0, None)] * num_vars

    res = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs"
    )
    if not res.success:
        raise RuntimeError(f"throughput LP failed: {res.message}")
    t = float(res.x[t_var])

    utilization: Dict[Tuple[int, int], float] = {}
    flows = res.x[:-1].reshape(num_dests, num_arcs).sum(axis=0)
    for a, (u, v) in enumerate(arcs):
        utilization[(u, v)] = float(flows[a] / caps[a]) if caps[a] else 0.0

    return ThroughputResult(
        throughput=t,
        per_server=min(1.0, t * per_server_demand),
        link_utilization=utilization,
    )


def path_throughput(
    topology: Topology,
    tm: TrafficMatrix,
    k: int = 8,
    per_server_demand: float = 1.0,
) -> ThroughputResult:
    """Max-concurrent-flow restricted to k shortest paths per demand.

    A lower bound on :func:`max_concurrent_throughput`; the LP has one
    variable per (demand, path) plus ``t``, and one capacity row per
    directed arc, so it scales to networks where the exact LP does not.
    """
    if tm.num_flows == 0:
        return ThroughputResult(throughput=float("inf"), per_server=1.0)

    arcs, caps = _arcs(topology)
    arc_index = {a: i for i, a in enumerate(arcs)}
    num_arcs = len(arcs)

    demands = tm.items()
    var_paths: List[List[Tuple[int, int]]] = []  # arc lists
    var_owner: List[int] = []  # demand index
    for di, ((s, d), _) in enumerate(demands):
        paths = k_shortest_paths(topology.graph, s, d, k)
        if not paths:
            return ThroughputResult(throughput=0.0, per_server=0.0)
        for p in paths:
            var_paths.append([arc_index[e] for e in path_edges(p)])
            var_owner.append(di)

    num_path_vars = len(var_paths)
    num_vars = num_path_vars + 1
    t_var = num_vars - 1

    # Equality: per demand, sum of path flows = t * demand.
    eq_rows, eq_cols, eq_vals = [], [], []
    for pi, di in enumerate(var_owner):
        eq_rows.append(di)
        eq_cols.append(pi)
        eq_vals.append(1.0)
    for di, ((_, _), val) in enumerate(demands):
        eq_rows.append(di)
        eq_cols.append(t_var)
        eq_vals.append(-val)
    a_eq = sp.csr_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(len(demands), num_vars)
    )
    b_eq = np.zeros(len(demands))

    # Inequality: per-arc capacity.
    ub_rows, ub_cols, ub_vals = [], [], []
    for pi, arc_list in enumerate(var_paths):
        for a in arc_list:
            ub_rows.append(a)
            ub_cols.append(pi)
            ub_vals.append(1.0)
    a_ub = sp.csr_matrix(
        (ub_vals, (ub_rows, ub_cols)), shape=(num_arcs, num_vars)
    )

    c = np.zeros(num_vars)
    c[t_var] = -1.0

    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=caps,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"path throughput LP failed: {res.message}")
    t = float(res.x[t_var])

    flows = np.zeros(num_arcs)
    for pi, arc_list in enumerate(var_paths):
        for a in arc_list:
            flows[a] += res.x[pi]
    utilization = {
        arcs[a]: float(flows[a] / caps[a]) if caps[a] else 0.0
        for a in range(num_arcs)
    }
    return ThroughputResult(
        throughput=t,
        per_server=min(1.0, t * per_server_demand),
        link_utilization=utilization,
    )
