"""Fluid-flow throughput via linear programming (paper §2.2, §5).

The paper's throughput metric: a network supports a traffic matrix M with
throughput t if every demand can simultaneously achieve a t fraction of its
requested rate without violating link capacities — the optimum of the
classic *maximum concurrent flow* problem.  Two formulations are provided:

* :func:`max_concurrent_throughput` — exact, destination-aggregated
  edge-flow LP.  Commodities are grouped by destination, so the variable
  count is ``(#destinations) x (#arcs)`` rather than
  ``(#pairs) x (#arcs)``; optimal value is unchanged (flows to the same
  destination can always be merged).
* :func:`path_throughput` — restricted to k shortest paths per demand
  (a lower bound on the exact optimum, asymptotically tight as k grows);
  much smaller LPs on large networks.

Both use scipy's HiGHS solver with sparse constraint matrices.

Constraint assembly is vectorized: conservation and capacity blocks are
built from numpy coordinate arrays over the :class:`~.arcs.ArcTable`
incidence structure instead of Python append loops, producing the
*identical* canonical CSR matrices orders of magnitude faster (see
``benchmarks/perf``).  The original loop assembly is retained as
:func:`_assemble_exact_reference` — the equivalence oracle for tests and
the baseline for the perf-regression bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from .. import obs
from ..topologies.base import Topology
from ..traffic.matrix import TrafficMatrix
from .arcs import ArcTable
from .errors import raise_for_linprog
from .paths import path_edges

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf import PathCache

__all__ = [
    "ThroughputResult",
    "max_concurrent_throughput",
    "path_throughput",
]


@dataclass
class ThroughputResult:
    """Outcome of a fluid-flow throughput computation.

    Attributes
    ----------
    throughput:
        The concurrent-flow fraction t: every demand simultaneously
        achieves ``t x`` its requested rate.
    per_server:
        ``t`` normalized per server: when the TM saturates every active
        server's hose constraint, equals throughput per server as a
        fraction of line rate (the paper's y-axis).
    link_utilization:
        Mapping of directed arc to carried-load fraction at optimum
        (``None`` for solvers that do not expose flows).
    disconnected_pairs:
        Demands dropped before solving because failures disconnected (or
        removed) their endpoints; the reported throughput covers only
        the surviving demands.  Zero on healthy topologies.
    iterations:
        Solver iterations spent (simplex/IPM for the LPs, completed
        phases for the MCF approximation); zero for degenerate results
        that never reach a solver.

    Notes
    -----
    Degenerate convention (shared by :func:`max_concurrent_throughput`,
    :func:`path_throughput`, :func:`~repro.throughput.mcf.approx_concurrent_throughput`,
    and :func:`~repro.throughput.bounds.tm_throughput_upper_bound`): an
    *empty* TM constrains nothing, so ``throughput`` is ``inf`` and
    ``per_server`` is ``1.0``.  A TM whose demands were *all* dropped as
    disconnected reports ``0.0`` / ``0.0`` with ``disconnected_pairs``
    set.
    """

    throughput: float
    per_server: float
    link_utilization: Optional[Dict[Tuple[int, int], float]] = None
    disconnected_pairs: int = 0
    iterations: int = 0


def _component_labels(g: "nx.Graph") -> Dict[int, int]:
    """Connected-component label per node (batchable pre-filter state)."""
    label: Dict[int, int] = {}
    for ci, comp in enumerate(nx.connected_components(g)):
        for v in comp:
            label[v] = ci
    return label


def _drop_by_labels(
    tm: TrafficMatrix, label: Dict[int, int]
) -> Tuple[TrafficMatrix, int]:
    """Filter a TM against precomputed component labels.

    A demand is routable when both endpoint ToRs exist in the (possibly
    degraded) graph and lie in the same connected component.  On a
    connected graph with all endpoints present the TM passes through
    unchanged (same object, no copy).
    """
    kept: Dict[Tuple[int, int], float] = {}
    dropped = 0
    for (s, d), val in tm.demands.items():
        if s in label and label[s] == label.get(d):
            kept[(s, d)] = val
        else:
            dropped += 1
    if not dropped:
        return tm, 0
    obs.add("lp.disconnected_pairs", dropped)
    return TrafficMatrix(kept), dropped


def _drop_disconnected_demands(
    topology: Topology, tm: TrafficMatrix
) -> Tuple[TrafficMatrix, int]:
    """Split a TM into its routable part and a dropped-pair count."""
    return _drop_by_labels(tm, _component_labels(topology.graph))


def _demands_by_destination(
    tm: TrafficMatrix,
) -> Tuple[List[int], Dict[int, Dict[int, float]]]:
    """Destination-aggregated demands: ``demand_to[d][v]`` = v's demand to d."""
    dests = sorted({d for (_, d) in tm.demands})
    demand_to: Dict[int, Dict[int, float]] = {d: {} for d in dests}
    for (s, d), val in tm.demands.items():
        demand_to[d][s] = demand_to[d].get(s, 0.0) + val
    return dests, demand_to


def _assemble_exact_reference(
    table: ArcTable,
    dests: List[int],
    demand_to: Dict[int, Dict[int, float]],
) -> Tuple[sp.csr_matrix, np.ndarray, sp.csr_matrix]:
    """Loop-based assembly of the exact LP's constraint matrices.

    Retained as the equivalence oracle for the vectorized assembly (the
    two must produce identical canonical CSR matrices) and as the
    baseline the perf bench measures against.  Production calls go
    through :func:`_assemble_exact_vectorized`.
    """
    arcs = table.arcs
    nodes = table.nodes
    num_arcs = table.num_arcs
    num_dests = len(dests)
    dest_index = {d: i for i, d in enumerate(dests)}
    num_vars = num_dests * num_arcs + 1  # + t
    t_var = num_vars - 1

    def fvar(d_idx: int, a_idx: int) -> int:
        return d_idx * num_arcs + a_idx

    # Equality: conservation per (dest, node != dest):
    #   sum(out arcs) - sum(in arcs) - t * demand(v -> d) = 0
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    row = 0
    out_arcs: Dict[int, List[int]] = {v: [] for v in nodes}
    in_arcs: Dict[int, List[int]] = {v: [] for v in nodes}
    for i, (u, v) in enumerate(arcs):
        out_arcs[u].append(i)
        in_arcs[v].append(i)

    for d in dests:
        di = dest_index[d]
        for v in nodes:
            if v == d:
                continue
            for a in out_arcs[v]:
                eq_rows.append(row)
                eq_cols.append(fvar(di, a))
                eq_vals.append(1.0)
            for a in in_arcs[v]:
                eq_rows.append(row)
                eq_cols.append(fvar(di, a))
                eq_vals.append(-1.0)
            dem = demand_to[d].get(v, 0.0)
            if dem:
                eq_rows.append(row)
                eq_cols.append(t_var)
                eq_vals.append(-dem)
            row += 1
    a_eq = sp.csr_matrix((eq_vals, (eq_rows, eq_cols)), shape=(row, num_vars))
    b_eq = np.zeros(row)

    # Inequality: per-arc capacity, sum over destinations.
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    for a in range(num_arcs):
        for di in range(num_dests):
            ub_rows.append(a)
            ub_cols.append(fvar(di, a))
            ub_vals.append(1.0)
    a_ub = sp.csr_matrix((ub_vals, (ub_rows, ub_cols)), shape=(num_arcs, num_vars))
    return a_eq, b_eq, a_ub


def _assemble_exact_vectorized(
    table: ArcTable,
    dests: List[int],
    demand_to: Dict[int, Dict[int, float]],
) -> Tuple[sp.csr_matrix, np.ndarray, sp.csr_matrix]:
    """Vectorized assembly of the exact LP's constraint matrices.

    Builds the conservation block for all destinations at once from the
    arc tail/head index arrays: within destination block ``di`` the row
    of node ``v`` is its dense index with the destination's own row
    squeezed out, and every arc contributes +1 at its tail row and -1
    at its head row.  Canonical CSR output is identical to the
    reference loops (duplicate-free coordinates, same coefficients).
    """
    n = table.num_nodes
    m = table.num_arcs
    num_dests = len(dests)
    num_vars = num_dests * m + 1
    t_var = num_vars - 1

    dest_nodes = np.asarray([table.node_index[d] for d in dests], dtype=np.intp)
    dn = dest_nodes[:, None]  # (D, 1)
    tails = table.tails[None, :]  # (1, m)
    heads = table.heads[None, :]
    block = np.arange(num_dests, dtype=np.intp)[:, None] * (n - 1)
    col_base = np.arange(num_dests, dtype=np.intp)[:, None] * m + np.arange(
        m, dtype=np.intp
    )

    tail_mask = tails != dn
    tail_rows = (block + tails - (tails > dn))[tail_mask]
    tail_cols = np.broadcast_to(col_base, (num_dests, m))[tail_mask]
    head_mask = heads != dn
    head_rows = (block + heads - (heads > dn))[head_mask]
    head_cols = np.broadcast_to(col_base, (num_dests, m))[head_mask]

    dem_rows: List[int] = []
    dem_vals: List[float] = []
    for di, d in enumerate(dests):
        dn_i = int(dest_nodes[di])
        base = di * (n - 1)
        for v, dem in demand_to[d].items():
            if not dem:
                continue
            vi = table.node_index[v]
            dem_rows.append(base + vi - (vi > dn_i))
            dem_vals.append(-dem)

    eq_rows = np.concatenate(
        [tail_rows, head_rows, np.asarray(dem_rows, dtype=np.intp)]
    )
    eq_cols = np.concatenate(
        [tail_cols, head_cols, np.full(len(dem_rows), t_var, dtype=np.intp)]
    )
    eq_vals = np.concatenate(
        [
            np.ones(tail_rows.size),
            -np.ones(head_rows.size),
            np.asarray(dem_vals, dtype=float),
        ]
    )
    num_rows = num_dests * (n - 1)
    a_eq = sp.csr_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(num_rows, num_vars)
    )
    b_eq = np.zeros(num_rows)

    ub_rows = np.tile(np.arange(m, dtype=np.intp), num_dests)
    ub_cols = col_base.ravel()
    a_ub = sp.csr_matrix(
        (np.ones(ub_rows.size), (ub_rows, ub_cols)), shape=(m, num_vars)
    )
    return a_eq, b_eq, a_ub


def _solve_exact_assembled(
    table: ArcTable,
    num_dests: int,
    a_eq: sp.csr_matrix,
    b_eq: np.ndarray,
    a_ub: sp.csr_matrix,
    per_server_demand: float,
    dropped: int,
    context: Optional[Dict[str, object]] = None,
) -> ThroughputResult:
    """Solve pre-assembled exact-LP matrices and extract the result.

    The ``linprog`` invocation and extraction shared by
    :func:`_solve_exact` (fresh assembly per call) and the warm-started
    :class:`repro.solvers.IncrementalTopologyContext` (which patches the
    demand coefficients of a cached ``a_eq`` in place).  One code path
    means incremental results are byte-identical to the per-call path on
    identical matrices — by construction, not by tolerance.
    """
    num_arcs = table.num_arcs
    num_vars = num_dests * num_arcs + 1
    t_var = num_vars - 1
    with obs.span("lp.solve", formulation="exact", variables=num_vars):
        res = linprog(
            _c_for_exact(num_vars),
            A_ub=a_ub,
            b_ub=table.caps,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=[(0, None)] * num_vars,
            method="highs",
        )
    iterations = int(getattr(res, "nit", 0) or 0)
    obs.add("lp.solver_iterations", iterations)
    raise_for_linprog(res, formulation="exact", context=context)
    t = float(res.x[t_var])

    utilization: Dict[Tuple[int, int], float] = {}
    flows = res.x[:-1].reshape(num_dests, num_arcs).sum(axis=0)
    caps = table.caps
    for a, (u, v) in enumerate(table.arcs):
        utilization[(u, v)] = float(flows[a] / caps[a]) if caps[a] else 0.0

    return ThroughputResult(
        throughput=t,
        per_server=min(1.0, t * per_server_demand),
        link_utilization=utilization,
        disconnected_pairs=dropped,
        iterations=iterations,
    )


def _c_for_exact(num_vars: int) -> np.ndarray:
    """The exact LP's objective vector: maximize t (minimize ``-t``)."""
    c = np.zeros(num_vars)
    c[num_vars - 1] = -1.0
    return c


def _solve_exact(
    table: ArcTable,
    tm: TrafficMatrix,
    per_server_demand: float,
    dropped: int,
    context: Optional[Dict[str, object]] = None,
) -> ThroughputResult:
    """Assemble and solve the exact LP on a prepared :class:`ArcTable`.

    The single implementation behind both :func:`max_concurrent_throughput`
    and the batched :class:`repro.solvers.BatchedTopologyContext`:
    sharing one code path (same matrices, same ``linprog`` invocation,
    same extraction) is what makes batched results byte-identical to the
    per-call path by construction.  ``tm`` must already be pre-filtered
    (non-empty, routable demands only).
    """
    obs.add("lp.calls")
    with obs.span("lp.assemble", formulation="exact", demands=tm.num_flows):
        dests, demand_to = _demands_by_destination(tm)
        num_dests = len(dests)
        a_eq, b_eq, a_ub = _assemble_exact_vectorized(table, dests, demand_to)
    return _solve_exact_assembled(
        table, num_dests, a_eq, b_eq, a_ub, per_server_demand, dropped,
        context=context,
    )


def max_concurrent_throughput(
    topology: Topology,
    tm: TrafficMatrix,
    per_server_demand: float = 1.0,
) -> ThroughputResult:
    """Exact max-concurrent-flow throughput of ``tm`` on ``topology``.

    Parameters
    ----------
    topology:
        The switch-level network (capacities in server line-rate units).
    tm:
        Rack-to-rack demands in line-rate units.
    per_server_demand:
        Demand each active server requests (line-rate fraction); used only
        to normalize ``per_server`` in the result.

    Raises
    ------
    InfeasibleError, UnboundedError, SolverNumericalError
        Typed :class:`~repro.throughput.errors.SolverFailure` subclasses
        (all ``RuntimeError``) carrying topology/TM context when HiGHS
        does not return an optimum.

    Notes
    -----
    Destination-aggregated arc-flow LP: variables ``f[d, a]`` (flow bound
    for destination ToR ``d`` on arc ``a``) plus the concurrency ``t``;
    conservation at every node except the destination; arc capacity sums
    over destinations.

    Degenerate cases are conventions, not errors: an empty TM returns
    ``(inf, 1.0)``; a TM whose demands are all disconnected returns
    ``(0.0, 0.0)`` with ``disconnected_pairs`` set (see
    :class:`ThroughputResult`).
    """
    if tm.num_flows == 0:
        return ThroughputResult(throughput=float("inf"), per_server=1.0)

    tm, dropped = _drop_disconnected_demands(topology, tm)
    if tm.num_flows == 0:
        return ThroughputResult(
            throughput=0.0, per_server=0.0, disconnected_pairs=dropped
        )

    table = ArcTable.from_topology(topology)
    return _solve_exact(
        table,
        tm,
        per_server_demand,
        dropped,
        context={"topology": topology.name, "demands": tm.num_flows},
    )


def path_throughput(
    topology: Topology,
    tm: TrafficMatrix,
    k: int = 8,
    per_server_demand: float = 1.0,
    path_cache: Optional["PathCache"] = None,
) -> ThroughputResult:
    """Max-concurrent-flow restricted to k shortest paths per demand.

    A lower bound on :func:`max_concurrent_throughput`; the LP has one
    variable per (demand, path) plus ``t``, and one capacity row per
    directed arc, so it scales to networks where the exact LP does not.

    Degenerate cases follow the same convention as the exact LP: empty
    TM returns ``(inf, 1.0)``, all-disconnected returns ``(0.0, 0.0)``;
    solver failures raise the typed
    :class:`~repro.throughput.errors.SolverFailure` subclasses.

    Parameters
    ----------
    path_cache:
        A shared :class:`repro.perf.PathCache` to serve the k-shortest-
        path sets.  Defaults to the process-wide cache for this
        topology, so a sweep over routings (or ``k`` values) on one
        topology enumerates Yen's algorithm exactly once per pair.
    """
    if tm.num_flows == 0:
        return ThroughputResult(throughput=float("inf"), per_server=1.0)

    tm, dropped = _drop_disconnected_demands(topology, tm)
    if tm.num_flows == 0:
        return ThroughputResult(
            throughput=0.0, per_server=0.0, disconnected_pairs=dropped
        )

    if path_cache is None:
        from ..perf import shared_path_cache

        path_cache = shared_path_cache(topology.graph)

    obs.add("lp.calls")
    with obs.span("lp.assemble", formulation="paths", demands=tm.num_flows, k=k):
        table = ArcTable.from_topology(topology)
        arc_index = table.index
        num_arcs = table.num_arcs
        caps = table.caps

        demands = tm.items()
        var_arcs: List[np.ndarray] = []  # arc-id array per path variable
        var_owner: List[int] = []  # demand index
        for di, ((s, d), _) in enumerate(demands):
            paths = path_cache.k_shortest_paths(s, d, k)
            for p in paths:
                var_arcs.append(
                    np.asarray(
                        [arc_index[e] for e in path_edges(p)], dtype=np.intp
                    )
                )
                var_owner.append(di)

        num_path_vars = len(var_arcs)
        num_vars = num_path_vars + 1
        t_var = num_vars - 1

        # Equality: per demand, sum of path flows = t * demand.
        owner = np.asarray(var_owner, dtype=np.intp)
        dem_vals = np.asarray([val for (_, _), val in demands], dtype=float)
        eq_rows = np.concatenate(
            [owner, np.arange(len(demands), dtype=np.intp)]
        )
        eq_cols = np.concatenate(
            [
                np.arange(num_path_vars, dtype=np.intp),
                np.full(len(demands), t_var, dtype=np.intp),
            ]
        )
        eq_vals = np.concatenate([np.ones(num_path_vars), -dem_vals])
        a_eq = sp.csr_matrix(
            (eq_vals, (eq_rows, eq_cols)), shape=(len(demands), num_vars)
        )
        b_eq = np.zeros(len(demands))

        # Inequality: per-arc capacity.  One coordinate per (path, arc)
        # traversal; repeated arcs within a path (impossible for simple
        # paths, but harmless) would be summed by the CSR constructor.
        counts = np.asarray([a.size for a in var_arcs], dtype=np.intp)
        flat_arcs = (
            np.concatenate(var_arcs)
            if var_arcs
            else np.empty(0, dtype=np.intp)
        )
        ub_cols = np.repeat(np.arange(num_path_vars, dtype=np.intp), counts)
        a_ub = sp.csr_matrix(
            (np.ones(flat_arcs.size), (flat_arcs, ub_cols)),
            shape=(num_arcs, num_vars),
        )

        c = np.zeros(num_vars)
        c[t_var] = -1.0

    with obs.span("lp.solve", formulation="paths", variables=num_vars):
        res = linprog(
            c,
            A_ub=a_ub,
            b_ub=caps,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=[(0, None)] * num_vars,
            method="highs",
        )
    iterations = int(getattr(res, "nit", 0) or 0)
    obs.add("lp.solver_iterations", iterations)
    raise_for_linprog(
        res,
        formulation="paths",
        context={"topology": topology.name, "demands": tm.num_flows, "k": k},
    )
    t = float(res.x[t_var])

    flows = np.zeros(num_arcs)
    np.add.at(flows, flat_arcs, np.repeat(res.x[:num_path_vars], counts))
    utilization = {
        table.arcs[a]: float(flows[a] / caps[a]) if caps[a] else 0.0
        for a in range(num_arcs)
    }
    return ThroughputResult(
        throughput=t,
        per_server=min(1.0, t * per_server_demand),
        link_utilization=utilization,
        disconnected_pairs=dropped,
        iterations=iterations,
    )
