"""Throughput proportionality: the paper's network-flexibility metric (§2.2).

A network built to achieve per-server throughput ``alpha`` on the
worst-case TM is *throughput proportional* (TP) if it achieves
``min(alpha / x, 1)`` per server on any TM involving only an ``x``
fraction of servers.  Theorem 2.1 shows no static network can do better
than TP over permutation TMs, making TP the idealized flexibility
benchmark that Fig. 2 illustrates and Figs. 5-6 measure against.

This module provides the analytic curves of Fig. 2 and the measurement
driver behind Figs. 5-6: sweep the fraction of participating racks,
build a (near-worst-case) longest-matching TM at each point, and solve
for throughput in the fluid-flow model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..topologies.base import Topology
from ..traffic.matrix import TrafficMatrix
from ..traffic.patterns import longest_matching_tm

__all__ = [
    "tp_curve",
    "fattree_flexibility_curve",
    "SkewSweepResult",
    "skew_sweep",
]


def tp_curve(alpha: float, fractions: Sequence[float]) -> List[float]:
    """The throughput-proportional ideal: min(alpha / x, 1) for each x."""
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    out = []
    for x in fractions:
        if not 0 < x <= 1:
            raise ValueError(f"fractions must be in (0, 1], got {x}")
        out.append(min(alpha / x, 1.0))
    return out


def fattree_flexibility_curve(
    alpha: float, k: int, fractions: Sequence[float]
) -> List[float]:
    """The fat-tree's analytic flexibility curve from Fig. 2.

    An oversubscribed fat-tree at capacity fraction ``alpha`` is stuck at
    ``alpha`` for any pod-to-pod TM down to ``beta = 2/k`` of the servers;
    below ``beta`` (within the two pods) throughput rises proportionally,
    reaching line rate only at ``x = alpha * beta``.
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    beta = 2.0 / k
    out = []
    for x in fractions:
        if x >= beta:
            out.append(alpha)
        else:
            out.append(min(alpha * beta / x, 1.0))
    return out


@dataclass
class SkewSweepResult:
    """Per-server throughput across a sweep of participating-server fractions.

    ``statuses`` holds one :class:`repro.solvers.SolveStatus` value per
    solve, in (fraction-major, trial-minor) order; fractions whose
    trials were not all optimal report ``nan`` throughput.
    """

    name: str
    fractions: List[float]
    throughput: List[float]
    statuses: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every solve reached an optimum (vacuously true pre-backend)."""
        return all(s == "optimal" for s in self.statuses)

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows of {fraction, throughput} for table rendering."""
        return [
            {"fraction": f, "throughput": t}
            for f, t in zip(self.fractions, self.throughput)
        ]


def _solve_many(backend, topology, tms, warm: bool):
    """Call ``solve_many`` with ``warm=`` when the backend accepts it.

    Backends written against the :class:`repro.solvers.SolverBackend`
    contract take the kwarg; test fakes and third-party backends with a
    narrower signature still work without warm control.
    """
    import inspect

    try:
        params = inspect.signature(backend.solve_many).parameters
    except (TypeError, ValueError):  # builtins / exotic callables
        params = {}
    if "warm" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    ):
        return backend.solve_many(topology, tms, warm=warm)
    return backend.solve_many(topology, tms)


def skew_sweep(
    topology: Topology,
    fractions: Sequence[float],
    tm_builder: Optional[
        Callable[[Topology, float, int], TrafficMatrix]
    ] = None,
    solver: Any = "exact",
    k_paths: int = 8,
    seed: int = 0,
    trials: int = 1,
    epsilon: float = 0.05,
    warm: bool = True,
) -> SkewSweepResult:
    """Measure per-server throughput as the active-server fraction shrinks.

    This is the engine behind Figs. 5 and 6: for each fraction ``x``,
    build a near-worst-case TM over an ``x`` fraction of racks (default:
    longest-matching) and solve the fluid-flow throughput.  With
    ``trials > 1`` the reported value is the mean over TM seeds.

    All TMs go through one ``solve_many`` call, so a batching-capable
    backend (``highs-batched``, ``highs-incremental``) amortizes its
    per-topology structure across the whole sweep; with ``warm=True``
    (the default) warm-capable backends may additionally reuse model
    structure and simplex bases across points and across calls, while
    ``warm=False`` forces every point cold.  Non-optimal solves do not
    raise: they land in ``statuses`` and leave ``nan`` at the affected
    fraction.

    Parameters
    ----------
    solver:
        A :data:`repro.registry.SOLVERS` name or spec string
        (``"exact"``, ``"highs-batched"``, ``"mcf-approx:epsilon=0.1"``,
        ...) or an already-built backend instance.  Unknown names raise
        ``ValueError`` listing the valid choices.
    k_paths:
        ``k`` for the paths backends (ignored by the others).
    epsilon:
        Accuracy knob for ``mcf-approx`` (ignored by the others).
    tm_builder:
        ``f(topology, fraction, seed) -> TrafficMatrix``; defaults to
        :func:`repro.traffic.patterns.longest_matching_tm`.
    warm:
        Passed through to backends whose ``solve_many`` accepts it (the
        :class:`repro.solvers.SolverBackend` contract); backends with a
        legacy/foreign signature are called without it.
    """
    if hasattr(solver, "solve_many"):
        backend = solver
    else:
        from .. import registry  # lazy: avoids a module-import cycle

        name = str(solver)
        defaults: Dict[str, Any] = {}
        base = name.split(":", 1)[0]
        if base in ("paths", "highs-paths"):
            defaults["k"] = k_paths
        elif base == "mcf-approx":
            defaults["epsilon"] = epsilon
        backend = registry.solver(name, **defaults)
    if tm_builder is None:
        tm_builder = lambda topo, frac, s: longest_matching_tm(topo, frac, seed=s)

    tms = [
        tm_builder(topology, x, seed + trial)
        for x in fractions
        for trial in range(trials)
    ]
    outcomes = _solve_many(backend, topology, tms, warm)

    values: List[float] = []
    statuses: List[str] = []
    nan = float("nan")
    it = iter(outcomes)
    for _x in fractions:
        acc = 0.0
        good = 0
        for _trial in range(trials):
            outcome = next(it)
            statuses.append(outcome.status.value)
            if outcome.ok:
                acc += outcome.result.per_server
                good += 1
        values.append(acc / trials if good == trials else nan)
    return SkewSweepResult(
        name=topology.name,
        fractions=list(fractions),
        throughput=values,
        statuses=statuses,
    )
