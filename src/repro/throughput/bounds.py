"""Throughput upper bounds (Singla et al., NSDI 2014; paper §4.1, §5).

Two flavors:

* :func:`tm_throughput_upper_bound` — for a *given* topology and TM: the
  flows must consume at least ``sum(demand_k * dist(s_k, d_k))`` units of
  capacity per unit of concurrent throughput, and only
  ``sum(2 * capacity_e)`` units exist.
* :func:`best_static_throughput_bound` — over *all possible* topologies
  with ``n`` switches of network degree ``r``: replace true distances by
  the Moore-bound lower bound on the mean shortest-path length.  This is
  the bound the paper uses for the restricted dynamic model (§4.1's 80%
  figure for the 9-rack toy example).
"""

from __future__ import annotations

import math

import networkx as nx

from ..topologies.base import Topology
from ..topologies.dynamic import moore_bound_mean_distance
from ..traffic.matrix import TrafficMatrix

__all__ = [
    "tm_throughput_upper_bound",
    "best_static_throughput_bound",
    "moore_bound_mean_distance",
]


def tm_throughput_upper_bound(topology: Topology, tm: TrafficMatrix) -> float:
    """Cut-free upper bound on concurrent throughput of ``tm`` on ``topology``.

    ``t * sum_k d_k * dist(s_k, t_k) <= 2 * sum_e c_e`` (each cable carries
    capacity in both directions).  Exact shortest-path distances are used.

    Degenerate conventions (shared with ``max_concurrent_throughput`` /
    ``path_throughput``, which report throughput ``inf`` / per-server
    ``1.0`` for an empty TM):

    * an *empty* TM — reachable after resilience pre-filtering drops
      every cross-component pair — constrains nothing: bound ``inf``;
    * a TM that is all zero-demand or all self-demand consumes no
      capacity: bound ``inf``;
    * any endpoint missing from the graph (a failed/removed ToR) or
      unreachable from its peer: no positive concurrent throughput
      exists, bound ``0.0``.
    """
    if tm.num_flows == 0:
        return float("inf")
    g = topology.graph
    total_capacity = 2.0 * sum(
        data["capacity"] for _, _, data in g.edges(data=True)
    )
    sources = {s for (s, _) in tm.demands}
    if any(s not in g for s in sources):
        return 0.0
    dist = {s: nx.single_source_shortest_path_length(g, s) for s in sources}
    consumed = 0.0
    for (s, d), val in tm.demands.items():
        if d not in dist[s]:
            return 0.0
        consumed += val * dist[s][d]
    if consumed == 0:
        return float("inf")
    return total_capacity / consumed


def best_static_throughput_bound(
    num_tors: int, network_ports: int, servers_per_tor: int
) -> float:
    """Per-server throughput bound over all degree-r topologies on n ToRs.

    All-to-all traffic with each ToR sourcing ``servers_per_tor`` units:
    ``t <= r / (s * moore_mean_distance(n, r))``, clamped to [0, 1].
    This is the paper's restricted-dynamic-model evaluation device.
    """
    if num_tors < 2 or servers_per_tor <= 0:
        return 1.0
    dbar = moore_bound_mean_distance(num_tors, network_ports)
    if math.isinf(dbar) or dbar == 0:
        return 0.0 if math.isinf(dbar) else 1.0
    return min(1.0, network_ports / (servers_per_tor * dbar))
