"""Directed-arc tables shared by the throughput solvers.

Both LP formulations (:mod:`repro.throughput.lp`) and the Garg–Könemann
FPTAS (:mod:`repro.throughput.mcf`) operate on the same directed-arc
view of a topology: both orientations of every cable, in graph edge
order, with per-arc capacities.  :class:`ArcTable` builds that view once
— arc list, capacity vector, arc/node index maps, and numpy tail/head
index arrays for vectorized constraint assembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from ..topologies.base import Topology

__all__ = ["ArcTable"]


@dataclass
class ArcTable:
    """The directed-arc expansion of a topology's cables.

    Attributes
    ----------
    arcs:
        Directed arcs ``(u, v)`` — both orientations of every cable, in
        graph edge order (the order every solver in this package has
        always used, so constraint matrices are reproducible).
    caps:
        Per-arc capacities (same order as ``arcs``).
    index:
        ``(u, v) -> arc id``.
    nodes:
        Sorted switch ids.
    node_index:
        ``switch id -> dense node index``.
    tails, heads:
        Dense node index of each arc's tail/head (numpy, for vectorized
        incidence construction).
    """

    arcs: List[Tuple[int, int]]
    caps: np.ndarray
    index: Dict[Tuple[int, int], int]
    nodes: List[int]
    node_index: Dict[int, int]
    tails: np.ndarray
    heads: np.ndarray

    @classmethod
    def from_topology(cls, topology: Topology) -> "ArcTable":
        arcs: List[Tuple[int, int]] = []
        caps: List[float] = []
        for u, v, data in topology.graph.edges(data=True):
            arcs.append((u, v))
            caps.append(data["capacity"])
            arcs.append((v, u))
            caps.append(data["capacity"])
        nodes = topology.switches
        node_index = {v: i for i, v in enumerate(nodes)}
        tails = np.fromiter(
            (node_index[u] for u, _ in arcs), dtype=np.intp, count=len(arcs)
        )
        heads = np.fromiter(
            (node_index[v] for _, v in arcs), dtype=np.intp, count=len(arcs)
        )
        return cls(
            arcs=arcs,
            caps=np.asarray(caps, dtype=float),
            index={a: i for i, a in enumerate(arcs)},
            nodes=nodes,
            node_index=node_index,
            tails=tails,
            heads=heads,
        )

    @property
    def num_arcs(self) -> int:
        return len(self.arcs)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def adjacency_lists(self) -> List[List[Tuple[int, int]]]:
        """``adj[u] -> [(v, arc_id)]`` over dense node indices."""
        adj: List[List[Tuple[int, int]]] = [[] for _ in self.nodes]
        for arc_id, (t, h) in enumerate(zip(self.tails, self.heads)):
            adj[t].append((int(h), arc_id))
        return adj

    def csr_structure(self) -> Tuple[sp.csr_matrix, np.ndarray]:
        """A CSR node×node matrix plus the arc→data-slot permutation.

        The matrix's data array is ordered by CSR canonical (row, col)
        position; ``perm`` maps each arc id to its slot, so per-arc
        weights can be refreshed in one numpy gather:
        ``matrix.data = weights[perm]``.
        """
        n = self.num_nodes
        m = self.num_arcs
        coo = sp.coo_matrix(
            (np.arange(m, dtype=float), (self.tails, self.heads)), shape=(n, n)
        )
        csr = coo.tocsr()
        order = csr.data.astype(np.intp)  # arc id stored in each slot
        perm = order
        csr.data = self.caps[perm].astype(float)
        return csr, perm
