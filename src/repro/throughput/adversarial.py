"""Adversarial traffic-matrix search (paper §2 and §5).

The paper evaluates static networks under *longest-matching* TMs as a
near-worst-case heuristic and notes two open questions: whether
throughput proportionality binds over all hose TMs (Conjecture 2.3) and
whether permutations are worst-case TMs (Conjecture 2.4).  This module
provides the machinery to probe both:

* :func:`random_hose_tm` — uniform-ish random TMs saturating the hose
  constraints (Sinkhorn-normalized), the comparison class for
  Conjecture 2.4;
* :func:`adversarial_matching_tm` — an iterated refinement of
  longest-matching: solve the throughput LP, inflate edge lengths by the
  optimum's link utilization, re-match by the new distances, and keep the
  worst TM found;
* :func:`conjecture_2_4_evidence` — sampled evidence for "permutations
  are worst case": worst sampled permutation vs worst sampled hose TM.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..topologies.base import Topology
from ..traffic.matrix import TrafficMatrix
from ..traffic.patterns import longest_matching_tm, permutation_tm
from .lp import max_concurrent_throughput

__all__ = [
    "random_hose_tm",
    "adversarial_matching_tm",
    "conjecture_2_4_evidence",
    "Conjecture24Evidence",
]


def random_hose_tm(
    tors: List[int],
    servers_per_tor: int,
    seed: int = 0,
    sinkhorn_iters: int = 50,
) -> TrafficMatrix:
    """A random TM saturating every ToR's hose constraint.

    Draws a random positive rack-pair matrix and Sinkhorn-normalizes it so
    every row and column sums to ``servers_per_tor`` — a (near-)extreme
    point of the hose polytope with dense, unstructured demands.
    """
    n = len(tors)
    if n < 2:
        raise ValueError("need at least two ToRs")
    rng = np.random.default_rng(seed)
    m = rng.exponential(1.0, size=(n, n))
    np.fill_diagonal(m, 0.0)
    for _ in range(sinkhorn_iters):
        m *= servers_per_tor / np.maximum(m.sum(axis=1, keepdims=True), 1e-300)
        m *= servers_per_tor / np.maximum(m.sum(axis=0, keepdims=True), 1e-300)
    # Sinkhorn converges only in the limit; scale down so no row or column
    # exceeds the hose cap, guaranteeing strict feasibility.
    worst = max(m.sum(axis=1).max(), m.sum(axis=0).max())
    if worst > 0:
        m *= servers_per_tor / worst
    demands: Dict[Tuple[int, int], float] = {}
    for i, a in enumerate(tors):
        for j, b in enumerate(tors):
            if i != j and m[i, j] > 1e-9:
                demands[(a, b)] = float(m[i, j])
    return TrafficMatrix(demands)


def adversarial_matching_tm(
    topology: Topology,
    fraction: float = 1.0,
    iterations: int = 3,
    seed: int = 0,
    servers_per_tor: Optional[int] = None,
) -> Tuple[TrafficMatrix, float]:
    """Iteratively refined worst-case matching TM.

    Round 0 is the paper's longest-matching TM.  Each further round
    solves the exact throughput LP, sets every edge's length to
    ``1 + utilization`` at the optimum (so hot regions look "longer"),
    re-computes the distance-maximizing matching under those lengths, and
    keeps whichever TM achieved the lowest throughput.

    Returns ``(worst_tm, worst_throughput)``.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    rng = random.Random(seed)
    tors = topology.tors
    count = max(2, round(fraction * len(tors)))
    active = sorted(rng.sample(tors, min(count, len(tors))))
    if len(active) % 2 == 1:
        active = active[:-1]

    def tm_from_matching(weights: nx.Graph) -> TrafficMatrix:
        matching = nx.max_weight_matching(weights, maxcardinality=True)
        demands: Dict[Tuple[int, int], float] = {}
        for a, b in matching:
            load = float(
                servers_per_tor
                if servers_per_tor is not None
                else min(topology.servers_at(a), topology.servers_at(b))
            )
            demands[(a, b)] = load
            demands[(b, a)] = load
        return TrafficMatrix(demands)

    best_tm = longest_matching_tm(
        topology, fraction=fraction, seed=seed, servers_per_tor=servers_per_tor
    )
    best_result = max_concurrent_throughput(topology, best_tm)
    best_t = best_result.throughput

    lengths = {tuple(sorted(e)): 1.0 for e in topology.graph.edges()}
    last_result = best_result
    for _ in range(iterations - 1):
        # Inflate lengths by the previous optimum's utilization.
        for (u, v), util in (last_result.link_utilization or {}).items():
            key = tuple(sorted((u, v)))
            lengths[key] = max(lengths[key], 1.0 + util)
        weighted_graph = nx.Graph()
        for (u, v), l in lengths.items():
            weighted_graph.add_edge(u, v, weight=l)
        dist = {
            s: nx.single_source_dijkstra_path_length(weighted_graph, s)
            for s in active
        }
        weights = nx.Graph()
        for i, a in enumerate(active):
            for b in active[i + 1 :]:
                weights.add_edge(a, b, weight=dist[a][b])
        tm = tm_from_matching(weights)
        result = max_concurrent_throughput(topology, tm)
        last_result = result
        if result.throughput < best_t:
            best_t = result.throughput
            best_tm = tm
    return best_tm, best_t


@dataclass
class Conjecture24Evidence:
    """Sampled worst-case throughputs for the two TM families."""

    worst_permutation: float
    worst_hose: float
    permutation_samples: List[float]
    hose_samples: List[float]

    @property
    def consistent(self) -> bool:
        """Whether the samples are consistent with Conjecture 2.4.

        The conjecture says some permutation is at least as hard as any
        TM, so the sampled permutation minimum should not exceed the
        sampled hose minimum (up to solver tolerance).
        """
        return self.worst_permutation <= self.worst_hose + 1e-6


def conjecture_2_4_evidence(
    topology: Topology,
    servers_per_tor: int,
    trials: int = 5,
    seed: int = 0,
) -> Conjecture24Evidence:
    """Sampled evidence for Conjecture 2.4 on one topology.

    Solves the exact throughput LP for ``trials`` random permutation TMs
    and ``trials`` random saturating hose TMs and compares the minima.
    Sampling can only *refute* the conjecture (if a hose TM beat every
    permutation it would be a counterexample candidate); consistency is
    evidence, not proof.
    """
    perm = [
        max_concurrent_throughput(
            topology,
            permutation_tm(topology.tors, servers_per_tor, 1.0, seed=seed + i),
        ).throughput
        for i in range(trials)
    ]
    hose = [
        max_concurrent_throughput(
            topology,
            random_hose_tm(topology.tors, servers_per_tor, seed=seed + i),
        ).throughput
        for i in range(trials)
    ]
    return Conjecture24Evidence(
        worst_permutation=min(perm),
        worst_hose=min(hose),
        permutation_samples=perm,
        hose_samples=hose,
    )
