"""Approximate max-concurrent flow: the Garg–Könemann / Fleischer FPTAS.

For networks where the exact LP of :mod:`repro.throughput.lp` is too
large, this multiplicative-weights algorithm computes a (1 - O(eps))
approximation of the concurrent-flow throughput using only shortest-path
computations.  It is the work-horse behind the larger fluid-model sweeps.

Reference: N. Garg and J. Könemann, "Faster and simpler algorithms for
multicommodity flow and other fractional packing problems", and
L. Fleischer's phase-based refinement.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Sequence, Tuple

from ..topologies.base import Topology
from ..traffic.matrix import TrafficMatrix
from .lp import ThroughputResult

__all__ = ["approx_concurrent_throughput"]


def _dijkstra(
    adj: List[List[Tuple[int, int]]],
    lengths: List[float],
    src: int,
    dst: int,
) -> Tuple[List[int], float]:
    """Shortest path from src to dst under per-arc ``lengths``.

    ``adj[u]`` lists ``(v, arc_id)``.  Returns (arc-id path, distance);
    empty path if unreachable.
    """
    n = len(adj)
    dist = [math.inf] * n
    prev_arc = [-1] * n
    prev_node = [-1] * n
    dist[src] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, src)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if u == dst:
            break
        for v, arc in adj[u]:
            nd = d + lengths[arc]
            if nd < dist[v]:
                dist[v] = nd
                prev_arc[v] = arc
                prev_node[v] = u
                heapq.heappush(heap, (nd, v))
    if math.isinf(dist[dst]):
        return [], math.inf
    path: List[int] = []
    v = dst
    while v != src:
        path.append(prev_arc[v])
        v = prev_node[v]
    path.reverse()
    return path, dist[dst]


def approx_concurrent_throughput(
    topology: Topology,
    tm: TrafficMatrix,
    epsilon: float = 0.05,
    per_server_demand: float = 1.0,
) -> ThroughputResult:
    """(1 - O(eps))-approximate max-concurrent-flow throughput.

    Phase-based Garg–Könemann: arc lengths start at ``delta / capacity``;
    each phase routes every commodity's full demand along successively
    recomputed shortest paths, inflating traversed arcs' lengths by
    ``(1 + eps * used / capacity)``; the number of completed phases,
    scaled by ``log_{1+eps}((1+eps)/delta)``, lower-bounds the optimum.
    """
    if not 0 < epsilon < 0.5:
        raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
    if tm.num_flows == 0:
        return ThroughputResult(throughput=float("inf"), per_server=1.0)

    nodes = topology.switches
    node_index = {v: i for i, v in enumerate(nodes)}
    arcs: List[Tuple[int, int]] = []
    caps: List[float] = []
    adj: List[List[Tuple[int, int]]] = [[] for _ in nodes]
    for u, v, data in topology.graph.edges(data=True):
        for a, b in ((u, v), (v, u)):
            arc_id = len(arcs)
            arcs.append((a, b))
            caps.append(data["capacity"])
            adj[node_index[a]].append((node_index[b], arc_id))

    m = len(arcs)
    delta = (1 + epsilon) * ((1 + epsilon) * m) ** (-1.0 / epsilon)
    lengths = [delta / c for c in caps]
    flow = [0.0] * m

    demands = tm.items()
    commodities = [
        (node_index[s], node_index[d], val) for (s, d), val in demands
    ]

    def total_length() -> float:
        return sum(l * c for l, c in zip(lengths, caps))

    phases = 0
    max_phases = 10_000  # safety valve; never hit for sane epsilon
    while total_length() < 1.0 and phases < max_phases:
        for src, dst, dem in commodities:
            remaining = dem
            while remaining > 1e-15:
                if total_length() >= 1.0 and phases > 0:
                    break
                path, _ = _dijkstra(adj, lengths, src, dst)
                if not path:
                    return ThroughputResult(throughput=0.0, per_server=0.0)
                bottleneck = min(caps[a] for a in path)
                g = min(remaining, bottleneck)
                for a in path:
                    flow[a] += g
                    lengths[a] *= 1.0 + epsilon * g / caps[a]
                remaining -= g
        phases += 1

    scale = math.log((1 + epsilon) / delta) / math.log(1 + epsilon)
    t = phases / scale

    utilization = {
        arcs[a]: flow[a] / (caps[a] * scale) if caps[a] else 0.0 for a in range(m)
    }
    return ThroughputResult(
        throughput=t,
        per_server=min(1.0, t * per_server_demand),
        link_utilization=utilization,
    )
