"""Approximate max-concurrent flow: the Garg–Könemann / Fleischer FPTAS.

For networks where the exact LP of :mod:`repro.throughput.lp` is too
large, this multiplicative-weights algorithm computes a (1 - O(eps))
approximation of the concurrent-flow throughput using only shortest-path
computations.  It is the work-horse behind the larger fluid-model sweeps.

The inner loop is vectorized on the shared :class:`~.arcs.ArcTable`:
arc lengths, flows, and capacities live in numpy arrays (the phase
potential ``sum(length * capacity)`` is one dot product), and each
shortest-path call runs C-speed Dijkstra over a CSR matrix whose weight
slots are refreshed with a single gather — the CSR sparsity structure is
built once.

Reference: N. Garg and J. Könemann, "Faster and simpler algorithms for
multicommodity flow and other fractional packing problems", and
L. Fleischer's phase-based refinement.

This engine is also exposed as the ``mcf-approx`` backend of
:mod:`repro.solvers`, with ``epsilon`` as its accuracy knob.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np
from scipy.sparse import csgraph

from .. import obs
from ..topologies.base import Topology
from ..traffic.matrix import TrafficMatrix
from .arcs import ArcTable
from .lp import ThroughputResult, _drop_disconnected_demands

__all__ = ["approx_concurrent_throughput"]

_NO_PREDECESSOR = -9999  # scipy.sparse.csgraph sentinel


def approx_concurrent_throughput(
    topology: Topology,
    tm: TrafficMatrix,
    epsilon: float = 0.05,
    per_server_demand: float = 1.0,
) -> ThroughputResult:
    """(1 - O(eps))-approximate max-concurrent-flow throughput.

    Phase-based Garg–Könemann: arc lengths start at ``delta / capacity``;
    each phase routes every commodity's full demand along successively
    recomputed shortest paths, inflating traversed arcs' lengths by
    ``(1 + eps * used / capacity)``; the number of completed phases,
    scaled by ``log_{1+eps}((1+eps)/delta)``, lower-bounds the optimum.
    """
    if not 0 < epsilon < 0.5:
        raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
    if tm.num_flows == 0:
        return ThroughputResult(throughput=float("inf"), per_server=1.0)

    tm, dropped = _drop_disconnected_demands(topology, tm)
    if tm.num_flows == 0:
        return ThroughputResult(
            throughput=0.0, per_server=0.0, disconnected_pairs=dropped
        )

    table = ArcTable.from_topology(topology)
    caps = table.caps
    m = table.num_arcs
    weights_csr, perm = table.csr_structure()
    # arc id keyed by dense (tail, head) indices, for path reconstruction
    arc_of: Dict[Tuple[int, int], int] = {
        (int(t), int(h)): i
        for i, (t, h) in enumerate(zip(table.tails, table.heads))
    }

    delta = (1 + epsilon) * ((1 + epsilon) * m) ** (-1.0 / epsilon)
    lengths = delta / caps
    flow = np.zeros(m)

    demands = tm.items()
    commodities = [
        (table.node_index[s], table.node_index[d], val)
        for (s, d), val in demands
    ]

    def shortest_arc_path(src: int, dst: int) -> List[int]:
        """Arc-id path from src to dst under current lengths ([] if none)."""
        weights_csr.data = lengths[perm]
        dist, pred = csgraph.dijkstra(
            weights_csr, directed=True, indices=src, return_predecessors=True
        )
        if not np.isfinite(dist[dst]):
            return []
        path: List[int] = []
        v = dst
        while v != src:
            u = int(pred[v])
            if u == _NO_PREDECESSOR:
                return []
            path.append(arc_of[(u, v)])
            v = u
        path.reverse()
        return path

    phases = 0
    max_phases = 10_000  # safety valve; never hit for sane epsilon

    def total_length() -> float:
        return float(lengths @ caps)

    with obs.span(
        "mcf.run", epsilon=epsilon, commodities=len(commodities)
    ):
        while total_length() < 1.0 and phases < max_phases:
            for src, dst, dem in commodities:
                remaining = dem
                while remaining > 1e-15:
                    if total_length() >= 1.0 and phases > 0:
                        break
                    path = shortest_arc_path(src, dst)
                    if not path:  # unreachable under pre-filtered demands
                        obs.add("mcf.phases", phases)
                        return ThroughputResult(
                            throughput=0.0,
                            per_server=0.0,
                            disconnected_pairs=dropped,
                            iterations=phases,
                        )
                    bottleneck = min(caps[a] for a in path)
                    g = min(remaining, bottleneck)
                    for a in path:
                        flow[a] += g
                        lengths[a] *= 1.0 + epsilon * g / caps[a]
                    remaining -= g
            phases += 1
    obs.add("mcf.phases", phases)

    scale = math.log((1 + epsilon) / delta) / math.log(1 + epsilon)
    t = phases / scale

    utilization = {
        table.arcs[a]: float(flow[a] / (caps[a] * scale)) if caps[a] else 0.0
        for a in range(m)
    }
    return ThroughputResult(
        throughput=t,
        per_server=min(1.0, t * per_server_demand),
        link_utilization=utilization,
        disconnected_pairs=dropped,
        iterations=phases,
    )
