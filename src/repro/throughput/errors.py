"""Typed failure taxonomy for the throughput solvers.

Historically the LP entry points raised a bare ``RuntimeError(res.message)``
on *any* scipy/HiGHS failure, collapsing "this TM is infeasible on this
degraded topology" (an experiment outcome) into the same exception as
"HiGHS hit numerical trouble" (a solver pathology).  The classes here
keep ``RuntimeError`` as the base so existing ``except RuntimeError``
callers continue to work, while letting the harness, the resilience
campaign runner, and :mod:`repro.solvers` distinguish outcomes and carry
the topology/TM context that makes a failure record debuggable.

HiGHS status codes (``scipy.optimize.OptimizeResult.status``):
0 optimal, 1 iteration limit, 2 infeasible, 3 unbounded, 4 numerical
difficulties.  Codes 1 and 4 both map to
:class:`SolverNumericalError` — neither says anything about the
problem itself, only about the solve.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

__all__ = [
    "SolverFailure",
    "InfeasibleError",
    "UnboundedError",
    "SolverNumericalError",
    "raise_for_linprog",
]


class SolverFailure(RuntimeError):
    """An LP solve did not produce a usable optimum.

    Subclasses ``RuntimeError`` for backward compatibility with callers
    that predate the taxonomy.

    Attributes
    ----------
    formulation:
        Which LP failed (``"exact"`` / ``"paths"``).
    status_code:
        The raw HiGHS status code, when the solver reported one.
    iterations:
        Simplex/IPM iterations spent before the failure.
    context:
        Free-form experiment context (topology name, demand count, ...)
        attached by the call site.
    """

    def __init__(
        self,
        message: str,
        *,
        formulation: str = "",
        status_code: Optional[int] = None,
        iterations: int = 0,
        context: Optional[Mapping[str, Any]] = None,
    ):
        self.formulation = formulation
        self.status_code = status_code
        self.iterations = iterations
        self.context = dict(context or {})
        parts = []
        if formulation:
            parts.append(f"formulation={formulation}")
        if status_code is not None:
            parts.append(f"status={status_code}")
        parts.extend(f"{k}={v}" for k, v in self.context.items())
        super().__init__(message + (f" ({', '.join(parts)})" if parts else ""))


class InfeasibleError(SolverFailure):
    """No flow assignment satisfies the constraints (HiGHS status 2)."""


class UnboundedError(SolverFailure):
    """The objective is unbounded — a malformed formulation (status 3)."""


class SolverNumericalError(SolverFailure):
    """The solver gave up: iteration limit, numerical difficulties, or a
    result with no solution vector (HiGHS statuses 1 and 4)."""


#: status code -> (exception class, reason used when scipy's message is empty)
_HIGHS_STATUS = {
    1: (SolverNumericalError, "iteration limit reached"),
    2: (InfeasibleError, "problem is infeasible"),
    3: (UnboundedError, "problem is unbounded"),
    4: (SolverNumericalError, "numerical difficulties encountered"),
}


def raise_for_linprog(
    res: Any,
    *,
    formulation: str,
    context: Optional[Mapping[str, Any]] = None,
) -> None:
    """Map a failed ``scipy.optimize.linprog`` result to a typed exception.

    Returns silently when ``res`` is a success carrying a solution
    vector.  The ``res.x is None`` guard runs first: a nominally
    "successful" result without a solution vector is still unusable and
    must not reach the ``res.x[t_var]`` extraction.
    """
    iterations = int(getattr(res, "nit", 0) or 0)
    status = getattr(res, "status", None)
    success = bool(getattr(res, "success", False))
    if getattr(res, "x", None) is None:
        cls, reason = _HIGHS_STATUS.get(
            status, (SolverNumericalError, "solver returned no solution vector")
        )
        message = getattr(res, "message", "") or reason
        raise cls(
            f"throughput LP returned no solution: {message}",
            formulation=formulation,
            status_code=status,
            iterations=iterations,
            context=context,
        )
    if success:
        return
    cls, reason = _HIGHS_STATUS.get(status, (SolverNumericalError, "solver failed"))
    message = getattr(res, "message", "") or reason
    raise cls(
        f"throughput LP failed: {message}",
        formulation=formulation,
        status_code=status,
        iterations=iterations,
        context=context,
    )
