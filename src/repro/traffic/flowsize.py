"""Flow-size distributions (paper Fig. 8).

The paper uses two empirical distributions from prior work:

* the **pFabric web-search** distribution (Alizadeh et al., SIGCOMM 2013;
  originally the DCTCP production web-search workload), mean ≈ 2.4 MB —
  most bytes come from a heavy tail of multi-megabyte flows;
* the **Pareto-HULL** distribution (Alizadeh et al., NSDI 2012), mean ≈
  100 KB with 90th percentile below 100 KB — almost all flows are short.

Both are reproduced here: the web-search distribution as an empirical CDF
rescaled to the paper's quoted 2.4 MB mean, and HULL's as a (truncated)
Pareto with shape 1.05.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, Tuple

__all__ = [
    "FlowSizeDistribution",
    "EmpiricalCDF",
    "ParetoFlowSizes",
    "pfabric_web_search",
    "pareto_hull",
]


class FlowSizeDistribution:
    """Distribution over flow sizes in bytes."""

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size (bytes, >= 1)."""
        raise NotImplementedError

    def mean(self) -> float:
        """Expected flow size in bytes."""
        raise NotImplementedError

    def cdf(self, size: float) -> float:
        """P(flow size <= size)."""
        raise NotImplementedError


class EmpiricalCDF(FlowSizeDistribution):
    """Piecewise-linear empirical CDF with inverse-transform sampling.

    Parameters
    ----------
    points:
        Monotone list of ``(size_bytes, cumulative_probability)``; the last
        cumulative probability must be 1.0.  Sizes between points are
        linearly interpolated.
    """

    def __init__(self, points: Sequence[Tuple[float, float]], name: str = "empirical"):
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [float(s) for s, _ in points]
        probs = [float(p) for _, p in points]
        if any(b < a for a, b in zip(sizes, sizes[1:])):
            raise ValueError("CDF sizes must be non-decreasing")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError("CDF probabilities must be non-decreasing")
        if probs[0] < 0 or abs(probs[-1] - 1.0) > 1e-12:
            raise ValueError("CDF must start >= 0 and end at exactly 1.0")
        self.name = name
        self._sizes = sizes
        self._probs = probs

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        idx = bisect.bisect_left(self._probs, u)
        idx = min(max(idx, 1), len(self._probs) - 1)
        p0, p1 = self._probs[idx - 1], self._probs[idx]
        s0, s1 = self._sizes[idx - 1], self._sizes[idx]
        if p1 == p0:
            size = s1
        else:
            size = s0 + (s1 - s0) * (u - p0) / (p1 - p0)
        return max(1, int(round(size)))

    def mean(self) -> float:
        total = 0.0
        for i in range(1, len(self._sizes)):
            seg_prob = self._probs[i] - self._probs[i - 1]
            seg_mean = (self._sizes[i] + self._sizes[i - 1]) / 2.0
            total += seg_prob * seg_mean
        # Mass below the first point (if probs[0] > 0) sits at the first size.
        total += self._probs[0] * self._sizes[0]
        return total

    def cdf(self, size: float) -> float:
        if size <= self._sizes[0]:
            return self._probs[0] if size >= self._sizes[0] else 0.0
        if size >= self._sizes[-1]:
            return 1.0
        idx = bisect.bisect_right(self._sizes, size)
        s0, s1 = self._sizes[idx - 1], self._sizes[idx]
        p0, p1 = self._probs[idx - 1], self._probs[idx]
        if s1 == s0:
            return p1
        return p0 + (p1 - p0) * (size - s0) / (s1 - s0)

    def scaled_to_mean(self, target_mean: float) -> "EmpiricalCDF":
        """A copy with sizes scaled so the distribution mean equals target."""
        factor = target_mean / self.mean()
        return EmpiricalCDF(
            [(s * factor, p) for s, p in zip(self._sizes, self._probs)],
            name=self.name,
        )


class ParetoFlowSizes(FlowSizeDistribution):
    """(Truncated) Pareto flow sizes, parameterized by shape and mean.

    HULL's workload is Pareto with shape 1.05.  An optional truncation cap
    bounds simulation time; the scale parameter is solved numerically so
    the *truncated* distribution still has exactly the requested mean.
    """

    def __init__(
        self,
        shape: float = 1.05,
        mean_bytes: float = 100_000.0,
        cap_bytes: float | None = None,
        preserve: str = "shape",
        name: str = "pareto",
    ):
        if shape <= 1.0:
            raise ValueError("shape must exceed 1 for a finite mean")
        if preserve not in ("shape", "mean"):
            raise ValueError(f"preserve must be 'shape' or 'mean', got {preserve!r}")
        self.name = name
        self.shape = shape
        self.cap = cap_bytes
        if preserve == "mean":
            # Re-solve the scale so the *truncated* mean equals mean_bytes
            # (raises the scale, distorting body percentiles).
            self.scale = self._solve_scale(shape, mean_bytes, cap_bytes)
        else:
            # Keep the untruncated scale: every percentile below the cap is
            # exactly the paper's distribution; the truncated mean is lower.
            self.scale = self._solve_scale(shape, mean_bytes, None)

    @staticmethod
    def _truncated_mean(shape: float, scale: float, cap: float | None) -> float:
        if cap is None:
            return scale * shape / (shape - 1)
        # Truncated Pareto on [scale, cap]:
        # E[X] = a/(1-F(cap)) ... closed form:
        a, m, c = shape, scale, cap
        z = (m / c) ** a
        return (a * m / (a - 1)) * (1 - (m / c) ** (a - 1)) / (1 - z)

    @classmethod
    def _solve_scale(
        cls, shape: float, mean: float, cap: float | None
    ) -> float:
        if cap is None:
            return mean * (shape - 1) / shape
        lo, hi = 1.0, cap
        for _ in range(200):
            mid = (lo + hi) / 2
            if cls._truncated_mean(shape, mid, cap) < mean:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        if self.cap is None:
            size = self.scale / (1.0 - u) ** (1.0 / self.shape)
        else:
            # Inverse CDF of the truncated Pareto.
            z = (self.scale / self.cap) ** self.shape
            size = self.scale / (1.0 - u * (1.0 - z)) ** (1.0 / self.shape)
        return max(1, int(round(size)))

    def mean(self) -> float:
        return self._truncated_mean(self.shape, self.scale, self.cap)

    def cdf(self, size: float) -> float:
        if size < self.scale:
            return 0.0
        raw = 1.0 - (self.scale / size) ** self.shape
        if self.cap is None:
            return raw
        if size >= self.cap:
            return 1.0
        z = (self.scale / self.cap) ** self.shape
        return raw / (1.0 - z)


#: The pFabric web-search CDF shape (sizes in bytes before rescaling).
#: Point set follows the commonly-used staircase from the DCTCP paper's
#: production web-search measurement; rescaled so the mean is the paper's
#: quoted 2.4 MB.
_WEB_SEARCH_POINTS: List[Tuple[float, float]] = [
    (1_000, 0.0),
    (10_000, 0.15),
    (20_000, 0.20),
    (30_000, 0.30),
    (50_000, 0.40),
    (80_000, 0.53),
    (200_000, 0.60),
    (1_000_000, 0.70),
    (2_000_000, 0.80),
    (5_000_000, 0.90),
    (10_000_000, 0.97),
    (30_000_000, 1.00),
]


def pfabric_web_search(mean_bytes: float = 2_400_000.0) -> EmpiricalCDF:
    """The pFabric web-search flow-size distribution, rescaled to ``mean_bytes``."""
    base = EmpiricalCDF(_WEB_SEARCH_POINTS, name="pfabric-web-search")
    return base.scaled_to_mean(mean_bytes)


def pareto_hull(
    mean_bytes: float = 100_000.0, cap_bytes: float | None = 1_000_000_000.0
) -> ParetoFlowSizes:
    """The Pareto-HULL flow-size distribution (shape 1.05, nominal mean 100 KB).

    The default 1 GB truncation bounds the pure-Python simulator's worst
    case while leaving every percentile below the cap exactly equal to the
    untruncated Pareto's (``preserve="shape"``): in particular the 90th
    percentile stays below 100 KB as in the paper's Fig. 8.  Pass
    ``cap_bytes=None`` for the untruncated distribution, or construct
    :class:`ParetoFlowSizes` with ``preserve="mean"`` to pin the truncated
    mean instead.
    """
    return ParetoFlowSizes(
        shape=1.05, mean_bytes=mean_bytes, cap_bytes=cap_bytes, name="pareto-hull"
    )
