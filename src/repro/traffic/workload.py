"""Workload generation: pair distribution x flow sizes x arrivals.

A :class:`Workload` is the paper's §6.4 experiment recipe: at each (Poisson)
arrival, draw a (source, destination) server pair from the chosen pair
distribution and a flow size from the chosen size distribution.  Fixing the
seed reproduces an identical flow list, which is how the paper runs "an
identical set of flows" on different topologies/routings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from .arrivals import ArrivalProcess
from .flowsize import FlowSizeDistribution
from .patterns import PairDistribution

__all__ = ["FlowSpec", "Workload"]


@dataclass(frozen=True)
class FlowSpec:
    """One flow to inject into a simulator."""

    flow_id: int
    src_server: int
    dst_server: int
    size_bytes: int
    start_time: float


@dataclass
class Workload:
    """A reproducible stream of flows.

    Parameters
    ----------
    pairs:
        Distribution over (src_server, dst_server).
    sizes:
        Distribution over flow sizes in bytes.
    arrivals:
        Arrival process (aggregate across the network).
    seed:
        Seed controlling every random draw.
    """

    pairs: PairDistribution
    sizes: FlowSizeDistribution
    arrivals: ArrivalProcess
    seed: int = 0

    def generate(
        self,
        num_flows: int | None = None,
        horizon: float | None = None,
    ) -> List[FlowSpec]:
        """Generate flows until ``num_flows`` or until ``horizon`` seconds.

        Exactly one of the two limits must be provided.
        """
        if (num_flows is None) == (horizon is None):
            raise ValueError("provide exactly one of num_flows / horizon")
        # Independent streams so that arrival times and flow sizes are
        # identical across topologies/pair-distributions with the same
        # seed — the paper's "identical set of flows" methodology (§6.4).
        # (A shared stream would let the pair sampler's internal draws
        # shift every subsequent size, making cross-topology comparisons
        # noisy under heavy-tailed sizes.)
        rng_times = random.Random(f"{self.seed}-times")
        rng_sizes = random.Random(f"{self.seed}-sizes")
        rng_pairs = random.Random(f"{self.seed}-pairs")
        times = self.arrivals.iter_times(rng_times)
        flows: List[FlowSpec] = []
        fid = 0
        for t in times:
            if horizon is not None and t >= horizon:
                break
            if num_flows is not None and fid >= num_flows:
                break
            src, dst = self.pairs.sample_pair(rng_pairs)
            size = self.sizes.sample(rng_sizes)
            flows.append(FlowSpec(fid, src, dst, size, t))
            fid += 1
        return flows
