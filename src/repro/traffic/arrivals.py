"""Flow arrival processes.

The paper's packet-level experiments use Poisson flow arrivals with an
aggregate rate λ (flow starts per second across the whole network); a
deterministic process is provided for tests and debugging.
"""

from __future__ import annotations

import random
from typing import Iterator

__all__ = ["ArrivalProcess", "PoissonArrivals", "DeterministicArrivals"]


class ArrivalProcess:
    """Generates flow start times."""

    def iter_times(self, rng: random.Random) -> Iterator[float]:
        """Yield an infinite non-decreasing sequence of start times (seconds)."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Poisson process with aggregate rate ``rate`` flow-starts per second."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = rate

    def iter_times(self, rng: random.Random) -> Iterator[float]:
        t = 0.0
        while True:
            t += rng.expovariate(self.rate)
            yield t


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals at ``rate`` flow-starts per second."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = rate

    def iter_times(self, rng: random.Random) -> Iterator[float]:
        gap = 1.0 / self.rate
        t = 0.0
        while True:
            t += gap
            yield t
