"""Traffic matrices, pair distributions, flow sizes, arrivals, workloads."""

from .arrivals import ArrivalProcess, DeterministicArrivals, PoissonArrivals
from .flowsize import (
    EmpiricalCDF,
    FlowSizeDistribution,
    ParetoFlowSizes,
    pareto_hull,
    pfabric_web_search,
)
from .matrix import TrafficMatrix, TrafficMatrixError
from .patterns import (
    PairDistribution,
    RackPairDistribution,
    a2a_pair_distribution,
    all_to_all_tm,
    longest_matching_tm,
    many_to_one_tm,
    one_to_many_tm,
    permutation_tm,
    permute_pair_distribution,
    projector_like_pair_distribution,
    skew_pair_distribution,
)
from .trace import TraceStats, read_trace, trace_stats, write_trace
from .workload import FlowSpec, Workload

__all__ = [
    "TrafficMatrix",
    "TrafficMatrixError",
    "permutation_tm",
    "longest_matching_tm",
    "all_to_all_tm",
    "many_to_one_tm",
    "one_to_many_tm",
    "PairDistribution",
    "RackPairDistribution",
    "a2a_pair_distribution",
    "permute_pair_distribution",
    "skew_pair_distribution",
    "projector_like_pair_distribution",
    "FlowSizeDistribution",
    "EmpiricalCDF",
    "ParetoFlowSizes",
    "pfabric_web_search",
    "pareto_hull",
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "FlowSpec",
    "Workload",
    "write_trace",
    "read_trace",
    "trace_stats",
    "TraceStats",
]
