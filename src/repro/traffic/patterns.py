"""Traffic patterns: the paper's traffic matrices and pair distributions.

Two families live here:

* **Fluid-model traffic matrices** (§2, §5) — exact rack-to-rack demand
  matrices handed to the LP throughput engine: permutation TMs,
  longest-matching TMs (the empirically-hard near-worst-case TMs of
  Jyothi et al.), all-to-all, many-to-one and one-to-many.

* **Pair distributions** (§6.4) — probability distributions over
  (source server, destination server) pairs used by the packet-level
  simulator to draw each arriving flow's endpoints: A2A(x), Permute(x),
  Skew(θ, φ), and a synthetic ProjecToR-like distribution with the
  published skew marginals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..topologies.base import Topology
from .matrix import TrafficMatrix, TrafficMatrixError

__all__ = [
    "permutation_tm",
    "longest_matching_tm",
    "all_to_all_tm",
    "many_to_one_tm",
    "one_to_many_tm",
    "PairDistribution",
    "RackPairDistribution",
    "a2a_pair_distribution",
    "permute_pair_distribution",
    "skew_pair_distribution",
    "projector_like_pair_distribution",
]


# ----------------------------------------------------------------------
# Fluid-model traffic matrices
# ----------------------------------------------------------------------
def _active_subset(
    tors: Sequence[int], fraction: float, rng: random.Random
) -> List[int]:
    """A random subset of ``fraction`` of the given ToRs (at least 2)."""
    if not 0 < fraction <= 1:
        raise TrafficMatrixError(f"fraction must be in (0, 1], got {fraction}")
    count = max(2, round(fraction * len(tors)))
    count = min(count, len(tors))
    return sorted(rng.sample(list(tors), count))


def permutation_tm(
    tors: Sequence[int],
    servers_per_tor: int,
    fraction: float = 1.0,
    seed: int = 0,
    bidirectional: bool = True,
) -> TrafficMatrix:
    """Random permutation TM over a fraction of the racks.

    Each participating rack is matched with exactly one other participating
    rack and sends it ``servers_per_tor`` units (every server at line rate).
    With ``bidirectional=True`` (the default, matching the paper's
    rack-level matchings) both directions of each matched pair carry demand.
    """
    rng = random.Random(seed)
    active = _active_subset(tors, fraction, rng)
    if len(active) % 2 == 1:
        active = active[:-1]
    rng.shuffle(active)
    demands: Dict[Tuple[int, int], float] = {}
    for i in range(0, len(active), 2):
        a, b = active[i], active[i + 1]
        demands[(a, b)] = float(servers_per_tor)
        if bidirectional:
            demands[(b, a)] = float(servers_per_tor)
    return TrafficMatrix(demands)


#: Active-ToR count above which :func:`longest_matching_tm` switches
#: from the exact maximum-weight matching (O(n^3), ~0.6 s at 256 and
#: ~5 s at 512) to the greedy distance-maximizing pairing.  At or below
#: the threshold the output is byte-identical to what it has always
#: been.
LONGEST_MATCHING_EXACT_MAX = 256

#: Sources per chunked-BFS sweep in the greedy path: bounds the live
#: distance block to ``chunk x n`` instead of the O(n^2) full matrix.
_LONGEST_MATCHING_BFS_CHUNK = 256


def _exact_longest_matching(topology: Topology, active: List[int]):
    """Maximum-weight distance matching — the original exact pairing."""
    dist = {
        s: nx.single_source_shortest_path_length(topology.graph, s) for s in active
    }
    weighted = nx.Graph()
    for i, a in enumerate(active):
        for b in active[i + 1 :]:
            w = dist[a].get(b)
            if w is None:
                continue  # disconnected (degraded topology): unpairable
            weighted.add_edge(a, b, weight=w)
    return nx.max_weight_matching(weighted, maxcardinality=True)


def _greedy_longest_matching(topology: Topology, active: List[int]):
    """Greedy distance-maximizing pairing for large active sets.

    Deterministic by construction: active ToRs are scanned in sorted
    order; each still-unmatched ToR is paired with the *farthest*
    still-unmatched reachable partner, ties broken toward the smallest
    ToR id.  Distances come from the shared
    :class:`~repro.perf.PathCache` in bounded chunks
    (:data:`_LONGEST_MATCHING_BFS_CHUNK` sources per C-speed sweep), so
    neither the dense all-pairs matrix nor the O(n^3) blossom matching
    is ever materialized — this is what lets the TM generate at 4096+
    racks.

    Greedy is a 1/2-approximation of the maximum-weight matching in
    general; on the random regular graphs used here nearly all pairs sit
    at (or one off) the diameter, so the pairing stays a near-worst-case
    long-path TM — the property the pattern exists to stress.
    """
    import numpy as np

    from ..perf import shared_path_cache

    cache = shared_path_cache(topology.graph)
    active_cols = np.asarray(
        [cache.node_index[t] for t in active], dtype=np.intp
    )
    n_active = len(active)
    unmatched = np.ones(n_active, dtype=bool)
    matching: List[Tuple[int, int]] = []
    chunk = _LONGEST_MATCHING_BFS_CHUNK
    for start in range(0, n_active, chunk):
        sources = active[start:start + chunk]
        block = cache.distances_from(sources)[:, active_cols]
        for offset in range(len(sources)):
            i = start + offset
            if not unmatched[i]:
                continue
            row = block[offset]
            candidates = unmatched & np.isfinite(row)
            candidates[i] = False
            if not candidates.any():
                continue  # disconnected from every remaining ToR: unpairable
            masked = np.where(candidates, row, -np.inf)
            # argmax returns the first maximum; `active` is sorted, so
            # ties break toward the smallest partner id.
            j = int(np.argmax(masked))
            unmatched[i] = False
            unmatched[j] = False
            matching.append((active[i], active[j]))
    return matching


def longest_matching_tm(
    topology: Topology,
    fraction: float = 1.0,
    seed: int = 0,
    servers_per_tor: Optional[int] = None,
) -> TrafficMatrix:
    """Longest-matching TM (Jyothi et al.): distance-maximizing rack pairing.

    Participating racks are paired so flows traverse long paths and
    consolidate into large rack-to-rack demands — empirically a
    near-worst-case TM for static networks (paper §5).  Up to
    :data:`LONGEST_MATCHING_EXACT_MAX` active ToRs the pairing is the
    exact maximum-weight distance matching (byte-identical to the
    historical output); above it, a deterministic greedy
    distance-maximizing pairing over chunked
    :class:`~repro.perf.PathCache` distances takes over, keeping both
    memory and time subquadratic-ish in practice (no dense all-pairs
    matrix, no blossom algorithm) so the TM generates at 4096+ racks.
    """
    rng = random.Random(seed)
    tors = topology.tors
    active = _active_subset(tors, fraction, rng)
    if len(active) % 2 == 1:
        active = active[:-1]
    if len(active) <= LONGEST_MATCHING_EXACT_MAX:
        matching = _exact_longest_matching(topology, active)
    else:
        matching = _greedy_longest_matching(topology, active)
    demands: Dict[Tuple[int, int], float] = {}
    for a, b in matching:
        load = float(
            servers_per_tor
            if servers_per_tor is not None
            else min(topology.servers_at(a), topology.servers_at(b))
        )
        demands[(a, b)] = load
        demands[(b, a)] = load
    return TrafficMatrix(demands)


def all_to_all_tm(
    tors: Sequence[int],
    servers_per_tor: int,
    fraction: float = 1.0,
    seed: int = 0,
) -> TrafficMatrix:
    """All-to-all TM over a fraction of the racks.

    Each active rack spreads its full ``servers_per_tor`` units uniformly
    over all other active racks (hose-saturating).
    """
    rng = random.Random(seed)
    active = _active_subset(tors, fraction, rng)
    per_pair = servers_per_tor / (len(active) - 1)
    demands = {
        (a, b): per_pair for a in active for b in active if a != b
    }
    return TrafficMatrix(demands)


def many_to_one_tm(
    tors: Sequence[int],
    servers_per_tor: int,
    fraction: float = 1.0,
    seed: int = 0,
) -> TrafficMatrix:
    """Many-to-one TM: active racks all send to a single sink rack.

    The sink's hose constraint caps each sender's share at
    ``servers_per_tor / (num_senders)``.
    """
    rng = random.Random(seed)
    active = _active_subset(tors, fraction, rng)
    sink = active[0]
    senders = active[1:]
    share = servers_per_tor / len(senders)
    return TrafficMatrix({(s, sink): share for s in senders})


def one_to_many_tm(
    tors: Sequence[int],
    servers_per_tor: int,
    fraction: float = 1.0,
    seed: int = 0,
) -> TrafficMatrix:
    """One-to-many TM: a single source rack sends to all other active racks."""
    rng = random.Random(seed)
    active = _active_subset(tors, fraction, rng)
    source = active[0]
    receivers = active[1:]
    share = servers_per_tor / len(receivers)
    return TrafficMatrix({(source, r): share for r in receivers})


# ----------------------------------------------------------------------
# Pair distributions for the packet-level simulator
# ----------------------------------------------------------------------
class PairDistribution:
    """Distribution over (source server, destination server) pairs."""

    def sample_pair(self, rng: random.Random) -> Tuple[int, int]:
        """Draw one (src_server, dst_server) pair, src != dst."""
        raise NotImplementedError


@dataclass
class RackPairDistribution(PairDistribution):
    """Pair distribution defined by rack-pair probabilities.

    A rack pair is drawn from ``pair_weights`` (unnormalized), then a
    uniformly-random server within each rack: this is exactly how the paper
    maps ProjecToR's rack-to-rack communication probabilities to servers.
    """

    pair_weights: Dict[Tuple[int, int], float]
    tor_to_servers: Dict[int, List[int]]

    def __post_init__(self) -> None:
        if not self.pair_weights:
            raise TrafficMatrixError("empty pair distribution")
        items = sorted(self.pair_weights.items())
        self._pairs = [p for p, _ in items]
        self._weights = [w for _, w in items]
        total = sum(self._weights)
        if total <= 0:
            raise TrafficMatrixError("pair weights must sum to a positive value")
        for (s, d), w in items:
            if w < 0:
                raise TrafficMatrixError(f"negative weight for pair {(s, d)}")
            if s == d:
                raise TrafficMatrixError(f"self-pair {(s, d)}")
            for t in (s, d):
                if not self.tor_to_servers.get(t):
                    raise TrafficMatrixError(f"rack {t} has no servers")
        # Cumulative weights for O(log n) sampling.
        self._cum: List[float] = []
        acc = 0.0
        for w in self._weights:
            acc += w
            self._cum.append(acc)

    def sample_pair(self, rng: random.Random) -> Tuple[int, int]:
        import bisect

        x = rng.random() * self._cum[-1]
        idx = bisect.bisect_right(self._cum, x)
        idx = min(idx, len(self._pairs) - 1)
        src_tor, dst_tor = self._pairs[idx]
        src = rng.choice(self.tor_to_servers[src_tor])
        dst = rng.choice(self.tor_to_servers[dst_tor])
        while dst == src:  # pragma: no cover - distinct racks, unreachable
            dst = rng.choice(self.tor_to_servers[dst_tor])
        return src, dst

    def active_racks(self) -> List[int]:
        """Racks with positive sampling weight."""
        active = set()
        for (s, d), w in zip(self._pairs, self._weights):
            if w > 0:
                active.add(s)
                active.add(d)
        return sorted(active)


def _pick_active(
    topology: Topology, fraction: float, seed: int, take_first: bool
) -> List[int]:
    """Active racks: first x fraction (fat-trees) or a random x fraction."""
    tors = topology.tors
    count = max(2, round(fraction * len(tors)))
    count = min(count, len(tors))
    if take_first:
        return tors[:count]
    return sorted(random.Random(seed).sample(tors, count))


def a2a_pair_distribution(
    topology: Topology, fraction: float, seed: int = 0, take_first: bool = False
) -> RackPairDistribution:
    """A2A(x): uniform flows among an x-fraction of racks (paper §6.4).

    ``take_first=True`` reproduces the paper's convention for fat-trees
    ("the first x fraction are used"); the default random subset is the
    convention for Xpander.
    """
    active = _pick_active(topology, fraction, seed, take_first)
    weights = {(a, b): 1.0 for a in active for b in active if a != b}
    return RackPairDistribution(weights, topology.tor_to_servers())


def permute_pair_distribution(
    topology: Topology, fraction: float, seed: int = 0, take_first: bool = False
) -> RackPairDistribution:
    """Permute(x): random rack-level permutation among an x-fraction of racks.

    Flows start only between matched rack pairs (both directions), uniform
    over pairs — the paper's challenging consolidated workload.
    """
    rng = random.Random(seed + 1)
    active = _pick_active(topology, fraction, seed, take_first)
    if len(active) % 2 == 1:
        active = active[:-1]
    shuffled = list(active)
    rng.shuffle(shuffled)
    weights: Dict[Tuple[int, int], float] = {}
    for i in range(0, len(shuffled), 2):
        a, b = shuffled[i], shuffled[i + 1]
        weights[(a, b)] = 1.0
        weights[(b, a)] = 1.0
    return RackPairDistribution(weights, topology.tor_to_servers())


def skew_pair_distribution(
    topology: Topology,
    theta: float,
    phi: float,
    seed: int = 0,
) -> RackPairDistribution:
    """Skew(θ, φ): θ fraction of racks are hot and attract φ of the traffic.

    Per the paper §6.7: each hot rack participates with probability
    proportional to ``φ / |hot|`` and each cold rack proportional to
    ``(1 - φ) / |cold|``; a rack pair's probability is the (normalized)
    product.  Skew(0.04, 0.77) models the ProjecToR Microsoft-cluster TM.
    """
    if not 0 < theta < 1:
        raise TrafficMatrixError(f"theta must be in (0, 1), got {theta}")
    if not 0 <= phi <= 1:
        raise TrafficMatrixError(f"phi must be in [0, 1], got {phi}")
    rng = random.Random(seed)
    tors = topology.tors
    num_hot = max(1, round(theta * len(tors)))
    hot = set(rng.sample(tors, num_hot))
    cold = [t for t in tors if t not in hot]
    weight = {}
    for t in tors:
        if t in hot:
            weight[t] = phi / len(hot)
        else:
            weight[t] = (1 - phi) / len(cold) if cold else 0.0
    pair_weights = {
        (a, b): weight[a] * weight[b]
        for a in tors
        for b in tors
        if a != b and weight[a] * weight[b] > 0
    }
    return RackPairDistribution(pair_weights, topology.tor_to_servers())


def projector_like_pair_distribution(
    topology: Topology,
    hot_pair_fraction: float = 0.04,
    hot_byte_fraction: float = 0.77,
    zero_pair_fraction: float = 0.60,
    hot_rack_fraction: float = 0.25,
    seed: int = 0,
) -> RackPairDistribution:
    """Synthetic ProjecToR-like rack-pair distribution (substitution).

    The actual Microsoft-cluster rack-to-rack probabilities used by the
    paper are proprietary; this generator reproduces the published
    marginals instead: ``hot_byte_fraction`` of the traffic concentrated on
    ``hot_pair_fraction`` of the rack pairs (paper: 77% of bytes between 4%
    of rack pairs), a large fraction of rack pairs exchanging nothing at
    all (measurements: 46-99%), and the hot pairs clustered on a
    ``hot_rack_fraction`` subset of racks (the measured TMs are skewed at
    rack granularity too — a few racks dominate).  Hot-pair weights are
    exponentially distributed to mimic the measured heavy tail.
    """
    rng = random.Random(seed)
    tors = topology.tors
    pairs = [(a, b) for a in tors for b in tors if a != b]
    rng.shuffle(pairs)
    n_hot = max(1, round(hot_pair_fraction * len(pairs)))
    # Cluster the hot pairs on a small subset of racks.
    n_hot_racks = max(2, round(hot_rack_fraction * len(tors)))
    hot_racks = set(rng.sample(tors, n_hot_racks))
    hot_candidates = [
        p for p in pairs if p[0] in hot_racks and p[1] in hot_racks
    ]
    hot = hot_candidates[: min(n_hot, len(hot_candidates))]
    if len(hot) < n_hot:  # tiny networks: spill over to arbitrary pairs
        spill = [p for p in pairs if p not in set(hot)]
        hot = hot + spill[: n_hot - len(hot)]
    remaining = [p for p in pairs if p not in set(hot)]
    n_zero = round(zero_pair_fraction * len(pairs))
    n_zero = min(n_zero, len(remaining))
    cold = remaining[: len(remaining) - n_zero]
    weights: Dict[Tuple[int, int], float] = {}
    hot_raw = [rng.expovariate(1.0) for _ in hot]
    hot_total = sum(hot_raw) or 1.0
    for p, w in zip(hot, hot_raw):
        weights[p] = hot_byte_fraction * w / hot_total
    if cold:
        share = (1 - hot_byte_fraction) / len(cold)
        for p in cold:
            weights[p] = share
    return RackPairDistribution(weights, topology.tor_to_servers())
