"""Traffic matrices at rack (ToR) granularity.

The paper's fluid-flow analysis (§2, §5) works with hose-model traffic
matrices: the sum of demands out of (into) each server is limited by its
line rate.  At rack granularity that means each ToR's aggregate outgoing
and incoming demand is capped by ``servers_at(tor) * line_rate``; all
demands here are expressed in units of the server line rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

__all__ = ["TrafficMatrix", "TrafficMatrixError"]


class TrafficMatrixError(ValueError):
    """Raised for malformed or hose-infeasible traffic matrices."""


@dataclass
class TrafficMatrix:
    """Rack-to-rack demands in units of the server line rate.

    Parameters
    ----------
    demands:
        Mapping ``(src_tor, dst_tor) -> demand``.  Self-demands and
        non-positive demands are rejected.
    """

    demands: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for (s, d), v in self.demands.items():
            if s == d:
                raise TrafficMatrixError(f"self-demand at ToR {s}")
            if v <= 0:
                raise TrafficMatrixError(f"non-positive demand {v} for {(s, d)}")

    # ------------------------------------------------------------------
    @property
    def num_flows(self) -> int:
        """Number of distinct (src, dst) rack pairs with demand."""
        return len(self.demands)

    @property
    def total_demand(self) -> float:
        """Sum of all demands."""
        return sum(self.demands.values())

    def participants(self) -> Set[int]:
        """ToRs appearing as a source or destination."""
        out: Set[int] = set()
        for s, d in self.demands:
            out.add(s)
            out.add(d)
        return out

    def egress(self, tor: int) -> float:
        """Total demand sourced at ``tor``."""
        return sum(v for (s, _), v in self.demands.items() if s == tor)

    def ingress(self, tor: int) -> float:
        """Total demand destined to ``tor``."""
        return sum(v for (_, d), v in self.demands.items() if d == tor)

    def validate_hose(self, servers_per_tor: Dict[int, int]) -> None:
        """Check the hose-model constraints against per-ToR server counts.

        Raises :class:`TrafficMatrixError` naming the first violating ToR
        (smallest id, egress before ingress — deterministic regardless of
        demand insertion order).  A tiny tolerance absorbs floating-point
        noise from normalization.

        One pass over the demands: per-ToR egress/ingress totals are
        accumulated in a single scan instead of re-scanning all flows for
        every participant (which made validation quadratic and dominated
        TM generation at 10k+ flows).
        """
        eps = 1e-9
        egress: Dict[int, float] = {}
        ingress: Dict[int, float] = {}
        for (s, d), v in self.demands.items():
            egress[s] = egress.get(s, 0.0) + v
            ingress[d] = ingress.get(d, 0.0) + v
        for t in sorted(self.participants()):
            cap = servers_per_tor.get(t, 0)
            if egress.get(t, 0.0) > cap + eps:
                raise TrafficMatrixError(
                    f"ToR {t} egress {egress[t]:.6g} exceeds hose cap {cap}"
                )
            if ingress.get(t, 0.0) > cap + eps:
                raise TrafficMatrixError(
                    f"ToR {t} ingress {ingress[t]:.6g} exceeds hose cap {cap}"
                )

    def scaled(self, factor: float) -> "TrafficMatrix":
        """A copy of this TM with every demand multiplied by ``factor``."""
        if factor <= 0:
            raise TrafficMatrixError("scale factor must be positive")
        return TrafficMatrix({k: v * factor for k, v in self.demands.items()})

    def restricted_to_pairs(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> "TrafficMatrix":
        """A copy containing only the demands for the given rack pairs."""
        wanted = set(pairs)
        return TrafficMatrix(
            {k: v for k, v in self.demands.items() if k in wanted}
        )

    def items(self) -> List[Tuple[Tuple[int, int], float]]:
        """Demands as a deterministic, sorted list of ((src, dst), value)."""
        return sorted(self.demands.items())
