"""Flow-trace import/export and trace statistics.

The paper's workloads are synthetic, but the framework is meant as "an
easy-to-use baseline for future research to compare against" — which
means users need to bring their own measured traces.  This module
round-trips flow lists through a simple CSV format and computes the
summary statistics (byte/flow-count skew, size percentiles) the paper
uses to characterize workloads (e.g. "77% of bytes between 4% of the
rack-pairs").
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, TextIO, Tuple, Union

from .workload import FlowSpec

__all__ = [
    "write_trace",
    "read_trace",
    "TraceStats",
    "trace_stats",
]

_FIELDS = ["flow_id", "src_server", "dst_server", "size_bytes", "start_time"]


def write_trace(flows: Sequence[FlowSpec], target: Union[str, TextIO]) -> None:
    """Write flows as CSV (header + one row per flow).

    ``target`` may be a path or an open text file.
    """
    own = isinstance(target, str)
    handle = open(target, "w", newline="") if own else target
    try:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        for f in flows:
            writer.writerow(
                [f.flow_id, f.src_server, f.dst_server, f.size_bytes,
                 repr(f.start_time)]
            )
    finally:
        if own:
            handle.close()


def read_trace(source: Union[str, TextIO]) -> List[FlowSpec]:
    """Read flows from CSV written by :func:`write_trace`.

    Validates the header and every row; raises ``ValueError`` on
    malformed input naming the offending line.
    """
    own = isinstance(source, str)
    handle = open(source, newline="") if own else source
    try:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _FIELDS:
            raise ValueError(
                f"bad trace header {header!r}; expected {_FIELDS!r}"
            )
        flows: List[FlowSpec] = []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(_FIELDS):
                raise ValueError(f"line {lineno}: expected {len(_FIELDS)} fields")
            try:
                flow = FlowSpec(
                    flow_id=int(row[0]),
                    src_server=int(row[1]),
                    dst_server=int(row[2]),
                    size_bytes=int(row[3]),
                    start_time=float(row[4]),
                )
            except ValueError as exc:
                raise ValueError(f"line {lineno}: {exc}") from exc
            if flow.size_bytes <= 0:
                raise ValueError(f"line {lineno}: non-positive flow size")
            if flow.src_server == flow.dst_server:
                raise ValueError(f"line {lineno}: identical endpoints")
            flows.append(flow)
        return flows
    finally:
        if own:
            handle.close()


@dataclass
class TraceStats:
    """Summary statistics of a flow trace."""

    num_flows: int
    total_bytes: int
    mean_size: float
    median_size: float
    p99_size: float
    duration: float
    mean_rate_flows_per_s: float
    hot_pair_byte_share: float  # bytes on the top 4% of (src,dst) pairs
    zero_pair_fraction: float  # pairs (over seen endpoints) with no traffic

    def as_rows(self) -> List[List[object]]:
        """Rows for table rendering."""
        return [
            ["flows", self.num_flows],
            ["total bytes", self.total_bytes],
            ["mean size", round(self.mean_size, 1)],
            ["median size", round(self.median_size, 1)],
            ["p99 size", round(self.p99_size, 1)],
            ["duration (s)", round(self.duration, 6)],
            ["mean arrival rate (/s)", round(self.mean_rate_flows_per_s, 2)],
            ["byte share of top 4% pairs", round(self.hot_pair_byte_share, 4)],
            ["zero-traffic pair fraction", round(self.zero_pair_fraction, 4)],
        ]


def trace_stats(flows: Sequence[FlowSpec]) -> TraceStats:
    """Characterize a trace the way the paper characterizes workloads."""
    if not flows:
        raise ValueError("empty trace")
    sizes = sorted(f.size_bytes for f in flows)
    total = sum(sizes)
    times = [f.start_time for f in flows]
    duration = max(times) - min(times)

    pair_bytes: Dict[Tuple[int, int], int] = {}
    endpoints = set()
    for f in flows:
        pair_bytes[(f.src_server, f.dst_server)] = (
            pair_bytes.get((f.src_server, f.dst_server), 0) + f.size_bytes
        )
        endpoints.add(f.src_server)
        endpoints.add(f.dst_server)
    ranked = sorted(pair_bytes.values(), reverse=True)
    top = max(1, round(0.04 * len(ranked)))
    hot_share = sum(ranked[:top]) / total if total else 0.0
    possible_pairs = len(endpoints) * (len(endpoints) - 1)
    zero_fraction = (
        1.0 - len(pair_bytes) / possible_pairs if possible_pairs else 0.0
    )

    def pct(p: float) -> float:
        idx = min(len(sizes) - 1, max(0, math.ceil(p * len(sizes)) - 1))
        return float(sizes[idx])

    return TraceStats(
        num_flows=len(flows),
        total_bytes=total,
        mean_size=total / len(flows),
        median_size=pct(0.5),
        p99_size=pct(0.99),
        duration=duration,
        mean_rate_flows_per_s=(len(flows) / duration if duration > 0 else math.inf),
        hot_pair_byte_share=hot_share,
        zero_pair_fraction=zero_fraction,
    )
