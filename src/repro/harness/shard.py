"""Sharded sweep campaigns: partition, run, and merge.

A sweep's task set is content-addressed (every
:class:`~repro.harness.spec.ExperimentSpec` has a stable hash), which
makes *sharding* sound without any coordination: a spec's shard is a
pure function of its content hash, so N workers — processes on one
machine or hosts that have never spoken to each other — expand the same
sweep file, keep the points whose hash lands on their index, and run
them through an ordinary :class:`~repro.harness.runner.Runner`.  The
assignment is stable under ``--resume`` (filtering completed points out
of a sweep never moves the survivors to a different shard) and under
re-ordering of the sweep file (the hash ignores submission order).

The shard outputs — JSONL :class:`~repro.harness.records.ResultsStore`
files — are recombined by :func:`merge_stores`:

* **dedup** — records are keyed by ``spec_hash``; overlapping stores
  (a point retried on two shards, a merge of merges) collapse to one
  record per spec, preferring successful records over failures;
* **canonical order** — records are sorted by ``spec_hash`` (or by an
  explicit spec list, which reproduces submission order);
* **canonical bytes** — per-run execution metadata that legitimately
  differs between runs (``wall_clock_s``, ``attempts``, ``cached``) is
  normalized away, so the merged store is *byte-identical* no matter
  how the work was split.  ``merge_stores(shard_outputs)`` equals
  ``merge_stores([unsharded_output])`` bit for bit — the determinism
  contract the tests and the ``shard-smoke`` CI job assert.

:class:`ShardCoordinator` is the in-process fan-out used by the async
jobs API: it partitions a spec list, runs each shard on its own thread
through an inline Runner (LP solves drop the GIL inside scipy/HiGHS, so
shards genuinely overlap), aggregates progress, honours cooperative
cancellation, and merges the shard results back into submission order.

Shell surface::

    python -m repro sweep fig2.json --shard 0/3 --results shard0.jsonl
    python -m repro sweep fig2.json --shard 1/3 --results shard1.jsonl
    python -m repro sweep fig2.json --shard 2/3 --results shard2.jsonl
    python -m repro merge -o merged.jsonl shard0.jsonl shard1.jsonl shard2.jsonl
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from .records import ResultsStore, RunRecord
from .runner import Runner, SweepResult
from .spec import ExperimentSpec, SpecError

__all__ = [
    "ShardSpec",
    "MergeResult",
    "ShardCoordinator",
    "shard_of",
    "partition",
    "select_shard",
    "sweep_hash",
    "canonical_record",
    "merge_records",
    "merge_stores",
]

#: Hex digits of the content hash used for shard assignment (64 bits —
#: far past birthday trouble for any realistic sweep).
_ASSIGN_HEX_DIGITS = 16


def shard_of(spec: ExperimentSpec, count: int) -> int:
    """The shard index a spec deterministically belongs to.

    A pure function of the spec's content hash: independent of
    submission order, of which other points are in the sweep, and of
    the process computing it — two hosts expanding the same sweep file
    agree on every assignment with no coordination.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    return int(spec.content_hash()[:_ASSIGN_HEX_DIGITS], 16) % count


def sweep_hash(specs: Sequence[ExperimentSpec]) -> str:
    """A stable identity for a sweep's full task set.

    SHA-256 over the *sorted* content hashes: permutation-invariant, so
    reordered sweep files (or shards enumerating in different orders)
    agree on which campaign they are part of.
    """
    blob = "\n".join(sorted(s.content_hash() for s in specs))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a sweep: ``index`` of ``count``, tied to a task set.

    ``sweep`` is the :func:`sweep_hash` of the full spec list (optional
    but recommended: a merge can then refuse to combine shards of
    different campaigns).
    """

    index: int
    count: int
    sweep: str = ""

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SpecError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise SpecError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )

    @classmethod
    def parse(cls, text: str, sweep: str = "") -> "ShardSpec":
        """Parse the CLI form ``"i/N"`` (e.g. ``--shard 2/8``)."""
        parts = str(text).split("/")
        try:
            index, count = (int(p) for p in parts)
        except ValueError:
            raise SpecError(
                f"shard spec must look like 'i/N' (e.g. 0/4), got {text!r}"
            ) from None
        return cls(index=index, count=count, sweep=sweep)

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def select_shard(
    specs: Sequence[ExperimentSpec], shard: ShardSpec
) -> List[ExperimentSpec]:
    """The subset of ``specs`` belonging to ``shard``, in given order."""
    return [s for s in specs if shard_of(s, shard.count) == shard.index]


def partition(
    specs: Sequence[ExperimentSpec], count: int
) -> List[List[ExperimentSpec]]:
    """Split ``specs`` into ``count`` shards (some possibly empty).

    Every spec lands in exactly one shard; within a shard, submission
    order is preserved.
    """
    shards: List[List[ExperimentSpec]] = [[] for _ in range(count)]
    for spec in specs:
        shards[shard_of(spec, count)].append(spec)
    return shards


# ----------------------------------------------------------------------
# Merging shard outputs
# ----------------------------------------------------------------------
#: RunRecord fields that legitimately differ between two runs of the
#: same spec (timing, retry count, whether the cache served it).  The
#: canonical merged form pins them so merged stores are byte-stable.
_VOLATILE_DEFAULTS = {"wall_clock_s": 0.0, "attempts": 1, "cached": False}


def canonical_record(record: RunRecord) -> RunRecord:
    """A copy of ``record`` with per-run execution metadata normalized.

    ``metrics``/``telemetry``/``spec``/``provenance`` are deterministic
    functions of the spec (on one software stack); ``wall_clock_s``,
    ``attempts``, and ``cached`` are not — they describe one particular
    execution.  Pinning them to fixed defaults is what lets a merged
    store be compared byte-for-byte against any other run of the same
    sweep.
    """
    data = record.to_dict()
    data.update(_VOLATILE_DEFAULTS)
    return RunRecord.from_dict(data)


def _better(challenger: RunRecord, incumbent: RunRecord) -> bool:
    """Dedup policy: a successful record beats a failed one."""
    return challenger.ok and not incumbent.ok


def merge_records(
    records: Sequence[RunRecord],
    specs: Optional[Sequence[ExperimentSpec]] = None,
) -> List[RunRecord]:
    """Dedup + canonicalize + order a pile of shard records.

    Records are keyed by ``spec_hash``: the first occurrence wins
    unless a later one is successful where the incumbent failed (a
    point that failed on one shard but completed on another — e.g. an
    overlapping retry — settles as the success).  Output order is the
    ``specs`` list when given (submission order, the unsharded run's
    order), else sorted by ``spec_hash``; records for specs not in the
    list are appended hash-sorted so no input is silently dropped.
    """
    by_hash: "Dict[str, RunRecord]" = {}
    duplicates = 0
    for record in records:
        incumbent = by_hash.get(record.spec_hash)
        if incumbent is None:
            by_hash[record.spec_hash] = record
        else:
            duplicates += 1
            if _better(record, incumbent):
                by_hash[record.spec_hash] = record
    obs.add("harness.shard.merge_duplicates", duplicates)

    ordered: List[RunRecord] = []
    if specs is not None:
        for spec in specs:
            record = by_hash.pop(spec.content_hash(), None)
            if record is not None:
                ordered.append(record)
    ordered.extend(by_hash[h] for h in sorted(by_hash))
    return [canonical_record(r) for r in ordered]


@dataclass
class MergeResult:
    """What a :func:`merge_stores` call did."""

    path: str
    records: int
    duplicates: int
    failed: int
    inputs: List[str] = field(default_factory=list)


def merge_stores(
    inputs: Sequence[str],
    output: str,
    specs: Optional[Sequence[ExperimentSpec]] = None,
) -> MergeResult:
    """Merge shard JSONL stores into one canonical store at ``output``.

    Idempotent: merging a merged store (alone or with the shards it
    came from) reproduces it byte-for-byte.  The output file is
    rewritten, not appended to.
    """
    with obs.span("shard.merge", inputs=len(inputs)):
        loaded: List[RunRecord] = []
        raw_count = 0
        for path in inputs:
            records = ResultsStore(path).load()
            if not records and path and not os.path.exists(path):
                # Distinguish "empty shard" from "no such file": an
                # unreadable input is a caller error, not an empty merge.
                raise OSError(f"no such results store: {path}")
            raw_count += len(records)
            loaded.extend(records)
        merged = merge_records(loaded, specs=specs)

        parent = os.path.dirname(output)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = f"{output}.tmp"
        with open(tmp, "w") as f:
            for record in merged:
                f.write(record.to_json() + "\n")
        os.replace(tmp, output)
    obs.add("harness.shard.merged_records", len(merged))
    return MergeResult(
        path=output,
        records=len(merged),
        duplicates=raw_count - len(merged),
        failed=sum(1 for r in merged if not r.ok),
        inputs=list(inputs),
    )


# ----------------------------------------------------------------------
# In-process fan-out (the async jobs API's execution engine)
# ----------------------------------------------------------------------
class ShardCoordinator:
    """Fan a spec list out over per-shard threads and merge the results.

    Each shard runs on its own thread through an *inline* Runner — no
    worker forks, so the coordinator composes with the API's warm
    process state, and LP solves overlap because scipy/HiGHS drop the
    GIL.  Progress callbacks receive the aggregate
    ``{total, done, ok, cached, failed, shards, shards_done}`` under a
    lock; ``should_stop`` is threaded into every Runner, so one
    cooperative cancel flag stops all shards between points.

    Parameters
    ----------
    shards:
        Shard count (1 = a plain inline sweep).
    cache:
        Optional shared :class:`~repro.harness.cache.ResultCache`; all
        shards read and write it, which is what makes a cancelled run
        resumable.
    runner_factory:
        Optional ``(shard_index) -> Runner`` override; the default
        builds ``Runner(inline=True, retries=0, cache=cache,
        should_stop=...)``.  Mainly a test seam.
    """

    def __init__(
        self,
        shards: int,
        cache=None,
        progress: Optional[Callable[[Dict[str, int]], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        runner_factory: Optional[Callable[[int], Runner]] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.cache = cache
        self.progress = progress
        self.should_stop = should_stop
        self.runner_factory = runner_factory
        self._lock = threading.Lock()
        self._per_shard: List[Dict[str, int]] = []
        self._shards_done = 0
        self._total = 0

    def _runner(self, shard_index: int) -> Runner:
        if self.runner_factory is not None:
            return self.runner_factory(shard_index)
        return Runner(
            inline=True,
            retries=0,
            cache=self.cache,
            progress=self._shard_progress(shard_index),
            should_stop=self.should_stop,
        )

    def _shard_progress(self, shard_index: int):
        def update(p: Dict[str, int]) -> None:
            with self._lock:
                self._per_shard[shard_index] = dict(p)
                aggregate = self._aggregate_locked()
            if self.progress is not None:
                self.progress(aggregate)

        return update

    def _aggregate_locked(self) -> Dict[str, int]:
        agg = {"total": self._total, "done": 0, "ok": 0, "cached": 0,
               "failed": 0, "running": 0}
        for p in self._per_shard:
            for key in ("done", "ok", "cached", "failed", "running"):
                agg[key] += p.get(key, 0)
        agg["shards"] = self.shards
        agg["shards_done"] = self._shards_done
        return agg

    def run(self, specs: Sequence[ExperimentSpec]) -> SweepResult:
        """Run every spec across the shards; records in submission order.

        Cancellation (``should_stop`` returning True) stops each shard
        between points; the result then holds only the records that
        settled, exactly as an interrupted sweep's JSONL would.
        """
        t0 = time.perf_counter()
        parts = partition(specs, self.shards)
        with self._lock:
            self._total = len(specs)
            self._per_shard = [
                {"total": len(part)} for part in parts
            ]
        obs.add("harness.shard.runs")
        results: List[Optional[SweepResult]] = [None] * self.shards
        errors: List[BaseException] = []

        def run_shard(i: int) -> None:
            try:
                results[i] = self._runner(i).run(parts[i])
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
            finally:
                with self._lock:
                    self._shards_done += 1

        threads = [
            threading.Thread(
                target=run_shard, args=(i,), name=f"repro-shard-{i}",
                daemon=True,
            )
            for i in range(self.shards)
        ]
        with obs.span("shard.run", shards=self.shards, points=len(specs)):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            raise errors[0]

        by_hash = {
            r.spec_hash: r
            for result in results
            if result is not None
            for r in result.records
        }
        ordered = [
            by_hash[s.content_hash()]
            for s in specs
            if s.content_hash() in by_hash
        ]
        return SweepResult(
            records=ordered, wall_clock_s=time.perf_counter() - t0
        )
