"""Content-addressed on-disk result cache.

Completed points live at ``<root>/<key>.json`` where ``key`` is the
SHA-256 of ``spec.content_hash() + ":" + library_version``.  Keying on
the library version means a new release never serves stale results;
keying on the spec's content hash means *any* semantic parameter change
(and nothing else — the cosmetic ``name`` is excluded) produces a cache
miss.  Only successful records are cached, so failed points are retried
on the next sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from ..ioutils import atomic_write_json
from .records import RunRecord
from .spec import ExperimentSpec

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """A directory of ``<key>.json`` files, one per completed spec."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR, version: Optional[str] = None) -> None:
        if version is None:
            from .. import __version__ as version
        self.root = root
        self.version = version

    def key(self, spec: ExperimentSpec) -> str:
        payload = f"{spec.content_hash()}:{self.version}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def path(self, spec: ExperimentSpec) -> str:
        return os.path.join(self.root, f"{self.key(spec)}.json")

    def get(self, spec: ExperimentSpec) -> Optional[RunRecord]:
        """The cached record for ``spec``, or None (missing/corrupt)."""
        path = self.path(spec)
        try:
            with open(path) as f:
                record = RunRecord.from_dict(json.load(f))
        except (OSError, ValueError, TypeError):
            return None
        record.cached = True
        return record

    def put(self, spec: ExperimentSpec, record: RunRecord) -> str:
        """Store a successful record; returns its path.

        The write is atomic (temp file + rename) so a concurrent reader
        never sees a truncated entry.
        """
        if not record.ok:
            raise ValueError("only successful records are cached")
        return atomic_write_json(
            self.path(spec), record.to_dict(), sort_keys=True
        )

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(1 for n in os.listdir(self.root) if n.endswith(".json"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if os.path.isdir(self.root):
            for entry in os.listdir(self.root):
                if entry.endswith(".json"):
                    os.unlink(os.path.join(self.root, entry))
                    removed += 1
        return removed
