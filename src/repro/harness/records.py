"""Structured run results: :class:`RunRecord` and the JSONL store.

Every executed (or failed) experiment point becomes one ``RunRecord``
carrying the spec it came from, the paper metrics, a link-telemetry
summary, wall-clock time, and provenance.  Records round-trip through
JSON so sweeps can be persisted as JSONL and reconstituted later for
the :func:`repro.analysis.format_series` / ``format_table`` renderers.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "RunRecord",
    "ResultsStore",
    "provenance",
    "record_value",
    "series_from_records",
]


def provenance(engine: str = "") -> Dict[str, str]:
    """Environment fingerprint stored with every record."""
    from ..version import SPEC_HASH_VERSION, __version__

    return {
        "library_version": __version__,
        "spec_hash_version": SPEC_HASH_VERSION,
        "python_version": platform.python_version(),
        "platform": sys.platform,
        "engine": engine,
    }


@dataclass
class RunRecord:
    """The structured outcome of one experiment point.

    ``status`` is ``"ok"``, ``"failed"`` (the worker raised), or
    ``"timeout"`` (the worker exceeded its deadline and was killed).
    Failed points carry the error string instead of metrics, so a sweep
    always yields one record per spec — graceful degradation, never a
    crashed sweep.
    """

    spec: Dict[str, Any]
    spec_hash: str
    status: str = "ok"
    metrics: Dict[str, float] = field(default_factory=dict)
    telemetry: Dict[str, float] = field(default_factory=dict)
    wall_clock_s: float = 0.0
    provenance: Dict[str, str] = field(default_factory=dict)
    attempts: int = 1
    error: Optional[str] = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def name(self) -> str:
        return self.spec.get("name") or self.spec_hash[:10]

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "RunRecord":
        return cls.from_dict(json.loads(blob))


class ResultsStore:
    """Append-only JSONL store of :class:`RunRecord` objects."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, record: RunRecord) -> None:
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a") as f:
            f.write(record.to_json() + "\n")

    def extend(self, records: Sequence[RunRecord]) -> None:
        for record in records:
            self.append(record)

    def load(self) -> List[RunRecord]:
        """Reconstitute every record in the file (empty if absent)."""
        if not os.path.exists(self.path):
            return []
        records: List[RunRecord] = []
        with open(self.path) as f:
            for line in f:
                line = line.strip()
                if line:
                    records.append(RunRecord.from_json(line))
        return records


# ----------------------------------------------------------------------
# Reconstituting records into renderer inputs
# ----------------------------------------------------------------------
Selector = Union[str, Callable[[RunRecord], Any]]


def record_value(record: RunRecord, selector: Selector) -> Any:
    """Pull a value out of a record.

    ``selector`` is either a callable or a dotted path into the record's
    dict form, e.g. ``"spec.workload.fraction"`` or
    ``"metrics.avg_fct_ms"``.
    """
    if callable(selector):
        return selector(record)
    node: Any = record.to_dict()
    for part in selector.split("."):
        if not isinstance(node, Mapping) or part not in node:
            raise KeyError(
                f"selector {selector!r} missing at {part!r} for record "
                f"{record.name}"
            )
        node = node[part]
    return node


def series_from_records(
    records: Sequence[RunRecord],
    x: Selector,
    y: Selector,
    group: Selector = "spec.name",
    skip_failed: bool = True,
) -> Tuple[List[Any], Dict[str, List[float]]]:
    """Pivot records into ``format_series`` inputs.

    Returns ``(x_values, {group_name: [y, ...]})`` with x values sorted
    and series aligned to them (missing points become NaN).  Group order
    follows first appearance in ``records``, which the runner keeps in
    submission order — so rendering is deterministic regardless of
    completion order.
    """
    points: Dict[str, Dict[Any, float]] = {}
    xs: List[Any] = []
    for record in records:
        if skip_failed and not record.ok:
            continue
        xv = record_value(record, x)
        name = str(record_value(record, group))
        points.setdefault(name, {})[xv] = record_value(record, y)
        if xv not in xs:
            xs.append(xv)
    xs = sorted(xs)
    series = {
        name: [by_x.get(xv, float("nan")) for xv in xs]
        for name, by_x in points.items()
    }
    return xs, series
