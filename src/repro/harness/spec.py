"""Declarative experiment specifications for the sweep harness.

An :class:`ExperimentSpec` is a JSON-serializable description of one
evaluation point — topology family + parameters, workload, routing,
load, seed, and which engine evaluates it (``packet`` | ``flow`` |
``lp``).  Specs have a *stable content hash* over their semantic fields
(the cosmetic ``name`` label is excluded), which is what makes
content-addressed result caching sound: two specs that would run the
same experiment hash identically, and any parameter change produces a
new hash.

A *sweep file* is a JSON document describing many specs at once::

    {
      "defaults": {"topology": {"family": "fattree", "k": 4},
                   "engine": "packet",
                   "workload": {"pattern": "permute", "fraction": 0.5,
                                "sizes": "pfabric", "mean_flow_bytes": 200000,
                                "load": 0.3}},
      "grid": {"routing": ["ecmp", "hyb"],
               "workload.fraction": [0.2, 0.6, 1.0]},
      "points": [{"name": "extra", "routing": "vlb"}]
    }

``grid`` expands to the cartesian product of its (dotted-key) value
lists applied over ``defaults``; ``points`` are explicit per-point
overrides deep-merged over ``defaults``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "SpecError",
    "ExperimentSpec",
    "ENGINES",
    "TOPOLOGY_FAMILIES",
    "WORKLOAD_PATTERNS",
    "expand_sweep",
    "load_sweep_file",
]


class SpecError(ValueError):
    """An experiment specification is malformed."""


ENGINES = ("packet", "flow", "lp")

from ..registry import TOPOLOGIES as _TOPOLOGIES  # noqa: E402
from ..registry import TRAFFIC as _TRAFFIC  # noqa: E402

#: Topology families the harness can build (parameter names mirror the
#: CLI); sourced from :data:`repro.registry.TOPOLOGIES`.
TOPOLOGY_FAMILIES = _TOPOLOGIES.available()

#: Pair-distribution / TM patterns understood by the workload builder;
#: sourced from :data:`repro.registry.TRAFFIC`.
WORKLOAD_PATTERNS = _TRAFFIC.available()


@dataclass
class ExperimentSpec:
    """One evaluation point of a sweep.

    Parameters
    ----------
    topology:
        ``{"family": <TOPOLOGY_FAMILIES>, ...params}``.  Parameter names
        mirror the CLI: ``k``/``core_fraction`` (fattree), ``switches``/
        ``degree``/``servers`` (jellyfish), ``degree``/``lift``/
        ``servers`` (xpander), ``q`` (slimfly), ``n`` (longhop), plus
        ``seed`` where the constructor takes one.
    workload:
        Pattern + sizing.  ``pattern`` is one of
        :data:`WORKLOAD_PATTERNS`; ``fraction``/``theta``/``phi``/
        ``take_first``/``pattern_seed`` parameterize the pair
        distribution; ``sizes`` (``pfabric`` | ``hull``) with
        ``mean_flow_bytes`` (and ``cap_bytes`` for hull) pick flow
        sizes.  Load is either ``rate`` (flow arrivals/s, aggregate) or
        ``load`` (fraction of the active servers' access capacity).
        For the ``lp`` engine only ``pattern`` (``longest_matching``),
        ``fraction``, and optionally ``solver``/``k_paths``/``epsilon``
        apply.  ``solver`` is any :data:`repro.registry.SOLVERS` name
        (``exact`` — the default — / ``highs-exact`` /
        ``highs-batched`` / ``paths`` / ``highs-paths`` /
        ``mcf-approx``); ``k_paths`` parameterizes the paths backends
        and ``epsilon`` the approximation.  Points selecting a
        batching-capable solver on a shared topology are solved through
        one ``solve_many`` batch by the Runner.
    routing:
        Routing policy name (packet engine: any ``make_routing`` name;
        flow engine: ``ecmp``/``vlb``/``hyb``).  Ignored by ``lp``.
    engine:
        ``packet`` (discrete-event), ``flow`` (fluid max-min), or
        ``lp`` (throughput LP).
    seed:
        Master seed: workload generation, routing, and TM construction.
    failures:
        Optional failure scenario applied to the topology before the
        engine runs: a :data:`repro.registry.FAILURES` spec — compact
        string (``"links:fraction=0.08,seed=3"``) or mapping with a
        ``mode`` key.  ``None`` (the default) runs the healthy topology
        and is excluded from the content hash, so healthy specs keep
        their historical hashes.
    """

    topology: Dict[str, Any]
    workload: Dict[str, Any] = field(default_factory=dict)
    routing: str = "ecmp"
    engine: str = "packet"
    seed: int = 0
    measure_start: float = 0.02
    measure_end: float = 0.06
    link_rate_bps: float = 1e9
    server_link_rate_bps: Optional[float] = 1e9
    hyb_threshold_bytes: int = 100_000
    short_flow_bytes: Optional[int] = None
    max_sim_time: Optional[float] = None
    failures: Any = None
    name: str = ""

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown spec fields {sorted(unknown)}; "
                f"valid fields: {sorted(known)}"
            )
        spec = cls(**dict(data))
        spec.validate()
        return spec

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def canonical(self) -> Dict[str, Any]:
        """The semantic payload hashed for caching (excludes ``name``)."""
        data = self.to_dict()
        data.pop("name", None)
        if data.get("failures") is None:
            data.pop("failures", None)
        return data

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical JSON encoding.

        The algorithm is identified by
        :data:`repro.version.SPEC_HASH_VERSION`; bump that constant if
        the canonicalization or digest here ever changes.
        """
        blob = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`SpecError` on any structurally invalid field."""
        if self.engine not in ENGINES:
            raise SpecError(
                f"unknown engine {self.engine!r}; valid engines: {ENGINES}"
            )
        if not isinstance(self.topology, Mapping) or "family" not in self.topology:
            raise SpecError("topology must be a mapping with a 'family' key")
        family = self.topology["family"]
        if family not in TOPOLOGY_FAMILIES:
            raise SpecError(
                f"unknown topology family {family!r}; "
                f"valid families: {TOPOLOGY_FAMILIES}"
            )
        if not isinstance(self.workload, Mapping):
            raise SpecError("workload must be a mapping")
        pattern = self.workload.get(
            "pattern", "longest_matching" if self.engine == "lp" else "permute"
        )
        if pattern not in WORKLOAD_PATTERNS:
            raise SpecError(
                f"unknown workload pattern {pattern!r}; "
                f"valid patterns: {WORKLOAD_PATTERNS}"
            )
        if self.engine == "lp":
            from ..registry import SOLVERS

            solver_name = self.workload.get("solver", "exact")
            if solver_name not in SOLVERS:
                raise SpecError(
                    f"unknown lp solver {solver_name!r}; "
                    f"valid solvers: {SOLVERS.available()}"
                )
        if self.engine != "lp":
            if pattern == "longest_matching":
                raise SpecError(
                    "pattern 'longest_matching' is a fluid TM; use it with "
                    "engine='lp'"
                )
            has_load = self.workload.get("load") is not None
            has_rate = self.workload.get("rate") is not None
            if has_load == has_rate:
                raise SpecError(
                    "workload needs exactly one of 'load' (fraction of "
                    "active-server capacity) or 'rate' (flow arrivals/s)"
                )
            if not self.measure_end > self.measure_start >= 0:
                raise SpecError(
                    "need measure_end > measure_start >= 0, got "
                    f"[{self.measure_start}, {self.measure_end})"
                )
        if not isinstance(self.seed, int):
            raise SpecError(f"seed must be an int, got {self.seed!r}")
        if self.failures is not None:
            from ..registry import failure

            try:
                scenario = failure(self.failures)
            except (ValueError, TypeError) as exc:
                raise SpecError(f"bad failures spec: {exc}") from exc
            # Normalize to the JSON spec form so string and mapping
            # inputs hash identically and records stay serializable.
            self.failures = scenario.to_spec()
        from ..sim.simulation import ROUTING_CHOICES

        if self.engine == "packet" and self.routing not in ROUTING_CHOICES:
            raise SpecError(
                f"unknown routing {self.routing!r}; "
                f"valid choices: {ROUTING_CHOICES}"
            )
        if self.engine == "flow" and self.routing not in ("ecmp", "vlb", "hyb"):
            raise SpecError(
                f"flow engine supports ecmp/vlb/hyb, got {self.routing!r}"
            )

    @property
    def label(self) -> str:
        """A human-readable identifier for progress and tables."""
        return self.name or self.content_hash()[:10]


# ----------------------------------------------------------------------
# Sweep files: defaults + grid expansion + explicit points
# ----------------------------------------------------------------------
def _deep_merge(base: Mapping[str, Any], override: Mapping[str, Any]) -> Dict[str, Any]:
    """Merge ``override`` into ``base``; a JSON null removes the key."""
    out: Dict[str, Any] = {k: v for k, v in base.items()}
    for key, value in override.items():
        if value is None:
            out.pop(key, None)
        elif (
            key in out
            and isinstance(out[key], Mapping)
            and isinstance(value, Mapping)
        ):
            out[key] = _deep_merge(out[key], value)
        else:
            out[key] = value
    return out


def _set_dotted(data: Dict[str, Any], dotted: str, value: Any) -> None:
    parts = dotted.split(".")
    node = data
    for part in parts[:-1]:
        nxt = node.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            node[part] = nxt
        node = nxt
    node[parts[-1]] = value


def expand_sweep(doc: Mapping[str, Any]) -> List[ExperimentSpec]:
    """Expand a sweep document into a flat list of validated specs."""
    if not isinstance(doc, Mapping):
        raise SpecError("sweep document must be a JSON object")
    unknown = set(doc) - {"defaults", "grid", "points"}
    if unknown:
        raise SpecError(
            f"unknown sweep sections {sorted(unknown)}; "
            "valid sections: defaults, grid, points"
        )
    defaults = doc.get("defaults", {})
    grid = doc.get("grid", {})
    points: Sequence[Mapping[str, Any]] = doc.get("points", [])
    specs: List[ExperimentSpec] = []

    if grid:
        keys = list(grid.keys())
        for combo in itertools.product(*(grid[k] for k in keys)):
            data = json.loads(json.dumps(defaults))  # deep copy
            for key, value in zip(keys, combo):
                _set_dotted(data, key, value)
            if not data.get("name"):
                data["name"] = ",".join(
                    f"{k.split('.')[-1]}={v}" for k, v in zip(keys, combo)
                )
            specs.append(ExperimentSpec.from_dict(data))
    for i, point in enumerate(points):
        data = _deep_merge(defaults, point)
        if not data.get("name"):
            data["name"] = f"point-{i}"
        specs.append(ExperimentSpec.from_dict(data))
    if not grid and not points:
        specs.append(ExperimentSpec.from_dict(dict(defaults)))
    return specs


def load_sweep_file(path: str) -> List[ExperimentSpec]:
    """Load and expand a sweep JSON file.

    The file holds either a sweep document (``defaults``/``grid``/
    ``points``), a bare list of spec objects, or a single spec object.
    """
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, list):
        return [ExperimentSpec.from_dict(d) for d in doc]
    if isinstance(doc, Mapping) and (
        "defaults" in doc or "grid" in doc or "points" in doc
    ):
        return expand_sweep(doc)
    if isinstance(doc, Mapping):
        return [ExperimentSpec.from_dict(doc)]
    raise SpecError(f"cannot interpret sweep file {path!r}")
