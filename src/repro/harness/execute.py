"""Execution of one :class:`ExperimentSpec` → one :class:`RunRecord`.

This is the single place where a declarative spec is turned into real
library objects — topology, pair distribution, flow sizes, workload —
and evaluated by the requested engine:

* ``packet`` — :class:`repro.sim.PacketSimulation` (discrete-event,
  DCTCP), with a link-telemetry summary attached;
* ``flow``   — :class:`repro.flowsim.FlowLevelSimulation` (fluid
  max-min fair);
* ``lp``     — the fluid-flow throughput LP over a longest-matching TM
  (the Fig 2/5/6 engine).

Everything here is deterministic given the spec (wall-clock time is
recorded but kept out of ``metrics``), which is what makes the
content-addressed cache sound: see the determinism test in
``tests/harness/test_determinism.py``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Tuple

from ..flowsim import FlowLevelSimulation
from ..sim import NetworkParams, PacketSimulation, make_routing, network_report
from ..sim.stats import FlowStats
from ..throughput import max_concurrent_throughput, path_throughput
from ..topologies import (
    Topology,
    fattree,
    jellyfish,
    longhop,
    oversubscribed_fattree,
    slimfly,
    xpander,
)
from ..traffic import (
    PoissonArrivals,
    Workload,
    a2a_pair_distribution,
    longest_matching_tm,
    pareto_hull,
    permute_pair_distribution,
    pfabric_web_search,
    projector_like_pair_distribution,
    skew_pair_distribution,
)
from .records import RunRecord, provenance
from .spec import ExperimentSpec, SpecError

__all__ = ["build_topology", "execute_spec"]


def build_topology(topo_spec: Mapping[str, Any]) -> Topology:
    """Build the topology a spec's ``topology`` mapping describes.

    Parameter names mirror the CLI (``python -m repro topology``):
    ``fattree``: k, core_fraction, servers; ``jellyfish``: switches,
    degree, servers, seed; ``xpander``: degree, lift, servers, matching,
    seed; ``slimfly``: q, servers; ``longhop``: n, degree, servers.
    """
    params = dict(topo_spec)
    family = params.pop("family", None)
    if family == "fattree":
        k = params.pop("k", 8)
        core_fraction = params.pop("core_fraction", 1.0)
        servers = params.pop("servers", None)
        _reject_extras(family, params)
        if core_fraction >= 1.0:
            return fattree(k, servers_per_edge=servers).topology
        return oversubscribed_fattree(
            k, core_fraction, servers_per_edge=servers
        ).topology
    if family == "jellyfish":
        out = jellyfish(
            params.pop("switches", 32),
            params.pop("degree", 6),
            params.pop("servers", 4),
            seed=params.pop("seed", 0),
        )
    elif family == "xpander":
        out = xpander(
            params.pop("degree", 6),
            params.pop("lift", 8),
            params.pop("servers", 4),
            matching=params.pop("matching", "shift"),
            seed=params.pop("seed", 0),
        )
    elif family == "slimfly":
        out = slimfly(params.pop("q", 5), params.pop("servers", 4))
    elif family == "longhop":
        out = longhop(
            params.pop("n", 5), params.pop("degree", 6), params.pop("servers", 4)
        )
    else:
        raise SpecError(f"unknown topology family {family!r}")
    _reject_extras(family, params)
    return out


def _reject_extras(family: str, leftovers: Mapping[str, Any]) -> None:
    if leftovers:
        raise SpecError(
            f"unknown {family} topology parameters {sorted(leftovers)}"
        )


def _build_pairs(spec: ExperimentSpec, topology: Topology):
    wl = spec.workload
    pattern = wl.get("pattern", "permute")
    pattern_seed = wl.get("pattern_seed", spec.seed)
    take_first = bool(wl.get("take_first", False))
    if pattern == "a2a":
        return a2a_pair_distribution(
            topology, wl.get("fraction", 1.0), seed=pattern_seed,
            take_first=take_first,
        )
    if pattern == "permute":
        return permute_pair_distribution(
            topology, wl.get("fraction", 1.0), seed=pattern_seed,
            take_first=take_first,
        )
    if pattern == "skew":
        return skew_pair_distribution(
            topology, wl.get("theta", 0.04), wl.get("phi", 0.77),
            seed=pattern_seed,
        )
    if pattern == "projector":
        return projector_like_pair_distribution(topology, seed=pattern_seed)
    raise SpecError(f"unknown workload pattern {pattern!r}")


def _build_sizes(spec: ExperimentSpec):
    wl = spec.workload
    kind = wl.get("sizes", "pfabric")
    mean = wl.get("mean_flow_bytes")
    if kind == "pfabric":
        return pfabric_web_search(mean) if mean else pfabric_web_search()
    if kind == "hull":
        kwargs: Dict[str, Any] = {}
        if mean:
            kwargs["mean_bytes"] = mean
        if "cap_bytes" in wl:
            kwargs["cap_bytes"] = wl["cap_bytes"]
        return pareto_hull(**kwargs)
    raise SpecError(f"unknown size distribution {kind!r} (pfabric/hull)")


def _resolve_rate(spec: ExperimentSpec, topology: Topology, pairs, sizes) -> float:
    """The aggregate flow arrival rate (flows/s) for the workload.

    ``rate`` is taken verbatim.  ``load`` is the offered fraction of the
    *active* servers' access capacity: racks with positive sampling
    weight contribute their servers, each assumed to inject at the
    server link rate.
    """
    wl = spec.workload
    if wl.get("rate") is not None:
        return float(wl["rate"])
    load = float(wl["load"])
    active_racks = getattr(pairs, "active_racks", None)
    if active_racks is not None:
        active_servers = sum(topology.servers_at(t) for t in active_racks())
    else:
        active_servers = topology.num_servers
    rate_bps = spec.server_link_rate_bps or spec.link_rate_bps
    mean_bytes = wl.get("mean_flow_bytes") or sizes.mean()
    return (load * active_servers * rate_bps / 8.0) / mean_bytes


def _run_lp(spec: ExperimentSpec, topology: Topology) -> Dict[str, float]:
    wl = spec.workload
    fraction = wl.get("fraction", 1.0)
    pattern_seed = wl.get("pattern_seed", spec.seed)
    tm = longest_matching_tm(topology, fraction, seed=pattern_seed)
    solver = wl.get("solver", "exact")
    if solver == "exact":
        res = max_concurrent_throughput(topology, tm)
    elif solver == "paths":
        res = path_throughput(topology, tm, k=wl.get("k_paths", 8))
    else:
        raise SpecError(f"unknown lp solver {solver!r} (exact/paths)")
    return {
        "per_server_throughput": res.per_server,
        "fraction": float(fraction),
    }


def _run_packet(
    spec: ExperimentSpec, topology: Topology, flows
) -> Tuple[FlowStats, Dict[str, float]]:
    policy = make_routing(
        spec.routing,
        topology,
        seed=spec.seed,
        hyb_threshold_bytes=spec.hyb_threshold_bytes,
    )
    sim = PacketSimulation(
        topology,
        routing=policy,
        network_params=NetworkParams(
            link_rate_bps=spec.link_rate_bps,
            server_link_rate_bps=spec.server_link_rate_bps,
        ),
        seed=spec.seed,
    )
    sim.inject(flows)
    stats = sim.run(
        spec.measure_start, spec.measure_end, max_sim_time=spec.max_sim_time
    )
    report = network_report(sim.network)
    telemetry = {
        "total_drops": report.total_drops,
        "total_marks": report.total_marks,
        "max_utilization": report.max_utilization,
        "mean_utilization": report.mean_utilization,
        "num_links": len(report.links),
    }
    return stats, telemetry


def _run_flow(spec: ExperimentSpec, topology: Topology, flows) -> FlowStats:
    sim = FlowLevelSimulation(
        topology,
        routing=spec.routing,
        link_rate_bps=spec.link_rate_bps,
        server_link_rate_bps=spec.server_link_rate_bps,
        hyb_threshold_bytes=spec.hyb_threshold_bytes,
        seed=spec.seed,
    )
    return sim.run(
        flows,
        measure_start=spec.measure_start,
        measure_end=spec.measure_end,
        max_sim_time=spec.max_sim_time if spec.max_sim_time else 1e9,
    )


def execute_spec(spec: ExperimentSpec) -> RunRecord:
    """Run one spec to completion and return its successful record.

    Exceptions propagate to the caller; the :class:`~repro.harness.runner.Runner`
    converts them into failure records.
    """
    spec.validate()
    start = time.perf_counter()
    topology = build_topology(spec.topology)

    if spec.engine == "lp":
        metrics = _run_lp(spec, topology)
        telemetry: Dict[str, float] = {}
    else:
        pairs = _build_pairs(spec, topology)
        sizes = _build_sizes(spec)
        rate = _resolve_rate(spec, topology, pairs, sizes)
        workload = Workload(pairs, sizes, PoissonArrivals(rate), seed=spec.seed)
        horizon = spec.workload.get(
            "horizon",
            spec.measure_end + (spec.measure_end - spec.measure_start),
        )
        flows = workload.generate(horizon=horizon)
        if spec.engine == "packet":
            stats, telemetry = _run_packet(spec, topology, flows)
        else:
            stats = _run_flow(spec, topology, flows)
            telemetry = {}
        if spec.short_flow_bytes is not None:
            stats.short_flow_bytes = spec.short_flow_bytes
        metrics = stats.summary()

    return RunRecord(
        spec=spec.to_dict(),
        spec_hash=spec.content_hash(),
        status="ok",
        metrics=metrics,
        telemetry=telemetry,
        wall_clock_s=time.perf_counter() - start,
        provenance=provenance(spec.engine),
    )
