"""Execution of one :class:`ExperimentSpec` → one :class:`RunRecord`.

This is the single place where a declarative spec is turned into real
library objects — topology, pair distribution, flow sizes, workload —
and evaluated by the requested engine:

* ``packet`` — :class:`repro.sim.PacketSimulation` (discrete-event,
  DCTCP), with a link-telemetry summary attached;
* ``flow``   — :class:`repro.flowsim.FlowLevelSimulation` (fluid
  max-min fair);
* ``lp``     — the fluid-flow throughput LP over a longest-matching TM
  (the Fig 2/5/6 engine).

Everything here is deterministic given the spec (wall-clock time is
recorded but kept out of ``metrics``), which is what makes the
content-addressed cache sound: see the determinism test in
``tests/harness/test_determinism.py``.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from .. import registry
from ..flowsim import FlowLevelSimulation
from ..obs import emit_network_report
from ..sim import NetworkParams, PacketSimulation
from ..sim.stats import FlowStats
from ..topologies import Topology
from ..traffic import PoissonArrivals, Workload, pareto_hull, pfabric_web_search
from .records import RunRecord, provenance
from .spec import ExperimentSpec, SpecError

__all__ = ["build_topology", "execute_spec", "execute_lp_batch"]


def build_topology(topo_spec: Mapping[str, Any]) -> Topology:
    """Deprecated: build the topology a spec's ``topology`` mapping describes.

    Use :func:`repro.registry.topology`, which accepts the same mappings
    plus compact string specs.  This shim delegates verbatim (parameter
    names mirror the CLI: see ``registry.TOPOLOGIES.describe``).
    """
    warnings.warn(
        "harness.execute.build_topology is deprecated; use "
        "repro.registry.topology",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_topology(topo_spec)


def _build_topology(topo_spec: Mapping[str, Any]) -> Topology:
    try:
        return registry.topology(topo_spec)
    except registry.RegistryError as exc:
        raise SpecError(str(exc)) from exc


def _build_pairs(spec: ExperimentSpec, topology: Topology):
    wl = spec.workload
    pattern = wl.get("pattern", "permute")
    params: Dict[str, Any] = {"seed": wl.get("pattern_seed", spec.seed)}
    if pattern in ("a2a", "permute"):
        params["fraction"] = wl.get("fraction", 1.0)
        params["take_first"] = bool(wl.get("take_first", False))
    elif pattern == "skew":
        params["theta"] = wl.get("theta", 0.04)
        params["phi"] = wl.get("phi", 0.77)
    try:
        return registry.TRAFFIC.build(pattern, topology, **params)
    except registry.RegistryError as exc:
        raise SpecError(str(exc)) from exc


def _build_sizes(spec: ExperimentSpec):
    wl = spec.workload
    kind = wl.get("sizes", "pfabric")
    mean = wl.get("mean_flow_bytes")
    if kind == "pfabric":
        return pfabric_web_search(mean) if mean else pfabric_web_search()
    if kind == "hull":
        kwargs: Dict[str, Any] = {}
        if mean:
            kwargs["mean_bytes"] = mean
        if "cap_bytes" in wl:
            kwargs["cap_bytes"] = wl["cap_bytes"]
        return pareto_hull(**kwargs)
    raise SpecError(f"unknown size distribution {kind!r} (pfabric/hull)")


def _resolve_rate(spec: ExperimentSpec, topology: Topology, pairs, sizes) -> float:
    """The aggregate flow arrival rate (flows/s) for the workload.

    ``rate`` is taken verbatim.  ``load`` is the offered fraction of the
    *active* servers' access capacity: racks with positive sampling
    weight contribute their servers, each assumed to inject at the
    server link rate.
    """
    wl = spec.workload
    if wl.get("rate") is not None:
        return float(wl["rate"])
    load = float(wl["load"])
    active_racks = getattr(pairs, "active_racks", None)
    if active_racks is not None:
        active_servers = sum(topology.servers_at(t) for t in active_racks())
    else:
        active_servers = topology.num_servers
    rate_bps = spec.server_link_rate_bps or spec.link_rate_bps
    mean_bytes = wl.get("mean_flow_bytes") or sizes.mean()
    return (load * active_servers * rate_bps / 8.0) / mean_bytes


def _lp_solver_backend(wl: Mapping[str, Any]):
    """The :data:`repro.registry.SOLVERS` backend an lp workload selects.

    ``k_paths`` parameterizes the paths backends and ``epsilon`` the
    approximation; ``highs-colgen`` takes ``k_paths`` (seed paths per
    demand), ``max_rounds``, and ``solver_mode``; the other exact
    backends take no knobs (beyond ``highs-incremental``'s
    ``solver_mode``).
    """
    name = str(wl.get("solver", "exact"))
    params: Dict[str, Any] = {}
    if name in ("paths", "highs-paths"):
        params["k"] = wl.get("k_paths", 8)
    elif name == "mcf-approx" and "epsilon" in wl:
        params["epsilon"] = wl["epsilon"]
    elif name == "highs-incremental" and "solver_mode" in wl:
        params["mode"] = wl["solver_mode"]
    elif name == "highs-colgen":
        if "k_paths" in wl:
            params["k"] = wl["k_paths"]
        if "max_rounds" in wl:
            params["max_rounds"] = wl["max_rounds"]
        if "solver_mode" in wl:
            params["mode"] = wl["solver_mode"]
    try:
        return registry.SOLVERS.build(name, **params)
    except registry.RegistryError as exc:
        raise SpecError(str(exc)) from exc


def _lp_tm(spec: ExperimentSpec, topology: Topology):
    """The longest-matching TM an lp spec describes (plus its fraction)."""
    wl = spec.workload
    fraction = wl.get("fraction", 1.0)
    pattern_seed = wl.get("pattern_seed", spec.seed)
    tm = registry.TRAFFIC.build(
        "longest_matching", topology, fraction=fraction, seed=pattern_seed
    )
    return tm, fraction


def _lp_metrics(result, fraction) -> Dict[str, float]:
    return {
        "per_server_throughput": result.per_server,
        "fraction": float(fraction),
        "disconnected_pairs": float(result.disconnected_pairs),
    }


def _run_lp(spec: ExperimentSpec, topology: Topology) -> Dict[str, float]:
    tm, fraction = _lp_tm(spec, topology)
    backend = _lp_solver_backend(spec.workload)
    outcome = backend.solve(topology, tm)
    # Non-optimal outcomes re-raise the typed SolverFailure: the Runner
    # turns it into a (non-retryable) failure record, so infeasible
    # points degrade a sweep instead of aborting it.
    outcome.raise_for_status()
    return _lp_metrics(outcome.result, fraction)


def _run_packet(
    spec: ExperimentSpec, topology: Topology, flows
) -> Tuple[FlowStats, Dict[str, float]]:
    defaults: Dict[str, Any] = {"seed": spec.seed}
    if spec.routing == "hyb":
        defaults["hyb_threshold_bytes"] = spec.hyb_threshold_bytes
    policy = registry.routing(spec.routing, topology, **defaults)
    sim = PacketSimulation(
        topology,
        routing=policy,
        network_params=NetworkParams(
            link_rate_bps=spec.link_rate_bps,
            server_link_rate_bps=spec.server_link_rate_bps,
        ),
        seed=spec.seed,
    )
    sim.inject(flows)
    stats = sim.run(
        spec.measure_start, spec.measure_end, max_sim_time=spec.max_sim_time
    )
    report = emit_network_report(sim.network)
    telemetry = {
        "total_drops": report.total_drops,
        "total_marks": report.total_marks,
        "max_utilization": report.max_utilization,
        "mean_utilization": report.mean_utilization,
        "num_links": len(report.links),
    }
    return stats, telemetry


def _run_flow(spec: ExperimentSpec, topology: Topology, flows) -> FlowStats:
    sim = FlowLevelSimulation(
        topology,
        routing=spec.routing,
        link_rate_bps=spec.link_rate_bps,
        server_link_rate_bps=spec.server_link_rate_bps,
        hyb_threshold_bytes=spec.hyb_threshold_bytes,
        seed=spec.seed,
    )
    return sim.run(
        flows,
        measure_start=spec.measure_start,
        measure_end=spec.measure_end,
        max_sim_time=spec.max_sim_time if spec.max_sim_time else 1e9,
    )


def _apply_failures(
    spec: ExperimentSpec, topology: Topology
) -> Tuple[Topology, Dict[str, float]]:
    """Degrade ``topology`` per ``spec.failures`` (no-op when healthy)."""
    if spec.failures is None:
        return topology, {}
    scenario = registry.failure(spec.failures)
    topology = topology.degrade(scenario)
    return topology, {
        "connectivity": topology.connectivity(),
        "failed_links": float(len(topology.failed_links)),
        "failed_switches": float(len(topology.failed_switches)),
        "links_retained": topology.links_retained,
        "switches_retained": topology.switches_retained,
    }


def execute_spec(spec: ExperimentSpec) -> RunRecord:
    """Run one spec to completion and return its successful record.

    Exceptions propagate to the caller; the :class:`~repro.harness.runner.Runner`
    converts them into failure records.
    """
    spec.validate()
    start = time.perf_counter()
    topology = _build_topology(spec.topology)

    topology, degraded_telemetry = _apply_failures(spec, topology)
    if spec.failures is not None:
        if spec.engine != "lp":
            # The simulators need every generated flow to be routable;
            # the LP engines report disconnected pairs instead.
            from ..topologies import largest_connected_component

            topology = largest_connected_component(topology)

    if spec.engine == "lp":
        metrics = _run_lp(spec, topology)
        telemetry: Dict[str, float] = {}
    else:
        pairs = _build_pairs(spec, topology)
        sizes = _build_sizes(spec)
        rate = _resolve_rate(spec, topology, pairs, sizes)
        workload = Workload(pairs, sizes, PoissonArrivals(rate), seed=spec.seed)
        horizon = spec.workload.get(
            "horizon",
            spec.measure_end + (spec.measure_end - spec.measure_start),
        )
        flows = workload.generate(horizon=horizon)
        if spec.engine == "packet":
            stats, telemetry = _run_packet(spec, topology, flows)
        else:
            stats = _run_flow(spec, topology, flows)
            telemetry = {}
        if spec.short_flow_bytes is not None:
            stats.short_flow_bytes = spec.short_flow_bytes
        metrics = stats.summary()
    telemetry.update(degraded_telemetry)

    return RunRecord(
        spec=spec.to_dict(),
        spec_hash=spec.content_hash(),
        status="ok",
        metrics=metrics,
        telemetry=telemetry,
        wall_clock_s=time.perf_counter() - start,
        provenance=provenance(spec.engine),
    )


def execute_lp_batch(specs: Sequence[ExperimentSpec]) -> List[RunRecord]:
    """Run a group of lp specs sharing one topology through ``solve_many``.

    The caller (the Runner's batch grouping) guarantees the specs agree
    on ``topology``, ``failures``, and solver selection; the topology is
    built and degraded once and the backend amortizes its per-topology
    structure across the whole batch.  Returns one record per spec, in
    order: per-record ``metrics`` are byte-identical to what
    :func:`execute_spec` would produce for the same spec (the batched
    backend issues identical solves), while non-optimal solves become
    failure records carrying the typed error — one infeasible point
    never takes down the rest of the batch.
    """
    first = specs[0]
    setup_start = time.perf_counter()
    topology = _build_topology(first.topology)
    topology, degraded_telemetry = _apply_failures(first, topology)
    backend = _lp_solver_backend(first.workload)

    tms = []
    fractions = []
    for spec in specs:
        spec.validate()
        tm, fraction = _lp_tm(spec, topology)
        tms.append(tm)
        fractions.append(fraction)
    setup_s = (time.perf_counter() - setup_start) / len(specs)

    # All registry backends honor the SolverBackend warm contract; a
    # workload can force every point cold with {"warm": false}.
    outcomes = backend.solve_many(
        topology, tms, warm=bool(first.workload.get("warm", True))
    )
    records: List[RunRecord] = []
    for spec, outcome, fraction in zip(specs, outcomes, fractions):
        common = dict(
            spec=spec.to_dict(),
            spec_hash=spec.content_hash(),
            wall_clock_s=setup_s + outcome.wall_time_s,
            provenance=provenance(spec.engine),
        )
        if outcome.ok:
            records.append(
                RunRecord(
                    status="ok",
                    metrics=_lp_metrics(outcome.result, fraction),
                    telemetry=dict(degraded_telemetry),
                    **common,
                )
            )
        else:
            error = outcome.error
            records.append(
                RunRecord(
                    status="failed",
                    error=f"{type(error).__name__}: {error}",
                    attempts=1,
                    **common,
                )
            )
    return records
