"""Parallel experiment orchestration with content-addressed caching.

The harness turns the paper's evaluation — a large grid of independent
(topology, workload, load, routing, seed) points — into declarative,
JSON-serializable :class:`ExperimentSpec` objects, executes them across
a multiprocessing worker pool with per-task timeouts and bounded
retries, caches completed points on disk keyed by spec content hash +
library version, and records structured :class:`RunRecord` results that
reconstitute into the :mod:`repro.analysis` renderers.

Drive it from Python::

    from repro.harness import ExperimentSpec, Runner, ResultCache

    specs = [ExperimentSpec(topology={"family": "fattree", "k": 4},
                            workload={"pattern": "permute", "fraction": x,
                                      "sizes": "pfabric",
                                      "mean_flow_bytes": 200_000,
                                      "load": 0.3},
                            routing=r, seed=1)
             for x in (0.2, 0.6, 1.0) for r in ("ecmp", "hyb")]
    result = Runner(jobs=4, cache=ResultCache(".repro-cache")).run(specs)

or from the shell: ``python -m repro sweep sweep.json``.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .execute import build_topology, execute_spec
from .records import (
    ResultsStore,
    RunRecord,
    provenance,
    record_value,
    series_from_records,
)
from .runner import Runner, SweepResult
from .shard import (
    MergeResult,
    ShardCoordinator,
    ShardSpec,
    merge_records,
    merge_stores,
    partition,
    select_shard,
    shard_of,
    sweep_hash,
)
from .spec import (
    ENGINES,
    TOPOLOGY_FAMILIES,
    WORKLOAD_PATTERNS,
    ExperimentSpec,
    SpecError,
    expand_sweep,
    load_sweep_file,
)

__all__ = [
    "ExperimentSpec",
    "SpecError",
    "ENGINES",
    "TOPOLOGY_FAMILIES",
    "WORKLOAD_PATTERNS",
    "expand_sweep",
    "load_sweep_file",
    "execute_spec",
    "build_topology",
    "RunRecord",
    "ResultsStore",
    "provenance",
    "record_value",
    "series_from_records",
    "ResultCache",
    "DEFAULT_CACHE_DIR",
    "Runner",
    "SweepResult",
    "ShardSpec",
    "ShardCoordinator",
    "MergeResult",
    "shard_of",
    "partition",
    "select_shard",
    "sweep_hash",
    "merge_records",
    "merge_stores",
]
