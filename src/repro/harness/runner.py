"""Parallel sweep execution across a pool of worker processes.

The :class:`Runner` fans a list of :class:`ExperimentSpec` points out
over ``jobs`` worker processes (one process per in-flight point, at
most ``jobs`` alive at a time — which is what gives us hard per-task
timeouts: a stuck worker is simply terminated).  Failure semantics are
*graceful degradation*: a worker exception, crash, or timeout becomes a
structured failure :class:`RunRecord` after bounded retries with
exponential backoff; the remaining points always complete and the sweep
never raises.

Failure records are built from the worker's exception; *fatal*
exceptions — :class:`~repro.harness.spec.SpecError` and the typed
:class:`~repro.throughput.errors.SolverFailure` taxonomy, both
deterministic functions of the spec — skip the retry loop entirely.

Completed points are served from / written to the content-addressed
:class:`~repro.harness.cache.ResultCache` when one is attached, so
re-running a sweep only computes new or changed points.

LP points that select a batching-capable solver (``highs-batched``)
and share topology + failures are peeled off before the pool and solved
in-process through one ``solve_many`` batch per group (see
:func:`~repro.harness.execute.execute_lp_batch`): no per-point worker
fork, topology and LP structure built once.  On fixed-topology sweeps
this is the difference measured by ``benchmarks/perf``'s
``lp_batched_sweep`` bench.

``Runner(inline=True)`` executes every point sequentially in the
calling process instead.  That trades away parallelism and hard
timeouts (``timeout_s`` is not enforced inline) but keeps the process's
observability run live across the whole sweep, so ``python -m repro
profile`` sees the engine/flowsim/LP/pathcache spans of every point —
in worker processes those spans would die with the worker.

Either way the sweep itself is observed when a run is active: a
``runner.sweep`` span wraps the whole thing, each task lands as a
retrospective ``runner.task`` span with its name/attempt/status, and
``runner.tasks`` / ``runner.failures`` / ``runner.cache_hits`` count
the lifecycle.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..throughput.errors import SolverFailure
from .cache import ResultCache
from .records import ResultsStore, RunRecord, provenance
from .spec import ExperimentSpec, SpecError

__all__ = ["Runner", "SweepResult"]

#: Exceptions that are deterministic outcomes of the spec itself —
#: re-running the identical point cannot succeed, so retrying only
#: burns backoff delay.  They settle as failure records on attempt 1.
_FATAL_ERRORS = (SpecError, SolverFailure)


def _task_main(conn, spec_data: dict) -> None:
    """Worker entry point: execute one spec, ship the record back."""
    try:
        from .execute import execute_spec

        record = execute_spec(ExperimentSpec.from_dict(spec_data))
        conn.send(("ok", record.to_dict()))
    except _FATAL_ERRORS as exc:
        conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
    except BaseException as exc:  # noqa: BLE001 - becomes a failure record
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


@dataclass
class SweepResult:
    """All records of a sweep (in spec-submission order) plus counters."""

    records: List[RunRecord]
    wall_clock_s: float = 0.0

    @property
    def counts(self) -> Dict[str, int]:
        cached = sum(1 for r in self.records if r.cached)
        ok = sum(1 for r in self.records if r.ok and not r.cached)
        failed = sum(1 for r in self.records if not r.ok)
        return {
            "total": len(self.records),
            "ok": ok,
            "cached": cached,
            "failed": failed,
        }

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records)


@dataclass
class _Task:
    proc: multiprocessing.process.BaseProcess
    conn: object
    index: int
    attempt: int
    started: float


@dataclass
class Runner:
    """Orchestrates one sweep.

    Parameters
    ----------
    jobs:
        Worker-process pool width (default: CPU count, capped at 8).
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        successful records are written back.
    store:
        Optional :class:`ResultsStore`; every record (cached included)
        is appended, in spec order, when the sweep finishes.
    timeout_s:
        Per-attempt wall-clock limit; an overrunning worker is
        terminated (None = unlimited).
    retries:
        Extra attempts after the first for failed/timed-out points.
    backoff_base_s:
        Delay before retry ``n`` is ``backoff_base_s * 2**(n-1)``.
    progress:
        Optional callback receiving ``{total, done, ok, cached, failed,
        running}`` whenever the sweep state changes.
    inline:
        Execute points sequentially in this process instead of in
        worker processes.  Keeps the active observability run's spans;
        ``timeout_s`` is not enforced and ``jobs`` is ignored.
    should_stop:
        Optional cooperative cancellation flag, polled *between* points
        (inline) or before launching new workers (pool).  When it
        returns True the sweep stops starting work: in-flight workers
        settle, unstarted points yield no record, and the partial
        result is returned — with a cache attached, completed points
        are persisted, so re-running the sweep resumes where the
        cancellation landed.
    """

    jobs: Optional[int] = None
    cache: Optional[ResultCache] = None
    store: Optional[ResultsStore] = None
    timeout_s: Optional[float] = None
    retries: int = 1
    backoff_base_s: float = 0.25
    progress: Optional[Callable[[Dict[str, int]], None]] = None
    inline: bool = False
    should_stop: Optional[Callable[[], bool]] = None
    mp_start_method: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if self.jobs is None:
            self.jobs = min(multiprocessing.cpu_count(), 8)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        method = self.mp_start_method
        if not method:
            # fork keeps worker start cheap (no re-import of scipy et al.)
            # where available; everywhere else use the platform default.
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
        self._ctx = multiprocessing.get_context(method)

    def _stopped(self) -> bool:
        return self.should_stop is not None and self.should_stop()

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[ExperimentSpec]) -> SweepResult:
        """Execute every spec; one record per spec unless cancelled."""
        t0 = time.perf_counter()
        with obs.span("runner.sweep", points=len(specs), inline=self.inline):
            records = self._prepare(specs)
            self._run_batches(specs, records)
            if self.inline:
                self._run_inline(specs, records)
            else:
                self._run_pool(specs, records)
        final = [r for r in records if r is not None]
        if self.store is not None:
            self.store.extend(final)
        return SweepResult(records=final, wall_clock_s=time.perf_counter() - t0)

    def _prepare(
        self, specs: Sequence[ExperimentSpec]
    ) -> List[Optional[RunRecord]]:
        """Validate specs and settle cache hits; ``None`` = still to run."""
        records: List[Optional[RunRecord]] = [None] * len(specs)
        for i, spec in enumerate(specs):
            try:
                spec.validate()
            except SpecError as exc:
                records[i] = self._failure(spec, "failed", str(exc), 1, 0.0)
                obs.add("runner.failures")
                continue
            if self.cache is not None:
                hit = self.cache.get(spec)
                if hit is not None:
                    records[i] = hit
                    obs.add("runner.cache_hits")
        return records

    @staticmethod
    def _batch_key(spec: ExperimentSpec) -> Optional[Tuple[str, str, str]]:
        """Group key for batchable lp points; ``None`` = not batchable.

        Points batch together when they share topology, failures, and a
        solver whose backend advertises ``supports_batching`` — the TM
        (fraction / seed) is the only thing that varies inside a group,
        which is exactly what ``solve_many`` amortizes over.
        """
        if spec.engine != "lp":
            return None
        name = str(spec.workload.get("solver", "exact"))
        from ..registry import SOLVERS, RegistryError

        try:
            factory = SOLVERS.get(name)
        except RegistryError:
            return None
        if not getattr(factory, "supports_batching", False):
            return None
        return (
            json.dumps(spec.topology, sort_keys=True),
            json.dumps(spec.failures, sort_keys=True),
            name,
        )

    def _run_batches(self, specs, records) -> None:
        """Solve fixed-topology lp groups in-process via ``solve_many``.

        Pending points whose solver supports batching are grouped by
        (topology, failures, solver) and executed here — no worker
        forks, topology/ArcTable built once per group.  ``timeout_s``
        is not enforced for batched points (they run in this process);
        a group that fails wholesale (e.g. the topology itself cannot
        be built) falls back to per-point execution with its usual
        retry semantics.
        """
        groups: Dict[Tuple[str, str, str], List[int]] = {}
        for i, spec in enumerate(specs):
            if records[i] is not None:
                continue
            key = self._batch_key(spec)
            if key is not None:
                groups.setdefault(key, []).append(i)
        if not groups:
            return
        from .execute import execute_lp_batch

        for key, indices in groups.items():
            if self._stopped():
                return
            started = time.perf_counter()
            try:
                batch = execute_lp_batch([specs[i] for i in indices])
            except Exception as exc:  # noqa: BLE001 - fall back to per-point path
                # The fallback is correct but silent failure is not: a
                # batch that dies here (solver bug, topology build error)
                # re-runs every point individually, which can silently
                # cost the entire batching speedup.  Count it and carry
                # the exception so sweeps can see why.
                obs.add("harness.batch_fallback")
                obs.event(
                    "harness.batch_fallback",
                    solver=key[2],
                    points=len(indices),
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            obs.add("runner.batched_points", len(indices))
            for i, record in zip(indices, batch):
                record.attempts = 1
                records[i] = record
                self._note_task(
                    specs[i], 1, record.status, started, record.wall_clock_s
                )
                if record.ok:
                    if self.cache is not None:
                        self.cache.put(specs[i], record)
                else:
                    obs.add("runner.failures")
            self._emit(records, [])

    def _run_pool(self, specs, records) -> None:
        queue: deque = deque()  # (index, attempt, not_before)
        for i in range(len(specs)):
            if records[i] is None:
                queue.append((i, 1, 0.0))

        active: List[_Task] = []
        self._emit(records, active)
        while queue or active:
            now = time.perf_counter()
            if queue and self._stopped():
                # Cancelled: stop launching, let in-flight work settle.
                queue.clear()
                if not active:
                    break
            launched = self._launch_ready(specs, queue, active, now)
            settled = self._poll_active(specs, records, queue, active, now)
            if launched or settled:
                self._emit(records, active)
            else:
                time.sleep(0.005)

    def _run_inline(self, specs, records) -> None:
        from .execute import execute_spec

        self._emit(records, [])
        for i, spec in enumerate(specs):
            if records[i] is not None:
                continue
            if self._stopped():
                break
            attempt = 1
            while True:
                started = time.perf_counter()
                obs.event("runner.task_start", name=spec.name, attempt=attempt)
                error: Optional[str] = None
                fatal = False
                try:
                    record = execute_spec(spec)
                except _FATAL_ERRORS as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    fatal = True
                except Exception as exc:  # noqa: BLE001 - failure record
                    error = f"{type(exc).__name__}: {exc}"
                elapsed = time.perf_counter() - started
                status = "failed" if error is not None else "ok"
                self._note_task(spec, attempt, status, started, elapsed)
                if error is None:
                    record.attempts = attempt
                    records[i] = record
                    if self.cache is not None:
                        self.cache.put(spec, record)
                    break
                if fatal or attempt > self.retries:
                    records[i] = self._failure(
                        spec, "failed", error, attempt, elapsed
                    )
                    obs.add("runner.failures")
                    break
                time.sleep(self.backoff_base_s * 2 ** (attempt - 1))
                attempt += 1
            self._emit(records, [])

    # ------------------------------------------------------------------
    def _launch_ready(self, specs, queue, active, now) -> bool:
        launched = False
        scanned = 0
        pending = len(queue)
        while len(active) < self.jobs and scanned < pending:
            index, attempt, not_before = queue.popleft()
            scanned += 1
            if not_before > now:
                queue.append((index, attempt, not_before))
                continue
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_task_main,
                args=(child_conn, specs[index].to_dict()),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            active.append(
                _Task(proc=proc, conn=parent_conn, index=index,
                      attempt=attempt, started=now)
            )
            launched = True
        return launched

    def _poll_active(self, specs, records, queue, active, now) -> bool:
        settled = False
        for task in list(active):
            outcome = None  # (status, payload)
            if task.conn.poll():
                try:
                    outcome = task.conn.recv()
                except (EOFError, OSError):
                    outcome = ("error", "worker died without a result")
            elif (
                self.timeout_s is not None
                and now - task.started > self.timeout_s
            ):
                task.proc.terminate()
                outcome = (
                    "timeout",
                    f"timed out after {self.timeout_s:.1f}s",
                )
            elif not task.proc.is_alive():
                # Died between polls; drain any result that raced in.
                if task.conn.poll(0.01):
                    try:
                        outcome = task.conn.recv()
                    except (EOFError, OSError):
                        outcome = ("error", "worker died without a result")
                else:
                    outcome = (
                        "error",
                        f"worker exited with code {task.proc.exitcode}",
                    )
            if outcome is None:
                continue
            task.proc.join()
            task.conn.close()
            active.remove(task)
            settled = True
            status, payload = outcome
            spec = specs[task.index]
            self._note_task(
                spec, task.attempt, status, task.started, now - task.started
            )
            if status == "ok":
                record = RunRecord.from_dict(payload)
                record.attempts = task.attempt
                records[task.index] = record
                if self.cache is not None:
                    self.cache.put(spec, record)
            elif status != "fatal" and task.attempt <= self.retries:
                delay = self.backoff_base_s * 2 ** (task.attempt - 1)
                queue.append((task.index, task.attempt + 1, now + delay))
            else:
                records[task.index] = self._failure(
                    spec,
                    "timeout" if status == "timeout" else "failed",
                    str(payload),
                    task.attempt,
                    now - task.started,
                )
                obs.add("runner.failures")
        return settled

    @staticmethod
    def _note_task(
        spec: ExperimentSpec,
        attempt: int,
        status: str,
        started: float,
        elapsed: float,
    ) -> None:
        """Record one settled task attempt onto the active obs run.

        Tasks finish asynchronously (or, inline, after the fact), so the
        span is recorded retrospectively from explicit perf-counter
        timings rather than through a context manager.
        """
        run = obs.current()
        if run is None:
            return
        run.record_span(
            "runner.task",
            started,
            elapsed,
            attrs={"name": spec.name, "attempt": attempt, "status": status},
            parent="runner.sweep",
        )
        run.record_event(
            "runner.task_end",
            {"name": spec.name, "attempt": attempt, "status": status},
        )
        run.metrics.counter("runner.tasks").add(1)

    def _failure(
        self,
        spec: ExperimentSpec,
        status: str,
        error: str,
        attempts: int,
        elapsed: float,
    ) -> RunRecord:
        return RunRecord(
            spec=spec.to_dict(),
            spec_hash=spec.content_hash(),
            status=status,
            error=error,
            attempts=attempts,
            wall_clock_s=elapsed,
            provenance=provenance(spec.engine),
        )

    def _emit(self, records, active) -> None:
        if self.progress is None:
            return
        done = [r for r in records if r is not None]
        self.progress(
            {
                "total": len(records),
                "done": len(done),
                "ok": sum(1 for r in done if r.ok and not r.cached),
                "cached": sum(1 for r in done if r.cached),
                "failed": sum(1 for r in done if not r.ok),
                "running": len(active),
            }
        )
