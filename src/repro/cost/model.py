"""Network cost model (paper Table 1 and §4's equal-cost methodology).

Per-port component costs are taken from ProjecToR's published estimates,
as reproduced in the paper's Table 1:

===================  =======  ========  ===========
Component            Static   FireFly   ProjecToR
===================  =======  ========  ===========
SR transceiver       $80      $80       —
Optical cable        $45      —         —
ToR port             $90      $90       $90
ProjecToR Tx+Rx      —        —         $80 to $180
DMD                  —        —         $100
Mirror assembly      —        —         $50
Galvo mirror         —        $200      —
Total                $215     $370      $320 to 420
===================  =======  ========  ===========

Each static cable is accounted at 300 m of $0.3/m fiber, shared over its
two ports ($45/port).  The flexible-to-static cost ratio δ = 1.5 follows
from the lowest dynamic estimate (320/215 ≈ 1.49).

Equal-cost comparisons (paper §4): networks must spend the same total on
ports, so a dynamic network affords only ``1/δ`` times the ports of a
static network, and an Xpander at "33% lower cost" than a fat-tree gets
2/3 of its switches (same port count each).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..topologies.base import Topology

__all__ = [
    "PortCost",
    "STATIC_PORT",
    "FIREFLY_PORT",
    "PROJECTOR_PORT_LOW",
    "PROJECTOR_PORT_HIGH",
    "PORT_COSTS",
    "delta_ratio",
    "topology_port_cost",
    "predicted_port_cost",
    "equal_cost_switch_budget",
]

#: Cable accounting convention: 300 m at $0.3/m, shared over two ports.
CABLE_LENGTH_M = 300.0
CABLE_COST_PER_M = 0.3


@dataclass(frozen=True)
class PortCost:
    """Per-port cost breakdown for one technology."""

    name: str
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total per-port cost in dollars."""
        return sum(self.components.values())


STATIC_PORT = PortCost(
    "static",
    {
        "sr_transceiver": 80.0,
        "optical_cable": CABLE_LENGTH_M * CABLE_COST_PER_M / 2.0,  # $45
        "tor_port": 90.0,
    },
)

FIREFLY_PORT = PortCost(
    "firefly",
    {
        "sr_transceiver": 80.0,
        "tor_port": 90.0,
        "galvo_mirror": 200.0,
    },
)

PROJECTOR_PORT_LOW = PortCost(
    "projector-low",
    {
        "tor_port": 90.0,
        "projector_tx_rx": 80.0,
        "dmd": 100.0,
        "mirror_assembly_lens": 50.0,
    },
)

PROJECTOR_PORT_HIGH = PortCost(
    "projector-high",
    {
        "tor_port": 90.0,
        "projector_tx_rx": 180.0,
        "dmd": 100.0,
        "mirror_assembly_lens": 50.0,
    },
)


#: Table 1 technologies by name (the design subsystem's pricing knob).
PORT_COSTS: Dict[str, PortCost] = {
    "static": STATIC_PORT,
    "firefly": FIREFLY_PORT,
    "projector-low": PROJECTOR_PORT_LOW,
    "projector-high": PROJECTOR_PORT_HIGH,
}


def delta_ratio(dynamic: PortCost = PROJECTOR_PORT_LOW) -> float:
    """δ: flexible-port cost normalized to a static port (paper: ≈ 1.5)."""
    return dynamic.total / STATIC_PORT.total


def topology_port_cost(
    topology: Topology,
    network_port: PortCost = STATIC_PORT,
    server_port_cost: Optional[float] = None,
) -> float:
    """Total port cost of a static topology.

    Network ports (two per cable) are priced at ``network_port.total``;
    server-facing ports at ``server_port_cost`` (default: the ToR-port
    component only, since server links are short copper in both static and
    dynamic designs and cancel out of comparisons).
    """
    if server_port_cost is None:
        server_port_cost = network_port.components.get("tor_port", 90.0)
    network_ports = 2 * topology.num_links
    return network_ports * network_port.total + topology.num_servers * server_port_cost


def predicted_port_cost(
    links: int,
    servers: int,
    network_port: PortCost = STATIC_PORT,
    server_port_cost: Optional[float] = None,
) -> float:
    """Port cost from predicted link/server counts (no topology build).

    The arithmetic twin of :func:`topology_port_cost` — identical
    pricing, but from the closed-form link/server counts a design
    candidate predicts, so the design search can lower-bound cost before
    constructing any graph.  For families whose generators realize the
    predicted counts exactly (all of the built-in ones), this equals the
    built topology's :func:`topology_port_cost`.
    """
    if server_port_cost is None:
        server_port_cost = network_port.components.get("tor_port", 90.0)
    return 2 * links * network_port.total + servers * server_port_cost


def equal_cost_switch_budget(fattree_switches: int, cost_fraction: float) -> int:
    """Switch budget for a static network at a fraction of a fat-tree's cost.

    With identical per-switch port counts and port prices, cost scales
    with switch count; the paper's "Xpander at 33% lower cost" uses
    ``round(320 * 2/3) = 216`` switches against a k=16 fat-tree's 320.
    """
    if not 0 < cost_fraction <= 1:
        raise ValueError(f"cost_fraction must be in (0, 1], got {cost_fraction}")
    budget = round(fattree_switches * cost_fraction)
    if budget < 2:
        raise ValueError("cost fraction leaves fewer than 2 switches")
    return budget
