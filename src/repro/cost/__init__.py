"""Cost model: Table 1 per-port costs and equal-cost sizing."""

from .model import (
    FIREFLY_PORT,
    PORT_COSTS,
    PROJECTOR_PORT_HIGH,
    PROJECTOR_PORT_LOW,
    STATIC_PORT,
    PortCost,
    delta_ratio,
    equal_cost_switch_budget,
    predicted_port_cost,
    topology_port_cost,
)

__all__ = [
    "PortCost",
    "STATIC_PORT",
    "FIREFLY_PORT",
    "PROJECTOR_PORT_LOW",
    "PROJECTOR_PORT_HIGH",
    "PORT_COSTS",
    "delta_ratio",
    "topology_port_cost",
    "predicted_port_cost",
    "equal_cost_switch_budget",
]
