"""Staged inverse-design search: enumerate, prune, then (and only then) solve.

The expensive part of "cheapest network meeting this SLO" is the LP:
one max-concurrent-flow solve per candidate.  The search therefore
spends arithmetic before graphs and graphs before LPs:

* **feasibility** — switch cap, radix (network degree + server ports
  must fit), server count: pure arithmetic on the candidate's predicted
  sizing.
* **cheap bounds** — a cost lower bound
  (:func:`repro.cost.predicted_port_cost` against ``max_cost``) and a
  Moore-bound throughput ceiling.  For the longest-matching TM the
  max-weight matching's total distance is at least the active set's
  mean pairwise distance times the number of pairs (the maximum beats
  the random-matching average), and that mean is at least
  :func:`~repro.topologies.dynamic.moore_bound_mean_distance` by
  shell-filling, so ``per_server <= psd * 2*links / (s * active *
  moore_mean)`` — still no graph has been built.
* **structural bounds** — build the topology, score expandability
  (normalized spectral gap), and apply the exact
  :func:`~repro.throughput.bounds.tm_throughput_upper_bound` on the
  actual TM: a candidate whose capacity/distance ceiling already misses
  the SLO never reaches a solver.
* **evaluate** — survivors go through the configured
  :data:`repro.registry.SOLVERS` backend; optimal designs are checked
  against the optional resilience floor (retained throughput under the
  target's failure scenario).

Every stage is observed (``design.*`` spans and counters), every prune
is recorded with its reason, and all measurements are memoized by
content key inside a :class:`DesignEngine`, so the sensitivity sweep —
and repeated API calls against a warm service — re-solve only what a
perturbation actually changes.  All pruning is *sound*: a pruned
candidate provably cannot meet the target (the property test in
``tests/design`` checks this by exhaustive evaluation).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import obs, registry
from ..cost import PORT_COSTS, predicted_port_cost, topology_port_cost
from ..throughput.bounds import tm_throughput_upper_bound
from ..topologies.dynamic import moore_bound_mean_distance
from ..topologies.properties import spectral_gap
from ..traffic.patterns import longest_matching_tm
from .report import DesignReport, EvaluatedDesign, PrunedCandidate
from .space import CandidateDesign, enumerate_candidates
from .target import DesignTarget

__all__ = ["DesignEngine", "design_search", "SENSITIVITY_PARAMETERS"]

#: Tolerance for SLO comparisons (LP optima are floating point).
SLO_EPS = 1e-9

#: Inputs the tornado table perturbs, one at a time.
SENSITIVITY_PARAMETERS = (
    "servers",
    "throughput_per_server",
    "fraction",
    "radix",
)


def _active_tors(num_tors: int, fraction: float) -> int:
    """Matched-ToR count of the longest-matching TM (even, >= 2)."""
    active = max(2, round(fraction * num_tors))
    active = min(active, num_tors)
    return active - (active % 2)


def _canonical(payload: Any) -> str:
    from ..api.state import canonical_key

    return canonical_key(payload)


class _Memo:
    """A small LRU of measurement dicts keyed by content.

    Locked: one warm :class:`DesignEngine` is shared by the service's
    HTTP handler threads and design-job worker threads, and an
    ``OrderedDict``'s recency updates are not safe to interleave.
    """

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self._data: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
        if value is not None:
            obs.add("design.memo.hits")
        return value

    def put(self, key: str, value: Dict[str, Any]) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)


class DesignEngine:
    """The staged search with warm, content-addressed measurement memos.

    Memos store threshold-free *measurements* (cost, expandability,
    throughput bound, LP per-server, retained fraction) — the target's
    thresholds are applied outside — so a sensitivity perturbation of
    the SLO reuses every structural measurement and every LP result
    computed for the base target.  Reports are byte-identical with a
    cold or warm memo by construction.
    """

    def __init__(self, memo_capacity: int = 512):
        self._struct = _Memo(memo_capacity)
        self._lp = _Memo(memo_capacity)
        self._resilience = _Memo(memo_capacity)

    # -- measurement layers (memoized, threshold-free) -----------------
    def _struct_key(self, cand: CandidateDesign, target: DesignTarget) -> str:
        return _canonical(
            {
                "spec": cand.spec,
                "fraction": target.fraction,
                "seed": target.seed,
                "port_cost": target.port_cost,
            }
        )

    def _measure_structure(
        self, cand: CandidateDesign, target: DesignTarget
    ) -> Dict[str, Any]:
        """Build the candidate and measure its pre-LP structure.

        The memo stores the raw, demand-free ``t_bound``; the target's
        ``per_server_demand`` scaling is applied outside the memo, so
        two targets differing only in demand (the struct key does not —
        and must not need to — include it) never share a stale
        ``bound_per_server``.
        """
        key = self._struct_key(cand, target)
        raw = self._struct.get(key)
        if raw is None:
            with obs.span(
                "design.structural", family=cand.family, switches=cand.switches
            ):
                topology = registry.topology(cand.spec)
                tm = longest_matching_tm(
                    topology, target.fraction, seed=target.seed
                )
                cost = topology_port_cost(topology, PORT_COSTS[target.port_cost])
                g = topology.graph
                mean_degree = 2.0 * g.number_of_edges() / g.number_of_nodes()
                expand = 0.0
                if mean_degree > 0:
                    expand = max(0.0, min(1.0, spectral_gap(topology) / mean_degree))
                t_bound = tm_throughput_upper_bound(topology, tm)
            raw = {
                "cost": cost,
                "expandability": round(expand, 9),
                "t_bound": t_bound,
                "num_servers": topology.num_servers,
            }
            self._struct.put(key, raw)
        bound = min(1.0, raw["t_bound"] * target.per_server_demand)
        return {**raw, "bound_per_server": round(bound, 9)}

    def _measure_lp(
        self, cand: CandidateDesign, target: DesignTarget
    ) -> Dict[str, Any]:
        """Solve the candidate's longest-matching LP (the expensive step)."""
        key = _canonical(
            {
                "spec": cand.spec,
                "fraction": target.fraction,
                "seed": target.seed,
                "per_server_demand": target.per_server_demand,
                "solver": target.solver,
            }
        )
        hit = self._lp.get(key)
        if hit is not None:
            return hit
        with obs.span("design.evaluate", family=cand.family):
            topology = registry.topology(cand.spec)
            tm = longest_matching_tm(
                topology, target.fraction, seed=target.seed
            )
            backend = registry.solver(target.solver)
            outcome = backend.solve(
                topology, tm, per_server_demand=target.per_server_demand
            )
        obs.add("design.lp_solves")
        measured = {
            "status": outcome.status.value,
            "per_server": (
                round(outcome.result.per_server, 9) if outcome.ok else 0.0
            ),
            "iterations": outcome.iterations,
        }
        self._lp.put(key, measured)
        return measured

    def _measure_resilience(
        self, cand: CandidateDesign, target: DesignTarget
    ) -> Dict[str, Any]:
        """Per-server throughput of the degraded candidate (same TM)."""
        assert target.resilience is not None
        key = _canonical(
            {
                "spec": cand.spec,
                "fraction": target.fraction,
                "seed": target.seed,
                "per_server_demand": target.per_server_demand,
                "solver": target.solver,
                "failures": target.resilience.failures,
            }
        )
        hit = self._resilience.get(key)
        if hit is not None:
            return hit
        with obs.span("design.resilience", family=cand.family):
            topology = registry.topology(cand.spec)
            tm = longest_matching_tm(
                topology, target.fraction, seed=target.seed
            )
            degraded = topology.degrade(target.resilience.failures)
            backend = registry.solver(target.solver)
            outcome = backend.solve(
                degraded, tm, per_server_demand=target.per_server_demand
            )
        obs.add("design.lp_solves")
        measured = {
            "status": outcome.status.value,
            "per_server": (
                round(outcome.result.per_server, 9) if outcome.ok else 0.0
            ),
        }
        self._resilience.put(key, measured)
        return measured

    # -- pruning stages ------------------------------------------------
    def _prune_cheap(
        self, cand: CandidateDesign, target: DesignTarget
    ) -> Optional[Tuple[str, str]]:
        """Arithmetic-only rejection: ``(reason, detail)`` or ``None``."""
        if cand.switches > target.max_switches:
            return (
                "max_switches",
                f"{cand.switches} switches > cap {target.max_switches}",
            )
        ports = cand.network_degree + cand.servers_per_switch
        if ports > target.radix:
            return (
                "radix",
                f"needs {ports} ports/switch > radix {target.radix}",
            )
        if cand.servers < target.servers:
            return (
                "servers",
                f"hosts {cand.servers} servers < required {target.servers}",
            )
        cost = predicted_port_cost(
            cand.links, cand.servers, PORT_COSTS[target.port_cost]
        )
        if target.max_cost is not None and cost > target.max_cost:
            return (
                "cost",
                f"predicted ${cost:.0f} > budget ${target.max_cost:.0f}",
            )
        num_tors = cand.servers // cand.servers_per_switch
        active = _active_tors(num_tors, target.fraction)
        moore = moore_bound_mean_distance(active, cand.network_degree)
        consumed = cand.servers_per_switch * active * moore
        if consumed > 0:
            bound = min(
                1.0,
                target.per_server_demand * 2.0 * cand.links / consumed,
            )
            if bound < target.throughput_per_server - SLO_EPS:
                return (
                    "throughput_bound",
                    f"Moore-bound per-server ceiling {bound:.4f} < "
                    f"SLO {target.throughput_per_server}",
                )
        return None

    def _prune_structural(
        self,
        cand: CandidateDesign,
        target: DesignTarget,
        measured: Dict[str, Any],
    ) -> Optional[Tuple[str, str]]:
        """Built-topology rejection (still no LP): ``(reason, detail)``."""
        if measured["num_servers"] < target.servers:
            return (
                "servers",
                f"hosts {measured['num_servers']} servers < required "
                f"{target.servers}",
            )
        if (
            target.max_cost is not None
            and measured["cost"] > target.max_cost
        ):
            return (
                "cost",
                f"costs ${measured['cost']:.0f} > budget "
                f"${target.max_cost:.0f}",
            )
        if (
            target.min_expandability is not None
            and measured["expandability"] < target.min_expandability
        ):
            return (
                "expandability",
                f"score {measured['expandability']:.3f} < floor "
                f"{target.min_expandability}",
            )
        if measured["bound_per_server"] < target.throughput_per_server - SLO_EPS:
            return (
                "throughput_bound",
                f"capacity-bound ceiling {measured['bound_per_server']:.4f} "
                f"< SLO {target.throughput_per_server}",
            )
        return None

    # -- the staged search ---------------------------------------------
    def _search_core(
        self,
        target: DesignTarget,
        should_stop: Optional[Callable[[], bool]] = None,
        progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Tuple[List[EvaluatedDesign], List[PrunedCandidate], Dict[str, Any], bool]:
        """One full enumerate → prune → evaluate pass for one target."""
        with obs.span("design.enumerate"):
            candidates = enumerate_candidates(target)
        obs.add("design.candidates", len(candidates))

        pruned: List[PrunedCandidate] = []
        survivors: List[CandidateDesign] = []
        seen: set = set()
        with obs.span("design.prune", candidates=len(candidates)):
            for cand in candidates:
                if cand.spec_string in seen:
                    continue
                seen.add(cand.spec_string)
                verdict = self._prune_cheap(cand, target)
                if verdict is not None:
                    reason, detail = verdict
                    obs.add(f"design.pruned.{reason}")
                    pruned.append(
                        PrunedCandidate(
                            spec=cand.spec_string,
                            family=cand.family,
                            stage="cheap",
                            reason=reason,
                            detail=detail,
                        )
                    )
                else:
                    survivors.append(cand)

            # Cheapest-first: predicted cost, then spec for determinism.
            survivors.sort(
                key=lambda c: (
                    predicted_port_cost(
                        c.links, c.servers, PORT_COSTS[target.port_cost]
                    ),
                    c.spec_string,
                )
            )

            structural: List[Tuple[CandidateDesign, Dict[str, Any]]] = []
            for cand in survivors:
                measured = self._measure_structure(cand, target)
                verdict = self._prune_structural(cand, target, measured)
                if verdict is not None:
                    reason, detail = verdict
                    obs.add(f"design.pruned.{reason}")
                    pruned.append(
                        PrunedCandidate(
                            spec=cand.spec_string,
                            family=cand.family,
                            stage="structural",
                            reason=reason,
                            detail=detail,
                        )
                    )
                else:
                    structural.append((cand, measured))
        obs.add("design.pruned", len(pruned))

        evaluated: List[EvaluatedDesign] = []
        complete = True
        total = len(structural)
        for i, (cand, measured) in enumerate(structural):
            if should_stop is not None and should_stop():
                complete = False
                break
            if progress is not None:
                progress({"stage": "evaluate", "done": i, "total": total})
            lp = self._measure_lp(cand, target)
            meets_slo = (
                lp["status"] == "optimal"
                and lp["per_server"]
                >= target.throughput_per_server - SLO_EPS
            )
            retained: Optional[float] = None
            meets_resilience: Optional[bool] = None
            if target.resilience is not None and meets_slo:
                res = self._measure_resilience(cand, target)
                healthy = lp["per_server"]
                retained = (
                    round(res["per_server"] / healthy, 9) if healthy else 0.0
                )
                meets_resilience = (
                    res["status"] == "optimal"
                    and retained >= target.resilience.min_retained - SLO_EPS
                )
            meets = meets_slo and (meets_resilience is not False)
            evaluated.append(
                EvaluatedDesign(
                    spec=cand.spec_string,
                    family=cand.family,
                    switches=cand.switches,
                    links=cand.links,
                    servers=measured["num_servers"],
                    network_degree=cand.network_degree,
                    servers_per_switch=cand.servers_per_switch,
                    cost=measured["cost"],
                    expandability=measured["expandability"],
                    bound_per_server=measured["bound_per_server"],
                    per_server=lp["per_server"],
                    status=lp["status"],
                    iterations=lp["iterations"],
                    meets_slo=meets_slo,
                    retained=retained,
                    meets_resilience=meets_resilience,
                    meets=meets,
                )
            )
        if progress is not None and complete:
            progress({"stage": "evaluate", "done": total, "total": total})

        reasons: Dict[str, int] = {}
        for p in pruned:
            reasons[p.reason] = reasons.get(p.reason, 0) + 1
        counters = {
            "candidates": len(candidates),
            "pruned": len(pruned),
            "pruned_by_reason": {k: reasons[k] for k in sorted(reasons)},
            "lp_solves": len(evaluated)
            + sum(1 for e in evaluated if e.retained is not None),
            "evaluated": len(evaluated),
        }
        pruned.sort(key=lambda p: (p.family, p.spec))
        evaluated.sort(key=lambda e: (e.cost, e.spec))
        return evaluated, pruned, counters, complete

    def _best_cost(self, target: DesignTarget) -> Optional[float]:
        """Best feasible cost for a (perturbed) target; None if infeasible."""
        evaluated, _, _, _ = self._search_core(target)
        costs = [e.cost for e in evaluated if e.meets]
        return min(costs) if costs else None

    def _sensitivity(self, target: DesignTarget) -> List[Dict[str, Any]]:
        """One-parameter-at-a-time tornado rows, widest swing first."""
        rel = target.sensitivity_rel
        base = target.to_dict()
        rows: List[Dict[str, Any]] = []
        for param in SENSITIVITY_PARAMETERS:
            value = base[param]
            if isinstance(value, int):
                lo = max(1, round(value * (1 - rel)))
                hi = max(value + 1, round(value * (1 + rel)))
                if param == "radix":
                    lo = max(2, lo)
            else:
                lo = value * (1 - rel)
                hi = min(1.0, value * (1 + rel))
            with obs.span("design.sensitivity", parameter=param):
                low_cost = self._best_cost(
                    target.replace(sensitivity=False, **{param: lo})
                )
                high_cost = self._best_cost(
                    target.replace(sensitivity=False, **{param: hi})
                )
            swing = (
                round(abs(high_cost - low_cost), 6)
                if low_cost is not None and high_cost is not None
                else None
            )
            rows.append(
                {
                    "parameter": param,
                    "base": value,
                    "low": {"value": lo, "best_cost": low_cost},
                    "high": {"value": hi, "best_cost": high_cost},
                    "swing": swing,
                }
            )
        rows.sort(
            key=lambda r: (
                r["swing"] is None,
                -(r["swing"] or 0.0),
                r["parameter"],
            )
        )
        return rows

    def search(
        self,
        target: DesignTarget,
        should_stop: Optional[Callable[[], bool]] = None,
        progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> DesignReport:
        """The full inverse-design search for one target.

        ``should_stop`` is polled between LP evaluations (cooperative
        cancellation for async jobs; a stopped search returns a report
        with ``complete=False``).  ``progress`` receives
        ``{"stage", "done", "total"}`` dicts.
        """
        with obs.span("design.search", target=target.name or None):
            evaluated, pruned, counters, complete = self._search_core(
                target, should_stop=should_stop, progress=progress
            )
            sensitivity: List[Dict[str, Any]] = []
            if target.sensitivity and complete:
                sensitivity = self._sensitivity(target)
        return DesignReport.build(
            target=target,
            evaluated=evaluated,
            pruned=pruned,
            counters=counters,
            sensitivity=sensitivity,
            complete=complete,
        )


def design_search(target: DesignTarget, **kwargs: Any) -> DesignReport:
    """Run one search on a fresh :class:`DesignEngine` (CLI entry point)."""
    return DesignEngine().search(target, **kwargs)
