"""Declarative design targets: "cheapest network meeting this SLO".

A :class:`DesignTarget` is the input document of the inverse-design
search (:mod:`repro.design.search`): how many servers the network must
host, the throughput SLO those servers must meet under the paper's
longest-matching load model, and optional floors on resilience
(throughput retained under a failure scenario, as in
``python -m repro resilience``) and expandability (normalized spectral
gap — the expander quality behind Jellyfish/Xpander's incremental
growth story).  Everything else bounds or parameterizes the search:
the switch radix, the candidate families, the port-cost technology
(paper Table 1), the solver backend.

Targets are plain JSON documents (the CLI reads them from a file, the
API from the request body)::

    {
      "servers": 48,
      "throughput_per_server": 0.3,
      "fraction": 1.0,
      "families": ["fattree", "jellyfish", "xpander"],
      "max_switches": 24,
      "radix": 10,
      "resilience": {"failures": "links:fraction=0.05,seed=1",
                     "min_retained": 0.7}
    }

Validation is strict — unknown keys raise :class:`DesignError` (a
``ValueError``, so the API layer classifies it as a 400 ``bad_spec``)
— and :func:`design_target_schema` serves the JSON Schema under
``GET /v1/schema`` with the same drift guard the ExperimentSpec schema
uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from ..cost import PORT_COSTS

__all__ = [
    "DesignError",
    "ResilienceTarget",
    "DesignTarget",
    "design_target_schema",
]


class DesignError(ValueError):
    """A design target (or design request) is malformed."""


@dataclass(frozen=True)
class ResilienceTarget:
    """Optional resilience floor: retained throughput under failures.

    ``failures`` is any :data:`repro.registry.FAILURES` spec (compact
    string or mapping); ``min_retained`` is the fraction of the healthy
    design's per-server throughput that must survive the scenario.
    """

    failures: Any
    min_retained: float = 0.9

    def __post_init__(self) -> None:
        if not self.failures:
            raise DesignError("resilience needs a 'failures' scenario spec")
        if not 0 < self.min_retained <= 1:
            raise DesignError(
                f"min_retained must be in (0, 1], got {self.min_retained}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResilienceTarget":
        if not isinstance(data, Mapping):
            raise DesignError(
                f"'resilience' must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"failures", "min_retained"}
        if unknown:
            raise DesignError(
                f"unknown resilience keys {sorted(unknown)} "
                "(expected failures, min_retained)"
            )
        return cls(
            failures=data.get("failures"),
            min_retained=float(data.get("min_retained", 0.9)),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"failures": self.failures, "min_retained": self.min_retained}


@dataclass(frozen=True)
class DesignTarget:
    """One inverse-design question, fully declarative.

    Attributes
    ----------
    servers:
        Minimum number of servers the network must host.
    throughput_per_server:
        The SLO: per-server throughput (fraction of line rate) every
        design must achieve under the longest-matching TM at
        ``fraction`` load.
    fraction:
        Longest-matching server fraction in (0, 1] (the load model's
        x-axis in the paper's Fig. 2).
    per_server_demand:
        Demand per active server in units of line rate.
    seed:
        Master seed for TM generation and seeded constructions.
    solver:
        Solver-backend spec for the LP stage (any
        :data:`repro.registry.SOLVERS` name, e.g. ``highs-batched`` or
        ``highs-incremental``).
    families:
        Candidate topology families (``()`` = every registered design
        space).
    space:
        Per-family design-space spec overrides, e.g.
        ``{"jellyfish": "jellyfish:degree_max=6,sizes=3"}``.
    max_switches:
        Hard cap on candidate switch counts.
    radix:
        Ports per switch; candidates needing more network + server
        ports per switch are infeasible.
    port_cost:
        Pricing technology from paper Table 1: ``static``, ``firefly``,
        ``projector-low``, ``projector-high``.
    max_cost:
        Optional budget in dollars; costlier candidates are pruned.
    resilience:
        Optional :class:`ResilienceTarget` floor.
    min_expandability:
        Optional floor on the expandability score (normalized spectral
        gap in [0, 1]; expanders score high, fat-trees low).
    sensitivity:
        Whether the report includes the one-parameter-at-a-time
        tornado table.
    sensitivity_rel:
        Relative perturbation used by the sensitivity sweep.
    name:
        Cosmetic label carried through to the report.
    """

    servers: int
    throughput_per_server: float
    fraction: float = 1.0
    per_server_demand: float = 1.0
    seed: int = 0
    solver: str = "highs-batched"
    families: Tuple[str, ...] = ()
    space: Mapping[str, Any] = field(default_factory=dict)
    max_switches: int = 64
    radix: int = 32
    port_cost: str = "static"
    max_cost: Optional[float] = None
    resilience: Optional[ResilienceTarget] = None
    min_expandability: Optional[float] = None
    sensitivity: bool = True
    sensitivity_rel: float = 0.1
    name: str = ""

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise DesignError(f"servers must be >= 1, got {self.servers}")
        if not 0 < self.throughput_per_server <= 1:
            raise DesignError(
                "throughput_per_server must be in (0, 1], got "
                f"{self.throughput_per_server}"
            )
        if not 0 < self.fraction <= 1:
            raise DesignError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )
        if self.per_server_demand <= 0:
            raise DesignError(
                f"per_server_demand must be > 0, got {self.per_server_demand}"
            )
        if self.max_switches < 2:
            raise DesignError(
                f"max_switches must be >= 2, got {self.max_switches}"
            )
        if self.radix < 2:
            raise DesignError(f"radix must be >= 2, got {self.radix}")
        if not isinstance(self.solver, str) or not self.solver:
            raise DesignError(
                f"solver must be a non-empty spec string, got {self.solver!r}"
            )
        if self.families:
            from .. import registry

            valid = set(registry.DESIGNS.available())
            bad = sorted(set(self.families) - valid)
            if bad:
                raise DesignError(
                    f"unknown design families {bad}; registered: "
                    + ", ".join(sorted(valid))
                )
        if self.port_cost not in PORT_COSTS:
            raise DesignError(
                f"unknown port_cost {self.port_cost!r}; valid choices: "
                + ", ".join(sorted(PORT_COSTS))
            )
        if self.max_cost is not None and self.max_cost <= 0:
            raise DesignError(f"max_cost must be > 0, got {self.max_cost}")
        if self.min_expandability is not None and not (
            0 <= self.min_expandability <= 1
        ):
            raise DesignError(
                "min_expandability must be in [0, 1], got "
                f"{self.min_expandability}"
            )
        if not 0 < self.sensitivity_rel < 1:
            raise DesignError(
                f"sensitivity_rel must be in (0, 1), got {self.sensitivity_rel}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignTarget":
        """Build and validate a target from its JSON form (strict keys)."""
        if not isinstance(data, Mapping):
            raise DesignError(
                f"design target must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise DesignError(
                f"unknown design-target keys {sorted(unknown)}; "
                f"valid keys: {sorted(known)}"
            )
        body = dict(data)
        if "servers" not in body:
            raise DesignError("design target needs a 'servers' count")
        if "throughput_per_server" not in body:
            raise DesignError(
                "design target needs a 'throughput_per_server' SLO"
            )
        if body.get("resilience") is not None:
            body["resilience"] = ResilienceTarget.from_dict(body["resilience"])
        families = body.get("families", ())
        if isinstance(families, str):
            families = (families,)
        if not isinstance(families, (list, tuple)):
            raise DesignError("'families' must be an array of family names")
        body["families"] = tuple(str(f) for f in families)
        space = body.get("space", {})
        if not isinstance(space, Mapping):
            raise DesignError("'space' must be an object of family -> spec")
        body["space"] = dict(space)
        try:
            body["servers"] = int(body["servers"])
            body["throughput_per_server"] = float(body["throughput_per_server"])
        except (TypeError, ValueError) as exc:
            raise DesignError(f"bad target numbers: {exc}")
        return cls(**body)

    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON form (deterministic; drives content keys)."""
        return {
            "servers": self.servers,
            "throughput_per_server": self.throughput_per_server,
            "fraction": self.fraction,
            "per_server_demand": self.per_server_demand,
            "seed": self.seed,
            "solver": self.solver,
            "families": list(self.families),
            "space": {k: self.space[k] for k in sorted(self.space)},
            "max_switches": self.max_switches,
            "radix": self.radix,
            "port_cost": self.port_cost,
            "max_cost": self.max_cost,
            "resilience": (
                self.resilience.to_dict() if self.resilience else None
            ),
            "min_expandability": self.min_expandability,
            "sensitivity": self.sensitivity,
            "sensitivity_rel": self.sensitivity_rel,
            "name": self.name,
        }

    def replace(self, **changes: Any) -> "DesignTarget":
        """A copy with ``changes`` applied (re-validated)."""
        body = self.to_dict()
        body.update(changes)
        if isinstance(body.get("resilience"), ResilienceTarget):
            body["resilience"] = body["resilience"].to_dict()
        return DesignTarget.from_dict(body)


def design_target_schema() -> Dict[str, Any]:
    """The JSON Schema of one :class:`DesignTarget` document.

    Enumerations (families, solvers, port technologies) are read from
    the live registries so the schema cannot drift from what the
    validator accepts; a field-set guard fails loudly if the dataclass
    gains a field without a schema entry.
    """
    from .. import registry

    def number(description: str, **extra: Any) -> Dict[str, Any]:
        return {"type": "number", "description": description, **extra}

    properties: Dict[str, Dict[str, Any]] = {
        "servers": {
            "type": "integer",
            "minimum": 1,
            "description": "minimum servers the design must host",
        },
        "throughput_per_server": number(
            "SLO: per-server throughput under longest-matching load",
            exclusiveMinimum=0, maximum=1,
        ),
        "fraction": number(
            "longest-matching server fraction (load model)",
            exclusiveMinimum=0, maximum=1,
        ),
        "per_server_demand": number(
            "demand per active server (line-rate units)", exclusiveMinimum=0
        ),
        "seed": {"type": "integer", "description": "master seed"},
        "solver": {
            "type": "string",
            "description": "LP-stage solver backend spec",
        },
        "families": {
            "type": "array",
            "items": {
                "type": "string",
                "enum": list(registry.DESIGNS.available()),
            },
            "description": "candidate families (empty = all registered)",
        },
        "space": {
            "type": "object",
            "description": (
                "per-family design-space spec overrides "
                "(e.g. 'jellyfish:degree_max=6,sizes=3')"
            ),
            "additionalProperties": {"type": ["string", "object"]},
        },
        "max_switches": {
            "type": "integer",
            "minimum": 2,
            "description": "hard cap on candidate switch counts",
        },
        "radix": {
            "type": "integer",
            "minimum": 2,
            "description": "ports per switch (network + server)",
        },
        "port_cost": {
            "type": "string",
            "enum": sorted(PORT_COSTS),
            "description": "Table 1 pricing technology",
        },
        "max_cost": {
            "type": ["number", "null"],
            "description": "optional budget in dollars",
        },
        "resilience": {
            "type": ["object", "null"],
            "description": "optional retained-throughput floor",
            "properties": {
                "failures": {
                    "type": ["string", "object"],
                    "description": "failure-scenario spec",
                },
                "min_retained": number(
                    "fraction of healthy throughput retained",
                    exclusiveMinimum=0, maximum=1,
                ),
            },
            "additionalProperties": False,
        },
        "min_expandability": {
            "type": ["number", "null"],
            "description": (
                "optional floor on the normalized-spectral-gap "
                "expandability score"
            ),
        },
        "sensitivity": {
            "type": "boolean",
            "description": "include the tornado sensitivity table",
        },
        "sensitivity_rel": number(
            "relative perturbation of the sensitivity sweep",
            exclusiveMinimum=0, exclusiveMaximum=1,
        ),
        "name": {"type": "string", "description": "cosmetic label"},
    }
    declared = {f.name for f in fields(DesignTarget)}
    missing = declared - set(properties)
    extra = set(properties) - declared
    if missing or extra:  # pragma: no cover - guards schema drift
        raise RuntimeError(
            f"design schema out of sync: missing={sorted(missing)} "
            f"extra={sorted(extra)}"
        )
    return {
        "$schema": "https://json-schema.org/draft/2020-12/schema",
        "$id": "repro/design-target/1",
        "title": "DesignTarget",
        "description": (
            "Inverse-design question: the cheapest network meeting this "
            "SLO (throughput, optional resilience/expandability floors)."
        ),
        "type": "object",
        "required": ["servers", "throughput_per_server"],
        "properties": properties,
        "additionalProperties": False,
    }
