"""Design reports: best design, Pareto frontier, tornado sensitivity.

A :class:`DesignReport` is the search's complete, deterministic answer:
every evaluated design with its measurements, every pruned candidate
with the stage and reason it died, the cost-vs-throughput Pareto
frontier over the optimal evaluations, the minimum-cost design meeting
the full target, the stage counters (proof that the cheap bounds did
their job before the LP stage), and the one-parameter-at-a-time tornado
table.  ``to_dict`` is canonical — the same target always serializes to
byte-identical JSON (the determinism test round-trips this), which also
makes reports content-addressable for caching.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from ..analysis import format_number, format_table
from .target import DesignTarget

__all__ = ["EvaluatedDesign", "PrunedCandidate", "DesignReport"]


@dataclass(frozen=True)
class EvaluatedDesign:
    """One candidate that survived pruning and was solved."""

    spec: str
    family: str
    switches: int
    links: int
    servers: int
    network_degree: int
    servers_per_switch: int
    cost: float
    expandability: float
    bound_per_server: float
    per_server: float
    status: str
    iterations: int
    meets_slo: bool
    retained: Optional[float]
    meets_resilience: Optional[bool]
    meets: bool

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class PrunedCandidate:
    """One candidate rejected before any LP solve."""

    spec: str
    family: str
    stage: str  # "cheap" (arithmetic) or "structural" (built, no LP)
    reason: str
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _pareto_frontier(evaluated: List[EvaluatedDesign]) -> List[str]:
    """Non-dominated (cost, per-server) specs among optimal evaluations.

    Sorted by cost ascending; a design joins the frontier when no
    cheaper-or-equal design achieves at least its throughput.
    """
    frontier: List[str] = []
    best = -1.0
    for e in sorted(
        evaluated, key=lambda e: (e.cost, -e.per_server, e.spec)
    ):
        if e.status != "optimal":
            continue
        if e.per_server > best:
            frontier.append(e.spec)
            best = e.per_server
    return frontier


@dataclass(frozen=True)
class DesignReport:
    """The search's full answer for one :class:`DesignTarget`."""

    target: Dict[str, Any]
    best: Optional[EvaluatedDesign]
    evaluated: List[EvaluatedDesign]
    pruned: List[PrunedCandidate]
    pareto: List[str]
    counters: Dict[str, Any]
    sensitivity: List[Dict[str, Any]]
    complete: bool

    @classmethod
    def build(
        cls,
        target: DesignTarget,
        evaluated: List[EvaluatedDesign],
        pruned: List[PrunedCandidate],
        counters: Dict[str, Any],
        sensitivity: List[Dict[str, Any]],
        complete: bool,
    ) -> "DesignReport":
        feasible = [e for e in evaluated if e.meets]
        best = (
            min(feasible, key=lambda e: (e.cost, e.spec))
            if feasible
            else None
        )
        return cls(
            target=target.to_dict(),
            best=best,
            evaluated=list(evaluated),
            pruned=list(pruned),
            pareto=_pareto_frontier(evaluated),
            counters=dict(counters),
            sensitivity=list(sensitivity),
            complete=complete,
        )

    @property
    def feasible(self) -> bool:
        """Whether any evaluated design meets the full target."""
        return self.best is not None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form: same target → byte-identical document."""
        return {
            "target": self.target,
            "complete": self.complete,
            "feasible": self.feasible,
            "best": self.best.to_dict() if self.best else None,
            "pareto": list(self.pareto),
            "evaluated": [e.to_dict() for e in self.evaluated],
            "pruned": [p.to_dict() for p in self.pruned],
            "counters": self.counters,
            "sensitivity": self.sensitivity,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DesignReport":
        """Rebuild a report from its JSON form (client-side typing)."""
        evaluated = [EvaluatedDesign(**e) for e in data.get("evaluated", [])]
        by_spec = {e.spec: e for e in evaluated}
        best = data.get("best")
        return cls(
            target=dict(data.get("target", {})),
            best=by_spec.get(best["spec"]) if best else None,
            evaluated=evaluated,
            pruned=[PrunedCandidate(**p) for p in data.get("pruned", [])],
            pareto=list(data.get("pareto", [])),
            counters=dict(data.get("counters", {})),
            sensitivity=list(data.get("sensitivity", [])),
            complete=bool(data.get("complete", True)),
        )

    def render(self) -> str:
        """Human-readable summary (the CLI's output)."""
        lines: List[str] = []
        slo = self.target.get("throughput_per_server")
        title = self.target.get("name") or "design search"
        lines.append(
            f"{title}: >= {self.target.get('servers')} servers at "
            f"per-server throughput >= {slo}"
        )
        c = self.counters
        lines.append(
            f"candidates: {c.get('candidates', 0)}  "
            f"pruned before LP: {c.get('pruned', 0)} "
            f"({', '.join(f'{k}={v}' for k, v in sorted(c.get('pruned_by_reason', {}).items())) or 'none'})  "
            f"LP solves: {c.get('lp_solves', 0)}"
        )
        if not self.complete:
            lines.append("NOTE: search cancelled before completion")
        if self.best is None:
            lines.append("no evaluated design meets the target")
        else:
            b = self.best
            lines.append(
                f"best: {b.spec}  cost ${format_number(b.cost)}  "
                f"per-server {format_number(b.per_server)}"
            )
        if self.evaluated:
            pareto = set(self.pareto)
            rows = [
                [
                    e.spec,
                    e.switches,
                    e.cost,
                    e.per_server,
                    e.expandability,
                    "yes" if e.meets else "no",
                    "*" if e.spec in pareto else "",
                ]
                for e in self.evaluated
            ]
            lines.append("")
            lines.append(
                format_table(
                    [
                        "design",
                        "switches",
                        "cost $",
                        "per-server",
                        "expand",
                        "meets",
                        "pareto",
                    ],
                    rows,
                    title="evaluated designs (cost ascending)",
                )
            )
        if self.sensitivity:
            rows = [
                [
                    s["parameter"],
                    s["base"],
                    s["low"]["value"],
                    (
                        s["low"]["best_cost"]
                        if s["low"]["best_cost"] is not None
                        else "infeasible"
                    ),
                    s["high"]["value"],
                    (
                        s["high"]["best_cost"]
                        if s["high"]["best_cost"] is not None
                        else "infeasible"
                    ),
                    s["swing"] if s["swing"] is not None else "-",
                ]
                for s in self.sensitivity
            ]
            lines.append("")
            lines.append(
                format_table(
                    [
                        "parameter",
                        "base",
                        "low",
                        "cost@low $",
                        "high",
                        "cost@high $",
                        "swing $",
                    ],
                    rows,
                    title="sensitivity (widest swing first)",
                )
            )
        return "\n".join(lines)
