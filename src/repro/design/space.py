"""Candidate enumeration: the equal-cost configuration space per family.

Each topology family registers a *design space* in
:data:`repro.registry.DESIGNS` — a factory taking spec-string
parameters (``"jellyfish:degree_max=6,sizes=3"``) and returning a
:class:`DesignSpace` whose :meth:`~DesignSpace.candidates` enumerates
:class:`CandidateDesign` points for a given server requirement.

A candidate is *predicted*, not built: its switch/link/server counts
come from each family's closed-form sizing (a k-ary fat-tree has
``5k²/4`` switches and ``k³/2`` network links; a degree-r graph on n
switches has ``nr/2`` — an upper bound for jellyfish, whose generator
may leave a port pair unmatched at small n, which only *loosens* the
cheap throughput ceiling and so keeps pruning sound), so the search can
price it
(:func:`repro.cost.predicted_port_cost`) and bound its throughput (the
Moore bound) before paying for any graph construction, let alone an LP
solve.  Enumeration is deliberately *generous* — it includes points the
cheap stages will reject (too few servers, radix exceeded, over the
switch cap) precisely so the staged pruning has a measurable candidate
space to cut down; every generator is deterministic in its parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from ..topologies.slimfly import is_valid_slimfly_q, slimfly_network_degree
from .target import DesignError, DesignTarget

__all__ = [
    "CandidateDesign",
    "DesignSpace",
    "FatTreeSpace",
    "JellyfishSpace",
    "LongHopSpace",
    "SlimFlySpace",
    "XpanderSpace",
    "register_builtin_design_spaces",
    "enumerate_candidates",
]


@dataclass(frozen=True)
class CandidateDesign:
    """One point of the configuration space, with predicted sizing.

    ``params`` feeds the family's :data:`repro.registry.TOPOLOGIES`
    factory verbatim; the counts are closed-form predictions the
    generators realize exactly.
    """

    family: str
    params: Tuple[Tuple[str, Any], ...]
    switches: int
    links: int
    servers: int
    network_degree: int
    servers_per_switch: int

    @property
    def spec(self) -> Dict[str, Any]:
        """The registry topology spec (``{"family": ..., ...params}``)."""
        return {"family": self.family, **dict(self.params)}

    @property
    def spec_string(self) -> str:
        """The compact string form, stable across runs."""
        return self.family + ":" + ",".join(
            f"{key}={value}" for key, value in self.params
        )


class DesignSpace:
    """Base class of one family's candidate enumerator."""

    family: str = "abstract"

    def candidates(self, target: DesignTarget) -> Iterator[CandidateDesign]:
        """Yield this family's candidates for ``target`` (deterministic)."""
        raise NotImplementedError


def _ladder(lo: int, hi: int, steps: int) -> List[int]:
    """``steps`` evenly spread integers from ``lo`` to ``hi`` inclusive."""
    if hi <= lo:
        return [lo]
    if steps <= 1:
        return [lo]
    values = sorted(
        {lo + round(i * (hi - lo) / (steps - 1)) for i in range(steps)}
    )
    return values


@dataclass(frozen=True)
class FatTreeSpace(DesignSpace):
    """k-ary fat-trees: ``5k²/4`` switches, ``k³/4`` servers at ``k/2``/edge."""

    k_min: int = 4
    k_max: int = 16
    family: str = field(default="fattree", init=False)

    def __post_init__(self) -> None:
        if self.k_min < 2 or self.k_min % 2:
            raise DesignError(f"k_min must be even and >= 2, got {self.k_min}")
        if self.k_max < self.k_min:
            raise DesignError("k_max must be >= k_min")

    def candidates(self, target: DesignTarget) -> Iterator[CandidateDesign]:
        del target  # fixed grid: the prune stages apply the target
        for k in range(self.k_min, self.k_max + 1, 2):
            half = k // 2
            yield CandidateDesign(
                family="fattree",
                params=(("k", k),),
                switches=5 * k * k // 4,
                links=k ** 3 // 2,
                servers=k ** 3 // 4,
                network_degree=k,
                servers_per_switch=half,
            )


def _flat_sizes(
    target: DesignTarget, degree: int, lo: int, sizes: int
) -> List[int]:
    """Switch-count ladder for a flat degree-``degree`` family."""
    lo = max(lo, degree + 1)
    hi = max(target.max_switches, lo)
    return _ladder(lo, hi, sizes)


def _servers_per_switch(target: DesignTarget, switches: int) -> int:
    """Just enough servers per switch to host the target's server count."""
    return max(1, math.ceil(target.servers / switches))


@dataclass(frozen=True)
class JellyfishSpace(DesignSpace):
    """Random regular graphs over a degree × size grid."""

    degree_min: int = 4
    degree_max: int = 8
    degree_step: int = 2
    sizes: int = 4
    family: str = field(default="jellyfish", init=False)

    def __post_init__(self) -> None:
        if self.degree_min < 2:
            raise DesignError(f"degree_min must be >= 2, got {self.degree_min}")
        if self.degree_max < self.degree_min:
            raise DesignError("degree_max must be >= degree_min")
        if self.degree_step < 1 or self.sizes < 1:
            raise DesignError("degree_step and sizes must be >= 1")

    def candidates(self, target: DesignTarget) -> Iterator[CandidateDesign]:
        for degree in range(self.degree_min, self.degree_max + 1,
                            self.degree_step):
            for n in _flat_sizes(target, degree, degree + 1, self.sizes):
                if n * degree % 2:
                    n += 1  # a d-regular graph needs n*d even
                s = _servers_per_switch(target, n)
                yield CandidateDesign(
                    family="jellyfish",
                    params=(
                        ("switches", n),
                        ("degree", degree),
                        ("servers", s),
                        ("seed", target.seed),
                    ),
                    switches=n,
                    links=n * degree // 2,
                    servers=n * s,
                    network_degree=degree,
                    servers_per_switch=s,
                )


@dataclass(frozen=True)
class XpanderSpace(DesignSpace):
    """Deterministic 2-lift expanders: ``(d+1)·lift`` switches."""

    degree_min: int = 4
    degree_max: int = 8
    degree_step: int = 2
    sizes: int = 4
    family: str = field(default="xpander", init=False)

    def __post_init__(self) -> None:
        if self.degree_min < 2:
            raise DesignError(f"degree_min must be >= 2, got {self.degree_min}")
        if self.degree_max < self.degree_min:
            raise DesignError("degree_max must be >= degree_min")
        if self.degree_step < 1 or self.sizes < 1:
            raise DesignError("degree_step and sizes must be >= 1")

    def candidates(self, target: DesignTarget) -> Iterator[CandidateDesign]:
        for degree in range(self.degree_min, self.degree_max + 1,
                            self.degree_step):
            meta = degree + 1
            lift_hi = max(1, target.max_switches // meta)
            for lift in _ladder(1, lift_hi, self.sizes):
                n = meta * lift
                s = _servers_per_switch(target, n)
                yield CandidateDesign(
                    family="xpander",
                    params=(
                        ("degree", degree),
                        ("lift", lift),
                        ("servers", s),
                    ),
                    switches=n,
                    links=n * degree // 2,
                    servers=n * s,
                    network_degree=degree,
                    servers_per_switch=s,
                )


@dataclass(frozen=True)
class SlimFlySpace(DesignSpace):
    """MMS graphs: ``2q²`` switches at degree ``(3q-1)/2`` for valid q."""

    q_max: int = 13
    family: str = field(default="slimfly", init=False)

    def __post_init__(self) -> None:
        if self.q_max < 5:
            raise DesignError(f"q_max must be >= 5, got {self.q_max}")

    def candidates(self, target: DesignTarget) -> Iterator[CandidateDesign]:
        for q in range(5, self.q_max + 1):
            if not is_valid_slimfly_q(q):
                continue
            n = 2 * q * q
            degree = slimfly_network_degree(q)
            s = _servers_per_switch(target, n)
            yield CandidateDesign(
                family="slimfly",
                params=(("q", q), ("servers", s)),
                switches=n,
                links=n * degree // 2,
                servers=n * s,
                network_degree=degree,
                servers_per_switch=s,
            )


@dataclass(frozen=True)
class LongHopSpace(DesignSpace):
    """GF(2)^n Cayley graphs: ``2^n`` switches, degree >= n."""

    n_min: int = 3
    n_max: int = 8
    degree_extra: int = 2
    family: str = field(default="longhop", init=False)

    def __post_init__(self) -> None:
        if self.n_min < 2:
            raise DesignError(f"n_min must be >= 2, got {self.n_min}")
        if self.n_max < self.n_min:
            raise DesignError("n_max must be >= n_min")
        if self.degree_extra < 0:
            raise DesignError("degree_extra must be >= 0")

    def candidates(self, target: DesignTarget) -> Iterator[CandidateDesign]:
        for n in range(self.n_min, self.n_max + 1):
            switches = 2 ** n
            for degree in range(n, n + self.degree_extra + 1):
                if degree >= switches:
                    continue
                s = _servers_per_switch(target, switches)
                yield CandidateDesign(
                    family="longhop",
                    params=(("n", n), ("degree", degree), ("servers", s)),
                    switches=switches,
                    links=switches * degree // 2,
                    servers=switches * s,
                    network_degree=degree,
                    servers_per_switch=s,
                )


def register_builtin_design_spaces(registry_obj) -> None:
    """Register every family's design-space factory (registry loader)."""
    registry_obj.register(
        "fattree", FatTreeSpace,
        "k-ary fat-trees; k_min, k_max (even k grid)",
    )
    registry_obj.register(
        "jellyfish", JellyfishSpace,
        "random regular graphs; degree_min/max/step, sizes",
    )
    registry_obj.register(
        "xpander", XpanderSpace,
        "2-lift expanders; degree_min/max/step, sizes",
    )
    registry_obj.register(
        "slimfly", SlimFlySpace, "MMS graphs; q_max (valid q only)"
    )
    registry_obj.register(
        "longhop", LongHopSpace,
        "GF(2)^n Cayley graphs; n_min, n_max, degree_extra",
    )


def enumerate_candidates(target: DesignTarget) -> List[CandidateDesign]:
    """Every candidate of every requested family, in deterministic order.

    Families come from ``target.families`` (default: all registered),
    each built through :data:`repro.registry.DESIGNS` with the
    target's per-family ``space`` spec override when present.
    """
    from .. import registry

    families = target.families or registry.DESIGNS.available()
    out: List[CandidateDesign] = []
    for family in families:
        spec = target.space.get(family, family)
        space = registry.design_space(spec)
        if space.family != family:
            raise DesignError(
                f"space spec for {family!r} builds a {space.family!r} space"
            )
        out.extend(space.candidates(target))
    return out
