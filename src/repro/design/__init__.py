"""Inverse topology design: the cheapest network meeting a declarative SLO.

The rest of the library answers "how good is this topology?"; this
subsystem inverts the question.  A :class:`DesignTarget` declares what
the network must do (host N servers at a per-server throughput SLO
under longest-matching load, optionally retaining capacity under a
failure scenario and clearing an expandability floor) and the staged
search (:mod:`repro.design.search`) finds the minimum-cost design:
candidates are enumerated from per-family design spaces
(:data:`repro.registry.DESIGNS`), pruned with arithmetic and structural
bounds *before* any LP is solved, and survivors are evaluated through
the :data:`repro.registry.SOLVERS` backends.  The answer is a
:class:`DesignReport`: best design, Pareto frontier (cost vs. achieved
throughput), pruning counters, and a tornado sensitivity table.

Front ends: ``python -m repro design <target.json>``, ``POST
/v1/design`` (sync), ``kind: "design"`` jobs under ``/v1/jobs``
(async), and :meth:`repro.api.ReproClient.design`.  See
``docs/design.md``.
"""

from .report import DesignReport, EvaluatedDesign, PrunedCandidate
from .search import DesignEngine, design_search
from .space import (
    CandidateDesign,
    DesignSpace,
    enumerate_candidates,
    register_builtin_design_spaces,
)
from .target import (
    DesignError,
    DesignTarget,
    ResilienceTarget,
    design_target_schema,
)

__all__ = [
    "DesignError",
    "DesignTarget",
    "ResilienceTarget",
    "design_target_schema",
    "CandidateDesign",
    "DesignSpace",
    "enumerate_candidates",
    "register_builtin_design_spaces",
    "DesignEngine",
    "design_search",
    "DesignReport",
    "EvaluatedDesign",
    "PrunedCandidate",
]
