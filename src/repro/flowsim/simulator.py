"""Flow-level (fluid) simulator.

Models each flow as a fluid stream on a fixed path with max-min fair
bandwidth sharing, recomputed at every flow arrival and departure.  It
ignores packet effects (queueing delay, slow start, retransmissions), so
absolute FCTs are optimistic, but it tracks bandwidth contention
faithfully and runs orders of magnitude faster than the packet simulator
— the cross-check and scale-out companion used for larger sweeps.

Routing approximations mirror the packet simulator's policies:

* ``ecmp`` — each flow picks one uniform-random shortest path.
* ``vlb``  — each flow picks a random intermediate switch and concatenates
  two random shortest paths.
* ``hyb``  — flows smaller than the Q threshold use ``ecmp``; larger
  flows use ``vlb`` (the paper's HYB switches mid-flow at Q bytes; since
  Q is small relative to long-flow sizes, classifying whole flows by size
  is a faithful fluid approximation).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from .. import obs
from ..topologies.base import Topology
from ..traffic.workload import FlowSpec
from ..sim.stats import FlowRecord, FlowStats
from .fairshare import FairShareState

__all__ = ["FlowLevelSimulation", "run_flow_experiment"]


class _Routes:
    """Random shortest-path sampler with memoized path sets."""

    def __init__(self, topology: Topology, seed: int, max_paths: int = 16) -> None:
        self.graph = topology.graph
        self.rng = random.Random(seed)
        self.max_paths = max_paths
        self._cache: Dict[Tuple[int, int], List[List[int]]] = {}
        self.switches = sorted(self.graph.nodes())

    def _paths(self, src: int, dst: int) -> List[List[int]]:
        key = (src, dst)
        if key not in self._cache:
            paths: List[List[int]] = []
            for p in nx.all_shortest_paths(self.graph, src, dst):
                paths.append(list(p))
                if len(paths) >= self.max_paths:
                    break
            self._cache[key] = paths
        return self._cache[key]

    def shortest(self, src: int, dst: int) -> List[int]:
        """One uniform-random shortest path (ECMP approximation)."""
        if src == dst:
            return [src]
        return self.rng.choice(self._paths(src, dst))

    def vlb(self, src: int, dst: int) -> List[int]:
        """A two-segment VLB path through a random intermediate."""
        if src == dst:
            return [src]
        via = self.rng.choice(self.switches)
        if via in (src, dst):
            return self.shortest(src, dst)
        first = self.shortest(src, via)
        second = self.shortest(via, dst)
        return first + second[1:]


@dataclass
class _ActiveFlow:
    record: FlowRecord
    arcs: List[Tuple[int, int]]
    remaining: float
    rate: float = 0.0


class FlowLevelSimulation:
    """Fluid simulation of a flow workload on a topology."""

    def __init__(
        self,
        topology: Topology,
        routing: str = "ecmp",
        link_rate_bps: float = 10e9,
        server_link_rate_bps: Optional[float] = 10e9,
        hyb_threshold_bytes: int = 100_000,
        seed: int = 0,
    ) -> None:
        if routing not in ("ecmp", "vlb", "hyb"):
            raise ValueError(f"unknown routing {routing!r}")
        self.topology = topology
        self.routing = routing
        self.hyb_threshold = hyb_threshold_bytes
        self.routes = _Routes(topology, seed)
        self.server_to_tor = topology.server_to_tor()

        # Directed arc capacities in bits/s; server access arcs included
        # unless unconstrained (None).
        self.capacities: Dict[Tuple[int, int], float] = {}
        for u, v, data in topology.graph.edges(data=True):
            cap = link_rate_bps * data.get("capacity", 1.0)
            self.capacities[(u, v)] = cap
            self.capacities[(v, u)] = cap
        self.server_arcs = server_link_rate_bps is not None
        if self.server_arcs:
            for server, tor in self.server_to_tor.items():
                up = ("h", server), tor
                down = tor, ("h", server)
                self.capacities[up] = server_link_rate_bps
                self.capacities[down] = server_link_rate_bps

    def _flow_arcs(self, spec: FlowSpec) -> List[Tuple[int, int]]:
        src_tor = self.server_to_tor[spec.src_server]
        dst_tor = self.server_to_tor[spec.dst_server]
        if self.routing == "ecmp":
            path = self.routes.shortest(src_tor, dst_tor)
        elif self.routing == "vlb":
            path = self.routes.vlb(src_tor, dst_tor)
        else:  # hyb
            if spec.size_bytes < self.hyb_threshold:
                path = self.routes.shortest(src_tor, dst_tor)
            else:
                path = self.routes.vlb(src_tor, dst_tor)
        arcs = list(zip(path[:-1], path[1:]))
        if self.server_arcs:
            arcs.insert(0, ((("h", spec.src_server)), src_tor))
            arcs.append((dst_tor, ("h", spec.dst_server)))
        return arcs

    def run(
        self,
        flows: Sequence[FlowSpec],
        measure_start: float = 0.0,
        measure_end: float = float("inf"),
        max_sim_time: float = 1e9,
    ) -> FlowStats:
        """Simulate the flow list and aggregate the paper's metrics."""
        arrivals = sorted(flows, key=lambda f: f.start_time)
        records = {
            f.flow_id: FlowRecord(
                f.flow_id, f.src_server, f.dst_server, f.size_bytes, f.start_time
            )
            for f in arrivals
        }
        active: Dict[int, _ActiveFlow] = {}
        # Incremental fair-share state: arcs are interned once per flow
        # at arrival; every event re-runs only the vectorized water-fill.
        share = FairShareState(self.capacities)
        now = 0.0
        i = 0
        n = len(arrivals)

        def recompute() -> None:
            rates = share.rates()
            for fid, af in active.items():
                af.rate = rates[fid]

        # Arrivals/completions tally in plain locals inside the event
        # loop and flush once as counters after it, so the per-event hot
        # path carries no instrumentation (obs disabled costs nothing).
        arrived = 0
        completed = 0
        with obs.span("flowsim.run", flows=n, routing=self.routing):
            while (i < n or active) and now < max_sim_time:
                next_arrival = arrivals[i].start_time if i < n else float("inf")
                # Earliest completion among active flows.
                next_completion = float("inf")
                completing: Optional[int] = None
                for fid, af in active.items():
                    if af.rate > 0:
                        t = now + af.remaining * 8.0 / af.rate
                        if t < next_completion:
                            next_completion = t
                            completing = fid

                if min(next_arrival, next_completion) > max_sim_time:
                    break  # nothing further happens inside the horizon

                if next_arrival <= next_completion:
                    elapsed = next_arrival - now
                    for af in active.values():
                        af.remaining -= af.rate * elapsed / 8.0
                    now = next_arrival
                    spec = arrivals[i]
                    i += 1
                    flow = _ActiveFlow(
                        record=records[spec.flow_id],
                        arcs=self._flow_arcs(spec),
                        remaining=float(spec.size_bytes),
                    )
                    active[spec.flow_id] = flow
                    share.add_flow(spec.flow_id, flow.arcs)
                    arrived += 1
                    recompute()
                elif completing is not None:
                    elapsed = next_completion - now
                    for af in active.values():
                        af.remaining -= af.rate * elapsed / 8.0
                    now = next_completion
                    done = active.pop(completing)
                    share.remove_flow(completing)
                    done.record.completion_time = now
                    completed += 1
                    recompute()
                else:
                    break  # no arrivals left and nothing can progress
        obs.add("flowsim.arrivals", arrived)
        obs.add("flowsim.completions", completed)
        obs.add("flowsim.fairshare_recomputes", share.recomputes)
        obs.add("flowsim.waterfill_rounds", share.waterfill_rounds)

        measured = [
            r
            for r in records.values()
            if measure_start <= r.start_time < measure_end
        ]
        return FlowStats(records=measured)


def run_flow_experiment(
    topology: Topology,
    flows: Sequence[FlowSpec],
    routing: str = "ecmp",
    link_rate_bps: float = 10e9,
    server_link_rate_bps: Optional[float] = 10e9,
    measure_start: float = 0.0,
    measure_end: float = float("inf"),
    seed: int = 0,
) -> FlowStats:
    """Convenience wrapper around :class:`FlowLevelSimulation`."""
    sim = FlowLevelSimulation(
        topology,
        routing=routing,
        link_rate_bps=link_rate_bps,
        server_link_rate_bps=server_link_rate_bps,
        seed=seed,
    )
    return sim.run(flows, measure_start=measure_start, measure_end=measure_end)
