"""Flow-level (fluid) simulator.

Models each flow as a fluid stream on a fixed path with max-min fair
bandwidth sharing, recomputed at every flow arrival and departure.  It
ignores packet effects (queueing delay, slow start, retransmissions), so
absolute FCTs are optimistic, but it tracks bandwidth contention
faithfully and runs orders of magnitude faster than the packet simulator
— the cross-check and scale-out companion used for larger sweeps.

Routing approximations mirror the packet simulator's policies:

* ``ecmp`` — each flow picks one uniform-random shortest path.
* ``vlb``  — each flow picks a random intermediate switch and concatenates
  two random shortest paths.
* ``hyb``  — flows smaller than the Q threshold use ``ecmp``; larger
  flows use ``vlb`` (the paper's HYB switches mid-flow at Q bytes; since
  Q is small relative to long-flow sizes, classifying whole flows by size
  is a faithful fluid approximation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from .. import obs
from ..topologies.base import Topology
from ..traffic.workload import FlowSpec
from ..sim.stats import FlowRecord, FlowStats
from .fairshare import FairShareState

__all__ = ["FlowLevelSimulation", "run_flow_experiment"]


class _Routes:
    """Random shortest-path sampler with memoized path sets."""

    def __init__(self, topology: Topology, seed: int, max_paths: int = 16) -> None:
        self.graph = topology.graph
        self.rng = random.Random(seed)
        self.max_paths = max_paths
        self._cache: Dict[Tuple[int, int], List[List[int]]] = {}
        self.switches = sorted(self.graph.nodes())

    def _paths(self, src: int, dst: int) -> List[List[int]]:
        key = (src, dst)
        if key not in self._cache:
            paths: List[List[int]] = []
            for p in nx.all_shortest_paths(self.graph, src, dst):
                paths.append(list(p))
                if len(paths) >= self.max_paths:
                    break
            self._cache[key] = paths
        return self._cache[key]

    def shortest(self, src: int, dst: int) -> List[int]:
        """One uniform-random shortest path (ECMP approximation)."""
        if src == dst:
            return [src]
        return self.rng.choice(self._paths(src, dst))

    def vlb(self, src: int, dst: int) -> List[int]:
        """A two-segment VLB path through a random intermediate.

        An intermediate that failures have cut off from either endpoint
        is abandoned in favor of the direct path (mirroring the packet
        policies' early decapsulation); a disconnected src/dst pair still
        raises, for the caller to strand the flow.
        """
        if src == dst:
            return [src]
        via = self.rng.choice(self.switches)
        if via in (src, dst):
            return self.shortest(src, dst)
        try:
            first = self.shortest(src, via)
            second = self.shortest(via, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return self.shortest(src, dst)
        return first + second[1:]


@dataclass
class _ActiveFlow:
    record: FlowRecord
    arcs: List[Tuple[int, int]]
    remaining: float
    rate: float = 0.0


class FlowLevelSimulation:
    """Fluid simulation of a flow workload on a topology."""

    def __init__(
        self,
        topology: Topology,
        routing: str = "ecmp",
        link_rate_bps: float = 10e9,
        server_link_rate_bps: Optional[float] = 10e9,
        hyb_threshold_bytes: int = 100_000,
        seed: int = 0,
    ) -> None:
        if routing not in ("ecmp", "vlb", "hyb"):
            raise ValueError(f"unknown routing {routing!r}")
        self.topology = topology
        self.routing = routing
        self.hyb_threshold = hyb_threshold_bytes
        self.link_rate_bps = link_rate_bps
        self.server_link_rate_bps = server_link_rate_bps
        self.server_arcs = server_link_rate_bps is not None
        self._seed = seed
        self.routes = _Routes(topology, seed)
        self.server_to_tor = topology.server_to_tor()
        self.capacities = self._build_capacities()

    def _build_capacities(self) -> Dict[Tuple[int, int], float]:
        """Directed arc capacities in bits/s for the current topology;
        server access arcs included unless unconstrained (None)."""
        capacities: Dict[Tuple[int, int], float] = {}
        for u, v, data in self.topology.graph.edges(data=True):
            cap = self.link_rate_bps * data.get("capacity", 1.0)
            capacities[(u, v)] = cap
            capacities[(v, u)] = cap
        if self.server_arcs:
            for server, tor in self.server_to_tor.items():
                capacities[("h", server), tor] = self.server_link_rate_bps
                capacities[tor, ("h", server)] = self.server_link_rate_bps
        return capacities

    def _arcs_for(
        self, src_server: int, dst_server: int, size_bytes: int
    ) -> List[Tuple[int, int]]:
        """Route one flow on the current topology.

        Raises ``KeyError`` (endpoint server gone), ``nx.NodeNotFound``,
        or ``nx.NetworkXNoPath`` (endpoints disconnected) when failures
        make the flow unroutable.
        """
        src_tor = self.server_to_tor[src_server]
        dst_tor = self.server_to_tor[dst_server]
        if self.routing == "ecmp":
            path = self.routes.shortest(src_tor, dst_tor)
        elif self.routing == "vlb":
            path = self.routes.vlb(src_tor, dst_tor)
        else:  # hyb
            if size_bytes < self.hyb_threshold:
                path = self.routes.shortest(src_tor, dst_tor)
            else:
                path = self.routes.vlb(src_tor, dst_tor)
        arcs = list(zip(path[:-1], path[1:]))
        if self.server_arcs:
            arcs.insert(0, (("h", src_server), src_tor))
            arcs.append((dst_tor, ("h", dst_server)))
        return arcs

    def _flow_arcs(self, spec: FlowSpec) -> List[Tuple[int, int]]:
        return self._arcs_for(spec.src_server, spec.dst_server, spec.size_bytes)

    def _degrade(self, scenario) -> None:
        """Apply a failure scenario and refresh routing/capacity state."""
        from ..registry import failure

        self.topology = failure(scenario).apply(self.topology)
        self.routes = _Routes(self.topology, self._seed)
        self.server_to_tor = self.topology.server_to_tor()
        self.capacities = self._build_capacities()

    def run(
        self,
        flows: Sequence[FlowSpec],
        measure_start: float = 0.0,
        measure_end: float = float("inf"),
        max_sim_time: float = 1e9,
        failures: Optional[Sequence[Tuple[float, object]]] = None,
    ) -> FlowStats:
        """Simulate the flow list and aggregate the paper's metrics.

        ``failures`` is an optional list of ``(time, scenario)`` events
        (any :func:`repro.registry.failure` spec).  At each event the
        scenario degrades the *current* topology; in-flight flows whose
        paths died are re-planned on the survivors, and flows whose
        endpoints became unreachable are stranded (they never complete,
        and count toward the run's ``flowsim.stranded``).
        """
        arrivals = sorted(flows, key=lambda f: f.start_time)
        fail_events = sorted(
            ((float(t), scenario) for t, scenario in failures or ()),
            key=lambda e: e[0],
        )
        records = {
            f.flow_id: FlowRecord(
                f.flow_id, f.src_server, f.dst_server, f.size_bytes, f.start_time
            )
            for f in arrivals
        }
        active: Dict[int, _ActiveFlow] = {}
        # Incremental fair-share state: arcs are interned once per flow
        # at arrival; every event re-runs only the vectorized water-fill.
        # A failure event replaces it wholesale (capacities changed).
        share = FairShareState(self.capacities)
        now = 0.0
        i = 0
        j = 0
        n = len(arrivals)

        def recompute() -> None:
            rates = share.rates()
            for fid, af in active.items():
                af.rate = rates[fid]

        def advance(to: float) -> float:
            for af in active.values():
                af.remaining -= af.rate * (to - now) / 8.0
            return to

        # Arrivals/completions tally in plain locals inside the event
        # loop and flush once as counters after it, so the per-event hot
        # path carries no instrumentation (obs disabled costs nothing).
        arrived = 0
        completed = 0
        replanned = 0
        stranded = 0
        recomputes = 0
        waterfill_rounds = 0
        with obs.span("flowsim.run", flows=n, routing=self.routing):
            while (i < n or active or j < len(fail_events)) and now < max_sim_time:
                next_arrival = arrivals[i].start_time if i < n else float("inf")
                next_failure = (
                    fail_events[j][0] if j < len(fail_events) else float("inf")
                )
                # Earliest completion among active flows.
                next_completion = float("inf")
                completing: Optional[int] = None
                for fid, af in active.items():
                    if af.rate > 0:
                        t = now + af.remaining * 8.0 / af.rate
                        if t < next_completion:
                            next_completion = t
                            completing = fid

                if min(next_arrival, next_completion, next_failure) > max_sim_time:
                    break  # nothing further happens inside the horizon

                if next_failure <= next_arrival and next_failure <= next_completion:
                    now = advance(next_failure)
                    scenario = fail_events[j][1]
                    j += 1
                    self._degrade(scenario)
                    recomputes += share.recomputes
                    waterfill_rounds += share.waterfill_rounds
                    share = FairShareState(self.capacities)
                    survivors: Dict[int, _ActiveFlow] = {}
                    for fid, af in active.items():
                        if all(arc in self.capacities for arc in af.arcs):
                            survivors[fid] = af
                            share.add_flow(fid, af.arcs)
                            continue
                        r = af.record
                        try:
                            af.arcs = self._arcs_for(
                                r.src_server, r.dst_server, r.size_bytes
                            )
                        except (KeyError, nx.NetworkXNoPath, nx.NodeNotFound):
                            stranded += 1  # endpoints cut off: never completes
                            continue
                        survivors[fid] = af
                        share.add_flow(fid, af.arcs)
                        replanned += 1
                    active = survivors
                    recompute()
                elif next_arrival <= next_completion:
                    now = advance(next_arrival)
                    spec = arrivals[i]
                    i += 1
                    try:
                        arcs = self._flow_arcs(spec)
                    except (KeyError, nx.NetworkXNoPath, nx.NodeNotFound):
                        stranded += 1  # arrived after its endpoints died
                        continue
                    flow = _ActiveFlow(
                        record=records[spec.flow_id],
                        arcs=arcs,
                        remaining=float(spec.size_bytes),
                    )
                    active[spec.flow_id] = flow
                    share.add_flow(spec.flow_id, flow.arcs)
                    arrived += 1
                    recompute()
                elif completing is not None:
                    now = advance(next_completion)
                    done = active.pop(completing)
                    share.remove_flow(completing)
                    done.record.completion_time = now
                    completed += 1
                    recompute()
                else:
                    break  # no arrivals left and nothing can progress
        obs.add("flowsim.arrivals", arrived)
        obs.add("flowsim.completions", completed)
        obs.add("flowsim.fairshare_recomputes", recomputes + share.recomputes)
        obs.add("flowsim.waterfill_rounds", waterfill_rounds + share.waterfill_rounds)
        if failures is not None:
            obs.add("flowsim.replans", replanned)
            obs.add("flowsim.stranded", stranded)

        measured = [
            r
            for r in records.values()
            if measure_start <= r.start_time < measure_end
        ]
        return FlowStats(records=measured)


def run_flow_experiment(
    topology: Topology,
    flows: Sequence[FlowSpec],
    routing: str = "ecmp",
    link_rate_bps: float = 10e9,
    server_link_rate_bps: Optional[float] = 10e9,
    measure_start: float = 0.0,
    measure_end: float = float("inf"),
    seed: int = 0,
    failures: Optional[Sequence[Tuple[float, object]]] = None,
) -> FlowStats:
    """Convenience wrapper around :class:`FlowLevelSimulation`."""
    sim = FlowLevelSimulation(
        topology,
        routing=routing,
        link_rate_bps=link_rate_bps,
        server_link_rate_bps=server_link_rate_bps,
        seed=seed,
    )
    return sim.run(
        flows,
        measure_start=measure_start,
        measure_end=measure_end,
        failures=failures,
    )
