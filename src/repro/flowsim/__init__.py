"""Flow-level (fluid, max-min fair) simulator."""

from .fairshare import max_min_allocation
from .simulator import FlowLevelSimulation, run_flow_experiment

__all__ = ["max_min_allocation", "FlowLevelSimulation", "run_flow_experiment"]
