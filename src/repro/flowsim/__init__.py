"""Flow-level (fluid, max-min fair) simulator."""

from .fairshare import (
    FairShareState,
    max_min_allocation,
    max_min_allocation_reference,
)
from .simulator import FlowLevelSimulation, run_flow_experiment

__all__ = [
    "max_min_allocation",
    "max_min_allocation_reference",
    "FairShareState",
    "FlowLevelSimulation",
    "run_flow_experiment",
]
