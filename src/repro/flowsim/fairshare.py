"""Max-min fair bandwidth allocation via progressive filling.

Given a set of flows, each pinned to a directed path over capacitated
arcs, compute the max-min fair rate vector: all flow rates rise together
until a link saturates, flows crossing saturated links freeze, and the
rest continue — the classic water-filling algorithm.  This is the rate
model underlying the flow-level simulator.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

__all__ = ["max_min_allocation"]


def max_min_allocation(
    flow_paths: Dict[Hashable, Sequence[Tuple[int, int]]],
    capacities: Dict[Tuple[int, int], float],
) -> Dict[Hashable, float]:
    """Max-min fair rates for flows pinned to arc paths.

    Parameters
    ----------
    flow_paths:
        Mapping of flow id to its sequence of directed arcs ``(u, v)``.
        A flow traversing an arc twice (possible under VLB detours)
        consumes capacity twice there.
    capacities:
        Capacity of every directed arc the flows may use.

    Returns
    -------
    Mapping of flow id to its max-min fair rate (same units as capacity).
    Flows with empty paths (same-switch endpoints) get infinite rate.
    """
    rates: Dict[Hashable, float] = {}
    # Count per-arc usage multiplicity per flow.
    arc_flows: Dict[Tuple[int, int], Dict[Hashable, int]] = {}
    active: Dict[Hashable, bool] = {}
    for fid, path in flow_paths.items():
        if not path:
            rates[fid] = float("inf")
            continue
        rates[fid] = 0.0
        active[fid] = True
        for arc in path:
            if arc not in capacities:
                raise KeyError(f"flow {fid!r} uses unknown arc {arc}")
            arc_flows.setdefault(arc, {})
            arc_flows[arc][fid] = arc_flows[arc].get(fid, 0) + 1

    used: Dict[Tuple[int, int], float] = {a: 0.0 for a in arc_flows}

    while active:
        # Tightest link: smallest (headroom / active multiplicity).
        best_inc = None
        for arc, members in arc_flows.items():
            mult = sum(m for f, m in members.items() if f in active)
            if mult == 0:
                continue
            headroom = capacities[arc] - used[arc]
            inc = headroom / mult
            if best_inc is None or inc < best_inc:
                best_inc = inc
        if best_inc is None:
            break
        best_inc = max(best_inc, 0.0)

        # Raise every active flow by the increment.
        for fid in active:
            rates[fid] += best_inc
        for arc, members in arc_flows.items():
            mult = sum(m for f, m in members.items() if f in active)
            used[arc] += best_inc * mult

        # Freeze flows on (numerically) saturated arcs.
        newly_frozen = set()
        for arc, members in arc_flows.items():
            if used[arc] >= capacities[arc] - 1e-12:
                for f in members:
                    if f in active:
                        newly_frozen.add(f)
        if not newly_frozen:
            break  # all remaining arcs have infinite headroom (defensive)
        for f in newly_frozen:
            del active[f]

    return rates
