"""Max-min fair bandwidth allocation via progressive filling.

Given a set of flows, each pinned to a directed path over capacitated
arcs, compute the max-min fair rate vector: all flow rates rise together
until a link saturates, flows crossing saturated links freeze, and the
rest continue — the classic water-filling algorithm.  This is the rate
model underlying the flow-level simulator.

Two implementations are provided:

* :func:`max_min_allocation` — vectorized: the flows' arc traversals
  form a CSR arc×flow incidence matrix (multiplicities included, so a
  VLB detour crossing an arc twice consumes double there), and each
  water-filling round is a handful of numpy operations: one sparse
  mat-vec for per-arc active multiplicities, a vectorized headroom
  division, and one transposed mat-vec to freeze flows on saturated
  arcs.  Rates are bit-identical to the reference (multiplicities are
  small exact integers, and the per-round increments are applied in the
  same order).
* :func:`max_min_allocation_reference` — the original dict-of-dicts
  progressive filling, retained as the equivalence oracle for the
  property tests and the baseline of the perf bench.

:class:`FairShareState` is the incremental companion used by the
flow-level simulator: it interns each flow's arcs into integer ids once
at arrival instead of re-hashing every path dict on every
arrival/departure event, and re-runs only the vectorized water-fill.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "max_min_allocation",
    "max_min_allocation_reference",
    "FairShareState",
]

#: Numerical slack under which an arc counts as saturated.
_SATURATION_EPS = 1e-12


def max_min_allocation_reference(
    flow_paths: Dict[Hashable, Sequence[Tuple[int, int]]],
    capacities: Dict[Tuple[int, int], float],
) -> Dict[Hashable, float]:
    """Reference progressive-filling implementation (pure Python).

    Semantics are documented on :func:`max_min_allocation`, which must
    produce identical rates; this version is kept as the equivalence
    oracle and perf baseline.
    """
    rates: Dict[Hashable, float] = {}
    # Count per-arc usage multiplicity per flow.
    arc_flows: Dict[Tuple[int, int], Dict[Hashable, int]] = {}
    active: Dict[Hashable, bool] = {}
    for fid, path in flow_paths.items():
        if not path:
            rates[fid] = float("inf")
            continue
        rates[fid] = 0.0
        active[fid] = True
        for arc in path:
            if arc not in capacities:
                raise KeyError(f"flow {fid!r} uses unknown arc {arc}")
            arc_flows.setdefault(arc, {})
            arc_flows[arc][fid] = arc_flows[arc].get(fid, 0) + 1

    used: Dict[Tuple[int, int], float] = {a: 0.0 for a in arc_flows}

    while active:
        # Tightest link: smallest (headroom / active multiplicity).
        best_inc = None
        for arc, members in arc_flows.items():
            mult = sum(m for f, m in members.items() if f in active)
            if mult == 0:
                continue
            headroom = capacities[arc] - used[arc]
            inc = headroom / mult
            if best_inc is None or inc < best_inc:
                best_inc = inc
        if best_inc is None:
            break
        best_inc = max(best_inc, 0.0)

        # Raise every active flow by the increment.
        for fid in active:
            rates[fid] += best_inc
        for arc, members in arc_flows.items():
            mult = sum(m for f, m in members.items() if f in active)
            used[arc] += best_inc * mult

        # Freeze flows on (numerically) saturated arcs.
        newly_frozen = set()
        for arc, members in arc_flows.items():
            if used[arc] >= capacities[arc] - _SATURATION_EPS:
                for f in members:
                    if f in active:
                        newly_frozen.add(f)
        if not newly_frozen:
            break  # all remaining arcs have infinite headroom (defensive)
        for f in newly_frozen:
            del active[f]

    return rates


def _waterfill(
    incidence: sp.csr_matrix, caps: np.ndarray, num_flows: int
) -> Tuple[np.ndarray, int]:
    """Vectorized progressive filling over an arc×flow incidence matrix.

    ``incidence[a, f]`` is flow f's traversal multiplicity of arc a.
    Returns the max-min rate per flow column and the number of filling
    rounds executed (one saturation level per round).
    """
    rates = np.zeros(num_flows)
    rounds = 0
    if num_flows == 0 or incidence.shape[0] == 0:
        return rates, rounds
    active = np.ones(num_flows)
    used = np.zeros(incidence.shape[0])
    transpose = incidence.T.tocsr()

    while active.any():
        mult = incidence @ active  # exact: small integer multiplicities
        contended = mult > 0
        if not contended.any():
            break
        rounds += 1
        inc = (caps[contended] - used[contended]) / mult[contended]
        best_inc = max(float(inc.min()), 0.0)

        rates[active > 0] += best_inc
        used += best_inc * mult

        saturated = used >= caps - _SATURATION_EPS
        newly = (transpose @ saturated.astype(float)) > 0
        newly &= active > 0
        if not newly.any():
            break  # all remaining arcs have infinite headroom (defensive)
        active[newly] = 0.0

    return rates, rounds


def max_min_allocation(
    flow_paths: Dict[Hashable, Sequence[Tuple[int, int]]],
    capacities: Dict[Tuple[int, int], float],
) -> Dict[Hashable, float]:
    """Max-min fair rates for flows pinned to arc paths (vectorized).

    Parameters
    ----------
    flow_paths:
        Mapping of flow id to its sequence of directed arcs ``(u, v)``.
        A flow traversing an arc twice (possible under VLB detours)
        consumes capacity twice there.
    capacities:
        Capacity of every directed arc the flows may use.

    Returns
    -------
    Mapping of flow id to its max-min fair rate (same units as capacity).
    Flows with empty paths (same-switch endpoints) get infinite rate.
    """
    rates: Dict[Hashable, float] = {}
    arc_ids: Dict[Tuple[int, int], int] = {}
    caps_list: List[float] = []
    rows: List[int] = []
    cols: List[int] = []
    vals: List[int] = []
    flow_order: List[Hashable] = []
    for fid, path in flow_paths.items():
        if not path:
            rates[fid] = float("inf")
            continue
        col = len(flow_order)
        flow_order.append(fid)
        for arc in path:
            aid = arc_ids.get(arc)
            if aid is None:
                if arc not in capacities:
                    raise KeyError(f"flow {fid!r} uses unknown arc {arc}")
                aid = arc_ids[arc] = len(caps_list)
                caps_list.append(capacities[arc])
            rows.append(aid)
            cols.append(col)
            vals.append(1)

    num_flows = len(flow_order)
    incidence = sp.csr_matrix(
        (np.asarray(vals, dtype=float), (rows, cols)),
        shape=(len(caps_list), num_flows),
    )
    flow_rates, _ = _waterfill(incidence, np.asarray(caps_list), num_flows)
    for col, fid in enumerate(flow_order):
        rates[fid] = float(flow_rates[col])
    return rates


class FairShareState:
    """Incremental max-min fair allocation over a changing flow set.

    The flow-level simulator recomputes rates at every flow arrival and
    departure; rebuilding the ``{flow: path}`` dict and re-hashing every
    arc tuple per event dominates at high concurrency.  This state
    interns each flow's arcs into integer ids **once** (at
    :meth:`add_flow`) and keeps the per-flow traversal columns; each
    :meth:`rates` call assembles the incidence by array concatenation
    and runs the vectorized water-fill.

    Rates are identical to calling :func:`max_min_allocation` on the
    current ``{flow: path}`` snapshot.

    The state also keeps two cheap work accumulators the flow simulator
    flushes onto the observability sink: :attr:`recomputes` (number of
    :meth:`rates` calls) and :attr:`waterfill_rounds` (total filling
    rounds across them).
    """

    def __init__(self, capacities: Mapping[Tuple[int, int], float]) -> None:
        self._capacities = capacities
        self._arc_ids: Dict[Tuple[int, int], int] = {}
        self._caps: List[float] = []
        # fid -> (arc-id array, multiplicity array); empty-path flows
        # are tracked separately with infinite rate.
        self._flows: Dict[Hashable, Tuple[np.ndarray, np.ndarray]] = {}
        self._infinite: Dict[Hashable, None] = {}
        self.recomputes = 0
        self.waterfill_rounds = 0

    def __len__(self) -> int:
        return len(self._flows) + len(self._infinite)

    def add_flow(
        self, fid: Hashable, path: Sequence[Tuple[int, int]]
    ) -> None:
        """Register a flow's path (interning its arcs to integer ids)."""
        if fid in self._flows or fid in self._infinite:
            raise ValueError(f"flow {fid!r} already active")
        if not path:
            self._infinite[fid] = None
            return
        counts: Dict[int, int] = {}
        for arc in path:
            aid = self._arc_ids.get(arc)
            if aid is None:
                if arc not in self._capacities:
                    raise KeyError(f"flow {fid!r} uses unknown arc {arc}")
                aid = self._arc_ids[arc] = len(self._caps)
                self._caps.append(self._capacities[arc])
            counts[aid] = counts.get(aid, 0) + 1
        self._flows[fid] = (
            np.fromiter(counts.keys(), dtype=np.intp, count=len(counts)),
            np.fromiter(counts.values(), dtype=float, count=len(counts)),
        )

    def remove_flow(self, fid: Hashable) -> None:
        """Drop a departed flow."""
        if fid in self._flows:
            del self._flows[fid]
        elif fid in self._infinite:
            del self._infinite[fid]
        else:
            raise KeyError(f"flow {fid!r} is not active")

    def rates(self) -> Dict[Hashable, float]:
        """Max-min fair rates of the currently active flows."""
        self.recomputes += 1
        rates: Dict[Hashable, float] = {
            fid: float("inf") for fid in self._infinite
        }
        num_flows = len(self._flows)
        if num_flows == 0:
            return rates
        arcs_per_flow = [a for a, _ in self._flows.values()]
        rows = np.concatenate(arcs_per_flow)
        vals = np.concatenate([v for _, v in self._flows.values()])
        cols = np.repeat(
            np.arange(num_flows, dtype=np.intp),
            [a.size for a in arcs_per_flow],
        )
        num_arcs = len(self._caps)
        incidence = sp.csr_matrix(
            (vals, (rows, cols)), shape=(num_arcs, num_flows)
        )
        flow_rates, rounds = _waterfill(
            incidence, np.asarray(self._caps), num_flows
        )
        self.waterfill_rounds += rounds
        for col, fid in enumerate(self._flows):
            rates[fid] = float(flow_rates[col])
        return rates
