"""Simulated servers (hosts).

A host owns one uplink to its ToR switch, a DCTCP sender per outgoing
flow, and a DCTCP receiver per incoming flow.  Flow completion times are
reported to the simulation through the receiver's completion callback.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .engine import Engine
from .link import Link
from .packet import Packet
from .routing import RoutingPolicy
from .tcp import DctcpReceiver, DctcpSender, TransportParams

__all__ = ["Host"]


class Host:
    """One server."""

    __slots__ = ("server_id", "tor", "engine", "uplink", "_senders", "_receivers")

    def __init__(self, server_id: int, tor: int, engine: Engine) -> None:
        self.server_id = server_id
        self.tor = tor
        self.engine = engine
        self.uplink: Optional[Link] = None  # set by the network builder
        self._senders: Dict[int, DctcpSender] = {}
        self._receivers: Dict[int, DctcpReceiver] = {}

    def transmit(self, packet: Packet) -> None:
        """Send a packet up to the ToR."""
        assert self.uplink is not None, "host not wired to its ToR"
        self.uplink.send(packet)

    def start_flow(
        self,
        params: TransportParams,
        routing: RoutingPolicy,
        flow_id: int,
        dst_host: "Host",
        size_bytes: int,
        on_complete: Callable[[float], None],
    ) -> DctcpSender:
        """Open a flow from this host to ``dst_host`` and start sending."""
        receiver = DctcpReceiver(
            engine=self.engine,
            transmit=dst_host.transmit,
            flow_id=flow_id,
            src_server=self.server_id,
            dst_server=dst_host.server_id,
            src_tor=self.tor,
            total_bytes=size_bytes,
            on_complete=on_complete,
        )
        dst_host._receivers[flow_id] = receiver
        sender = DctcpSender(
            engine=self.engine,
            params=params,
            routing=routing,
            transmit=self.transmit,
            flow_id=flow_id,
            src_server=self.server_id,
            dst_server=dst_host.server_id,
            src_tor=self.tor,
            dst_tor=dst_host.tor,
            total_bytes=size_bytes,
        )
        self._senders[flow_id] = sender
        sender.start()
        return sender

    def receive(self, packet: Packet) -> None:
        """Dispatch an arriving packet to its flow endpoint."""
        if packet.is_ack:
            sender = self._senders.get(packet.flow_id)
            if sender is not None:
                sender.on_ack(packet.ack_seq, packet.ecn_echo)
        else:
            receiver = self._receivers.get(packet.flow_id)
            if receiver is not None:
                receiver.on_data(packet)

    def drop_flow(self, flow_id: int) -> None:
        """Release completed flow state (sender side)."""
        self._senders.pop(flow_id, None)

    def drop_receiver(self, flow_id: int) -> None:
        """Release completed flow state (receiver side)."""
        self._receivers.pop(flow_id, None)
