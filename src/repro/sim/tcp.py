"""DCTCP transport (Alizadeh et al., SIGCOMM 2010), the paper's congestion
control (§6.4), over a window-based reliable byte stream.

Sender: slow start / congestion avoidance, fast retransmit on three
duplicate ACKs, go-back-N on RTO, and DCTCP's ECN reaction — the marked
fraction estimator ``alpha`` (gain 1/16) and the proportional window
decrease ``cwnd *= 1 - alpha/2`` at most once per window.

Receiver: cumulative ACKs with per-packet ECN echo; flow completion is
recorded when the last byte arrives in order.

Flowlet bookkeeping also lives in the sender: a gap of more than
``flowlet_gap`` (paper: 50 us) since the previous transmission starts a
new flowlet, at which point the routing policy re-decides the VLB
intermediate (paper §6.3).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from .engine import Engine, EventHandle
from .packet import MSS, Packet
from .routing import RoutingPolicy

__all__ = ["TransportParams", "DctcpSender", "DctcpReceiver"]


class TransportParams:
    """Tunable transport constants.

    Defaults follow the paper (flowlet gap 50 us) and common DCTCP
    practice (g = 1/16, initial window 10 MSS).
    """

    __slots__ = (
        "init_cwnd_bytes",
        "min_rto",
        "initial_rto",
        "flowlet_gap",
        "dctcp_g",
        "use_ecn",
    )

    def __init__(
        self,
        init_cwnd_packets: int = 10,
        min_rto: float = 1e-3,
        initial_rto: float = 10e-3,
        flowlet_gap: float = 50e-6,
        dctcp_g: float = 1.0 / 16.0,
        use_ecn: bool = True,
    ) -> None:
        self.init_cwnd_bytes = init_cwnd_packets * MSS
        self.min_rto = min_rto
        self.initial_rto = initial_rto
        self.flowlet_gap = flowlet_gap
        self.dctcp_g = dctcp_g
        self.use_ecn = use_ecn


class DctcpSender:
    """Sending half of one flow."""

    __slots__ = (
        "engine",
        "params",
        "routing",
        "transmit",
        "flow_id",
        "src_server",
        "dst_server",
        "src_tor",
        "dst_tor",
        "total_bytes",
        "snd_una",
        "snd_nxt",
        "cwnd",
        "ssthresh",
        "alpha",
        "acked_window",
        "marked_window",
        "window_end",
        "cut_end",
        "dupacks",
        "recover",
        "srtt",
        "rttvar",
        "rto",
        "_rto_handle",
        "_rtt_probe",
        "last_send_time",
        "flowlet_id",
        "current_via",
        "current_route",
        "completed",
        "retransmissions",
        "on_complete",
    )

    def __init__(
        self,
        engine: Engine,
        params: TransportParams,
        routing: RoutingPolicy,
        transmit: Callable[[Packet], None],
        flow_id: int,
        src_server: int,
        dst_server: int,
        src_tor: int,
        dst_tor: int,
        total_bytes: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        if total_bytes <= 0:
            raise ValueError("flow must carry at least one byte")
        self.engine = engine
        self.params = params
        self.routing = routing
        self.transmit = transmit
        self.flow_id = flow_id
        self.src_server = src_server
        self.dst_server = dst_server
        self.src_tor = src_tor
        self.dst_tor = dst_tor
        self.total_bytes = total_bytes

        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = float(params.init_cwnd_bytes)
        self.ssthresh = math.inf
        self.alpha = 1.0
        self.acked_window = 0
        self.marked_window = 0
        self.window_end = 0
        self.cut_end = 0
        self.dupacks = 0
        self.recover = -1
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = params.initial_rto
        self._rto_handle: Optional[EventHandle] = None
        self._rtt_probe: Optional[tuple] = None  # (expected_ack, send_time)
        self.last_send_time = -math.inf
        self.flowlet_id = 0
        self.current_via: Optional[int] = None
        self.current_route: Optional[list] = None
        self.completed = False
        self.retransmissions = 0
        self.on_complete = on_complete

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting the flow."""
        self._send_available()

    def extend(self, extra_bytes: int) -> None:
        """Grow the flow by ``extra_bytes`` and resume sending.

        Used by the MPTCP scheduler to hand a finished subflow its next
        chunk: congestion state (cwnd, alpha, RTT estimates) carries over,
        as it would on a real persistent subflow.
        """
        if extra_bytes <= 0:
            raise ValueError("extra_bytes must be positive")
        self.total_bytes += extra_bytes
        self.completed = False
        self._send_available()

    def _in_flight(self) -> int:
        return self.snd_nxt - self.snd_una

    def _send_available(self) -> None:
        while self.snd_nxt < self.total_bytes and self._in_flight() < self.cwnd:
            length = min(MSS, self.total_bytes - self.snd_nxt)
            self._send_segment(self.snd_nxt, length)
            self.snd_nxt += length
        self._arm_rto()

    def _send_segment(self, seq: int, length: int, retransmission: bool = False) -> None:
        now = self.engine.now
        if now - self.last_send_time >= self.params.flowlet_gap:
            self.flowlet_id += 1
            self.current_via = self.routing.choose_via(
                self.flow_id, max(self.snd_nxt, seq), self.src_tor, self.dst_tor
            )
            choose_route = getattr(self.routing, "choose_route", None)
            if choose_route is not None:
                self.current_route = choose_route(
                    self.flow_id, self.flowlet_id, self.src_tor, self.dst_tor
                )
        self.last_send_time = now
        pkt = Packet(
            flow_id=self.flow_id,
            src_server=self.src_server,
            dst_server=self.dst_server,
            dst_tor=self.dst_tor,
            flowlet=self.flowlet_id,
            seq=seq,
            payload=length,
            via_tor=self.current_via,
        )
        if self.current_route is not None:
            pkt.src_route = list(self.current_route)
        pkt.sent_time = now
        if retransmission:
            self.retransmissions += 1
        elif self._rtt_probe is None:
            self._rtt_probe = (seq + length, now)
        self.transmit(pkt)

    # ------------------------------------------------------------------
    def on_ack(self, ack_seq: int, ecn_echo: bool) -> None:
        """Process a cumulative ACK (with DCTCP ECN echo)."""
        if self.completed:
            return
        if ecn_echo:
            self.routing.note_ecn(self.flow_id)
        if ack_seq > self.snd_una:
            newly = ack_seq - self.snd_una
            self.snd_una = ack_seq
            self.dupacks = 0
            self._update_rtt(ack_seq)
            self._dctcp_account(newly, ecn_echo)
            if ecn_echo and self.params.use_ecn and self.snd_una > self.cut_end:
                self.cwnd = max(MSS, self.cwnd * (1.0 - self.alpha / 2.0))
                self.ssthresh = self.cwnd
                self.cut_end = self.snd_nxt
            else:
                self._grow_window(newly)
            if self.snd_una >= self.total_bytes:
                self.completed = True
                self._cancel_rto()
                self.routing.flow_done(self.flow_id)
                if self.on_complete is not None:
                    self.on_complete()
                return
            self._arm_rto(reset=True)
            self._send_available()
        else:
            self.dupacks += 1
            if self.dupacks == 3 and self.snd_una > self.recover:
                # Fast retransmit (simplified NewReno: no inflation).
                self.ssthresh = max(self._in_flight() / 2.0, 2 * MSS)
                self.cwnd = self.ssthresh
                self.recover = self.snd_nxt
                length = min(MSS, self.total_bytes - self.snd_una)
                self._send_segment(self.snd_una, length, retransmission=True)
                self._arm_rto(reset=True)

    def _dctcp_account(self, newly_acked: int, ecn_echo: bool) -> None:
        self.acked_window += newly_acked
        if ecn_echo:
            self.marked_window += newly_acked
        if self.snd_una >= self.window_end:
            if self.acked_window > 0:
                frac = self.marked_window / self.acked_window
                g = self.params.dctcp_g
                self.alpha = (1.0 - g) * self.alpha + g * frac
            self.acked_window = 0
            self.marked_window = 0
            self.window_end = self.snd_nxt

    def _grow_window(self, newly_acked: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
        else:
            self.cwnd += MSS * newly_acked / self.cwnd  # congestion avoidance

    def _update_rtt(self, ack_seq: int) -> None:
        if self._rtt_probe is None:
            return
        expected, sent_at = self._rtt_probe
        if ack_seq < expected:
            return
        sample = self.engine.now - sent_at
        self._rtt_probe = None
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = max(self.params.min_rto, self.srtt + 4.0 * self.rttvar)

    # ------------------------------------------------------------------
    def _arm_rto(self, reset: bool = False) -> None:
        if self.completed or self.snd_una >= self.snd_nxt:
            return
        if self._rto_handle is not None:
            if not reset:
                return
            self._rto_handle.cancel()
        self._rto_handle = self.engine.schedule_cancellable(self.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    def _on_rto(self) -> None:
        self._rto_handle = None
        if self.completed or self.snd_una >= self.total_bytes:
            return
        # Go-back-N: rewind and restart from the last cumulative ACK.
        self.ssthresh = max(self._in_flight() / 2.0, 2 * MSS)
        self.cwnd = float(MSS)
        self.snd_nxt = self.snd_una
        self.rto = min(self.rto * 2.0, 1.0)
        self.dupacks = 0
        self.recover = -1
        self._rtt_probe = None
        self.retransmissions += 1
        self._send_available()


class DctcpReceiver:
    """Receiving half of one flow: cumulative ACKs + ECN echo."""

    __slots__ = (
        "engine",
        "transmit",
        "flow_id",
        "src_server",
        "dst_server",
        "src_tor",
        "total_bytes",
        "rcv_nxt",
        "_ooo",
        "completed",
        "completion_time",
        "on_complete",
    )

    def __init__(
        self,
        engine: Engine,
        transmit: Callable[[Packet], None],
        flow_id: int,
        src_server: int,
        dst_server: int,
        src_tor: int,
        total_bytes: int,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.engine = engine
        self.transmit = transmit
        self.flow_id = flow_id
        self.src_server = src_server
        self.dst_server = dst_server
        self.src_tor = src_tor  # ToR of the *sender*; ACKs go back there
        self.total_bytes = total_bytes
        self.rcv_nxt = 0
        self._ooo: Dict[int, int] = {}
        self.completed = False
        self.completion_time: Optional[float] = None
        self.on_complete = on_complete

    def on_data(self, pkt: Packet) -> None:
        """Handle an in-network data packet; emit a cumulative ACK."""
        if pkt.seq == self.rcv_nxt:
            self.rcv_nxt += pkt.payload
            while self.rcv_nxt in self._ooo:
                self.rcv_nxt += self._ooo.pop(self.rcv_nxt)
        elif pkt.seq > self.rcv_nxt:
            existing = self._ooo.get(pkt.seq, 0)
            self._ooo[pkt.seq] = max(existing, pkt.payload)
        ack = Packet(
            flow_id=self.flow_id,
            src_server=self.dst_server,
            dst_server=self.src_server,
            dst_tor=self.src_tor,
            flowlet=pkt.flowlet,
            is_ack=True,
            ack_seq=self.rcv_nxt,
            ecn_echo=pkt.ecn_marked,
        )
        self.transmit(ack)
        if not self.completed and self.rcv_nxt >= self.total_bytes:
            self.completed = True
            self.completion_time = self.engine.now
            if self.on_complete is not None:
                self.on_complete(self.engine.now)
