"""Packet-level discrete-event simulator: DCTCP + ECMP/VLB/HYB routing."""

from .engine import Engine, EventHandle
from .host import Host
from .link import DEFAULT_ECN_THRESHOLD_BYTES, DEFAULT_QUEUE_BYTES, Link
from .network import NetworkParams, SimulatedNetwork
from .packet import ACK_BYTES, HEADER_BYTES, MSS, Packet
from .routing import (
    DEFAULT_HYB_THRESHOLD_BYTES,
    AdaptiveEcmpRouting,
    CongestionHybRouting,
    EcmpRouting,
    HybRouting,
    KspRouting,
    RoutingPolicy,
    VlbRouting,
)
from .simulation import (
    ROUTING_CHOICES,
    PacketSimulation,
    make_routing,
    run_packet_experiment,
)
from .stats import SHORT_FLOW_BYTES, FlowRecord, FlowStats, percentile
from .mptcp import MptcpFlow
from .switch import Switch
from .tcp import DctcpReceiver, DctcpSender, TransportParams
from ..obs.netreport import LinkStats, NetworkReport, network_report

__all__ = [
    "Engine",
    "EventHandle",
    "Packet",
    "MSS",
    "HEADER_BYTES",
    "ACK_BYTES",
    "Link",
    "DEFAULT_QUEUE_BYTES",
    "DEFAULT_ECN_THRESHOLD_BYTES",
    "Switch",
    "Host",
    "RoutingPolicy",
    "EcmpRouting",
    "VlbRouting",
    "HybRouting",
    "CongestionHybRouting",
    "AdaptiveEcmpRouting",
    "KspRouting",
    "DEFAULT_HYB_THRESHOLD_BYTES",
    "TransportParams",
    "DctcpSender",
    "DctcpReceiver",
    "NetworkParams",
    "SimulatedNetwork",
    "PacketSimulation",
    "run_packet_experiment",
    "make_routing",
    "ROUTING_CHOICES",
    "MptcpFlow",
    "LinkStats",
    "NetworkReport",
    "network_report",
    "FlowRecord",
    "FlowStats",
    "SHORT_FLOW_BYTES",
    "percentile",
]
