"""Discrete-event simulation engine.

A minimal, fast event loop: events are ``(time, sequence, callback, arg,
handle)`` tuples in a binary heap.  The sequence number breaks ties FIFO
and makes runs fully deterministic.  The hot path (:meth:`Engine.schedule`)
allocates no closures and no handles: callbacks take one optional
pre-bound argument.  Cancellable events (used for retransmission timers)
go through :meth:`Engine.schedule_cancellable`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["Engine", "EventHandle"]

_NO_ARG = object()


class EventHandle:
    """Handle to a cancellable event; ``cancel()`` suppresses its callback."""

    __slots__ = ("cancelled", "_engine", "_fired")

    def __init__(self, engine: Optional["Engine"] = None) -> None:
        self.cancelled = False
        self._engine = engine
        self._fired = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        # Cancelling after the event fired (or without an engine) must not
        # perturb the engine's dead-entry accounting.
        if self._engine is not None and not self._fired:
            self._engine._note_cancelled()


class Engine:
    """Event-driven simulation clock.  Time is in seconds (float)."""

    __slots__ = ("now", "_heap", "_seq", "_processed", "_cancelled", "_compactions")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List = []
        self._seq = 0
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0

    def schedule(
        self, delay: float, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback`` (optionally with ``arg``) ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(
            self._heap, (self.now + delay, self._seq, callback, arg, None)
        )

    def schedule_cancellable(
        self, delay: float, callback: Callable, arg: Any = _NO_ARG
    ) -> EventHandle:
        """Like :meth:`schedule` but returns a cancellation handle."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        handle = EventHandle(self)
        self._seq += 1
        heapq.heappush(
            self._heap, (self.now + delay, self._seq, callback, arg, handle)
        )
        return handle

    def _note_cancelled(self) -> None:
        """Count a newly cancelled pending event; compact if dead-heavy.

        Retransmission timers are almost always cancelled (acks normally
        beat timeouts), so dead entries would otherwise accumulate without
        bound.  When more than half the heap is dead we rebuild it from
        the live entries — amortized O(1) per cancellation.
        """
        self._cancelled += 1
        if self._cancelled > len(self._heap) // 2:
            # In place: run() may hold a local alias to the heap list.
            self._heap[:] = [
                e for e in self._heap if e[4] is None or not e[4].cancelled
            ]
            heapq.heapify(self._heap)
            self._cancelled = 0
            self._compactions += 1

    def schedule_at(
        self, when: float, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule in the past (when={when}, now={self.now})"
            )
        self.schedule(when - self.now, callback, arg)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events in time order.

        Stops when the heap is empty, the next event is beyond ``until``,
        or ``max_events`` have been processed.  Returns the number of
        events processed by this call.

        The loop pops unconditionally and pushes back the one event that
        overruns the horizon — one sifting heap operation per event on
        the common path instead of a peek + pop — and dispatches runs of
        same-timestamp events without re-checking the horizon.
        Semantics are identical to :meth:`run_reference` (the retained
        pre-optimization loop): same callback order, same clock values,
        same cancellation accounting.
        """
        processed = 0
        heap = self._heap
        no_arg = _NO_ARG
        pop = heapq.heappop
        push = heapq.heappush
        done = False
        while heap and not done:
            entry = pop(heap)
            t, _, callback, arg, handle = entry
            if until is not None and t > until:
                push(heap, entry)
                break
            while True:
                # Three-way branch keeps the overwhelmingly common
                # plain-event case at a single handle check.
                if handle is None:
                    self.now = t
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        done = True
                        break
                elif handle.cancelled:
                    self._cancelled -= 1
                else:
                    handle._fired = True
                    self.now = t
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        done = True
                        break
                # Same-timestamp batch: callbacks at t may have scheduled
                # more work at t; the seq tie-break keeps dispatch FIFO,
                # and an equal timestamp can never overrun the horizon.
                if heap and heap[0][0] == t:
                    t, _, callback, arg, handle = pop(heap)
                else:
                    break
        if until is not None and (not heap or heap[0][0] > until):
            self.now = max(self.now, until)
        self._processed += processed
        return processed

    def run_reference(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """The pre-optimization event loop, kept as a semantics oracle.

        Byte-identical behaviour to :meth:`run` (determinism tests pin
        this); peeks before every pop and re-checks the horizon per
        event, which is what the optimized loop avoids.
        """
        processed = 0
        heap = self._heap
        no_arg = _NO_ARG
        while heap:
            t, _, callback, arg, handle = heap[0]
            if until is not None and t > until:
                break
            heapq.heappop(heap)
            if handle is not None:
                if handle.cancelled:
                    self._cancelled -= 1
                    continue
                handle._fired = True
            self.now = t
            if arg is no_arg:
                callback()
            else:
                callback(arg)
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and (not heap or heap[0][0] > until):
            self.now = max(self.now, until)
        self._processed += processed
        return processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return len(self._heap) - self._cancelled

    @property
    def events_processed(self) -> int:
        """Total events processed over the engine's lifetime."""
        return self._processed

    @property
    def heap_compactions(self) -> int:
        """Number of dead-entry heap rebuilds over the engine's lifetime."""
        return self._compactions
