"""Packet-level experiment runner (paper §6.4 methodology).

Flows are injected according to a workload; statistics are computed over
the flows *started* within a measurement window, and the simulation runs
until every measured flow completes (or a safety cap is reached, in which
case unfinished flows are reported).
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, Optional, Sequence, Union

from .. import obs, registry
from ..topologies.base import Topology
from ..traffic.workload import FlowSpec, Workload
from .engine import Engine
from .network import NetworkParams, SimulatedNetwork
from .routing import RoutingPolicy
from .stats import FlowRecord, FlowStats
from .tcp import TransportParams

__all__ = [
    "PacketSimulation",
    "run_packet_experiment",
    "make_routing",
    "ROUTING_CHOICES",
]

#: Every routing name the registry knows (CLI + harness specs).  The
#: factories themselves live in :mod:`repro.sim.routing` and register
#: with :data:`repro.registry.ROUTINGS`.
ROUTING_CHOICES = registry.ROUTINGS.available()


def make_routing(
    name: str,
    topology: Topology,
    seed: int = 0,
    hyb_threshold_bytes: int = 100_000,
) -> RoutingPolicy:
    """Deprecated: construct a routing policy by name.

    Use :func:`repro.registry.routing` instead — it accepts the same
    names plus parameterized specs (``"ksp:k=8"``).  This shim keeps the
    PR 1 signature alive and delegates verbatim.
    """
    warnings.warn(
        "make_routing is deprecated; use repro.registry.routing "
        "(e.g. registry.routing('hyb', topology, seed=0))",
        DeprecationWarning,
        stacklevel=2,
    )
    defaults = {"seed": seed}
    if name == "hyb":
        defaults["hyb_threshold_bytes"] = hyb_threshold_bytes
    return registry.routing(name, topology, **defaults)


class PacketSimulation:
    """One packet-level experiment on one topology."""

    def __init__(
        self,
        topology: Topology,
        routing: Union[str, RoutingPolicy] = "ecmp",
        network_params: Optional[NetworkParams] = None,
        transport_params: Optional[TransportParams] = None,
        transport: str = "dctcp",
        mptcp_subflows: int = 4,
        seed: int = 0,
    ) -> None:
        if transport not in ("dctcp", "mptcp"):
            raise ValueError(f"unknown transport {transport!r}")
        self.engine = Engine()
        if isinstance(routing, str):
            routing = registry.routing(routing, topology, seed=seed)
        self.routing = routing
        self.network = SimulatedNetwork(
            topology, routing, self.engine, params=network_params
        )
        bind = getattr(routing, "bind_network", None)
        if bind is not None:
            bind(self.network)
        self.transport = transport_params or TransportParams()
        self.transport_kind = transport
        self.mptcp_subflows = mptcp_subflows
        self.records: Dict[int, FlowRecord] = {}
        self._pending_measured = 0
        self._measure_start = 0.0
        self._measure_end = math.inf

    def inject(self, flows: Sequence[FlowSpec]) -> None:
        """Schedule every flow's start."""
        for spec in flows:
            if spec.src_server == spec.dst_server:
                raise ValueError(f"flow {spec.flow_id} has identical endpoints")
            record = FlowRecord(
                flow_id=spec.flow_id,
                src_server=spec.src_server,
                dst_server=spec.dst_server,
                size_bytes=spec.size_bytes,
                start_time=spec.start_time,
            )
            self.records[spec.flow_id] = record
            self.engine.schedule_at(
                spec.start_time, self._starter(spec)
            )

    def _starter(self, spec: FlowSpec):
        def start() -> None:
            src = self.network.hosts[spec.src_server]
            dst = self.network.hosts[spec.dst_server]
            record = self.records[spec.flow_id]

            def complete(when: float) -> None:
                record.completion_time = when
                dst.drop_receiver(spec.flow_id)
                if self._measure_start <= record.start_time < self._measure_end:
                    self._pending_measured -= 1

            if self.transport_kind == "mptcp":
                from .mptcp import MptcpFlow

                flow = MptcpFlow(
                    engine=self.engine,
                    params=self.transport,
                    routing=self.routing,
                    flow_id=spec.flow_id,
                    src_host=src,
                    dst_host=dst,
                    size_bytes=spec.size_bytes,
                    num_subflows=self.mptcp_subflows,
                    on_complete=complete,
                )
                flow.start()
            else:
                src.start_flow(
                    params=self.transport,
                    routing=self.routing,
                    flow_id=spec.flow_id,
                    dst_host=dst,
                    size_bytes=spec.size_bytes,
                    on_complete=complete,
                )

        return start

    def run(
        self,
        measure_start: float,
        measure_end: float,
        max_sim_time: Optional[float] = None,
        chunk: float = 0.01,
    ) -> FlowStats:
        """Run until all flows started in [measure_start, measure_end) finish.

        ``max_sim_time`` caps the simulated clock (unfinished flows are
        then reported in the stats); ``chunk`` is the completion-check
        granularity.
        """
        self._measure_start = measure_start
        self._measure_end = measure_end
        measured = [
            r
            for r in self.records.values()
            if measure_start <= r.start_time < measure_end
        ]
        self._pending_measured = len(measured)
        if max_sim_time is None:
            max_sim_time = measure_end * 50 + 10.0
        # Per-run instrumentation only: the span wraps the whole event
        # loop and the counters flush once as deltas, so the per-event
        # hot path stays untouched (obs disabled costs nothing here).
        events_before = self.engine.events_processed
        compactions_before = self.engine.heap_compactions
        with obs.span(
            "sim.run", flows=len(self.records), measured=len(measured)
        ):
            # Process at least through the injection horizon, then drain.
            while self._pending_measured > 0 and self.engine.now < max_sim_time:
                processed = self.engine.run(until=self.engine.now + chunk)
                if processed == 0 and self.engine.pending == 0:
                    break
        obs.add(
            "sim.events_processed", self.engine.events_processed - events_before
        )
        obs.add(
            "sim.heap_compactions",
            self.engine.heap_compactions - compactions_before,
        )
        stats = FlowStats(records=measured)
        return stats


def run_packet_experiment(
    topology: Topology,
    workload: Union[Workload, Sequence[FlowSpec]],
    routing: Union[str, RoutingPolicy] = "ecmp",
    measure_start: float = 0.05,
    measure_end: float = 0.15,
    inject_until: Optional[float] = None,
    network_params: Optional[NetworkParams] = None,
    transport_params: Optional[TransportParams] = None,
    max_sim_time: Optional[float] = None,
    seed: int = 0,
) -> FlowStats:
    """End-to-end convenience wrapper: build, inject, run, aggregate.

    Parameters
    ----------
    workload:
        Either a :class:`Workload` (flows are generated up to
        ``inject_until``, default ``measure_end + (measure_end -
        measure_start)``) or an explicit flow list.
    measure_start, measure_end:
        The window whose flows define the statistics; background flows
        keep arriving beyond it to sustain load while measured flows
        drain (paper §6.4).
    """
    if isinstance(workload, Workload):
        horizon = inject_until
        if horizon is None:
            horizon = measure_end + (measure_end - measure_start)
        flows: Sequence[FlowSpec] = workload.generate(horizon=horizon)
    else:
        flows = workload
    sim = PacketSimulation(
        topology,
        routing=routing,
        network_params=network_params,
        transport_params=transport_params,
        seed=seed,
    )
    sim.inject(flows)
    return sim.run(measure_start, measure_end, max_sim_time=max_sim_time)
