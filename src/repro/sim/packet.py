"""Packet model for the discrete-event simulator.

One class covers data packets and ACKs.  VLB encapsulation is modeled by
the ``via_tor`` field: while set, switches route toward the intermediate
ToR; the intermediate clears it (decapsulation) and the packet continues
to its destination — the encap/decap scheme of paper §6.3.
"""

from __future__ import annotations

__all__ = ["Packet", "HEADER_BYTES", "MSS", "ACK_BYTES"]

#: Protocol overhead per data packet (Ethernet + IP + TCP), bytes.
HEADER_BYTES = 60
#: Maximum segment size (payload bytes per data packet).
MSS = 1460
#: Wire size of a pure ACK.
ACK_BYTES = 64


class Packet:
    """A simulated packet.

    Data packets carry ``payload`` bytes of flow data starting at sequence
    offset ``seq``; ACKs carry ``ack_seq`` (cumulative) and the DCTCP ECN
    echo.  ``wire_bytes`` is what links charge for transmission.
    """

    __slots__ = (
        "flow_id",
        "src_server",
        "dst_server",
        "dst_tor",
        "via_tor",
        "flowlet",
        "src_route",
        "seq",
        "payload",
        "wire_bytes",
        "is_ack",
        "ack_seq",
        "ecn_marked",
        "ecn_echo",
        "sent_time",
    )

    def __init__(
        self,
        flow_id: int,
        src_server: int,
        dst_server: int,
        dst_tor: int,
        flowlet: int = 0,
        seq: int = 0,
        payload: int = 0,
        is_ack: bool = False,
        ack_seq: int = 0,
        ecn_echo: bool = False,
        via_tor: int | None = None,
    ) -> None:
        self.flow_id = flow_id
        self.src_server = src_server
        self.dst_server = dst_server
        self.dst_tor = dst_tor
        self.via_tor = via_tor
        self.flowlet = flowlet
        #: Remaining source-routed hops (switch ids), or None for
        #: table-driven forwarding.  Used by KspRouting.
        self.src_route = None
        self.seq = seq
        self.payload = payload
        self.wire_bytes = ACK_BYTES if is_ack else payload + HEADER_BYTES
        self.is_ack = is_ack
        self.ack_seq = ack_seq
        self.ecn_marked = False
        self.ecn_echo = ecn_echo
        self.sent_time = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return (
            f"Packet({kind} flow={self.flow_id} seq={self.seq} "
            f"payload={self.payload} {self.src_server}->{self.dst_server}"
            f"{f' via {self.via_tor}' if self.via_tor is not None else ''})"
        )
