"""Output-queued switches.

A switch owns one outgoing :class:`~repro.sim.link.Link` per neighbor
(switch or locally attached host).  On packet arrival it either delivers
to a local host port (when the packet has reached its destination ToR and
the host is attached here) or asks the routing policy for the ECMP next
hop and forwards.
"""

from __future__ import annotations

from typing import Dict

from .link import Link
from .packet import Packet
from .routing import RoutingPolicy

__all__ = ["Switch"]


class Switch:
    """One switch in the simulated network."""

    __slots__ = ("switch_id", "routing", "switch_ports", "host_ports", "forwarded")

    def __init__(self, switch_id: int, routing: RoutingPolicy) -> None:
        self.switch_id = switch_id
        self.routing = routing
        self.switch_ports: Dict[int, Link] = {}  # neighbor switch id -> link
        self.host_ports: Dict[int, Link] = {}  # local server id -> link
        self.forwarded = 0

    def attach_switch_port(self, neighbor: int, link: Link) -> None:
        """Register the outgoing link toward a neighboring switch."""
        self.switch_ports[neighbor] = link

    def attach_host_port(self, server_id: int, link: Link) -> None:
        """Register the outgoing link toward a locally attached server."""
        self.host_ports[server_id] = link

    def receive(self, packet: Packet) -> None:
        """Forward a packet one hop (or deliver it to a local host)."""
        self.forwarded += 1
        # Source-routed packets (KSP routing) carry their remaining hops.
        if packet.src_route:
            nxt = packet.src_route.pop(0)
            self.switch_ports[nxt].send(packet)
            return
        # Deliver locally once the packet is at its destination ToR and is
        # not still detouring via a VLB intermediate.
        if (
            packet.dst_tor == self.switch_id
            and (packet.via_tor is None or packet.via_tor == self.switch_id)
        ):
            packet.via_tor = None
            port = self.host_ports.get(packet.dst_server)
            if port is None:
                raise RuntimeError(
                    f"switch {self.switch_id} has no port for server "
                    f"{packet.dst_server}"
                )
            port.send(packet)
            return
        nxt = self.routing.next_hop(self.switch_id, packet)
        self.switch_ports[nxt].send(packet)
