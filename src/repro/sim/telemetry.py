"""Network telemetry: link-level reports from a finished simulation.

Aggregates the per-link counters the :class:`~repro.sim.link.Link`
objects accumulate — utilization, peak queue, ECN marks, drops — into a
network-wide report.  Useful for diagnosing *where* a routing scheme
bottlenecks (e.g. confirming that ECMP's two-adjacent-rack pathology is a
single saturated direct link, §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .network import SimulatedNetwork

__all__ = ["LinkStats", "NetworkReport", "network_report"]


@dataclass
class LinkStats:
    """Counters for one directed link."""

    description: str
    utilization: float
    transmitted_bytes: int
    dropped_packets: int
    marked_packets: int
    max_queue_bytes: int


@dataclass
class NetworkReport:
    """Network-wide link telemetry."""

    elapsed: float
    links: List[LinkStats]

    @property
    def total_drops(self) -> int:
        return sum(l.dropped_packets for l in self.links)

    @property
    def total_marks(self) -> int:
        return sum(l.marked_packets for l in self.links)

    @property
    def max_utilization(self) -> float:
        return max((l.utilization for l in self.links), default=0.0)

    @property
    def mean_utilization(self) -> float:
        if not self.links:
            return 0.0
        return sum(l.utilization for l in self.links) / len(self.links)

    def hottest(self, count: int = 10) -> List[LinkStats]:
        """The ``count`` most utilized links."""
        return sorted(self.links, key=lambda l: -l.utilization)[:count]


def network_report(
    network: SimulatedNetwork, elapsed: Optional[float] = None
) -> NetworkReport:
    """Collect link telemetry from a simulated network.

    ``elapsed`` defaults to the engine's current clock; utilization is
    transmitted bits over capacity x elapsed.
    """
    if elapsed is None:
        elapsed = network.engine.now
    stats: List[LinkStats] = []

    def describe(owner: str, link) -> LinkStats:
        return LinkStats(
            description=owner,
            utilization=link.utilization(elapsed),
            transmitted_bytes=link.transmitted_bytes,
            dropped_packets=link.dropped_packets,
            marked_packets=link.marked_packets,
            max_queue_bytes=link.max_queue_bytes,
        )

    for sid, switch in network.switches.items():
        for neighbor, link in switch.switch_ports.items():
            stats.append(describe(f"switch {sid} -> switch {neighbor}", link))
        for server, link in switch.host_ports.items():
            stats.append(describe(f"switch {sid} -> server {server}", link))
    for hid, host in network.hosts.items():
        if host.uplink is not None:
            stats.append(describe(f"server {hid} -> switch {host.tor}", host.uplink))
    return NetworkReport(elapsed=elapsed, links=stats)
