"""Deprecated location of the link-telemetry report.

The report moved to :mod:`repro.obs.netreport`, where it also emits
onto the observability sink (``sim.*`` counters plus a trace event)
when a run is active.  :class:`LinkStats` and :class:`NetworkReport`
are re-exported unchanged; :func:`network_report` warns and delegates.
"""

from __future__ import annotations

import warnings
from typing import Any, Optional

from ..obs.netreport import LinkStats, NetworkReport
from ..obs.netreport import network_report as _network_report

__all__ = ["LinkStats", "NetworkReport", "network_report"]


def network_report(network: Any, elapsed: Optional[float] = None) -> NetworkReport:
    """Deprecated: use :func:`repro.obs.network_report` (or
    :func:`repro.obs.emit_network_report` to also feed the obs sink)."""
    warnings.warn(
        "repro.sim.telemetry.network_report is deprecated; use "
        "repro.obs.network_report or repro.obs.emit_network_report",
        DeprecationWarning,
        stacklevel=2,
    )
    return _network_report(network, elapsed)
