"""Simulated unidirectional links with drop-tail queues and ECN marking.

Each physical cable becomes two :class:`Link` objects (one per direction).
A link serializes packets at ``rate_bps``, holds a FIFO drop-tail queue of
``queue_bytes`` capacity, and implements DCTCP's marking rule: a packet is
marked if the queue occupancy at its enqueue instant exceeds the marking
threshold K (paper §6.4: K = 20 full-sized packets).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from .engine import Engine
from .packet import MSS, HEADER_BYTES, Packet

__all__ = ["Link", "DEFAULT_ECN_THRESHOLD_BYTES", "DEFAULT_QUEUE_BYTES"]

#: The paper's DCTCP marking threshold: 20 full-sized packets.
DEFAULT_ECN_THRESHOLD_BYTES = 20 * (MSS + HEADER_BYTES)
#: Default queue capacity: 100 full-sized packets (netbench-like).
DEFAULT_QUEUE_BYTES = 100 * (MSS + HEADER_BYTES)


class Link:
    """One direction of a cable.

    Parameters
    ----------
    engine:
        Simulation engine.
    rate_bps:
        Serialization rate in bits per second.
    prop_delay:
        Propagation delay in seconds, applied after serialization.
    sink:
        Callable receiving each packet at the far end.
    queue_bytes:
        Drop-tail queue capacity (bytes); packets arriving to a full queue
        are dropped.
    ecn_threshold_bytes:
        Mark packets whose enqueue-time queue occupancy exceeds this.
        ``None`` disables marking.
    """

    __slots__ = (
        "engine",
        "rate_bps",
        "prop_delay",
        "sink",
        "queue_bytes",
        "ecn_threshold",
        "_queue",
        "_queued_bytes",
        "_busy",
        "dropped_packets",
        "marked_packets",
        "transmitted_packets",
        "transmitted_bytes",
        "max_queue_bytes",
    )

    def __init__(
        self,
        engine: Engine,
        rate_bps: float,
        prop_delay: float,
        sink: Callable[[Packet], None],
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
        ecn_threshold_bytes: Optional[int] = DEFAULT_ECN_THRESHOLD_BYTES,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if prop_delay < 0:
            raise ValueError(f"negative propagation delay {prop_delay}")
        self.engine = engine
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.sink = sink
        self.queue_bytes = queue_bytes
        self.ecn_threshold = ecn_threshold_bytes
        self._queue: Deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False
        self.dropped_packets = 0
        self.marked_packets = 0
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        self.max_queue_bytes = 0

    @property
    def queue_occupancy_bytes(self) -> int:
        """Bytes currently waiting (excludes the packet being serialized)."""
        return self._queued_bytes

    def send(self, packet: Packet) -> None:
        """Offer a packet to this link; queues, marks, or drops it."""
        if self._busy:
            if self._queued_bytes + packet.wire_bytes > self.queue_bytes:
                self.dropped_packets += 1
                return
            self._queue.append(packet)
            self._queued_bytes += packet.wire_bytes
            if self._queued_bytes > self.max_queue_bytes:
                self.max_queue_bytes = self._queued_bytes
            if (
                self.ecn_threshold is not None
                and self._queued_bytes > self.ecn_threshold
            ):
                packet.ecn_marked = True
                self.marked_packets += 1
        else:
            self._busy = True
            self._transmit(packet)

    def _transmit(self, packet: Packet) -> None:
        tx_time = packet.wire_bytes * 8.0 / self.rate_bps
        self.engine.schedule(tx_time, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.wire_bytes
        if self.prop_delay > 0.0:
            self.engine.schedule(self.prop_delay, self.sink, packet)
        else:
            self.sink(packet)
        if self._queue:
            nxt = self._queue.popleft()
            self._queued_bytes -= nxt.wire_bytes
            self._transmit(nxt)
        else:
            self._busy = False

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds spent transmitting bytes."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.transmitted_bytes * 8.0 / (self.rate_bps * elapsed))
