"""Routing policies: ECMP, VLB, and the paper's HYB hybrid (§6).

Routing has two decision points:

* **At the source, per flowlet** — whether to send the flowlet direct
  (ECMP all the way) or bounce it off a random intermediate switch (VLB,
  realized as encapsulation: the packet carries ``via_tor`` until the
  intermediate decapsulates it).
* **At every switch, per packet** — which ECMP next hop to use toward the
  packet's current target (the intermediate if encapsulated, else the
  destination ToR).  The choice hashes (flow, flowlet, switch), so a new
  flowlet re-rolls the entire path, while packets within a flowlet stay
  on one path and avoid reordering.

HYB (paper §6.3): a flow's flowlets use ECMP until the flow has sent Q
bytes (default 100 KB); all later flowlets use VLB.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..perf import PathCache, shared_path_cache
from .packet import Packet

__all__ = [
    "RouteNotFound",
    "RoutingPolicy",
    "EcmpRouting",
    "VlbRouting",
    "HybRouting",
    "CongestionHybRouting",
    "AdaptiveEcmpRouting",
    "KspRouting",
    "DEFAULT_HYB_THRESHOLD_BYTES",
]


class RouteNotFound(RuntimeError):
    """A packet has no surviving next hop toward its destination.

    Raised only when the destination is genuinely unreachable from the
    current switch (e.g. after failures partition the topology) — an
    unreachable VLB intermediate is handled by decapsulating early and
    continuing toward the destination ToR instead.
    """

#: The paper's HYB ECMP->VLB switch-over threshold: Q = 100 KB.
DEFAULT_HYB_THRESHOLD_BYTES = 100_000


def _mix(a: int, b: int, c: int, d: int) -> int:
    """Deterministic 32-bit hash of four small integers."""
    h = (a * 0x9E3779B1 + b) & 0xFFFFFFFF
    h ^= h >> 15
    h = (h * 0x85EBCA77 + c) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0xC2B2AE3D + d) & 0xFFFFFFFF
    h ^= h >> 16
    return h


class RoutingPolicy:
    """Shared ECMP machinery; subclasses decide VLB usage per flowlet.

    Parameters
    ----------
    graph:
        The switch-level networkx graph (used to build ECMP tables).
    vlb_candidates:
        Switch ids eligible as VLB intermediates (default: all switches).
    seed:
        Seed for the VLB intermediate choice.
    path_cache:
        A shared :class:`repro.perf.PathCache` serving the ECMP next-hop
        tables.  Defaults to the process-wide cache for ``graph``, so
        every policy instance over the same topology shares one table
        set instead of re-running a BFS per destination per instance.
    """

    name = "base"

    def __init__(
        self,
        graph,
        vlb_candidates: Optional[Sequence[int]] = None,
        seed: int = 0,
        path_cache: Optional[PathCache] = None,
    ) -> None:
        self._path_cache = path_cache or shared_path_cache(graph)
        # Shared read-only table set, built once per topology.
        self._tables: Dict[int, Dict[int, List[int]]] = (
            self._path_cache.ecmp_tables()
        )
        self._vlb_candidates = sorted(
            vlb_candidates if vlb_candidates is not None else graph.nodes()
        )
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Per-switch forwarding
    # ------------------------------------------------------------------
    def _choices_toward(self, switch_id: int, target: int) -> List[int]:
        """Surviving ECMP next hops at ``switch_id`` toward ``target``.

        Empty both when the switch has no finite-distance neighbor toward
        the target and when either endpoint is absent from the tables
        (e.g. a failed switch) — callers fall back or raise
        :class:`RouteNotFound`.
        """
        table = self._tables.get(target)
        if table is None:
            return []
        return table.get(switch_id, [])

    def _resolve_target(self, switch_id: int, packet: Packet) -> int:
        """The packet's current target, decapsulating when the VLB
        intermediate is reached — or, after failures, unreachable."""
        if packet.via_tor is not None:
            if packet.via_tor == switch_id:
                packet.via_tor = None  # decapsulate at the intermediate
            elif self._choices_toward(switch_id, packet.via_tor):
                return packet.via_tor
            else:
                packet.via_tor = None  # intermediate died: go direct
        return packet.dst_tor

    def next_hop(self, switch_id: int, packet: Packet) -> int:
        """ECMP next hop at ``switch_id`` for ``packet`` (handles decap)."""
        target = self._resolve_target(switch_id, packet)
        choices = self._choices_toward(switch_id, target)
        if not choices:
            raise RouteNotFound(
                f"no route from switch {switch_id} toward {target}"
            )
        if len(choices) == 1:
            return choices[0]
        idx = _mix(packet.flow_id, packet.flowlet, switch_id, target) % len(choices)
        return choices[idx]

    # ------------------------------------------------------------------
    # Per-flowlet source decision
    # ------------------------------------------------------------------
    def choose_via(
        self, flow_id: int, bytes_sent: int, src_tor: int, dst_tor: int
    ) -> Optional[int]:
        """Pick a VLB intermediate for the next flowlet, or None for ECMP."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Feedback hooks (no-ops unless a policy uses them)
    # ------------------------------------------------------------------
    def note_ecn(self, flow_id: int) -> None:
        """Called by the transport when an ECN echo arrives for a flow."""

    def flow_done(self, flow_id: int) -> None:
        """Called when a flow completes; policies may release its state."""

    def _random_via(self, src_tor: int, dst_tor: int) -> Optional[int]:
        """A uniform random intermediate, excluding the endpoints.

        Candidates unreachable from the source or unable to reach the
        destination (possible after failures) are rejected and redrawn;
        on a connected graph the reachability checks never fire, so the
        draw sequence is identical to the pre-failure-aware behavior.
        """
        for _ in range(16):
            via = self._rng.choice(self._vlb_candidates)
            if via == src_tor or via == dst_tor:
                continue
            if (
                self._path_cache.distance(src_tor, via) == float("inf")
                or self._path_cache.distance(via, dst_tor) == float("inf")
            ):
                continue
            return via
        return None  # tiny/partitioned networks: fall back to direct


class EcmpRouting(RoutingPolicy):
    """Pure ECMP: every flowlet goes direct over shortest paths."""

    name = "ecmp"

    def choose_via(
        self, flow_id: int, bytes_sent: int, src_tor: int, dst_tor: int
    ) -> Optional[int]:
        return None


class VlbRouting(RoutingPolicy):
    """Pure VLB: every flowlet bounces off a random intermediate switch."""

    name = "vlb"

    def choose_via(
        self, flow_id: int, bytes_sent: int, src_tor: int, dst_tor: int
    ) -> Optional[int]:
        return self._random_via(src_tor, dst_tor)


class HybRouting(RoutingPolicy):
    """The paper's HYB: ECMP for the first Q bytes of a flow, then VLB.

    Short flows (< Q bytes) ride low-latency shortest paths and are
    insulated from long flows, which are load-balanced across the whole
    fabric — matching a full-bandwidth fat-tree on the paper's workloads.
    """

    name = "hyb"

    def __init__(
        self,
        graph,
        q_threshold_bytes: int = DEFAULT_HYB_THRESHOLD_BYTES,
        vlb_candidates: Optional[Sequence[int]] = None,
        seed: int = 0,
        path_cache: Optional[PathCache] = None,
    ) -> None:
        super().__init__(
            graph, vlb_candidates=vlb_candidates, seed=seed, path_cache=path_cache
        )
        if q_threshold_bytes < 0:
            raise ValueError("q_threshold_bytes must be non-negative")
        self.q_threshold = q_threshold_bytes

    def choose_via(
        self, flow_id: int, bytes_sent: int, src_tor: int, dst_tor: int
    ) -> Optional[int]:
        if bytes_sent < self.q_threshold:
            return None
        return self._random_via(src_tor, dst_tor)


class CongestionHybRouting(RoutingPolicy):
    """The paper's first (congestion-aware) hybrid design (§6.3).

    A flow's flowlets use ECMP until the flow has seen a threshold number
    of ECN marks, after which its flowlets use VLB.  Unlike the simpler
    byte-count HYB, this adapts to actual congestion: a large flow on an
    uncongested shortest path stays there, and short flows that do hit an
    ECMP bottleneck escape to VLB — sidestepping HYB's theoretical failure
    mode where voluminous sub-Q flows saturate a shortest path.
    """

    name = "chyb"

    def __init__(
        self,
        graph,
        ecn_mark_threshold: int = 3,
        vlb_candidates: Optional[Sequence[int]] = None,
        seed: int = 0,
        path_cache: Optional[PathCache] = None,
    ) -> None:
        super().__init__(
            graph, vlb_candidates=vlb_candidates, seed=seed, path_cache=path_cache
        )
        if ecn_mark_threshold < 1:
            raise ValueError("ecn_mark_threshold must be >= 1")
        self.ecn_mark_threshold = ecn_mark_threshold
        self._marks: Dict[int, int] = {}

    def note_ecn(self, flow_id: int) -> None:
        self._marks[flow_id] = self._marks.get(flow_id, 0) + 1

    def flow_done(self, flow_id: int) -> None:
        self._marks.pop(flow_id, None)

    def choose_via(
        self, flow_id: int, bytes_sent: int, src_tor: int, dst_tor: int
    ) -> Optional[int]:
        if self._marks.get(flow_id, 0) < self.ecn_mark_threshold:
            return None
        return self._random_via(src_tor, dst_tor)


class AdaptiveEcmpRouting(RoutingPolicy):
    """Locally congestion-aware ECMP (a CONGA-flavored §7 extension).

    At each switch, instead of hashing over the ECMP next hops, the
    flowlet's first packet picks the next hop whose outgoing queue is
    currently shortest (ties broken by the flowlet hash); subsequent
    packets of the same flowlet stick to that choice via the hash of the
    recorded decision, approximated here by re-evaluating per packet —
    queue state changes slowly relative to a flowlet, so reordering
    remains rare at the paper's 50 us flowlet gap.

    Requires :meth:`bind_network` after the simulated network is built so
    queue occupancies are visible.
    """

    name = "aecmp"

    def __init__(
        self,
        graph,
        vlb_candidates: Optional[Sequence[int]] = None,
        seed: int = 0,
        path_cache: Optional[PathCache] = None,
    ) -> None:
        super().__init__(
            graph, vlb_candidates=vlb_candidates, seed=seed, path_cache=path_cache
        )
        self._switches = None

    def bind_network(self, network) -> None:
        """Attach the built network so queue occupancy can be inspected."""
        self._switches = network.switches

    def choose_via(
        self, flow_id: int, bytes_sent: int, src_tor: int, dst_tor: int
    ) -> Optional[int]:
        return None

    def next_hop(self, switch_id: int, packet: Packet) -> int:
        target = self._resolve_target(switch_id, packet)
        choices = self._choices_toward(switch_id, target)
        if not choices:
            raise RouteNotFound(
                f"no route from switch {switch_id} toward {target}"
            )
        if len(choices) == 1 or self._switches is None:
            if len(choices) == 1:
                return choices[0]
            idx = _mix(packet.flow_id, packet.flowlet, switch_id, target)
            return choices[idx % len(choices)]
        ports = self._switches[switch_id].switch_ports
        tie = _mix(packet.flow_id, packet.flowlet, switch_id, target)
        return min(
            choices,
            key=lambda nh: (ports[nh].queue_occupancy_bytes, (nh + tie) % 97),
        )


class KspRouting(RoutingPolicy):
    """Source-routed k-shortest paths (§6's mentioned alternative).

    The Jellyfish/Xpander literature routed over Yen's k shortest paths
    (including non-minimal ones) — the paper notes this "requires
    significant architectural changes"; here those changes are modeled as
    source routing: each flowlet picks one of the k precomputed paths
    uniformly at random and its packets carry the remaining hop list.

    Path sets are computed lazily per (src ToR, dst ToR) pair and served
    from the shared :class:`~repro.perf.PathCache`, so a sweep over
    routings on one topology computes each pair's paths exactly once.
    """

    name = "ksp"

    def __init__(
        self,
        graph,
        k: int = 4,
        vlb_candidates: Optional[Sequence[int]] = None,
        seed: int = 0,
        path_cache: Optional[PathCache] = None,
    ) -> None:
        super().__init__(
            graph, vlb_candidates=vlb_candidates, seed=seed, path_cache=path_cache
        )
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def choose_via(
        self, flow_id: int, bytes_sent: int, src_tor: int, dst_tor: int
    ) -> Optional[int]:
        return None

    def _path_set(self, src_tor: int, dst_tor: int) -> List[List[int]]:
        return self._path_cache.k_shortest_paths(src_tor, dst_tor, self.k)

    def choose_route(
        self, flow_id: int, flowlet: int, src_tor: int, dst_tor: int
    ) -> Optional[List[int]]:
        """The remaining-hops list for this flowlet (excludes src ToR)."""
        if src_tor == dst_tor:
            return None
        paths = self._path_set(src_tor, dst_tor)
        if not paths:
            return None
        idx = _mix(flow_id, flowlet, src_tor, dst_tor) % len(paths)
        return paths[idx][1:]


# ----------------------------------------------------------------------
# Registry bindings (see repro.registry)
# ----------------------------------------------------------------------
from ..registry import ROUTINGS as _ROUTINGS  # noqa: E402


def _ecmp_factory(graph, seed=0):
    return EcmpRouting(graph, seed=seed)


def _vlb_factory(graph, seed=0):
    return VlbRouting(graph, seed=seed)


def _hyb_factory(graph, seed=0, hyb_threshold_bytes=DEFAULT_HYB_THRESHOLD_BYTES):
    return HybRouting(graph, q_threshold_bytes=hyb_threshold_bytes, seed=seed)


def _chyb_factory(graph, seed=0, ecn_mark_threshold=3):
    return CongestionHybRouting(
        graph, ecn_mark_threshold=ecn_mark_threshold, seed=seed
    )


def _aecmp_factory(graph, seed=0):
    return AdaptiveEcmpRouting(graph, seed=seed)


def _ksp_factory(graph, seed=0, k=4):
    return KspRouting(graph, k=k, seed=seed)


_ROUTINGS.register(
    "ecmp", _ecmp_factory, "hash flowlets onto shortest paths (§6)"
)
_ROUTINGS.register(
    "vlb", _vlb_factory, "bounce every flowlet off a random intermediate"
)
_ROUTINGS.register(
    "hyb", _hyb_factory,
    "ECMP below Q bytes then VLB (§6.3); hyb_threshold_bytes",
)
_ROUTINGS.register(
    "chyb", _chyb_factory,
    "congestion-aware hybrid: VLB after ECN marks; ecn_mark_threshold",
)
_ROUTINGS.register(
    "aecmp", _aecmp_factory, "queue-aware ECMP next-hop choice (§7)"
)
_ROUTINGS.register("ksp", _ksp_factory, "k-shortest-path flowlet hashing; k")
