"""Build a simulated network from a :class:`~repro.topologies.base.Topology`.

Each cable becomes two directed :class:`Link` objects; each server becomes
a :class:`Host` with a bidirectional access link to its ToR.  The paper's
ProjecToR-style evaluation (§6.6) ignores server-link bottlenecks; pass
``server_link_rate_bps=None`` to reproduce that (access links then run at
a rate high enough never to bottleneck, with marking disabled).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..topologies.base import Topology
from .engine import Engine
from .host import Host
from .link import DEFAULT_ECN_THRESHOLD_BYTES, DEFAULT_QUEUE_BYTES, Link
from .routing import RoutingPolicy
from .switch import Switch

__all__ = ["SimulatedNetwork", "NetworkParams"]


class NetworkParams:
    """Physical-layer configuration.

    Defaults model the paper's setup: 10 Gbps links, small propagation
    delays, DCTCP ECN threshold of 20 full-sized packets.
    """

    __slots__ = (
        "link_rate_bps",
        "server_link_rate_bps",
        "prop_delay",
        "queue_bytes",
        "ecn_threshold_bytes",
    )

    def __init__(
        self,
        link_rate_bps: float = 10e9,
        server_link_rate_bps: Optional[float] = 10e9,
        prop_delay: float = 500e-9,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
        ecn_threshold_bytes: int = DEFAULT_ECN_THRESHOLD_BYTES,
    ) -> None:
        self.link_rate_bps = link_rate_bps
        self.server_link_rate_bps = server_link_rate_bps
        self.prop_delay = prop_delay
        self.queue_bytes = queue_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes


class SimulatedNetwork:
    """Switches, hosts, and links instantiated from a topology."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingPolicy,
        engine: Engine,
        params: Optional[NetworkParams] = None,
    ) -> None:
        self.topology = topology
        self.routing = routing
        self.engine = engine
        self.params = params or NetworkParams()
        self.switches: Dict[int, Switch] = {}
        self.hosts: Dict[int, Host] = {}
        self.links: List[Link] = []
        self._build()

    def _build(self) -> None:
        p = self.params
        for s in self.topology.switches:
            self.switches[s] = Switch(s, self.routing)

        # Switch-to-switch links (two directions per cable); capacities in
        # the topology are multiples of the base link rate.
        for u, v, data in self.topology.graph.edges(data=True):
            rate = p.link_rate_bps * data.get("capacity", 1.0)
            for a, b in ((u, v), (v, u)):
                link = Link(
                    self.engine,
                    rate_bps=rate,
                    prop_delay=p.prop_delay,
                    sink=self.switches[b].receive,
                    queue_bytes=p.queue_bytes,
                    ecn_threshold_bytes=p.ecn_threshold_bytes,
                )
                self.switches[a].attach_switch_port(b, link)
                self.links.append(link)

        # Hosts and access links.  When the server-link rate is
        # unconstrained (None) we model a link fast enough to never be the
        # bottleneck and disable its marking/queueing effects.
        unconstrained = p.server_link_rate_bps is None
        host_rate = (
            p.link_rate_bps * 64 if unconstrained else p.server_link_rate_bps
        )
        host_ecn = None if unconstrained else p.ecn_threshold_bytes
        host_queue = 2**31 if unconstrained else p.queue_bytes
        for server_id, tor in self.topology.iter_server_ids():
            host = Host(server_id, tor, self.engine)
            self.hosts[server_id] = host
            up = Link(
                self.engine,
                rate_bps=host_rate,
                prop_delay=p.prop_delay,
                sink=self.switches[tor].receive,
                queue_bytes=host_queue,
                ecn_threshold_bytes=host_ecn,
            )
            host.uplink = up
            self.links.append(up)
            down = Link(
                self.engine,
                rate_bps=host_rate,
                prop_delay=p.prop_delay,
                sink=host.receive,
                queue_bytes=host_queue,
                ecn_threshold_bytes=host_ecn,
            )
            self.switches[tor].attach_host_port(server_id, down)
            self.links.append(down)

    # ------------------------------------------------------------------
    @property
    def num_servers(self) -> int:
        """Number of hosts in the network."""
        return len(self.hosts)

    def total_drops(self) -> int:
        """Packets dropped at any queue so far."""
        return sum(l.dropped_packets for l in self.links)

    def total_marks(self) -> int:
        """Packets ECN-marked at any queue so far."""
        return sum(l.marked_packets for l in self.links)
