"""MPTCP over k paths: the prior routing approach for expanders (§6).

Before HYB, "solutions have depended on MPTCP over k-shortest paths"
(Jellyfish, Xpander).  This module implements that baseline so it can be
compared against the paper's simple schemes:

* a flow opens ``num_subflows`` DCTCP subflows, each pinned to its own
  path (pinning is realized by giving each subflow a distinct flow id and
  an infinite flowlet gap, so the per-hop ECMP hash fixes a stable,
  distinct path per subflow — the way MPTCP rides ECMP in practice);
* with ``diverse_paths`` (default), subflows beyond the first are pinned
  through distinct random intermediate switches, reproducing the
  *k-shortest-paths* (including non-minimal paths) flavor of the
  Jellyfish/Xpander MPTCP proposals — between adjacent racks, shortest
  paths alone collapse to the single direct link;
* flow bytes are dispensed to subflows in chunks, pulled by whichever
  subflow finishes its current chunk first (a simple pull scheduler
  approximating MPTCP's coupled scheduling: fast subflows carry more);
* the flow completes when every dispensed byte has been acknowledged
  (sender-side completion; one extra half-RTT vs receiver-side, noted in
  DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from .engine import Engine
from .host import Host
from .packet import MSS
from .routing import RoutingPolicy
from .tcp import DctcpReceiver, DctcpSender, TransportParams

__all__ = ["MptcpFlow", "MPTCP_SUBFLOW_FACTOR", "DEFAULT_CHUNK_BYTES"]

#: Synthetic flow-id stride: subflow ids are flow_id * FACTOR + index.
MPTCP_SUBFLOW_FACTOR = 64
#: Default scheduler chunk (bytes) pulled by an idle subflow.
DEFAULT_CHUNK_BYTES = 64 * MSS
#: Receiver size sentinel: subflow receivers never self-complete.
_OPEN_ENDED = 1 << 62


class _PinnedViaPolicy:
    """Per-subflow routing facade: a fixed (or absent) VLB intermediate.

    Only the sender-side hooks are overridden; in-network forwarding still
    goes through the simulation's shared policy.
    """

    __slots__ = ("_base", "_via")

    def __init__(self, base: RoutingPolicy, via: Optional[int]) -> None:
        self._base = base
        self._via = via

    def choose_via(self, flow_id, bytes_sent, src_tor, dst_tor):
        return self._via

    def note_ecn(self, flow_id):
        self._base.note_ecn(flow_id)

    def flow_done(self, flow_id):
        self._base.flow_done(flow_id)


class MptcpFlow:
    """One multipath flow between two hosts."""

    def __init__(
        self,
        engine: Engine,
        params: TransportParams,
        routing: RoutingPolicy,
        flow_id: int,
        src_host: Host,
        dst_host: Host,
        size_bytes: int,
        num_subflows: int = 4,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        diverse_paths: bool = True,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError("flow must carry at least one byte")
        if num_subflows < 1:
            raise ValueError("need at least one subflow")
        if num_subflows >= MPTCP_SUBFLOW_FACTOR:
            raise ValueError(
                f"at most {MPTCP_SUBFLOW_FACTOR - 1} subflows supported"
            )
        if chunk_bytes < MSS:
            raise ValueError("chunk must be at least one MSS")
        self.engine = engine
        self.flow_id = flow_id
        self.size_bytes = size_bytes
        self.on_complete = on_complete
        self.completed = False
        self.completion_time: Optional[float] = None

        # Pin each subflow to one path: infinite flowlet gap means the
        # flowlet id never changes after the first packet, so the per-hop
        # hash is constant per subflow.
        pinned = TransportParams(
            init_cwnd_packets=max(1, params.init_cwnd_bytes // MSS),
            min_rto=params.min_rto,
            initial_rto=params.initial_rto,
            flowlet_gap=math.inf,
            dctcp_g=params.dctcp_g,
            use_ecn=params.use_ecn,
        )

        self._remaining_pool = size_bytes
        self._active = 0
        self._senders: List[DctcpSender] = []
        self._src_host = src_host
        self._dst_host = dst_host

        subflows = min(num_subflows, max(1, size_bytes // MSS))
        first_chunks = self._initial_chunks(size_bytes, subflows, chunk_bytes)
        self._chunk_bytes = chunk_bytes

        # Per-subflow path pinning: the first subflow rides shortest paths;
        # with diverse_paths, the rest each get a distinct intermediate.
        vias: List[Optional[int]] = [None]
        random_via = getattr(routing, "_random_via", None)
        if diverse_paths and random_via is not None:
            seen: set = set()
            for _ in range(8 * len(first_chunks)):
                if len(vias) >= len(first_chunks):
                    break
                via = random_via(src_host.tor, dst_host.tor)
                if via is None:
                    break
                if via not in seen:
                    seen.add(via)
                    vias.append(via)
        while len(vias) < len(first_chunks):
            vias.append(None)

        for idx, first in enumerate(first_chunks):
            sub_id = flow_id * MPTCP_SUBFLOW_FACTOR + idx
            receiver = DctcpReceiver(
                engine=engine,
                transmit=dst_host.transmit,
                flow_id=sub_id,
                src_server=src_host.server_id,
                dst_server=dst_host.server_id,
                src_tor=src_host.tor,
                total_bytes=_OPEN_ENDED,
            )
            dst_host._receivers[sub_id] = receiver
            sender = DctcpSender(
                engine=engine,
                params=pinned,
                routing=_PinnedViaPolicy(routing, vias[idx]),
                transmit=src_host.transmit,
                flow_id=sub_id,
                src_server=src_host.server_id,
                dst_server=dst_host.server_id,
                src_tor=src_host.tor,
                dst_tor=dst_host.tor,
                total_bytes=first,
                on_complete=self._subflow_drained(idx),
            )
            src_host._senders[sub_id] = sender
            self._senders.append(sender)
            self._remaining_pool -= first
            self._active += 1

    @staticmethod
    def _initial_chunks(size: int, subflows: int, chunk: int) -> List[int]:
        """First chunk per subflow; small flows use fewer subflows."""
        chunks = []
        remaining = size
        for i in range(subflows):
            if remaining <= 0:
                break
            share = min(chunk, remaining - (subflows - i - 1))
            share = max(1, min(share, remaining))
            chunks.append(share)
            remaining -= share
        return chunks

    def start(self) -> None:
        """Start every subflow."""
        for s in self._senders:
            s.start()

    def _subflow_drained(self, idx: int) -> Callable[[], None]:
        def drained() -> None:
            if self._remaining_pool > 0:
                take = min(self._chunk_bytes, self._remaining_pool)
                self._remaining_pool -= take
                self._senders[idx].extend(take)
                return
            self._active -= 1
            if self._active == 0 and not self.completed:
                self.completed = True
                self.completion_time = self.engine.now
                for i in range(len(self._senders)):
                    sub_id = self.flow_id * MPTCP_SUBFLOW_FACTOR + i
                    self._src_host.drop_flow(sub_id)
                    self._dst_host.drop_receiver(sub_id)
                if self.on_complete is not None:
                    self.on_complete(self.engine.now)

        return drained

    @property
    def bytes_unscheduled(self) -> int:
        """Bytes not yet handed to any subflow."""
        return self._remaining_pool
