"""Flow statistics: the paper's three metrics (§6.4).

Statistics are computed over flows *started* inside a measurement window
(paper: [0.5 s, 1.5 s)), and the experiment runs until all such flows
finish:

* average FCT over all measured flows,
* 99th-percentile FCT over short flows (< 100 KB),
* average throughput (size / FCT) over the remaining (long) flows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["FlowRecord", "FlowStats", "SHORT_FLOW_BYTES", "percentile"]

#: The paper's short-flow boundary.
SHORT_FLOW_BYTES = 100_000


@dataclass
class FlowRecord:
    """Lifecycle record of one simulated flow."""

    flow_id: int
    src_server: int
    dst_server: int
    size_bytes: int
    start_time: float
    completion_time: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.completion_time is not None

    @property
    def fct(self) -> float:
        """Flow completion time in seconds."""
        if self.completion_time is None:
            raise ValueError(f"flow {self.flow_id} has not completed")
        return self.completion_time - self.start_time

    @property
    def throughput_bps(self) -> float:
        """Achieved goodput: size / FCT in bits per second."""
        return self.size_bytes * 8.0 / self.fct


def percentile(values: List[float], pct: float) -> float:
    """The ``pct``-th percentile (nearest-rank) of a non-empty list."""
    if not values:
        raise ValueError("percentile of empty list")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class FlowStats:
    """Aggregated metrics over a set of completed flows."""

    records: List[FlowRecord] = field(default_factory=list)
    short_flow_bytes: int = SHORT_FLOW_BYTES

    def completed(self) -> List[FlowRecord]:
        """Flows that finished."""
        return [r for r in self.records if r.finished]

    @property
    def num_flows(self) -> int:
        return len(self.records)

    @property
    def num_unfinished(self) -> int:
        return sum(1 for r in self.records if not r.finished)

    def avg_fct(self) -> float:
        """Mean FCT over all completed flows (seconds)."""
        done = self.completed()
        if not done:
            return math.nan
        return sum(r.fct for r in done) / len(done)

    def short_flow_p99_fct(self) -> float:
        """99th-percentile FCT over completed short flows (seconds)."""
        short = [r.fct for r in self.completed() if r.size_bytes < self.short_flow_bytes]
        if not short:
            return math.nan
        return percentile(short, 99.0)

    def long_flow_avg_throughput_bps(self) -> float:
        """Mean goodput over completed long (>= threshold) flows."""
        long_flows = [
            r for r in self.completed() if r.size_bytes >= self.short_flow_bytes
        ]
        if not long_flows:
            return math.nan
        return sum(r.throughput_bps for r in long_flows) / len(long_flows)

    def summary(self) -> dict:
        """All three paper metrics plus counts, as a dict."""
        return {
            "flows": self.num_flows,
            "unfinished": self.num_unfinished,
            "avg_fct_ms": self.avg_fct() * 1e3,
            "short_p99_fct_ms": self.short_flow_p99_fct() * 1e3,
            "long_avg_throughput_gbps": self.long_flow_avg_throughput_bps() / 1e9,
        }
