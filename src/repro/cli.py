"""Command-line interface: ``python -m repro <command> ...``.

Gives the library's main workflows a shell entry point, mirroring how the
paper's Netbench artifact is driven from configs:

* ``topology``   — build a topology and print its structural properties;
* ``throughput`` — fluid-flow skew sweep (the Fig 5/6 engine);
* ``simulate``   — packet-level experiment with a chosen workload/routing;
* ``sweep``      — parallel, cached experiment sweep from a JSON spec file;
* ``cost``       — Table 1 port costs and a topology's port cost;
* ``cabling``    — Fig 3-style cabling/bundling report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import format_number, format_series, format_table
from .cost import (
    FIREFLY_PORT,
    PROJECTOR_PORT_HIGH,
    PROJECTOR_PORT_LOW,
    STATIC_PORT,
    delta_ratio,
    topology_port_cost,
)
from .topologies import (
    Topology,
    fattree,
    fattree_cabling,
    flat_cabling,
    jellyfish,
    longhop,
    oversubscribed_fattree,
    slimfly,
    xpander,
    xpander_cabling,
)

__all__ = ["main", "build_topology"]


def build_topology(kind: str, args: argparse.Namespace):
    """Construct the requested topology; returns (Topology, FatTree|None)."""
    if kind == "fattree":
        ft = (
            fattree(args.k, servers_per_edge=args.servers or None)
            if args.core_fraction >= 1.0
            else oversubscribed_fattree(
                args.k, args.core_fraction, servers_per_edge=args.servers or None
            )
        )
        return ft.topology, ft
    if kind == "jellyfish":
        return (
            jellyfish(args.switches, args.degree, args.servers, seed=args.seed),
            None,
        )
    if kind == "xpander":
        return xpander(args.degree, args.lift, args.servers, seed=args.seed), None
    if kind == "slimfly":
        return slimfly(args.q, args.servers), None
    if kind == "longhop":
        return longhop(args.n, args.degree, args.servers), None
    raise ValueError(f"unknown topology kind {kind!r}")


def _add_topology_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "kind",
        choices=["fattree", "jellyfish", "xpander", "slimfly", "longhop"],
        help="topology family",
    )
    p.add_argument("--k", type=int, default=8, help="fat-tree arity")
    p.add_argument(
        "--core-fraction",
        type=float,
        default=1.0,
        help="fat-tree core fraction (oversubscription)",
    )
    p.add_argument("--switches", type=int, default=32, help="jellyfish switches")
    p.add_argument(
        "--degree", type=int, default=6, help="network degree (jellyfish/xpander/longhop)"
    )
    p.add_argument("--lift", type=int, default=8, help="xpander lift size")
    p.add_argument("--q", type=int, default=5, help="slimfly prime (q = 1 mod 4)")
    p.add_argument("--n", type=int, default=5, help="longhop log2 switch count")
    p.add_argument(
        "--servers", type=int, default=0, help="servers per switch (0 = family default)"
    )
    p.add_argument("--seed", type=int, default=0, help="construction seed")


def _default_servers(kind: str, args: argparse.Namespace) -> None:
    if args.servers == 0:
        args.servers = {"fattree": 0}.get(kind, 4)


def cmd_topology(args: argparse.Namespace) -> int:
    _default_servers(args.kind, args)
    topo, _ = build_topology(args.kind, args)
    rows = [
        ["name", topo.name],
        ["switches", topo.num_switches],
        ["links", topo.num_links],
        ["servers", topo.num_servers],
        ["connected", topo.is_connected()],
        ["diameter", topo.diameter()],
        ["avg shortest path", round(topo.average_shortest_path_length(), 4)],
        ["total ports", topo.total_ports()],
    ]
    print(format_table(["property", "value"], rows))
    return 0


def cmd_throughput(args: argparse.Namespace) -> int:
    from .throughput import skew_sweep

    _default_servers(args.kind, args)
    topo, _ = build_topology(args.kind, args)
    fractions = [float(x) for x in args.fractions.split(",")]
    result = skew_sweep(
        topo,
        fractions,
        solver=args.solver,
        k_paths=args.k_paths,
        seed=args.seed,
    )
    print(
        format_series(
            "fraction",
            result.fractions,
            {topo.name: result.throughput},
            title="Per-server throughput under longest-matching TMs",
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .sim import NetworkParams, run_packet_experiment
    from .traffic import (
        PoissonArrivals,
        Workload,
        a2a_pair_distribution,
        permute_pair_distribution,
        pfabric_web_search,
        pareto_hull,
        skew_pair_distribution,
    )

    _default_servers(args.kind, args)
    topo, _ = build_topology(args.kind, args)
    if args.pattern == "a2a":
        pairs = a2a_pair_distribution(topo, args.fraction, seed=args.seed)
    elif args.pattern == "permute":
        pairs = permute_pair_distribution(topo, args.fraction, seed=args.seed)
    else:
        pairs = skew_pair_distribution(topo, 0.1, 0.77, seed=args.seed)
    sizes = (
        pfabric_web_search(args.mean_flow_bytes)
        if args.sizes == "pfabric"
        else pareto_hull(args.mean_flow_bytes)
    )
    workload = Workload(pairs, sizes, PoissonArrivals(args.rate), seed=args.seed)
    stats = run_packet_experiment(
        topo,
        workload,
        routing=args.routing,
        measure_start=args.measure_start,
        measure_end=args.measure_end,
        network_params=NetworkParams(link_rate_bps=args.link_gbps * 1e9),
        seed=args.seed,
    )
    summary = stats.summary()
    print(
        format_table(
            ["metric", "value"],
            [[k, round(v, 4) if isinstance(v, float) else v] for k, v in summary.items()],
            title=f"{topo.name} / {args.routing} / {args.pattern}({args.fraction})",
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .harness import (
        ResultCache,
        ResultsStore,
        Runner,
        SpecError,
        load_sweep_file,
    )

    try:
        specs = load_sweep_file(args.spec)
    except (OSError, json.JSONDecodeError, SpecError) as exc:
        sys.stderr.write(f"sweep: cannot load {args.spec}: {exc}\n")
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    store = ResultsStore(args.results) if args.results else None

    def show_progress(p: dict) -> None:
        sys.stderr.write(
            f"\rsweep: {p['done']}/{p['total']} done "
            f"({p['ok']} ok, {p['cached']} cached, {p['failed']} failed), "
            f"{p['running']} running"
        )
        sys.stderr.flush()

    runner = Runner(
        jobs=args.jobs or None,
        cache=cache,
        store=store,
        timeout_s=args.timeout or None,
        retries=args.retries,
        progress=None if args.quiet else show_progress,
    )
    result = runner.run(specs)
    if not args.quiet:
        sys.stderr.write("\n")
    rows = []
    for record in result.records:
        headline = ("avg_fct_ms", "per_server_throughput")
        key_metric = next(
            (
                (k, record.metrics[k])
                for k in (*headline, *sorted(record.metrics))
                if k in record.metrics
            ),
            ("-", float("nan")),
        )
        rows.append([
            record.name,
            record.spec["engine"],
            record.status + (" (cached)" if record.cached else ""),
            record.attempts,
            round(record.wall_clock_s, 2),
            f"{key_metric[0]}={format_number(key_metric[1])}"
            if record.ok
            else (record.error or ""),
        ])
    counts = result.counts
    print(
        format_table(
            ["point", "engine", "status", "attempts", "wall (s)", "result"],
            rows,
            title=(
                f"Sweep of {counts['total']} points: {counts['ok']} computed, "
                f"{counts['cached']} cached, {counts['failed']} failed "
                f"in {result.wall_clock_s:.1f}s"
            ),
        )
    )
    return 0 if result.ok else 1


def cmd_cost(args: argparse.Namespace) -> int:
    rows = [
        [p.name, round(p.total, 2), round(delta_ratio(p), 3)]
        for p in (STATIC_PORT, FIREFLY_PORT, PROJECTOR_PORT_LOW, PROJECTOR_PORT_HIGH)
    ]
    print(
        format_table(
            ["port type", "cost ($)", "delta vs static"],
            rows,
            title="Table 1 per-port costs",
        )
    )
    if args.kind:
        _default_servers(args.kind, args)
        topo, _ = build_topology(args.kind, args)
        print(f"\n{topo.name}: total port cost ${topology_port_cost(topo):,.0f}")
    return 0


def cmd_cabling(args: argparse.Namespace) -> int:
    _default_servers(args.kind, args)
    topo, ft = build_topology(args.kind, args)
    if args.kind == "xpander":
        report = xpander_cabling(topo)
    elif args.kind == "fattree":
        report = fattree_cabling(ft)
    else:
        report = flat_cabling(topo)
    rows = [
        ["cables", report.num_cables],
        ["bundles", report.num_bundles],
        ["cables per bundle", round(report.cables_per_bundle, 2)],
        ["total fiber (m)", round(report.total_length_m, 1)],
        ["bundled fraction", round(report.bundled_fraction, 3)],
        ["fiber cost ($, bundling discount)", round(report.fiber_cost(), 2)],
    ]
    print(format_table(["property", "value"], rows, title=f"Cabling: {topo.name}"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topology", help="build and describe a topology")
    _add_topology_args(p)
    p.set_defaults(func=cmd_topology)

    p = sub.add_parser("throughput", help="fluid-flow skew sweep")
    _add_topology_args(p)
    p.add_argument("--fractions", default="0.2,0.4,0.6,0.8,1.0")
    p.add_argument("--solver", choices=["exact", "paths"], default="exact")
    p.add_argument("--k-paths", type=int, default=8)
    p.set_defaults(func=cmd_throughput)

    p = sub.add_parser("simulate", help="packet-level experiment")
    _add_topology_args(p)
    p.add_argument(
        "--routing",
        choices=["ecmp", "vlb", "hyb", "chyb", "aecmp", "ksp"],
        default="hyb",
    )
    p.add_argument("--pattern", choices=["a2a", "permute", "skew"], default="permute")
    p.add_argument("--fraction", type=float, default=0.3)
    p.add_argument("--sizes", choices=["pfabric", "hull"], default="pfabric")
    p.add_argument("--mean-flow-bytes", type=float, default=200_000)
    p.add_argument("--rate", type=float, default=2000.0, help="flow starts/s")
    p.add_argument("--link-gbps", type=float, default=1.0)
    p.add_argument("--measure-start", type=float, default=0.02)
    p.add_argument("--measure-end", type=float, default=0.06)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "sweep",
        help="parallel, cached experiment sweep from a JSON spec file",
    )
    p.add_argument("spec", help="sweep JSON (defaults/grid/points document)")
    p.add_argument(
        "--jobs", type=int, default=0, help="worker processes (0 = auto)"
    )
    p.add_argument(
        "--cache-dir", default=".repro-cache", help="result cache directory"
    )
    p.add_argument(
        "--no-cache", action="store_true", help="recompute every point"
    )
    p.add_argument(
        "--results", default="", help="append RunRecords to this JSONL file"
    )
    p.add_argument(
        "--timeout", type=float, default=0.0,
        help="per-point timeout in seconds (0 = unlimited)",
    )
    p.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for failed/timed-out points",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress live progress output"
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("cost", help="Table 1 costs (+ optional topology cost)")
    p.add_argument("--kind", default="", help="optionally price a topology")
    _add_topology_args_optional(p)
    p.set_defaults(func=cmd_cost)

    p = sub.add_parser("cabling", help="Fig 3-style cabling report")
    _add_topology_args(p)
    p.set_defaults(func=cmd_cabling)

    args = parser.parse_args(argv)
    return args.func(args)


def _add_topology_args_optional(p: argparse.ArgumentParser) -> None:
    """Topology args without the positional kind (for `cost`)."""
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--core-fraction", type=float, default=1.0)
    p.add_argument("--switches", type=int, default=32)
    p.add_argument("--degree", type=int, default=6)
    p.add_argument("--lift", type=int, default=8)
    p.add_argument("--q", type=int, default=5)
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--servers", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
