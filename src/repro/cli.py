"""Command-line interface: ``python -m repro <command> ...``.

Gives the library's main workflows a shell entry point, mirroring how the
paper's Netbench artifact is driven from configs:

* ``topology``   — build a topology and print its structural properties;
* ``throughput`` — fluid-flow skew sweep (the Fig 5/6 engine);
* ``simulate``   — packet-level experiment with a chosen workload/routing;
* ``sweep``      — parallel, cached experiment sweep from a JSON spec file;
* ``profile``    — run a sweep in-process under observability and print
  the per-stage span/counter breakdown (trace + manifest on disk);
* ``resilience`` — failure campaign from a JSON file: throughput
  retained vs. fraction failed across topologies (x routings);
* ``design``     — inverse design: cheapest topology meeting a
  declarative SLO target (see ``docs/design.md``);
* ``cost``       — Table 1 port costs and a topology's port cost;
* ``cabling``    — Fig 3-style cabling/bundling report.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional

from . import registry
from .analysis import format_number, format_series, format_table
from .cost import (
    FIREFLY_PORT,
    PROJECTOR_PORT_HIGH,
    PROJECTOR_PORT_LOW,
    STATIC_PORT,
    delta_ratio,
    topology_port_cost,
)
from .topologies import fattree_cabling, flat_cabling, xpander_cabling

__all__ = ["main", "build_topology"]

#: Which CLI flags feed each topology family's registry factory.
_FAMILY_ARGS = {
    "fattree": ("k", "core_fraction", "servers"),
    "jellyfish": ("switches", "degree", "servers", "seed"),
    "xpander": ("degree", "lift", "servers", "seed"),
    "slimfly": ("q", "servers"),
    "longhop": ("n", "degree", "servers"),
}


def _topology_from_args(kind: str, args: argparse.Namespace):
    """Registry-built ``(Topology, raw_or_None)`` from parsed CLI flags."""
    names = _FAMILY_ARGS.get(kind)
    if names is None:
        raise ValueError(
            f"unknown topology kind {kind!r}; valid choices: "
            + ", ".join(sorted(_FAMILY_ARGS))
        )
    params = {name: getattr(args, name) for name in names}
    if params.get("servers") == 0:
        del params["servers"]  # family default
    return registry.build_topology({"family": kind, **params})


def build_topology(kind: str, args: argparse.Namespace):
    """Deprecated: construct a topology from parsed CLI flags.

    Use :func:`repro.registry.build_topology` with an explicit spec.
    Returns ``(Topology, FatTree|None)`` as before.
    """
    warnings.warn(
        "cli.build_topology is deprecated; use repro.registry.build_topology",
        DeprecationWarning,
        stacklevel=2,
    )
    return _topology_from_args(kind, args)


def _add_topology_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "kind",
        choices=list(registry.TOPOLOGIES.available()),
        help="topology family",
    )
    p.add_argument("--k", type=int, default=8, help="fat-tree arity")
    p.add_argument(
        "--core-fraction",
        type=float,
        default=1.0,
        help="fat-tree core fraction (oversubscription)",
    )
    p.add_argument("--switches", type=int, default=32, help="jellyfish switches")
    p.add_argument(
        "--degree", type=int, default=6, help="network degree (jellyfish/xpander/longhop)"
    )
    p.add_argument("--lift", type=int, default=8, help="xpander lift size")
    p.add_argument("--q", type=int, default=5, help="slimfly prime (q = 1 mod 4)")
    p.add_argument("--n", type=int, default=5, help="longhop log2 switch count")
    p.add_argument(
        "--servers", type=int, default=0, help="servers per switch (0 = family default)"
    )
    p.add_argument("--seed", type=int, default=0, help="construction seed")
    p.add_argument(
        "--failure",
        default="",
        help=(
            "degrade the topology first: a failure spec like "
            "'links:fraction=0.08,seed=3' or 'pods:count=1' "
            "(modes: links, switches, pods, aggregation, metanodes, "
            "bisection); append lcc=true to keep only the largest "
            "surviving component"
        ),
    )


def _maybe_degrade(topo, args: argparse.Namespace):
    """Apply the --failure spec (if any) to a freshly built topology."""
    failure = getattr(args, "failure", "")
    if not failure:
        return topo
    return topo.degrade(failure)


def _build_degraded(command: str, kind: str, args: argparse.Namespace):
    """Build and degrade the requested topology, or ``None`` after reporting.

    Bad family names, bad construction parameters, and bad ``--failure``
    specs all surface as ``ValueError`` from the registry; report them on
    stderr and let the handler exit 2 (usage error) instead of leaking a
    traceback.
    """
    try:
        topo, raw = _topology_from_args(kind, args)
        return _maybe_degrade(topo, args), raw
    except ValueError as exc:
        sys.stderr.write(f"{command}: {exc}\n")
        return None


def _default_servers(kind: str, args: argparse.Namespace) -> None:
    if args.servers == 0:
        args.servers = {"fattree": 0}.get(kind, 4)


def _cmd_topology(args: argparse.Namespace) -> int:
    _default_servers(args.kind, args)
    built = _build_degraded("topology", args.kind, args)
    if built is None:
        return 2
    topo, _ = built
    connected = topo.is_connected()
    rows = [
        ["name", topo.name],
        ["switches", topo.num_switches],
        ["links", topo.num_links],
        ["servers", topo.num_servers],
        ["connected", connected],
        ["diameter", topo.diameter() if connected else "-"],
        [
            "avg shortest path",
            round(topo.average_shortest_path_length(), 4) if connected else "-",
        ],
        ["total ports", topo.total_ports()],
    ]
    if getattr(args, "failure", ""):
        rows += [
            ["failed links", len(topo.failed_links)],
            ["failed switches", len(topo.failed_switches)],
            ["connectivity", round(topo.connectivity(), 4)],
        ]
    print(format_table(["property", "value"], rows))
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    from .throughput import skew_sweep

    _default_servers(args.kind, args)
    built = _build_degraded("throughput", args.kind, args)
    if built is None:
        return 2
    topo, _ = built
    fractions = [float(x) for x in args.fractions.split(",")]
    result = skew_sweep(
        topo,
        fractions,
        solver=args.solver,
        k_paths=args.k_paths,
        seed=args.seed,
        epsilon=args.epsilon,
    )
    print(
        format_series(
            "fraction",
            result.fractions,
            {topo.name: result.throughput},
            title="Per-server throughput under longest-matching TMs",
        )
    )
    if not result.ok:
        bad = sorted(set(s for s in result.statuses if s != "optimal"))
        sys.stderr.write(
            f"throughput: solver {args.solver} reported non-optimal "
            f"solves ({', '.join(bad)}); nan entries above\n"
        )
        return 1
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .sim import NetworkParams, run_packet_experiment
    from .traffic import PoissonArrivals, Workload, pareto_hull, pfabric_web_search

    _default_servers(args.kind, args)
    built = _build_degraded("simulate", args.kind, args)
    if built is None:
        return 2
    topo, _ = built
    if args.pattern == "skew":
        pattern_spec = {"pattern": "skew", "theta": 0.1, "phi": 0.77,
                        "seed": args.seed}
    else:
        pattern_spec = {"pattern": args.pattern, "fraction": args.fraction,
                        "seed": args.seed}
    pairs = registry.traffic(pattern_spec, topo)
    sizes = (
        pfabric_web_search(args.mean_flow_bytes)
        if args.sizes == "pfabric"
        else pareto_hull(args.mean_flow_bytes)
    )
    workload = Workload(pairs, sizes, PoissonArrivals(args.rate), seed=args.seed)
    stats = run_packet_experiment(
        topo,
        workload,
        routing=args.routing,
        measure_start=args.measure_start,
        measure_end=args.measure_end,
        network_params=NetworkParams(link_rate_bps=args.link_gbps * 1e9),
        seed=args.seed,
    )
    summary = stats.summary()
    print(
        format_table(
            ["metric", "value"],
            [[k, round(v, 4) if isinstance(v, float) else v] for k, v in summary.items()],
            title=f"{topo.name} / {args.routing} / {args.pattern}({args.fraction})",
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .harness import (
        ResultCache,
        ResultsStore,
        Runner,
        SpecError,
        load_sweep_file,
    )

    try:
        specs = load_sweep_file(args.spec)
    except (OSError, json.JSONDecodeError, SpecError) as exc:
        sys.stderr.write(f"sweep: cannot load {args.spec}: {exc}\n")
        return 2
    if args.resume and args.no_cache:
        sys.stderr.write(
            "sweep: --resume reads the result cache and cannot be combined "
            "with --no-cache\n"
        )
        return 2
    if args.shard:
        from .harness import ShardSpec, select_shard

        try:
            shard = ShardSpec.parse(args.shard)
        except SpecError as exc:
            sys.stderr.write(f"sweep: bad --shard: {exc}\n")
            return 2
        total = len(specs)
        specs = select_shard(specs, shard)
        sys.stderr.write(
            f"sweep: shard {shard} runs {len(specs)} of {total} points\n"
        )
        if not specs:
            print(f"Shard {shard} is empty: nothing to run.")
            return 0
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    store = ResultsStore(args.results) if args.results else None

    skipped = 0
    if args.resume:
        # Pre-filter completed points so an interrupted sweep restarts
        # with only the remaining work (cache hits would be skipped
        # anyway, but resume reports them up front and avoids
        # re-submitting them at all).
        remaining = [s for s in specs if cache.get(s) is None]
        skipped = len(specs) - len(remaining)
        sys.stderr.write(
            f"sweep: resume skipped {skipped}/{len(specs)} "
            "already-completed points\n"
        )
        specs = remaining
        if not specs:
            print(f"Sweep already complete: all {skipped} points cached.")
            return 0

    def show_progress(p: dict) -> None:
        sys.stderr.write(
            f"\rsweep: {p['done']}/{p['total']} done "
            f"({p['ok']} ok, {p['cached']} cached, {p['failed']} failed), "
            f"{p['running']} running"
        )
        sys.stderr.flush()

    runner = Runner(
        jobs=args.jobs or None,
        cache=cache,
        store=store,
        timeout_s=args.timeout or None,
        retries=args.retries,
        progress=None if args.quiet else show_progress,
    )
    result = runner.run(specs)
    if not args.quiet:
        sys.stderr.write("\n")
    rows = []
    for record in result.records:
        headline = ("avg_fct_ms", "per_server_throughput")
        key_metric = next(
            (
                (k, record.metrics[k])
                for k in (*headline, *sorted(record.metrics))
                if k in record.metrics
            ),
            ("-", float("nan")),
        )
        rows.append([
            record.name,
            record.spec["engine"],
            record.status + (" (cached)" if record.cached else ""),
            record.attempts,
            round(record.wall_clock_s, 2),
            f"{key_metric[0]}={format_number(key_metric[1])}"
            if record.ok
            else (record.error or ""),
        ])
    counts = result.counts
    print(
        format_table(
            ["point", "engine", "status", "attempts", "wall (s)", "result"],
            rows,
            title=(
                f"Sweep of {counts['total']} points: {counts['ok']} computed, "
                f"{counts['cached']} cached, {counts['failed']} failed "
                f"in {result.wall_clock_s:.1f}s"
                + (f" ({skipped} skipped by --resume)" if skipped else "")
            ),
        )
    )
    return 0 if result.ok else 1


def _cmd_merge(args: argparse.Namespace) -> int:
    import json

    from .harness import SpecError, load_sweep_file
    from .harness.shard import merge_stores

    specs = None
    if args.spec:
        try:
            specs = load_sweep_file(args.spec)
        except (OSError, json.JSONDecodeError, SpecError) as exc:
            sys.stderr.write(f"merge: cannot load {args.spec}: {exc}\n")
            return 2
    try:
        merged = merge_stores(args.inputs, args.output, specs=specs)
    except (OSError, json.JSONDecodeError, SpecError, ValueError) as exc:
        sys.stderr.write(f"merge: {exc}\n")
        return 2
    print(
        f"Merged {len(merged.inputs)} stores -> {merged.path}: "
        f"{merged.records} records "
        f"({merged.duplicates} duplicates dropped, {merged.failed} failed)"
    )
    return 0 if merged.failed == 0 else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    import json
    import os
    import time

    from . import obs
    from .harness import Runner, SpecError, load_sweep_file
    from .obs import load_manifest, render_profile

    try:
        specs = load_sweep_file(args.spec)
    except (OSError, json.JSONDecodeError, SpecError) as exc:
        sys.stderr.write(f"profile: cannot load {args.spec}: {exc}\n")
        return 2
    if obs.enabled():
        sys.stderr.write("profile: an observability run is already active\n")
        return 2
    run_dir = args.run_dir
    if not run_dir:
        run_dir = os.path.join(
            ".repro-obs", time.strftime("%Y%m%dT%H%M%S")
        )
    obs.enable(
        run_dir=run_dir,
        meta={"sweep_file": args.spec, "points": len(specs)},
    )
    try:
        # Inline execution keeps every point's spans (engine, flowsim,
        # LP, pathcache) on this process's run; a worker pool would lose
        # them with the workers.
        runner = Runner(inline=True, retries=args.retries)
        result = runner.run(specs)
    finally:
        manifest_path = obs.disable()
    try:
        manifest = load_manifest(manifest_path)
    except (OSError, ValueError) as exc:
        sys.stderr.write(f"profile: invalid manifest: {exc}\n")
        return 1
    print(render_profile(manifest))
    print(f"\ntrace: {os.path.join(run_dir, 'trace.jsonl')}")
    print(f"manifest: {manifest_path}")
    if not result.ok:
        for record in result.records:
            if not record.ok:
                sys.stderr.write(
                    f"profile: point {record.name} failed: {record.error}\n"
                )
        return 1
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    import json
    import os

    from .harness import ResultCache, Runner
    from .resilience import CampaignError, load_campaign_file, run_campaign

    try:
        campaign = load_campaign_file(args.campaign)
    except (OSError, json.JSONDecodeError, CampaignError) as exc:
        sys.stderr.write(f"resilience: cannot load {args.campaign}: {exc}\n")
        return 2

    manifest_path = ""
    if args.run_dir:
        from . import obs

        if obs.enabled():
            sys.stderr.write(
                "resilience: an observability run is already active\n"
            )
            return 2
        obs.enable(
            run_dir=args.run_dir,
            meta={"campaign_file": args.campaign, "campaign": campaign.name},
        )
        # Inline execution keeps the campaign's spans/gauges on this
        # process's obs run (workers would take theirs with them).
        runner = Runner(inline=True, retries=args.retries)
    else:

        def show_progress(p: dict) -> None:
            sys.stderr.write(
                f"\rresilience: {p['done']}/{p['total']} done "
                f"({p['ok']} ok, {p['cached']} cached, "
                f"{p['failed']} failed), {p['running']} running"
            )
            sys.stderr.flush()

        runner = Runner(
            jobs=args.jobs or None,
            cache=None if args.no_cache else ResultCache(args.cache_dir),
            timeout_s=args.timeout or None,
            retries=args.retries,
            progress=None if args.quiet else show_progress,
        )
    try:
        result = run_campaign(campaign, runner)
    finally:
        if args.run_dir:
            from . import obs

            manifest_path = obs.disable()
    if not args.quiet and not args.run_dir:
        sys.stderr.write("\n")

    print(result.render())
    counts = result.counts
    print(
        f"\n{counts['total']} points: {counts['ok']} computed, "
        f"{counts['cached']} cached, {counts['failed']} failed "
        f"in {result.wall_clock_s:.1f}s"
    )
    for record in result.records:
        if not record.ok:
            sys.stderr.write(
                f"resilience: point {record.name} failed: {record.error}\n"
            )
    if args.out:
        with open(args.out, "w") as f:
            json.dump(result.to_payload(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"series: {args.out}")
    if manifest_path:
        print(f"trace: {os.path.join(args.run_dir, 'trace.jsonl')}")
        print(f"manifest: {manifest_path}")
    return 0 if result.ok else 1


def _cmd_design(args: argparse.Namespace) -> int:
    import json

    from .design import DesignError, DesignTarget, design_search

    try:
        with open(args.target) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        sys.stderr.write(f"design: cannot load {args.target}: {exc}\n")
        return 2
    try:
        target = DesignTarget.from_dict(doc)
        if args.no_sensitivity:
            target = target.replace(sensitivity=False)
        report = design_search(target)
    except DesignError as exc:
        sys.stderr.write(f"design: {exc}\n")
        return 2
    print(report.render())
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"report: {args.out}")
    if not report.feasible:
        sys.stderr.write(
            "design: no enumerated candidate meets the target "
            "(see the pruned/evaluated tables above)\n"
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .api import serve_forever

    serve_forever(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir or None,
        quiet=args.quiet,
    )
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    rows = [
        [p.name, round(p.total, 2), round(delta_ratio(p), 3)]
        for p in (STATIC_PORT, FIREFLY_PORT, PROJECTOR_PORT_LOW, PROJECTOR_PORT_HIGH)
    ]
    print(
        format_table(
            ["port type", "cost ($)", "delta vs static"],
            rows,
            title="Table 1 per-port costs",
        )
    )
    if args.kind:
        _default_servers(args.kind, args)
        built = _build_degraded("cost", args.kind, args)
        if built is None:
            return 2
        topo, _ = built
        print(f"\n{topo.name}: total port cost ${topology_port_cost(topo):,.0f}")
    return 0


def _cmd_cabling(args: argparse.Namespace) -> int:
    _default_servers(args.kind, args)
    built = _build_degraded("cabling", args.kind, args)
    if built is None:
        return 2
    topo, ft = built
    if args.kind == "xpander":
        report = xpander_cabling(topo)
    elif args.kind == "fattree":
        report = fattree_cabling(ft)
    else:
        report = flat_cabling(topo)
    rows = [
        ["cables", report.num_cables],
        ["bundles", report.num_bundles],
        ["cables per bundle", round(report.cables_per_bundle, 2)],
        ["total fiber (m)", round(report.total_length_m, 1)],
        ["bundled fraction", round(report.bundled_fraction, 3)],
        ["fiber cost ($, bundling discount)", round(report.fiber_cost(), 2)],
    ]
    print(format_table(["property", "value"], rows, title=f"Cabling: {topo.name}"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topology", help="build and describe a topology")
    _add_topology_args(p)
    p.set_defaults(func=_cmd_topology)

    p = sub.add_parser("throughput", help="fluid-flow skew sweep")
    _add_topology_args(p)
    p.add_argument("--fractions", default="0.2,0.4,0.6,0.8,1.0")
    p.add_argument(
        "--solver",
        choices=sorted(registry.SOLVERS.available()),
        default="exact",
        help="throughput solver backend (see docs/solvers.md)",
    )
    p.add_argument("--k-paths", type=int, default=8)
    p.add_argument(
        "--epsilon", type=float, default=0.05,
        help="mcf-approx accuracy knob (ignored by other solvers)",
    )
    p.set_defaults(func=_cmd_throughput)

    p = sub.add_parser("simulate", help="packet-level experiment")
    _add_topology_args(p)
    p.add_argument(
        "--routing",
        choices=["ecmp", "vlb", "hyb", "chyb", "aecmp", "ksp"],
        default="hyb",
    )
    p.add_argument("--pattern", choices=["a2a", "permute", "skew"], default="permute")
    p.add_argument("--fraction", type=float, default=0.3)
    p.add_argument("--sizes", choices=["pfabric", "hull"], default="pfabric")
    p.add_argument("--mean-flow-bytes", type=float, default=200_000)
    p.add_argument("--rate", type=float, default=2000.0, help="flow starts/s")
    p.add_argument("--link-gbps", type=float, default=1.0)
    p.add_argument("--measure-start", type=float, default=0.02)
    p.add_argument("--measure-end", type=float, default=0.06)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "sweep",
        help="parallel, cached experiment sweep from a JSON spec file",
    )
    p.add_argument("spec", help="sweep JSON (defaults/grid/points document)")
    p.add_argument(
        "--jobs", type=int, default=0, help="worker processes (0 = auto)"
    )
    p.add_argument(
        "--cache-dir", default=".repro-cache", help="result cache directory"
    )
    p.add_argument(
        "--no-cache", action="store_true", help="recompute every point"
    )
    p.add_argument(
        "--resume", action="store_true",
        help="skip points already in the cache; run only the remainder",
    )
    p.add_argument(
        "--results", default="", help="append RunRecords to this JSONL file"
    )
    p.add_argument(
        "--timeout", type=float, default=0.0,
        help="per-point timeout in seconds (0 = unlimited)",
    )
    p.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for failed/timed-out points",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress live progress output"
    )
    p.add_argument(
        "--shard", default="",
        help="run only shard i/N of the sweep (deterministic hash "
        "partition; e.g. --shard 0/3) and merge the JSONL outputs "
        "afterwards with `repro merge`",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "merge",
        help="merge sharded sweep JSONL results into one canonical store",
    )
    p.add_argument(
        "inputs", nargs="+", help="shard JSONL files (from sweep --results)"
    )
    p.add_argument(
        "-o", "--output", required=True, help="merged JSONL output path"
    )
    p.add_argument(
        "--spec", default="",
        help="sweep JSON the shards came from; orders the merged records "
        "in sweep-submission order (otherwise sorted by spec hash)",
    )
    p.set_defaults(func=_cmd_merge)

    p = sub.add_parser(
        "profile",
        help="run a sweep in-process under observability; print the breakdown",
    )
    p.add_argument("spec", help="sweep JSON (defaults/grid/points document)")
    p.add_argument(
        "--run-dir",
        default="",
        help="trace/manifest output directory (default: .repro-obs/<stamp>)",
    )
    p.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts for failed points",
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "resilience",
        help="failure campaign: throughput retained vs. fraction failed",
    )
    p.add_argument(
        "campaign",
        help="campaign JSON (topologies/failures grid; see docs/resilience.md)",
    )
    p.add_argument(
        "--jobs", type=int, default=0, help="worker processes (0 = auto)"
    )
    p.add_argument(
        "--cache-dir", default=".repro-cache", help="result cache directory"
    )
    p.add_argument(
        "--no-cache", action="store_true", help="recompute every point"
    )
    p.add_argument(
        "--timeout", type=float, default=0.0,
        help="per-point timeout in seconds (0 = unlimited)",
    )
    p.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for failed/timed-out points",
    )
    p.add_argument(
        "--out", default="", help="write the retained-throughput series JSON here"
    )
    p.add_argument(
        "--run-dir",
        default="",
        help=(
            "run inline under observability, writing trace + manifest "
            "to this directory (disables the worker pool)"
        ),
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress live progress output"
    )
    p.set_defaults(func=_cmd_resilience)

    p = sub.add_parser(
        "design",
        help="inverse design: cheapest topology meeting an SLO target",
    )
    p.add_argument(
        "target", help="design target JSON (see docs/design.md)"
    )
    p.add_argument(
        "--no-sensitivity", action="store_true",
        help="skip the tornado sensitivity pass",
    )
    p.add_argument(
        "--out", default="", help="write the full DesignReport JSON here"
    )
    p.set_defaults(func=_cmd_design)

    p = sub.add_parser(
        "serve",
        help="long-lived topology-evaluation HTTP service (repro.api)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8070, help="bind port")
    p.add_argument(
        "--workers", type=int, default=4,
        help="max requests doing library work concurrently",
    )
    p.add_argument(
        "--cache-dir", default="",
        help="on-disk result cache for /simulate and /sweep "
        "(default: in-memory warm state only)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress the access log"
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("cost", help="Table 1 costs (+ optional topology cost)")
    p.add_argument("--kind", default="", help="optionally price a topology")
    _add_topology_args_optional(p)
    p.set_defaults(func=_cmd_cost)

    p = sub.add_parser("cabling", help="Fig 3-style cabling report")
    _add_topology_args(p)
    p.set_defaults(func=_cmd_cabling)

    args = parser.parse_args(argv)
    return args.func(args)


def _add_topology_args_optional(p: argparse.ArgumentParser) -> None:
    """Topology args without the positional kind (for `cost`)."""
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--core-fraction", type=float, default=1.0)
    p.add_argument("--switches", type=int, default=32)
    p.add_argument("--degree", type=int, default=6)
    p.add_argument("--lift", type=int, default=8)
    p.add_argument("--q", type=int, default=5)
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--servers", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
