"""Unified string-spec construction registry: topologies, traffic, routing.

One discovery-and-construction surface for the objects experiments are
built from, replacing the per-module if/elif chains (``cli``'s topology
dispatch, the harness's family switch, ``make_routing``'s dict).  Each
family of objects lives in a :class:`Registry` keyed by name:

* :data:`TOPOLOGIES` — ``fattree``, ``jellyfish``, ``xpander``,
  ``slimfly``, ``longhop``.  Factories return the family's natural
  object (a :class:`~repro.topologies.FatTree` for fat-trees, a bare
  :class:`~repro.topologies.Topology` otherwise); :func:`topology`
  unwraps to the ``Topology``.
* :data:`TRAFFIC` — pair distributions / TMs, built against a topology:
  ``a2a``, ``permute``, ``skew``, ``projector``, ``longest_matching``.
* :data:`ROUTINGS` — packet-engine routing policies (registered by
  ``repro.sim.routing``): ``ecmp``, ``vlb``, ``hyb``, ``chyb``,
  ``aecmp``, ``ksp``.
* :data:`FAILURES` — failure-scenario modes (registered by
  ``repro.resilience.scenario``): ``links``, ``switches``, ``pods``,
  ``aggregation``, ``metanodes``, ``bisection``; built scenarios apply
  through ``Topology.degrade``.
* :data:`SOLVERS` — throughput solver backends (registered by
  ``repro.solvers.backends``): ``highs-exact`` (alias ``exact``),
  ``highs-batched``, ``highs-paths`` (alias ``paths``), ``mcf-approx``;
  selectable from ``ExperimentSpec`` workloads, sweep JSON, and the
  CLI ``--solver`` flag.
* :data:`DESIGNS` — per-family candidate enumerators for the inverse
  design search (registered by ``repro.design.space``): ``fattree``,
  ``jellyfish``, ``xpander``, ``slimfly``, ``longhop``; specs like
  ``"jellyfish:degree_max=6,sizes=3"`` bound one family's grid in a
  :class:`repro.design.DesignTarget`.

A *spec* is either a mapping (``{"family": "jellyfish", "switches": 10}``
— the harness's native form) or a compact string ``"name:key=value,..."``
with JSON-typed values::

    registry.topology("jellyfish:switches=10,degree=4,servers=2,seed=1")
    registry.routing("ksp:k=8", topo, seed=3)

Parameter names mirror the CLI flags and harness spec fields, so the
same spec works in all three front ends.  Unknown names and parameters
raise :class:`RegistryError` (a ``ValueError``) naming the valid
choices.

This module imports nothing from the rest of the library at module
level; factories are registered lazily (topologies/traffic on first
lookup, routings when ``repro.sim.routing`` loads), which keeps it
import-cycle-free and cheap to import.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

__all__ = [
    "RegistryError",
    "Registry",
    "TOPOLOGIES",
    "TRAFFIC",
    "ROUTINGS",
    "FAILURES",
    "SOLVERS",
    "DESIGNS",
    "parse_spec",
    "topology",
    "build_topology",
    "traffic",
    "routing",
    "failure",
    "solver",
    "design_space",
]


class RegistryError(ValueError):
    """Unknown registry name, bad parameters, or a malformed spec."""


class Registry:
    """Named factories for one kind of object, with discovery.

    Parameters
    ----------
    kind:
        Human-readable singular kind (``"topology"``), used in error
        messages and discovery output.
    loader:
        Optional callable run once before the first lookup; it performs
        the imports whose side effects (or explicit calls) register the
        built-in factories.  Keeps this module free of import cycles.
    """

    def __init__(self, kind: str, loader: Optional[Callable[[], None]] = None):
        self.kind = kind
        self._factories: Dict[str, Callable[..., Any]] = {}
        self._descriptions: Dict[str, str] = {}
        self._loader = loader
        self._loaded = loader is None

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            # Flip first: the loader's imports may call back into this
            # registry (e.g. a module registering itself at import time).
            self._loaded = True
            self._loader()

    def register(
        self,
        name: str,
        factory: Callable[..., Any],
        description: str = "",
    ) -> Callable[..., Any]:
        """Bind ``name`` to ``factory``; re-registration replaces."""
        self._factories[name] = factory
        self._descriptions[name] = description
        return factory

    def available(self) -> Tuple[str, ...]:
        """Every registered name, sorted (CLI ``choices`` ready)."""
        self._ensure_loaded()
        return tuple(sorted(self._factories))

    def describe(self, name: str) -> str:
        """The one-line description registered with ``name``."""
        self.get(name)
        return self._descriptions[name]

    def get(self, name: str) -> Callable[..., Any]:
        """The factory behind ``name``; raises on unknown names."""
        self._ensure_loaded()
        factory = self._factories.get(name)
        if factory is None:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; valid choices: "
                + ", ".join(self.available())
            )
        return factory

    def build(self, name: str, *args: Any, **params: Any) -> Any:
        """Construct ``name`` with ``params``.

        A factory ``TypeError`` (unknown/missing parameter) is re-raised
        as :class:`RegistryError` carrying the offending parameter name.
        """
        factory = self.get(name)
        try:
            return factory(*args, **params)
        except TypeError as exc:
            raise RegistryError(
                f"cannot build {self.kind} {name!r}: {exc}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return name in self._factories

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._factories)


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------

#: Mapping keys accepted as the name field, in lookup order.
_NAME_KEYS = ("family", "pattern", "name", "kind")


def _parse_value(text: str) -> Any:
    """JSON-typed scalar parse with bare-string fallback.

    ``"4"`` → int, ``"0.5"`` → float, ``"true"`` → bool, ``"shift"`` →
    the string itself.
    """
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def parse_spec(
    spec: Any, key: str = "name"
) -> Tuple[str, Dict[str, Any]]:
    """Split a spec into ``(name, params)``.

    Strings use the compact form ``"name"`` or ``"name:k=4,seed=1"``.
    Mappings take their name from ``key`` (falling back to the other
    conventional keys — ``family``/``pattern``/``name``/``kind``) and
    pass every other entry through as parameters.
    """
    if isinstance(spec, str):
        name, sep, rest = spec.partition(":")
        name = name.strip()
        params: Dict[str, Any] = {}
        if sep:
            for item in rest.split(","):
                item = item.strip()
                if not item:
                    continue
                pkey, eq, value = item.partition("=")
                if not eq:
                    raise RegistryError(
                        f"malformed parameter {item!r} in spec {spec!r} "
                        "(expected key=value)"
                    )
                params[pkey.strip()] = _parse_value(value.strip())
        if not name:
            raise RegistryError(f"spec {spec!r} has no name")
        return name, params
    if isinstance(spec, Mapping):
        params = dict(spec)
        for candidate in (key, *_NAME_KEYS):
            if candidate in params:
                return str(params.pop(candidate)), params
        raise RegistryError(
            f"spec mapping needs a {key!r} key, got {sorted(params)}"
        )
    raise RegistryError(
        f"cannot parse a spec from {type(spec).__name__!r} "
        "(expected str or mapping)"
    )


# ----------------------------------------------------------------------
# Built-in factories
# ----------------------------------------------------------------------
def _load_topologies() -> None:
    from .topologies import (
        fattree,
        jellyfish,
        longhop,
        oversubscribed_fattree,
        slimfly,
        xpander,
    )

    def fattree_factory(k=8, core_fraction=1.0, servers=None):
        if core_fraction >= 1.0:
            return fattree(k, servers_per_edge=servers)
        return oversubscribed_fattree(k, core_fraction, servers_per_edge=servers)

    def jellyfish_factory(switches=32, degree=6, servers=4, seed=0):
        return jellyfish(switches, degree, servers, seed=seed)

    def xpander_factory(degree=6, lift=8, servers=4, matching="shift", seed=0):
        return xpander(degree, lift, servers, matching=matching, seed=seed)

    def slimfly_factory(q=5, servers=4):
        return slimfly(q, servers)

    def longhop_factory(n=5, degree=6, servers=4):
        return longhop(n, degree, servers)

    TOPOLOGIES.register(
        "fattree", fattree_factory,
        "folded-Clos fat-tree; k, core_fraction, servers",
    )
    TOPOLOGIES.register(
        "jellyfish", jellyfish_factory,
        "random regular graph; switches, degree, servers, seed",
    )
    TOPOLOGIES.register(
        "xpander", xpander_factory,
        "deterministic expander; degree, lift, servers, matching, seed",
    )
    TOPOLOGIES.register(
        "slimfly", slimfly_factory, "MMS graph; q (prime = 1 mod 4), servers"
    )
    TOPOLOGIES.register(
        "longhop", longhop_factory,
        "Cayley graph over GF(2)^n; n, degree, servers",
    )


def _load_traffic() -> None:
    from .traffic import (
        a2a_pair_distribution,
        longest_matching_tm,
        permute_pair_distribution,
        projector_like_pair_distribution,
        skew_pair_distribution,
    )

    def a2a_factory(topology, fraction=1.0, seed=0, take_first=False):
        return a2a_pair_distribution(
            topology, fraction, seed=seed, take_first=take_first
        )

    def permute_factory(topology, fraction=1.0, seed=0, take_first=False):
        return permute_pair_distribution(
            topology, fraction, seed=seed, take_first=take_first
        )

    def skew_factory(topology, theta=0.04, phi=0.77, seed=0):
        return skew_pair_distribution(topology, theta, phi, seed=seed)

    def projector_factory(topology, seed=0):
        return projector_like_pair_distribution(topology, seed=seed)

    def longest_matching_factory(topology, fraction=1.0, seed=0):
        return longest_matching_tm(topology, fraction, seed=seed)

    TRAFFIC.register(
        "a2a", a2a_factory,
        "all-to-all pair distribution over a server fraction",
    )
    TRAFFIC.register(
        "permute", permute_factory,
        "random rack-permutation pairs over a server fraction",
    )
    TRAFFIC.register(
        "skew", skew_factory, "MSR-style skewed pairs; theta, phi"
    )
    TRAFFIC.register(
        "projector", projector_factory, "ProjecToR-like heavy-tailed pairs"
    )
    TRAFFIC.register(
        "longest_matching", longest_matching_factory,
        "adversarial longest-matching TM (fluid engines)",
    )


def _load_routings() -> None:
    # Routing factories self-register at the bottom of repro.sim.routing
    # (this module cannot import sim machinery at load time).
    from .sim import routing as _routing  # noqa: F401


def _load_failures() -> None:
    # Failure-mode factories self-register at the bottom of
    # repro.resilience.scenario (which imports topologies).
    from .resilience import scenario as _scenario  # noqa: F401


def _load_solvers() -> None:
    from .solvers.backends import register_builtin_solvers

    register_builtin_solvers(SOLVERS)


def _load_designs() -> None:
    from .design.space import register_builtin_design_spaces

    register_builtin_design_spaces(DESIGNS)


TOPOLOGIES = Registry("topology", loader=_load_topologies)
TRAFFIC = Registry("traffic pattern", loader=_load_traffic)
ROUTINGS = Registry("routing", loader=_load_routings)
FAILURES = Registry("failure mode", loader=_load_failures)
SOLVERS = Registry("solver", loader=_load_solvers)
DESIGNS = Registry("design space", loader=_load_designs)


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def build_topology(spec: Any) -> Tuple[Any, Any]:
    """Build a topology spec; returns ``(topology, raw_or_None)``.

    ``raw`` is the factory's native object when it is richer than the
    bare :class:`~repro.topologies.Topology` (a ``FatTree``, whose
    layer structure the cabling model needs), else ``None``.
    """
    name, params = parse_spec(spec, key="family")
    built = TOPOLOGIES.build(name, **params)
    topo = getattr(built, "topology", built)
    return topo, (built if built is not topo else None)


def topology(spec: Any) -> Any:
    """Build a topology spec down to its :class:`Topology`."""
    return build_topology(spec)[0]


def traffic(spec: Any, topology: Any) -> Any:
    """Build a traffic pattern spec against ``topology``."""
    name, params = parse_spec(spec, key="pattern")
    return TRAFFIC.build(name, topology, **params)


def routing(spec: Any, topology: Any, **defaults: Any) -> Any:
    """Build a routing spec against ``topology`` (or a bare graph).

    ``defaults`` (e.g. ``seed=3``) fill parameters the spec itself does
    not set, so callers can thread experiment-level seeds through
    without overriding an explicit ``"ksp:seed=7"``.
    """
    name, params = parse_spec(spec, key="name")
    for pkey, value in defaults.items():
        params.setdefault(pkey, value)
    graph = getattr(topology, "graph", topology)
    return ROUTINGS.build(name, graph, **params)


def solver(spec: Any, **defaults: Any) -> Any:
    """Build a throughput solver backend from a spec.

    Accepts registry names (``"highs-batched"``), compact strings with
    parameters (``"mcf-approx:epsilon=0.1"``, ``"highs-paths:k=4"``),
    and mappings with a ``name`` key.  ``defaults`` fill parameters the
    spec itself does not set.
    """
    name, params = parse_spec(spec, key="name")
    for pkey, value in defaults.items():
        params.setdefault(pkey, value)
    return SOLVERS.build(name, **params)


def design_space(spec: Any, **defaults: Any) -> Any:
    """Build one family's design-space enumerator from a spec.

    Accepts bare family names (``"jellyfish"``), compact strings with
    grid bounds (``"jellyfish:degree_max=6,sizes=3"``), and mappings
    with a ``family`` key.  ``defaults`` fill parameters the spec
    itself does not set.
    """
    name, params = parse_spec(spec, key="family")
    for pkey, value in defaults.items():
        params.setdefault(pkey, value)
    return DESIGNS.build(name, **params)


def failure(spec: Any) -> Any:
    """Build a failure spec into a :class:`~repro.resilience.FailureScenario`.

    Accepts compact strings (``"links:fraction=0.08,seed=3"``,
    ``"pods:count=1"``), mappings with a ``mode`` key (the harness's
    JSON form), and — idempotently — scenario instances, so the same
    spec works in CLI flags, sweep files, and campaign files.
    """
    if hasattr(spec, "apply") and hasattr(spec, "to_spec"):
        return spec
    mode, params = parse_spec(spec, key="mode")
    return FAILURES.build(mode, **params)
