"""Typed HTTP error mapping for the topology-evaluation service.

Every failure a request can produce is classified into an
:class:`ApiError` carrying the HTTP status, a stable machine-readable
``code``, and structured ``details``, and every error response — 400,
404, 405, 409, 413, 422, 500 alike — has the same envelope::

    {"error": {"code": "bad_spec", "message": "...",
               "request_id": "...", "details": {...}},
     "request_id": "..."}

The ``request_id`` lives *inside* the error object (so an error body is
self-contained when logged or forwarded) and is mirrored at the top
level for uniformity with success responses.

The mapping mirrors the library's own exception taxonomy:

===========================  ======  ==================================
exception                    status  code
===========================  ======  ==================================
malformed JSON body          400     ``bad_json``
:class:`SpecError` /
:class:`RegistryError` /
``ValueError``               400     ``bad_spec``
unknown path                 404     ``not_found``
method not allowed           405     ``method_not_allowed``
job registry full            409     ``too_many_jobs``
body over the size limit     413     ``payload_too_large``
:class:`SolverFailure`
(``InfeasibleError`` /
``UnboundedError`` /
numerical)                   422     ``solver_failure``
anything else                500     ``internal``
===========================  ======  ==================================

400s are *caller* problems (fix the request), 422 is a well-formed
request whose LP has no usable optimum (an experiment outcome — the
solver taxonomy rides along in ``details``), and 500s are bugs worth a
server-side traceback.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..harness.spec import SpecError
from ..registry import RegistryError
from ..throughput.errors import SolverFailure

__all__ = ["ApiError", "error_payload", "classify_exception"]


class ApiError(Exception):
    """A request failure with a determined HTTP status.

    Raised anywhere inside request handling; the dispatcher turns it
    into the uniform error body.  ``details`` must be JSON-serializable.

    The same type is what clients raise: :meth:`ApiResponse.
    raise_for_status` rebuilds an ``ApiError`` from the error envelope,
    so callers on either side of the wire catch one exception carrying
    the status, stable ``code``, structured ``details``, and the
    server-assigned ``request_id`` (client side only).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        details: Optional[Dict[str, Any]] = None,
        request_id: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message
        self.details = dict(details or {})
        self.request_id = request_id

    def payload(self, request_id: Optional[str] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {"code": self.code, "message": self.message}
        if request_id or self.request_id:
            body["request_id"] = request_id or self.request_id
        if self.details:
            body["details"] = self.details
        return {"error": body}


def error_payload(
    status: int,
    code: str,
    message: str,
    details: Optional[Dict[str, Any]] = None,
    request_id: Optional[str] = None,
) -> Dict[str, Any]:
    """The uniform error body for a non-exception failure path."""
    return ApiError(status, code, message, details).payload(request_id)


def _solver_details(exc: SolverFailure) -> Dict[str, Any]:
    """The taxonomy payload carried on 422 responses.

    Everything the typed :class:`SolverFailure` knows — which LP
    formulation failed, the raw HiGHS status, iterations spent, and the
    call-site context (topology name, demand count) — so a planner can
    distinguish "this TM is infeasible on this degraded topology" from
    "the solver hit numerical trouble" without parsing the message.
    """
    return {
        "failure": type(exc).__name__,
        "formulation": exc.formulation,
        "status_code": exc.status_code,
        "iterations": exc.iterations,
        "context": {str(k): str(v) for k, v in exc.context.items()},
    }


def classify_exception(exc: BaseException) -> ApiError:
    """Map any exception raised during request handling to an ApiError.

    Idempotent on :class:`ApiError` itself.  The fallthrough is a 500
    whose message carries only the exception type and text — no
    traceback leaks into the response (the server logs it instead).
    """
    if isinstance(exc, ApiError):
        return exc
    if isinstance(exc, SolverFailure):
        return ApiError(
            422, "solver_failure", str(exc), details=_solver_details(exc)
        )
    if isinstance(exc, (SpecError, RegistryError)):
        return ApiError(400, "bad_spec", str(exc))
    if isinstance(exc, (ValueError, TypeError)):
        # Factory-level validation (bad parameter values/types) that did
        # not come through the registries' typed wrappers.
        return ApiError(400, "bad_spec", f"{type(exc).__name__}: {exc}")
    return ApiError(500, "internal", f"{type(exc).__name__}: {exc}")
