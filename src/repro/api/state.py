"""Warm in-process state shared across requests of the API service.

The whole point of running topology evaluation as a *long-lived* service
(rather than a process per query) is that the expensive, reusable
structure survives between requests:

* **built topologies** — constructing a topology (and degrading it under
  a failure scenario) is pure given its spec, so equal specs share one
  immutable instance;
* **solver contexts** — the exact LP's per-topology structure
  (:class:`~repro.solvers.batched.BatchedTopologyContext`: ArcTable +
  component labels) is hoisted once per topology and reused by every
  subsequent solve, exactly as the harness Runner does for batched
  sweeps — but across *requests* instead of across sweep points;
* **incremental solver contexts** — for warm-capable solvers
  (``highs-incremental``), the assembled LP structures and (with the
  optional ``highspy`` dependency) live solver instances whose simplex
  bases carry over, so a repeated query re-solves from the previous
  basis instead of from scratch;
* **solve results** — throughput queries are deterministic functions of
  their canonical payload, so identical queries are served straight from
  a content-addressed memo (the in-memory analogue of the harness's
  ``.repro-cache/``);
* **path caches** — topology properties (diameter, average path length)
  are served from the process-wide
  :func:`repro.perf.shared_path_cache`, which request handlers share
  with every other layer of the library.

All the LRUs are guarded by one lock held only around dictionary
operations — construction happens outside it, so two concurrent misses
on *different* topologies build in parallel, and a raced double-build of
the *same* key keeps the first-inserted instance.  Counters are plain
ints under the same lock, mirrored to :mod:`repro.obs` counters
(``api.topology.hits`` etc.) so warm-state behaviour shows up in traces.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from .. import obs, registry
from ..solvers.batched import BatchedTopologyContext
from ..solvers.colgen import ColgenTopologyContext
from ..solvers.incremental import IncrementalTopologyContext
from ..topologies import Topology

__all__ = ["WarmState", "canonical_key"]


def canonical_key(payload: Any) -> str:
    """A stable content key for any JSON-serializable payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class _Lru:
    """A tiny counted LRU: mapping + hit/miss/eviction counters."""

    def __init__(self, name: str, max_entries: int) -> None:
        self.name = name
        self.max_entries = max_entries
        self.entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[Any]:
        value = self.entries.get(key)
        if value is None:
            self.misses += 1
            obs.add(f"api.{self.name}.misses")
            return None
        self.entries.move_to_end(key)
        self.hits += 1
        obs.add(f"api.{self.name}.hits")
        return value

    def put(self, key: str, value: Any) -> Any:
        """Insert; a raced duplicate keeps (and returns) the incumbent."""
        incumbent = self.entries.get(key)
        if incumbent is not None:
            return incumbent
        self.entries[key] = value
        while len(self.entries) > self.max_entries:
            self.entries.popitem(last=False)
            self.evictions += 1
            obs.add(f"api.{self.name}.evictions")
        return value

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self.entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class WarmState:
    """The request handlers' shared caches, thread-safe.

    Parameters bound the footprint: topologies and solver contexts hold
    dense per-topology structure (an ArcTable, component labels), so
    their LRUs stay small; result memo entries are tiny JSON fragments.
    """

    def __init__(
        self,
        max_topologies: int = 32,
        max_contexts: int = 32,
        max_results: int = 4096,
        max_incremental: int = 8,
        max_colgen: int = 8,
    ) -> None:
        self._lock = threading.RLock()
        self._topologies = _Lru("topology", max_topologies)
        self._contexts = _Lru("context", max_contexts)
        self._results = _Lru("results", max_results)
        self._incremental = _Lru("incremental", max_incremental)
        self._colgen = _Lru("colgen", max_colgen)
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # Topologies
    # ------------------------------------------------------------------
    @staticmethod
    def topology_key(spec: Any, failures: Any = None) -> str:
        """The canonical cache key of a (topology spec, failures) pair.

        Raises :class:`~repro.registry.RegistryError` on malformed
        specs — before any construction work happens.
        """
        name, params = registry.parse_spec(spec, key="family")
        failure_spec = None
        if failures is not None:
            failure_spec = registry.failure(failures).to_spec()
        return canonical_key(
            {"family": name, "params": params, "failures": failure_spec}
        )

    @staticmethod
    def build_topology(spec: Any, failures: Any = None) -> Topology:
        """Cold-path construction: build (and degrade) from scratch."""
        topo = registry.topology(spec)
        if failures is not None:
            topo = topo.degrade(registry.failure(failures))
        return topo

    def topology(self, spec: Any, failures: Any = None) -> Tuple[Topology, bool]:
        """The warm topology for a spec; returns ``(topology, was_hit)``.

        Cached topologies are treated as immutable, which every layer of
        the library already assumes (``degrade`` copies, generators
        build fresh graphs).
        """
        key = self.topology_key(spec, failures)
        with self._lock:
            topo = self._topologies.get(key)
        if topo is not None:
            return topo, True
        topo = self.build_topology(spec, failures)
        with self._lock:
            return self._topologies.put(key, topo), False

    # ------------------------------------------------------------------
    # Exact-LP solver contexts (the persistent ArcTables)
    # ------------------------------------------------------------------
    def context(self, spec: Any, topology: Topology, failures: Any = None
                ) -> Tuple[BatchedTopologyContext, bool]:
        """The warm per-topology LP context; returns ``(context, was_hit)``.

        Keyed on the topology *spec* (not the graph structure alone)
        because the ArcTable bakes in per-arc capacities, which the
        structural content hash deliberately ignores.
        """
        key = self.topology_key(spec, failures)
        with self._lock:
            context = self._contexts.get(key)
        if context is not None:
            return context, True
        context = BatchedTopologyContext(topology)
        with self._lock:
            return self._contexts.put(key, context), False

    # ------------------------------------------------------------------
    # Incremental (warm-started) solver contexts
    # ------------------------------------------------------------------
    def incremental(
        self, spec: Any, topology: Topology, failures: Any = None
    ) -> Tuple[IncrementalTopologyContext, bool]:
        """The warm incremental LP context; returns ``(context, was_hit)``.

        Unlike :meth:`context` (a stateless ArcTable hoist), these hold
        assembled LP structures — and with ``highspy`` installed, live
        solver instances whose simplex bases carry over — so repeated
        ``/throughput`` and ``/sweep`` requests against the same spec
        warm-start off *prior requests*.  Each context guards its own
        mutable state with an internal lock, so concurrent handlers
        sharing one context serialize at the solve, not here.  Bounded
        tighter than the other LRUs: contexts hold dense matrices per
        cached demand structure.
        """
        key = self.topology_key(spec, failures)
        with self._lock:
            context = self._incremental.get(key)
        if context is not None:
            return context, True
        context = IncrementalTopologyContext(topology)
        with self._lock:
            return self._incremental.put(key, context), False

    # ------------------------------------------------------------------
    # Column-generation solver contexts (the persistent path pools)
    # ------------------------------------------------------------------
    def colgen(
        self, spec: Any, topology: Topology, failures: Any = None
    ) -> Tuple[ColgenTopologyContext, bool]:
        """The warm colgen context; returns ``(context, was_hit)``.

        Holds the per-topology path pool
        (:class:`~repro.solvers.colgen.ColgenTopologyContext`): columns
        generated for one request seed the restricted master of the
        next, so repeated ``/throughput`` queries against the same spec
        typically converge in a round or two.  Bounded like the
        incremental LRU — each context holds an ArcTable plus its pool.
        """
        key = self.topology_key(spec, failures)
        with self._lock:
            context = self._colgen.get(key)
        if context is not None:
            return context, True
        context = ColgenTopologyContext(topology)
        with self._lock:
            return self._colgen.put(key, context), False

    # ------------------------------------------------------------------
    # Content-addressed result memo
    # ------------------------------------------------------------------
    def result_get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._results.get(key)

    def result_put(self, key: str, payload: Dict[str, Any]) -> None:
        with self._lock:
            self._results.put(key, payload)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """A JSON-ready snapshot for the ``/context`` manifest."""
        from ..perf import shared_cache_stats
        from ..solvers.incremental import warm_start_stats

        with self._lock:
            warm = {
                "topologies": self._topologies.stats(),
                "solver_contexts": self._contexts.stats(),
                "results": self._results.stats(),
            }
            incremental = self._incremental.stats()
            incremental["contexts"] = [
                ctx.stats() for ctx in self._incremental.entries.values()
            ]
            colgen = self._colgen.stats()
            colgen["contexts"] = [
                ctx.stats() for ctx in self._colgen.entries.values()
            ]
        warm["incremental_contexts"] = incremental
        warm["colgen_contexts"] = colgen
        warm["path_cache"] = shared_cache_stats()
        warm["warm_start"] = warm_start_stats()
        return warm

    def clear(self) -> None:
        """Drop every warm entry (tests; counters are kept)."""
        with self._lock:
            self._topologies.entries.clear()
            self._contexts.entries.clear()
            self._results.entries.clear()
            self._incremental.entries.clear()
            self._colgen.entries.clear()
