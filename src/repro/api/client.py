"""Clients for the topology-evaluation service.

Three layers, lowest first:

* :class:`InProcessClient` drives :meth:`ApiService.dispatch` directly —
  no sockets — so tests exercise the exact dispatcher the HTTP server
  uses (status codes, error bodies, warm-state behaviour) without port
  management.
* :class:`HttpClient` is a thin ``http.client`` wrapper for talking to
  a real server (the CI smoke job and the load bench use it); it is
  stdlib-only like everything else in :mod:`repro.api`, and retries
  *idempotent GETs* a bounded number of times with backoff when the
  connection fails transiently.
* :class:`ReproClient` is the recommended entry point: a typed facade
  over either transport whose methods (``context()``, ``throughput()``,
  ``simulate()``, ``sweep()``, ``compare()``, ``design()``,
  ``submit_job()`` / ``wait_job()`` / ``cancel_job()``) take keyword
  arguments instead of hand-built paths and bodies, raise the typed
  :class:`~repro.api.errors.ApiError` (full error envelope: status,
  stable code, details, request id) on failure, and return typed result
  objects.

Raw transports return :class:`ApiResponse`, which deliberately mirrors
the shape of popular HTTP clients (``status``, ``json``, ``ok``,
``raise_for_status``) without depending on any.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..design import DesignReport, DesignTarget
from .errors import ApiError
from .service import ApiService

__all__ = [
    "ApiResponse",
    "InProcessClient",
    "HttpClient",
    "ReproClient",
    "ServiceContext",
    "ThroughputEvaluation",
    "SimulationResult",
    "SweepResult",
    "CompareResult",
    "JobHandle",
]


@dataclass
class ApiResponse:
    """One service response: HTTP status + parsed JSON payload."""

    status: int
    json: Dict[str, Any]
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def request_id(self) -> str:
        return str(self.json.get("request_id", ""))

    def raise_for_status(self) -> "ApiResponse":
        """Raise the typed :class:`ApiError` carried by an error body.

        The raised error holds the full envelope — HTTP status, stable
        machine-readable ``code``, ``details``, and the server-assigned
        ``request_id`` — so callers can branch on ``exc.code`` instead
        of parsing a message string.
        """
        if not self.ok:
            error = self.json.get("error", {})
            raise ApiError(
                self.status,
                str(error.get("code", "unknown")),
                str(error.get("message", f"API request failed with {self.status}")),
                details=error.get("details"),
                request_id=error.get("request_id") or self.request_id or None,
            )
        return self


class InProcessClient:
    """Drives an :class:`ApiService` without a network round-trip.

    ``body`` may be a mapping (the common case) or raw ``bytes``/``str``
    to exercise the JSON/size validation exactly as the wire path does.
    """

    def __init__(self, service: Optional[ApiService] = None) -> None:
        self.service = service or ApiService()

    def request(
        self,
        method: str,
        path: str,
        body: Union[Dict[str, Any], bytes, str, None] = None,
        request_id: Optional[str] = None,
    ) -> ApiResponse:
        status, payload, headers = self.service.dispatch(
            method, path, body, request_id=request_id
        )
        return ApiResponse(status=status, json=payload, headers=headers)

    def get(self, path: str, **kwargs: Any) -> ApiResponse:
        return self.request("GET", path, **kwargs)

    def post(
        self,
        path: str,
        body: Union[Dict[str, Any], bytes, str, None] = None,
        **kwargs: Any,
    ) -> ApiResponse:
        return self.request("POST", path, body, **kwargs)

    def delete(self, path: str, **kwargs: Any) -> ApiResponse:
        return self.request("DELETE", path, **kwargs)

    def close(self) -> None:
        """Symmetry with :class:`HttpClient`; nothing to release."""


class HttpClient:
    """A minimal stdlib HTTP client for a running :class:`ApiServer`.

    One persistent keep-alive connection per instance — callers doing
    concurrent load use one ``HttpClient`` per thread.

    Transient connection failures (a closed keep-alive socket, a
    refused/reset connection while the server restarts) are retried
    with exponential backoff — but only for **idempotent GETs**, up to
    ``get_retries`` extra attempts.  Non-GET requests get exactly one
    reconnect-and-resend when the *request* could not be sent on a
    stale pooled connection; a POST that died mid-response is never
    blindly repeated.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        get_retries: int = 3,
        backoff_s: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.get_retries = max(0, int(get_retries))
        self.backoff_s = float(backoff_s)
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def _reconnect(self) -> None:
        self._conn.close()
        self._conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _read_response(self) -> ApiResponse:
        raw = self._conn.getresponse()
        data = raw.read()
        return ApiResponse(
            status=raw.status,
            json=json.loads(data.decode()) if data else {},
            headers=dict(raw.headers.items()),
        )

    def request(
        self,
        method: str,
        path: str,
        body: Union[Dict[str, Any], bytes, str, None] = None,
        request_id: Optional[str] = None,
    ) -> ApiResponse:
        if isinstance(body, dict):
            body = json.dumps(body).encode()
        elif isinstance(body, str):
            body = body.encode()
        headers = {"Content-Type": "application/json"}
        if request_id:
            headers["X-Request-Id"] = request_id
        attempts = 1 + (self.get_retries if method == "GET" else 1)
        for attempt in range(attempts):
            # The send and the response read fail differently: a send
            # that never went out is safe to repeat for any method, but
            # once the request is on the wire the server may already
            # have acted on it, so only idempotent GETs retry past
            # getresponse()/read() failures.
            try:
                self._conn.request(method, path, body=body, headers=headers)
            except (http.client.HTTPException, OSError):
                self._reconnect()
                if attempt + 1 >= attempts:
                    raise
                if method == "GET" and self.backoff_s:
                    time.sleep(self.backoff_s * (2 ** attempt))
                continue
            try:
                return self._read_response()
            except (http.client.HTTPException, OSError):
                self._reconnect()
                if method != "GET" or attempt + 1 >= attempts:
                    raise
                if self.backoff_s:
                    time.sleep(self.backoff_s * (2 ** attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def get(self, path: str, **kwargs: Any) -> ApiResponse:
        return self.request("GET", path, **kwargs)

    def post(
        self,
        path: str,
        body: Union[Dict[str, Any], bytes, str, None] = None,
        **kwargs: Any,
    ) -> ApiResponse:
        return self.request("POST", path, body, **kwargs)

    def delete(self, path: str, **kwargs: Any) -> ApiResponse:
        return self.request("DELETE", path, **kwargs)

    def close(self) -> None:
        self._conn.close()


# ----------------------------------------------------------------------
# Typed results for the facade
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceContext:
    """The ``GET /v1/context`` manifest, typed at the top level."""

    service: str
    api_version: str
    library_version: str
    registries: Dict[str, Dict[str, str]]
    caches: Dict[str, Any]
    limits: Dict[str, Any]
    raw: Dict[str, Any]


@dataclass(frozen=True)
class ThroughputEvaluation:
    """One topology's longest-matching throughput evaluation."""

    topology: Dict[str, Any]
    solver: str
    seed: int
    results: List[Dict[str, Any]]
    warm: Dict[str, Any]
    raw: Dict[str, Any]

    def per_server(self, fraction: Optional[float] = None) -> float:
        """Per-server throughput at ``fraction`` (default: the first)."""
        for entry in self.results:
            if fraction is None or entry["fraction"] == fraction:
                return float(entry["per_server_throughput"])
        raise KeyError(f"no result at fraction {fraction!r}")


@dataclass(frozen=True)
class SimulationResult:
    """One ``POST /v1/simulate`` run."""

    record: Dict[str, Any]
    spec_hash: str
    raw: Dict[str, Any]

    @property
    def ok(self) -> bool:
        return self.record.get("status") == "ok"

    @property
    def metrics(self) -> Dict[str, Any]:
        return dict(self.record.get("metrics", {}))


@dataclass(frozen=True)
class SweepResult:
    """One inline ``POST /v1/sweep`` execution."""

    counts: Dict[str, int]
    records: List[Dict[str, Any]]
    cached: int
    computed: int
    wall_clock_s: float
    raw: Dict[str, Any]


@dataclass(frozen=True)
class CompareResult:
    """A ranked multi-topology comparison."""

    best: str
    solver: str
    results: List[Dict[str, Any]]
    raw: Dict[str, Any]

    def ranking(self) -> List[str]:
        """Topology names, best first (unsolved entries last)."""
        def sort_key(entry: Dict[str, Any]):
            value = entry.get("mean_per_server_throughput")
            return (value is None, -(value or 0.0))

        return [
            e["topology"]["name"] for e in sorted(self.results, key=sort_key)
        ]


@dataclass(frozen=True)
class JobHandle:
    """One job's summary snapshot (id + state + progress)."""

    id: str
    kind: str
    state: str
    summary: Dict[str, Any]

    @property
    def terminal(self) -> bool:
        return self.state in ("completed", "failed", "cancelled")


class ReproClient:
    """The typed, recommended front door to the ``/v1`` API.

    Wraps either transport (in-process service or live HTTP server)
    behind keyword-argument methods returning typed results; every
    non-2xx response raises :class:`~repro.api.errors.ApiError` with
    the full error envelope.

    ::

        client = ReproClient.in_process()            # tests, notebooks
        client = ReproClient.http("localhost", 8070) # a live server

        ctx = client.context()
        ev = client.throughput("jellyfish:switches=16,degree=5,servers=4",
                               fractions=[0.4, 1.0])
        report = client.design({"servers": 48, "throughput_per_server": 0.3,
                                "max_switches": 24, "radix": 10})
        job = client.submit_job(kind="design", target={...})
        report = client.wait_job(job.id)["report"]
    """

    def __init__(self, transport: Union[InProcessClient, HttpClient]) -> None:
        self.transport = transport

    @classmethod
    def in_process(cls, service: Optional[ApiService] = None) -> "ReproClient":
        """A client over a fresh (or given) in-process service."""
        return cls(InProcessClient(service))

    @classmethod
    def http(cls, host: str, port: int, **kwargs: Any) -> "ReproClient":
        """A client over a live HTTP server."""
        return cls(HttpClient(host, port, **kwargs))

    def close(self) -> None:
        self.transport.close()

    # -- plumbing ------------------------------------------------------
    def _get(self, path: str) -> Dict[str, Any]:
        return self.transport.get(path).raise_for_status().json

    def _post(self, path: str, body: Dict[str, Any]) -> Dict[str, Any]:
        return self.transport.post(path, body).raise_for_status().json

    @staticmethod
    def _body(
        *, fractions: Optional[Sequence[float]], fraction: Optional[float],
        solver: Optional[str], seed: int, per_server_demand: float,
        failures: Any, warm: bool,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"seed": seed, "warm": warm}
        if fractions is not None:
            body["fractions"] = list(fractions)
        elif fraction is not None:
            body["fraction"] = fraction
        if solver is not None:
            body["solver"] = solver
        if per_server_demand != 1.0:
            body["per_server_demand"] = per_server_demand
        if failures is not None:
            body["failures"] = failures
        return body

    # -- typed endpoints -----------------------------------------------
    def context(self) -> ServiceContext:
        """The service manifest (versions, registries, caches, limits)."""
        raw = self._get("/v1/context")
        return ServiceContext(
            service=raw.get("service", ""),
            api_version=raw.get("api_version", ""),
            library_version=raw.get("library_version", ""),
            registries=raw.get("registries", {}),
            caches=raw.get("caches", {}),
            limits=raw.get("limits", {}),
            raw=raw,
        )

    def schema(self) -> Dict[str, Any]:
        """The ExperimentSpec/DesignTarget schemas + the jobs contract."""
        return self._get("/v1/schema")

    def throughput(
        self,
        topology: Any,
        fractions: Optional[Sequence[float]] = None,
        fraction: Optional[float] = None,
        solver: Optional[str] = None,
        seed: int = 0,
        per_server_demand: float = 1.0,
        failures: Any = None,
        warm: bool = True,
    ) -> ThroughputEvaluation:
        """Longest-matching throughput of one topology spec."""
        body = self._body(
            fractions=fractions, fraction=fraction, solver=solver,
            seed=seed, per_server_demand=per_server_demand,
            failures=failures, warm=warm,
        )
        body["topology"] = topology
        raw = self._post("/v1/throughput", body)
        return ThroughputEvaluation(
            topology=raw["topology"],
            solver=raw["solver"],
            seed=raw["seed"],
            results=raw["results"],
            warm=raw["warm"],
            raw=raw,
        )

    def simulate(
        self, spec: Mapping[str, Any], warm: bool = True
    ) -> SimulationResult:
        """One ExperimentSpec run (packet / flow / lp engine)."""
        body = dict(spec)
        body["options"] = {**body.get("options", {}), "warm": warm}
        raw = self._post("/v1/simulate", body)
        return SimulationResult(
            record=raw["record"], spec_hash=raw["spec_hash"], raw=raw
        )

    def sweep(
        self,
        defaults: Optional[Mapping[str, Any]] = None,
        grid: Optional[Mapping[str, Any]] = None,
        points: Optional[Sequence[Mapping[str, Any]]] = None,
        warm: bool = True,
    ) -> SweepResult:
        """An inline defaults/grid/points sweep (size-capped)."""
        body: Dict[str, Any] = {"options": {"warm": warm}}
        if defaults is not None:
            body["defaults"] = dict(defaults)
        if grid is not None:
            body["grid"] = dict(grid)
        if points is not None:
            body["points"] = [dict(p) for p in points]
        raw = self._post("/v1/sweep", body)
        return SweepResult(
            counts=raw["counts"],
            records=raw["records"],
            cached=raw["cached"],
            computed=raw["computed"],
            wall_clock_s=raw["wall_clock_s"],
            raw=raw,
        )

    def compare(
        self,
        topologies: Sequence[Any],
        fractions: Optional[Sequence[float]] = None,
        fraction: Optional[float] = None,
        solver: Optional[str] = None,
        seed: int = 0,
        per_server_demand: float = 1.0,
        failures: Any = None,
        warm: bool = True,
    ) -> CompareResult:
        """Throughput across several topology specs, ranked."""
        body = self._body(
            fractions=fractions, fraction=fraction, solver=solver,
            seed=seed, per_server_demand=per_server_demand,
            failures=failures, warm=warm,
        )
        body["topologies"] = list(topologies)
        raw = self._post("/v1/compare", body)
        return CompareResult(
            best=raw["best"], solver=raw["solver"],
            results=raw["results"], raw=raw,
        )

    def design(
        self, target: Union[DesignTarget, Mapping[str, Any]]
    ) -> DesignReport:
        """The cheapest design meeting ``target`` (sync, point-capped)."""
        doc = (
            target.to_dict()
            if isinstance(target, DesignTarget)
            else dict(target)
        )
        raw = self._post("/v1/design", {"target": doc})
        return DesignReport.from_dict(raw["report"])

    # -- jobs ----------------------------------------------------------
    @staticmethod
    def _handle(summary: Dict[str, Any]) -> JobHandle:
        return JobHandle(
            id=summary["id"],
            kind=summary.get("kind", "sweep"),
            state=summary["state"],
            summary=summary,
        )

    def submit_job(
        self,
        doc: Optional[Mapping[str, Any]] = None,
        *,
        kind: str = "sweep",
        target: Union[DesignTarget, Mapping[str, Any], None] = None,
        shards: Optional[int] = None,
        warm: bool = True,
    ) -> JobHandle:
        """Submit an async job: a sweep document or a design target."""
        if kind == "design":
            if target is None:
                raise ValueError("design jobs need a target")
            body: Dict[str, Any] = {
                "kind": "design",
                "target": (
                    target.to_dict()
                    if isinstance(target, DesignTarget)
                    else dict(target)
                ),
            }
        else:
            body = dict(doc or {})
            options = dict(body.get("options", {}))
            options["warm"] = warm
            if shards is not None:
                options["shards"] = shards
            body["options"] = options
        raw = self._post("/v1/jobs", body)
        return self._handle(raw["job"])

    def job(self, job_id: str, records: bool = True) -> Dict[str, Any]:
        """One job's full payload (terminal jobs carry their results)."""
        suffix = "" if records else "?records=false"
        return self._get(f"/v1/jobs/{job_id}{suffix}")["job"]

    def jobs(self) -> List[JobHandle]:
        """Summaries of every known job."""
        raw = self._get("/v1/jobs")
        return [self._handle(s) for s in raw["jobs"]]

    def wait_job(
        self,
        job_id: str,
        timeout_s: float = 60.0,
        poll_interval_s: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its full payload.

        Raises ``TimeoutError`` (carrying the last-seen state) when the
        job is still live after ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            payload = self.job(job_id)
            if payload["state"] in ("completed", "failed", "cancelled"):
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['state']!r} "
                    f"after {timeout_s}s"
                )
            time.sleep(poll_interval_s)

    def cancel_job(self, job_id: str) -> JobHandle:
        """Request cooperative cancellation; idempotent when terminal."""
        raw = self.transport.delete(
            f"/v1/jobs/{job_id}"
        ).raise_for_status().json
        return self._handle(raw["job"])
