"""Clients for the topology-evaluation service.

:class:`InProcessClient` drives :meth:`ApiService.dispatch` directly —
no sockets — so tests exercise the exact dispatcher the HTTP server
uses (status codes, error bodies, warm-state behaviour) without port
management.  :class:`HttpClient` is a thin ``http.client`` wrapper for
talking to a real server (the CI smoke job and the load bench use it);
it is stdlib-only like everything else in :mod:`repro.api`.

Both return :class:`ApiResponse`, which deliberately mirrors the shape
of popular HTTP clients (``status``, ``json``, ``ok``,
``raise_for_status``) without depending on any.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from .service import ApiService

__all__ = ["ApiResponse", "InProcessClient", "HttpClient"]


@dataclass
class ApiResponse:
    """One service response: HTTP status + parsed JSON payload."""

    status: int
    json: Dict[str, Any]
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def request_id(self) -> str:
        return str(self.json.get("request_id", ""))

    def raise_for_status(self) -> "ApiResponse":
        if not self.ok:
            error = self.json.get("error", {})
            raise RuntimeError(
                f"API request failed with {self.status}: "
                f"{error.get('code', '?')}: {error.get('message', '')}"
            )
        return self


class InProcessClient:
    """Drives an :class:`ApiService` without a network round-trip.

    ``body`` may be a mapping (the common case) or raw ``bytes``/``str``
    to exercise the JSON/size validation exactly as the wire path does.
    """

    def __init__(self, service: Optional[ApiService] = None) -> None:
        self.service = service or ApiService()

    def request(
        self,
        method: str,
        path: str,
        body: Union[Dict[str, Any], bytes, str, None] = None,
        request_id: Optional[str] = None,
    ) -> ApiResponse:
        status, payload, headers = self.service.dispatch(
            method, path, body, request_id=request_id
        )
        return ApiResponse(status=status, json=payload, headers=headers)

    def get(self, path: str, **kwargs: Any) -> ApiResponse:
        return self.request("GET", path, **kwargs)

    def post(
        self,
        path: str,
        body: Union[Dict[str, Any], bytes, str, None] = None,
        **kwargs: Any,
    ) -> ApiResponse:
        return self.request("POST", path, body, **kwargs)

    def delete(self, path: str, **kwargs: Any) -> ApiResponse:
        return self.request("DELETE", path, **kwargs)


class HttpClient:
    """A minimal stdlib HTTP client for a running :class:`ApiServer`.

    One persistent keep-alive connection per instance — callers doing
    concurrent load use one ``HttpClient`` per thread.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def request(
        self,
        method: str,
        path: str,
        body: Union[Dict[str, Any], bytes, str, None] = None,
        request_id: Optional[str] = None,
    ) -> ApiResponse:
        if isinstance(body, dict):
            body = json.dumps(body).encode()
        elif isinstance(body, str):
            body = body.encode()
        headers = {"Content-Type": "application/json"}
        if request_id:
            headers["X-Request-Id"] = request_id
        try:
            self._conn.request(method, path, body=body, headers=headers)
            raw = self._conn.getresponse()
        except (http.client.HTTPException, OSError):
            # The server may close a keep-alive connection (e.g. after
            # an aborted oversized upload); retry once on a fresh one.
            self._conn.close()
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.request(method, path, body=body, headers=headers)
            raw = self._conn.getresponse()
        data = raw.read()
        return ApiResponse(
            status=raw.status,
            json=json.loads(data.decode()) if data else {},
            headers=dict(raw.headers.items()),
        )

    def get(self, path: str, **kwargs: Any) -> ApiResponse:
        return self.request("GET", path, **kwargs)

    def post(
        self,
        path: str,
        body: Union[Dict[str, Any], bytes, str, None] = None,
        **kwargs: Any,
    ) -> ApiResponse:
        return self.request("POST", path, body, **kwargs)

    def delete(self, path: str, **kwargs: Any) -> ApiResponse:
        return self.request("DELETE", path, **kwargs)

    def close(self) -> None:
        self._conn.close()
