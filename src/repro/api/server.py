"""Stdlib HTTP front end for the topology-evaluation service.

A :class:`ThreadingHTTPServer` whose handler forwards every request to
one shared :class:`~repro.api.service.ApiService` — all transport
concerns (sockets, headers, body framing, request-id propagation,
worker admission) live here; all semantics live in the service.

Design notes:

* **Zero new dependencies.**  ``http.server`` is in the standard
  library; the library's hard dependencies stay numpy/scipy/networkx.
* **Threads, not processes.**  The warm state (built topologies,
  ArcTables, the shared path cache) is the service's reason to exist,
  and threads share it for free.  Solves drop the GIL inside
  scipy/HiGHS, so concurrent LP requests genuinely overlap.
* **Bounded admission.**  ``workers`` is a semaphore around request
  handling, not a thread-pool size: ThreadingHTTPServer spawns a thread
  per connection regardless, and the semaphore caps how many of them
  do library work at once (the rest queue briefly).
* **Request ids.**  An ``X-Request-Id`` header is honoured (trimmed to
  64 chars) or generated, echoed on the response, and recorded on the
  request's obs span/event, so a client can line its calls up with
  ``trace.jsonl``.

Run it with ``python -m repro serve --port 8070`` or embed it::

    from repro.api import ApiServer, ApiService
    server = ApiServer(ApiService(), host="127.0.0.1", port=0)
    print(server.url)      # port 0 → an ephemeral port, resolved here
    server.start()         # background thread
    ...
    server.stop()
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from .errors import error_payload
from .service import ApiService

__all__ = ["ApiServer", "serve_forever"]


class _Handler(BaseHTTPRequestHandler):
    """One request in, one JSON document out."""

    # Keep-alive with a protocol version proxies expect.
    protocol_version = "HTTP/1.1"
    server_version = "repro-api"

    # Set by ApiServer on the handler class.
    service: ApiService = None  # type: ignore[assignment]
    workers: Optional[threading.Semaphore] = None
    quiet = True

    def _respond(
        self,
        status: int,
        payload: Dict[str, Any],
        rid: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", rid)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, method: str) -> None:
        rid = (self.headers.get("X-Request-Id") or "").strip()[:64]
        length = int(self.headers.get("Content-Length") or 0)
        max_bytes = self.service.max_body_bytes
        if length > max_bytes:
            # Refuse before reading: don't buffer a body we already
            # know we will reject.
            payload = error_payload(
                413,
                "payload_too_large",
                f"request body is {length} bytes; the limit is {max_bytes}",
                details={"max_body_bytes": max_bytes},
                request_id=rid or "-",
            )
            payload["request_id"] = rid or "-"
            # The unread body would poison the next keep-alive request
            # on this connection, so drop the connection after replying.
            self.close_connection = True
            self._respond(413, payload, payload["request_id"])
            return
        body = self.rfile.read(length) if length else b""
        gate = self.workers
        if gate is not None:
            gate.acquire()
        try:
            # The raw path (query string included) goes to the service:
            # query parsing and /v1 canonicalization are semantics, and
            # both transports must agree on them.
            status, payload, headers = self.service.dispatch(
                method, self.path, body, request_id=rid or None
            )
        finally:
            if gate is not None:
                gate.release()
        self._respond(
            status, payload, payload.get("request_id", rid or "-"), headers
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def log_message(self, format: str, *args: Any) -> None:
        if not self.quiet:
            sys.stderr.write(
                "[repro.api] %s %s\n" % (self.address_string(), format % args)
            )


class ApiServer:
    """Owns the listening socket and the handler's shared state.

    ``port=0`` binds an ephemeral port (resolved before :meth:`start`
    returns — read :attr:`url`), which is what the tests and the load
    bench use to avoid collisions.
    """

    def __init__(
        self,
        service: Optional[ApiService] = None,
        host: str = "127.0.0.1",
        port: int = 8070,
        workers: int = 4,
        quiet: bool = True,
    ) -> None:
        self.service = service or ApiService()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {
                "service": self.service,
                "workers": threading.Semaphore(workers),
                "quiet": quiet,
            },
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ApiServer":
        """Serve on a daemon background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-api",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "ApiServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8070,
    workers: int = 4,
    cache_dir: Optional[str] = None,
    quiet: bool = False,
) -> None:
    """Blocking entry point behind ``python -m repro serve``."""
    service = ApiService(cache_dir=cache_dir)
    server = ApiServer(
        service, host=host, port=port, workers=workers, quiet=quiet
    )
    print(f"repro.api listening on {server.url}", flush=True)
    try:
        server._httpd.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("\nshutting down", flush=True)
    finally:
        server._httpd.server_close()
