"""Async sweep jobs: submit, poll, cancel — the ``/v1/jobs`` layer.

``POST /v1/sweep`` runs a sweep *inline*: the HTTP response waits for
every point, so the service caps the sweep size (``max_sweep_points``).
Campaign-scale work — the paper's figure grids across families × loads
× failures — goes through **jobs** instead: ``POST /v1/jobs`` validates
and expands the sweep document synchronously, returns a job id
immediately (202), and a worker thread fans the points out over a
:class:`~repro.harness.shard.ShardCoordinator` — hash-partitioned
shards, each run by an inline Runner on its own thread, merged back
into submission order.  Clients poll ``GET /v1/jobs/<id>`` for state
and aggregate progress, and ``DELETE /v1/jobs/<id>`` requests
cooperative cancellation.

Jobs carry a ``kind``: ``"sweep"`` (the default, above) or
``"design"`` — an inverse-design search
(:class:`repro.design.DesignEngine`) running against the service's
warm engine on a worker thread; the search polls the cancel event
between LP evaluations and a cancelled search settles with the partial
report it had (``complete: false``).

Lifecycle::

    pending ──► running ──► completed
        │           ├─────► failed      (the coordinator itself raised)
        └───────────┴─────► cancelled   (DELETE observed between points)

Cancellation is *resumable by construction*: shards stop between
points, every completed point is already in the service's
content-addressed result cache (when one is attached), so re-submitting
the same document serves the finished points from cache and computes
only the remainder — the same contract as ``python -m repro sweep
--resume``.

Everything is observable: ``api.jobs.{submitted,completed,failed,
cancelled}`` counters, one retrospective ``api.job`` span per finished
job (id, state, points, shards), and the per-point ``runner.*`` /
``solver.*`` counters the harness already emits, all landing on
whatever obs run is active in the server process.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import obs
from ..harness.records import RunRecord
from ..harness.shard import ShardCoordinator
from ..harness.spec import ExperimentSpec, expand_sweep

__all__ = ["Job", "JobManager", "JOB_STATES", "TERMINAL_STATES", "jobs_schema"]

#: Every state a job can report, in lifecycle order.
JOB_STATES = ("pending", "running", "completed", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("completed", "failed", "cancelled")

DEFAULT_MAX_JOBS = 64
DEFAULT_MAX_RUNNING = 2
DEFAULT_SHARDS = 4


@dataclass
class Job:
    """One submitted job (sweep campaign or design search)."""

    id: str
    doc: Dict[str, Any]
    specs: List[ExperimentSpec]
    shards: int
    warm: bool
    kind: str = "sweep"
    state: str = "pending"
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    progress: Dict[str, int] = field(default_factory=dict)
    records: List[RunRecord] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def summary(self) -> Dict[str, Any]:
        """The compact JSON form (no records) for listings and polling."""
        done = [r for r in self.records]
        counts: Optional[Dict[str, int]] = None
        if self.terminal and self.kind == "sweep":
            counts = {
                "total": len(self.specs),
                "done": len(done),
                "ok": sum(1 for r in done if r.ok and not r.cached),
                "cached": sum(1 for r in done if r.cached),
                "failed": sum(1 for r in done if not r.ok),
            }
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "points": len(self.specs) if self.kind == "sweep" else None,
            "shards": self.shards,
            "created_at_unix": round(self.created_at, 3),
            "started_at_unix": (
                round(self.started_at, 3) if self.started_at else None
            ),
            "finished_at_unix": (
                round(self.finished_at, 3) if self.finished_at else None
            ),
            "progress": dict(self.progress),
            "counts": counts,
            "cancel_requested": self.cancel_event.is_set(),
            "error": self.error,
        }

    def payload(self, include_records: bool = True) -> Dict[str, Any]:
        """The full JSON form; terminal jobs carry their results.

        ``include_records=False`` (``?records=false``) keeps polling
        cheap for both kinds: sweep jobs drop their records, design
        jobs carry only a slim report summary instead of the full
        evaluated/pruned/sensitivity document.
        """
        body = self.summary()
        if self.terminal and self.kind == "design":
            if include_records:
                body["report"] = self.result
            elif self.result is not None:
                body["report"] = {
                    key: self.result.get(key)
                    for key in ("feasible", "complete", "best", "counters")
                }
        elif self.terminal and include_records:
            body["records"] = [r.to_dict() for r in self.records]
            counts = body["counts"] or {}
            body["cached"] = counts.get("cached", 0)
            body["computed"] = counts.get("ok", 0)
        return body


class JobManager:
    """Owns every job: bounded registry + worker threads + cancellation.

    Parameters
    ----------
    cache:
        Optional shared :class:`~repro.harness.cache.ResultCache`; all
        job shards read and write it (this is what makes cancelled jobs
        resumable and repeated submissions cheap).
    max_jobs:
        Registry bound; the oldest *terminal* jobs are evicted past it.
        Submitting while every slot holds a live job is a 409-worthy
        conflict surfaced as ``RuntimeError`` to the service layer.
    max_running:
        How many jobs execute concurrently; excess jobs queue in
        ``pending`` state on their own (cheap, parked) threads.
    default_shards:
        Shard count when a submission does not pick one.
    """

    def __init__(
        self,
        cache=None,
        max_jobs: int = DEFAULT_MAX_JOBS,
        max_running: int = DEFAULT_MAX_RUNNING,
        default_shards: int = DEFAULT_SHARDS,
    ) -> None:
        self.cache = cache
        self.max_jobs = int(max_jobs)
        self.default_shards = int(default_shards)
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._running = threading.Semaphore(int(max_running))

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def _admit(self, job: Job) -> None:
        with self._lock:
            while len(self._jobs) >= self.max_jobs:
                evictable = next(
                    (jid for jid, j in self._jobs.items() if j.terminal),
                    None,
                )
                if evictable is None:
                    raise RuntimeError(
                        f"job registry is full ({self.max_jobs} live jobs); "
                        "cancel or wait for existing jobs"
                    )
                del self._jobs[evictable]
            self._jobs[job.id] = job

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        doc: Dict[str, Any],
        shards: Optional[int] = None,
        warm: bool = True,
    ) -> Job:
        """Validate + expand the sweep now, then run it on a thread.

        Raises :class:`~repro.harness.spec.SpecError` (and friends)
        synchronously, so a malformed submission is a 400 with no job
        created; only well-formed campaigns get ids.
        """
        specs = expand_sweep(doc)
        count = int(shards) if shards is not None else self.default_shards
        if count < 1:
            raise ValueError(f"shards must be >= 1, got {count}")
        count = min(count, max(len(specs), 1))
        job = Job(
            id=uuid.uuid4().hex[:12],
            doc=doc,
            specs=specs,
            shards=count,
            warm=bool(warm),
        )
        self._admit(job)
        obs.add("api.jobs.submitted")
        thread = threading.Thread(
            target=self._execute, args=(job,),
            name=f"repro-job-{job.id}", daemon=True,
        )
        thread.start()
        return job

    def submit_design(self, target: Any, engine: Any) -> Job:
        """Run an inverse-design search as an async job.

        ``target`` is a validated :class:`~repro.design.DesignTarget`;
        ``engine`` is the service's warm
        :class:`~repro.design.DesignEngine` (shared measurement memos,
        so repeated and perturbed targets re-solve only what changed).
        """
        job = Job(
            id=uuid.uuid4().hex[:12],
            doc={"kind": "design", "target": target.to_dict()},
            specs=[],
            shards=1,
            warm=True,
            kind="design",
        )
        job._design_target = target  # type: ignore[attr-defined]
        job._design_engine = engine  # type: ignore[attr-defined]
        self._admit(job)
        obs.add("api.jobs.submitted")
        thread = threading.Thread(
            target=self._execute, args=(job,),
            name=f"repro-job-{job.id}", daemon=True,
        )
        thread.start()
        return job

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cooperative cancellation; no-op on terminal jobs."""
        job = self.get(job_id)
        if job is None:
            return None
        job.cancel_event.set()
        return job

    # ------------------------------------------------------------------
    def _execute(self, job: Job) -> None:
        """Worker-thread body: run the job's work, settle its state."""
        with self._running:
            started = time.perf_counter()
            with self._lock:
                if job.cancel_event.is_set():
                    job.state = "cancelled"
                    job.finished_at = time.time()
                else:
                    job.state = "running"
                    job.started_at = time.time()
            if job.terminal:
                self._note_finished(job, started)
                return

            def update_progress(p: Dict[str, int]) -> None:
                with self._lock:
                    job.progress = dict(p)

            if job.kind == "design":
                self._execute_design(job, started, update_progress)
                return

            coordinator = ShardCoordinator(
                shards=job.shards,
                cache=self.cache if job.warm else None,
                progress=update_progress,
                should_stop=job.cancel_event.is_set,
            )
            try:
                result = coordinator.run(job.specs)
            except Exception as exc:  # noqa: BLE001 - settles as failed
                with self._lock:
                    job.state = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.finished_at = time.time()
                self._note_finished(job, started)
                return
            with self._lock:
                job.records = result.records
                job.state = (
                    "cancelled" if job.cancel_event.is_set()
                    and len(result.records) < len(job.specs)
                    else "completed"
                )
                job.finished_at = time.time()
            self._note_finished(job, started)

    def _execute_design(self, job: Job, started: float, update_progress) -> None:
        """Run a design search cooperatively on the job's thread."""
        target = job._design_target  # type: ignore[attr-defined]
        engine = job._design_engine  # type: ignore[attr-defined]
        try:
            report = engine.search(
                target,
                should_stop=job.cancel_event.is_set,
                progress=update_progress,
            )
        except Exception as exc:  # noqa: BLE001 - settles as failed
            with self._lock:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()
            self._note_finished(job, started)
            return
        with self._lock:
            job.result = report.to_dict()
            job.state = "cancelled" if not report.complete else "completed"
            job.finished_at = time.time()
        self._note_finished(job, started)

    @staticmethod
    def _note_finished(job: Job, started: float) -> None:
        obs.add(f"api.jobs.{job.state}")
        run = obs.current()
        if run is not None:
            run.record_span(
                "api.job",
                started,
                time.perf_counter() - started,
                attrs={
                    "job_id": job.id,
                    "state": job.state,
                    "points": len(job.specs),
                    "shards": job.shards,
                },
            )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """A JSON-ready snapshot for the ``/v1/context`` manifest."""
        with self._lock:
            jobs = list(self._jobs.values())
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "jobs": len(jobs),
            "max_jobs": self.max_jobs,
            "by_state": by_state,
        }


def jobs_schema() -> Dict[str, Any]:
    """The jobs-endpoint contract, served under ``GET /v1/schema``.

    Descriptive (states, polling, cancellation semantics) rather than a
    validating JSON Schema: the submission body *is* the sweep document
    already described by the ExperimentSpec schema, plus ``options``.
    """
    return {
        "states": list(JOB_STATES),
        "terminal_states": list(TERMINAL_STATES),
        "kinds": {
            "sweep": (
                "the default: a defaults/grid/points sweep document, "
                "sharded over inline Runners"
            ),
            "design": (
                'kind: "design" plus target: {...} (the DesignTarget '
                "schema): an inverse-design search; terminal jobs carry "
                "the full report, cancelled searches a partial one with "
                "complete: false"
            ),
        },
        "endpoints": {
            "POST /v1/jobs": (
                "submit a sweep document (defaults/grid/points, same as "
                "POST /v1/sweep) plus optional "
                'options={shards, warm} — or kind: "design" with a '
                "target document; returns 202 with the job summary"
            ),
            "GET /v1/jobs": "list every known job (summaries, no records)",
            "GET /v1/jobs/<id>": (
                "state + aggregate progress; terminal jobs include "
                "records and cached/computed counts "
                "(append ?records=false to poll without the payload)"
            ),
            "DELETE /v1/jobs/<id>": (
                "request cooperative cancellation: shards stop between "
                "points, completed points stay in the result cache, so "
                "re-submitting the document resumes"
            ),
        },
        "options": {
            "shards": (
                "worker-shard count (default "
                f"{DEFAULT_SHARDS}; capped at the point count); points "
                "are hash-partitioned exactly as `repro sweep --shard`"
            ),
            "warm": (
                "false bypasses the on-disk result cache for this job"
            ),
        },
    }
