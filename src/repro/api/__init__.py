"""``repro.api`` — the long-lived topology-evaluation HTTP service.

A stdlib-only (``http.server``) front door over the library: resolve
experiment specs through :mod:`repro.registry`, execute them through
the harness and solver layers, and keep the expensive per-topology
structure (built topologies, exact-LP ArcTables, the shared path cache,
a content-addressed result memo) warm across requests.

Quick start::

    python -m repro serve --port 8070
    curl -s localhost:8070/context | python -m json.tool
    curl -s -X POST localhost:8070/throughput \\
        -d '{"topology": "xpander:switches=30,degree=8", "fraction": 1.0}'

See ``docs/api.md`` for the endpoint reference and the warm-state
semantics, and :mod:`repro.api.errors` for the error contract.
"""

from .client import ApiResponse, HttpClient, InProcessClient
from .errors import ApiError, classify_exception, error_payload
from .schema import experiment_spec_schema
from .server import ApiServer, serve_forever
from .service import ApiService
from .state import WarmState, canonical_key

__all__ = [
    "ApiError",
    "ApiResponse",
    "ApiServer",
    "ApiService",
    "HttpClient",
    "InProcessClient",
    "WarmState",
    "canonical_key",
    "classify_exception",
    "error_payload",
    "experiment_spec_schema",
    "serve_forever",
]
