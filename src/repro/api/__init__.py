"""``repro.api`` — the long-lived topology-evaluation HTTP service.

A stdlib-only (``http.server``) front door over the library: resolve
experiment specs through :mod:`repro.registry`, execute them through
the harness and solver layers, and keep the expensive per-topology
structure (built topologies, exact-LP ArcTables, the shared path cache,
a content-addressed result memo) warm across requests.

Quick start::

    python -m repro serve --port 8070
    curl -s localhost:8070/v1/context | python -m json.tool
    curl -s -X POST localhost:8070/v1/throughput \\
        -d '{"topology": "xpander:switches=30,degree=8", "fraction": 1.0}'

Endpoints are mounted under the versioned ``/v1`` prefix; the old
unversioned paths still answer (with a ``Deprecation`` header).  Sweep
campaigns too large for the synchronous ``POST /v1/sweep``, and design
searches too large for ``POST /v1/design``, go through the async jobs
layer (:mod:`repro.api.jobs`): ``POST /v1/jobs``, poll
``GET /v1/jobs/<id>``, ``DELETE`` to cancel.

The recommended programmatic entry point is the typed facade::

    from repro.api import ReproClient

    client = ReproClient.in_process()            # or .http(host, port)
    report = client.design({"servers": 48, "throughput_per_server": 0.3,
                            "max_switches": 24, "radix": 10})

See ``docs/api.md`` for the endpoint reference and the warm-state
semantics, and :mod:`repro.api.errors` for the error contract.
"""

from .client import (
    ApiResponse,
    CompareResult,
    HttpClient,
    InProcessClient,
    JobHandle,
    ReproClient,
    ServiceContext,
    SimulationResult,
    SweepResult,
    ThroughputEvaluation,
)
from .errors import ApiError, classify_exception, error_payload
from .jobs import Job, JobManager, jobs_schema
from .schema import experiment_spec_schema
from .server import ApiServer, serve_forever
from .service import API_PREFIX, SERVICE_SCHEMA, ApiService
from .state import WarmState, canonical_key

__all__ = [
    "API_PREFIX",
    "ApiError",
    "ApiResponse",
    "ApiServer",
    "ApiService",
    "CompareResult",
    "HttpClient",
    "InProcessClient",
    "Job",
    "JobHandle",
    "JobManager",
    "ReproClient",
    "SERVICE_SCHEMA",
    "ServiceContext",
    "SimulationResult",
    "SweepResult",
    "ThroughputEvaluation",
    "WarmState",
    "canonical_key",
    "classify_exception",
    "error_payload",
    "experiment_spec_schema",
    "jobs_schema",
    "serve_forever",
]
