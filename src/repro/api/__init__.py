"""``repro.api`` — the long-lived topology-evaluation HTTP service.

A stdlib-only (``http.server``) front door over the library: resolve
experiment specs through :mod:`repro.registry`, execute them through
the harness and solver layers, and keep the expensive per-topology
structure (built topologies, exact-LP ArcTables, the shared path cache,
a content-addressed result memo) warm across requests.

Quick start::

    python -m repro serve --port 8070
    curl -s localhost:8070/v1/context | python -m json.tool
    curl -s -X POST localhost:8070/v1/throughput \\
        -d '{"topology": "xpander:switches=30,degree=8", "fraction": 1.0}'

Endpoints are mounted under the versioned ``/v1`` prefix; the old
unversioned paths still answer (with a ``Deprecation`` header).  Sweep
campaigns too large for the synchronous ``POST /v1/sweep`` go through
the async jobs layer (:mod:`repro.api.jobs`): ``POST /v1/jobs``, poll
``GET /v1/jobs/<id>``, ``DELETE`` to cancel.

See ``docs/api.md`` for the endpoint reference and the warm-state
semantics, and :mod:`repro.api.errors` for the error contract.
"""

from .client import ApiResponse, HttpClient, InProcessClient
from .errors import ApiError, classify_exception, error_payload
from .jobs import Job, JobManager, jobs_schema
from .schema import experiment_spec_schema
from .server import ApiServer, serve_forever
from .service import API_PREFIX, SERVICE_SCHEMA, ApiService
from .state import WarmState, canonical_key

__all__ = [
    "API_PREFIX",
    "ApiError",
    "ApiResponse",
    "ApiServer",
    "ApiService",
    "HttpClient",
    "InProcessClient",
    "Job",
    "JobManager",
    "SERVICE_SCHEMA",
    "WarmState",
    "canonical_key",
    "classify_exception",
    "error_payload",
    "experiment_spec_schema",
    "jobs_schema",
    "serve_forever",
]
