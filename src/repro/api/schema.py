"""The ``ExperimentSpec`` JSON schema served at ``GET /schema``.

Built *from* the dataclass and the registries rather than maintained by
hand: the property list is derived from
``ExperimentSpec.__dataclass_fields__`` (generation fails loudly if a
new spec field lacks a schema entry — see the guard in
:func:`experiment_spec_schema`), and every enumeration (topology
families, workload patterns, engines, routings, solver names) is read
from the live registries, so the schema can never drift from what the
validator actually accepts.
"""

from __future__ import annotations

from typing import Any, Dict

from ..harness.spec import ENGINES, ExperimentSpec

__all__ = ["experiment_spec_schema", "SCHEMA_ID"]

SCHEMA_ID = "repro/experiment-spec/1"


def _number(description: str, **extra: Any) -> Dict[str, Any]:
    return {"type": "number", "description": description, **extra}


def _nullable(schema: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(schema)
    out["type"] = [schema["type"], "null"]
    return out


def _field_schemas() -> Dict[str, Dict[str, Any]]:
    from .. import registry

    return {
        "topology": {
            "type": "object",
            "description": (
                "Topology spec: {'family': <name>, ...params}; parameter "
                "names mirror the CLI flags (see registry.TOPOLOGIES)."
            ),
            "required": ["family"],
            "properties": {
                "family": {
                    "type": "string",
                    "enum": list(registry.TOPOLOGIES.available()),
                }
            },
            "additionalProperties": True,
        },
        "workload": {
            "type": "object",
            "description": (
                "Pattern + sizing + load; see ExperimentSpec docs. "
                "Packet/flow engines need exactly one of 'load'/'rate'."
            ),
            "properties": {
                "pattern": {
                    "type": "string",
                    "enum": list(registry.TRAFFIC.available()),
                },
                "fraction": _number("server fraction in (0, 1]"),
                "theta": _number("skew pattern theta"),
                "phi": _number("skew pattern phi"),
                "take_first": {"type": "boolean"},
                "pattern_seed": {"type": "integer"},
                "sizes": {"type": "string", "enum": ["pfabric", "hull"]},
                "mean_flow_bytes": _number("mean flow size in bytes"),
                "cap_bytes": _number("hull size cap in bytes"),
                "load": _number("fraction of active-server capacity"),
                "rate": _number("aggregate flow arrivals per second"),
                "horizon": _number("workload generation horizon (s)"),
                "solver": {
                    "type": "string",
                    "enum": list(registry.SOLVERS.available()),
                },
                "k_paths": {"type": "integer", "minimum": 1},
                "epsilon": _number(
                    "mcf-approx accuracy knob", exclusiveMinimum=0,
                    exclusiveMaximum=0.5,
                ),
            },
            "additionalProperties": True,
        },
        "routing": {
            "type": "string",
            "description": "routing policy (packet: any; flow: ecmp/vlb/hyb)",
            "enum": list(registry.ROUTINGS.available()),
        },
        "engine": {"type": "string", "enum": list(ENGINES)},
        "seed": {"type": "integer", "description": "master seed"},
        "measure_start": _number("measurement window start (s)", minimum=0),
        "measure_end": _number("measurement window end (s)"),
        "link_rate_bps": _number("switch-switch link rate (bit/s)"),
        "server_link_rate_bps": _nullable(
            _number("server access link rate (bit/s); null = link_rate_bps")
        ),
        "hyb_threshold_bytes": {"type": "integer", "minimum": 0},
        "short_flow_bytes": _nullable(
            {"type": "integer", "description": "short-flow stats boundary"}
        ),
        "max_sim_time": _nullable(_number("hard simulated-time cap (s)")),
        "failures": {
            "type": ["string", "object", "null"],
            "description": (
                "failure scenario: compact string "
                "('links:fraction=0.08,seed=3') or mapping with a 'mode' "
                "key; null runs the healthy topology"
            ),
        },
        "name": {
            "type": "string",
            "description": "cosmetic label (excluded from the content hash)",
        },
    }


def experiment_spec_schema() -> Dict[str, Any]:
    """The JSON Schema for one :class:`ExperimentSpec` document."""
    properties = _field_schemas()
    fields = set(ExperimentSpec.__dataclass_fields__)
    missing = fields - set(properties)
    extra = set(properties) - fields
    if missing or extra:  # pragma: no cover - guards schema drift
        raise RuntimeError(
            f"schema out of sync with ExperimentSpec: missing={sorted(missing)} "
            f"extra={sorted(extra)}"
        )
    return {
        "$schema": "https://json-schema.org/draft/2020-12/schema",
        "$id": SCHEMA_ID,
        "title": "ExperimentSpec",
        "description": (
            "One evaluation point: topology + workload + routing + engine. "
            "Content-hashed over every field except 'name'."
        ),
        "type": "object",
        "required": ["topology"],
        "properties": properties,
        "additionalProperties": False,
    }
