"""The endpoint logic of the topology-evaluation service.

:class:`ApiService` is the transport-independent core: it maps
``(method, path, body)`` to ``(status, JSON payload, extra headers)``
and owns the warm :class:`~repro.api.state.WarmState`.  The stdlib HTTP
front end (:mod:`repro.api.server`) and the in-process test client
(:mod:`repro.api.client`) both drive this one dispatcher, so every
status code, error body, and cache interaction is exercised identically
with and without sockets.

Endpoints (all mounted under the versioned ``/v1`` prefix)
----------------------------------------------------------
* ``GET /v1/context`` — self-describing manifest: versions, registered
  constructions, warm-cache statistics, request counters.  Append
  ``?registry=<name>`` to fetch one registry without the manifest.
* ``GET /v1/schema`` — the :class:`ExperimentSpec` JSON schema plus the
  jobs-endpoint contract.
* ``GET /v1/healthz`` — liveness (cheap, no library work).
* ``POST /v1/throughput`` — longest-matching throughput of one topology
  over one or more traffic fractions, served from warm state.
* ``POST /v1/simulate`` — one :class:`ExperimentSpec` run to a
  :class:`RunRecord` (packet / flow / lp engine).
* ``POST /v1/sweep`` — a ``defaults``/``grid``/``points`` sweep
  document executed inline through the harness Runner (bounded by
  ``max_sweep_points``; larger campaigns go through jobs).
* ``POST /v1/compare`` — ``POST /v1/throughput`` across several
  topologies plus a ranking.
* ``POST /v1/design`` — an inverse-design search
  (:mod:`repro.design`): the cheapest candidate meeting a declarative
  SLO target, run synchronously against the service's warm
  :class:`~repro.design.DesignEngine` (bounded by
  ``max_design_candidates``; larger spaces go through jobs).
* ``POST /v1/jobs`` / ``GET /v1/jobs[/<id>]`` / ``DELETE
  /v1/jobs/<id>`` — async jobs (:mod:`repro.api.jobs`): sharded sweep
  campaigns and ``kind: "design"`` searches; submit, poll
  state/progress, cancel.

Legacy unversioned paths (``/context``, ``/sweep``, …) remain as shims:
they dispatch to the same handlers but answer with a ``Deprecation:
true`` header and a ``Link: </v1/...>; rel="successor-version"``
pointer, and are counted separately in the ``/v1/context`` request
statistics.

Warm-state semantics: repeated queries naming the same topology spec
reuse the built topology, its exact-LP :class:`BatchedTopologyContext`
(the persistent ArcTable), and the process-wide shared path cache;
byte-identical queries are served from a content-addressed result memo.
Any ``POST`` body may set ``"warm": false`` to bypass every warm layer
and rebuild per request — that is the load bench's cold baseline, and a
live way to check warm results against a from-scratch evaluation.

Every request is observed when an obs run is active: one retrospective
``api.request`` span (endpoint, status, request id) plus an
``api.request`` event land in ``trace.jsonl``, and ``api.requests`` /
``api.errors`` counters track the lifecycle.  Spans are recorded
retrospectively — never through the nesting context manager — because
handler threads would interleave a shared span stack.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
import uuid
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .. import obs, registry
from ..design import DesignEngine, DesignTarget, design_target_schema
from ..design.space import enumerate_candidates
from ..harness import ResultCache, Runner
from ..harness.execute import execute_spec
from ..harness.spec import ENGINES, ExperimentSpec, expand_sweep
from ..perf import PathCache, shared_path_cache
from ..solvers.base import SolveOutcome, solve_outcome
from ..solvers.batched import BatchedTopologyContext
from ..solvers.colgen import ColgenTopologyContext, colgen_solve_outcome
from ..solvers.incremental import (
    IncrementalTopologyContext,
    incremental_solve_outcome,
)
from ..version import SPEC_HASH_VERSION, __version__
from .errors import ApiError, classify_exception
from .jobs import JobManager, jobs_schema
from .schema import experiment_spec_schema
from .state import WarmState, canonical_key

__all__ = [
    "ApiService",
    "SERVICE_SCHEMA",
    "API_PREFIX",
    "DEFAULT_MAX_BODY_BYTES",
]

#: Service payload-shape identifier, reported in ``/context``.
SERVICE_SCHEMA = "repro.api/2"

#: Canonical mount point; unversioned paths are deprecated shims.
API_PREFIX = "/v1"

DEFAULT_MAX_BODY_BYTES = 2 * 1024 * 1024
DEFAULT_MAX_SWEEP_POINTS = 256
DEFAULT_MAX_JOB_POINTS = 16384
DEFAULT_MAX_DESIGN_CANDIDATES = 64

#: Solver names whose exact-LP structure the warm context cache serves.
_CONTEXT_SOLVERS = ("exact", "highs-exact", "highs-batched")

#: Solver names served by the warm *incremental* context cache (model
#: structure + simplex bases carried across requests).
_INCREMENTAL_SOLVERS = ("highs-incremental",)

#: Solver names served by the warm *colgen* context cache (generated
#: path pools carried across requests).
_COLGEN_SOLVERS = ("highs-colgen",)


def _require(body: Dict[str, Any], key: str) -> Any:
    if key not in body:
        raise ApiError(400, "bad_spec", f"request body needs a {key!r} key")
    return body[key]


class ApiService:
    """Transport-independent request dispatcher with warm shared state.

    Parameters
    ----------
    cache_dir:
        Optional content-addressed :class:`ResultCache` directory for
        ``/simulate`` and ``/sweep`` records (``None`` disables disk
        caching; the in-memory warm state is always on).
    max_body_bytes:
        Reject larger request bodies with 413.
    max_sweep_points:
        Reject *inline* sweep documents expanding past this with 400 —
        a stateless front door should not accept unbounded synchronous
        work.  Async jobs get the (much larger) ``max_job_points``.
    max_job_points:
        Reject job submissions expanding past this with 400.
    max_design_candidates:
        Reject *synchronous* ``/v1/design`` targets whose candidate
        space is larger than this with 400 (async design jobs are
        bounded by ``max_job_points``).
    job_shards:
        Default shard count for submitted jobs (each shard is an
        inline Runner on its own thread).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        max_sweep_points: int = DEFAULT_MAX_SWEEP_POINTS,
        max_job_points: int = DEFAULT_MAX_JOB_POINTS,
        max_design_candidates: int = DEFAULT_MAX_DESIGN_CANDIDATES,
        job_shards: int = 4,
        state: Optional[WarmState] = None,
    ) -> None:
        self.state = state or WarmState()
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.cache_dir = cache_dir
        self.max_body_bytes = int(max_body_bytes)
        self.max_sweep_points = int(max_sweep_points)
        self.max_job_points = int(max_job_points)
        self.max_design_candidates = int(max_design_candidates)
        self.design_engine = DesignEngine()
        self.jobs = JobManager(cache=self.cache, default_shards=job_shards)
        self._counter_lock = threading.Lock()
        self.request_counts: Dict[str, int] = {}
        self.error_counts: Dict[str, int] = {}
        self.deprecated_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def routes(self) -> Dict[Tuple[str, str], Callable[..., Dict[str, Any]]]:
        return {
            ("GET", "/v1/context"): self._context,
            ("GET", "/v1/schema"): self._schema,
            ("GET", "/v1/healthz"): self._healthz,
            ("POST", "/v1/throughput"): self._throughput,
            ("POST", "/v1/simulate"): self._simulate,
            ("POST", "/v1/sweep"): self._sweep,
            ("POST", "/v1/compare"): self._compare,
            ("POST", "/v1/design"): self._design,
            ("POST", "/v1/jobs"): self._jobs_create,
            ("GET", "/v1/jobs"): self._jobs_list,
        }

    def dispatch(
        self,
        method: str,
        path: str,
        body: Union[bytes, str, Dict[str, Any], None] = None,
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Handle one request; returns ``(status, payload, headers)``.

        Never raises: every failure is classified into the uniform error
        body (see :mod:`repro.api.errors`).  ``body`` may be raw bytes
        (the HTTP server), a str, or an already-parsed mapping (the
        in-process client) — size and JSON validation run on raw forms.
        ``path`` may carry a query string; it is parsed here so both
        transports agree on semantics.  Requests on legacy unversioned
        paths are answered by the ``/v1`` handler with a ``Deprecation``
        header and counted separately.
        """
        rid = (request_id or "").strip()[:64] or uuid.uuid4().hex[:12]
        started = time.perf_counter()
        raw_path, _, raw_query = str(path).partition("?")
        clean = raw_path.rstrip("/") or "/"
        legacy = clean != "/" and not (
            clean == API_PREFIX or clean.startswith(API_PREFIX + "/")
        )
        canonical = API_PREFIX + clean if legacy else clean
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(raw_query).items()
        }
        headers: Dict[str, str] = {}
        endpoint = f"{method} {self._endpoint_path(canonical)}"
        try:
            handler = self._resolve(method, canonical)
            if legacy:
                headers["Deprecation"] = "true"
                headers["Link"] = f'<{canonical}>; rel="successor-version"'
            parsed = self._parse_body(body) if method == "POST" else {}
            result = handler(parsed, query)
            if isinstance(result, tuple):
                status, payload = result
            else:
                status, payload = 200, result
        except Exception as exc:
            error = classify_exception(exc)
            status, payload = error.status, error.payload(rid)
        payload["request_id"] = rid
        self._note_request(endpoint, rid, status, started, deprecated=legacy)
        return status, payload, headers

    @staticmethod
    def _endpoint_path(path: str) -> str:
        """Collapse path parameters so counters stay low-cardinality."""
        if path.startswith("/v1/jobs/"):
            return "/v1/jobs/<id>"
        return path

    def _resolve(self, method: str, path: str):
        routes = self.routes()
        handler = routes.get((method, path))
        if handler is not None:
            return handler
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            if job_id and "/" not in job_id:
                if method == "GET":
                    return lambda _body, query: self._job_get(job_id, query)
                if method == "DELETE":
                    return lambda _body, query: self._job_cancel(job_id)
                raise ApiError(
                    405,
                    "method_not_allowed",
                    f"{path} does not support {method}",
                    details={"allowed": ["DELETE", "GET"]},
                )
        allowed = sorted(m for m, p in routes if p == path)
        if allowed:
            raise ApiError(
                405,
                "method_not_allowed",
                f"{path} does not support {method}",
                details={"allowed": allowed},
            )
        raise ApiError(
            404,
            "not_found",
            f"unknown path {path!r}",
            details={
                "paths": sorted({p for _, p in routes} | {"/v1/jobs/<id>"})
            },
        )

    def _parse_body(
        self, body: Union[bytes, str, Dict[str, Any], None]
    ) -> Dict[str, Any]:
        if isinstance(body, dict):
            return body
        if body is None:
            body = b""
        if isinstance(body, str):
            body = body.encode()
        if len(body) > self.max_body_bytes:
            raise ApiError(
                413,
                "payload_too_large",
                f"request body is {len(body)} bytes; "
                f"the limit is {self.max_body_bytes}",
                details={"max_body_bytes": self.max_body_bytes},
            )
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, "bad_json", f"body is not valid JSON: {exc}")
        if not isinstance(parsed, dict):
            raise ApiError(
                400, "bad_json",
                f"body must be a JSON object, got {type(parsed).__name__}",
            )
        return parsed

    def _note_request(
        self,
        endpoint: str,
        rid: str,
        status: int,
        started: float,
        deprecated: bool = False,
    ) -> None:
        elapsed = time.perf_counter() - started
        with self._counter_lock:
            self.request_counts[endpoint] = (
                self.request_counts.get(endpoint, 0) + 1
            )
            if status >= 400:
                self.error_counts[endpoint] = (
                    self.error_counts.get(endpoint, 0) + 1
                )
            if deprecated:
                self.deprecated_counts[endpoint] = (
                    self.deprecated_counts.get(endpoint, 0) + 1
                )
        obs.add("api.requests")
        if status >= 400:
            obs.add("api.errors")
        if deprecated:
            obs.add("api.requests.deprecated")
        run = obs.current()
        if run is not None:
            run.record_span(
                "api.request",
                started,
                elapsed,
                attrs={
                    "endpoint": endpoint,
                    "status": status,
                    "request_id": rid,
                },
            )
            run.record_event(
                "api.request",
                {
                    "endpoint": endpoint,
                    "status": status,
                    "request_id": rid,
                    "duration_s": round(elapsed, 9),
                },
            )

    # ------------------------------------------------------------------
    # GET endpoints
    # ------------------------------------------------------------------
    def _healthz(
        self, _body: Dict[str, Any], _query: Optional[Dict[str, str]] = None
    ) -> Dict[str, Any]:
        """Liveness probe (no library work)."""
        return {"ok": True}

    def _schema(
        self, _body: Dict[str, Any], _query: Optional[Dict[str, str]] = None
    ) -> Dict[str, Any]:
        """The ExperimentSpec JSON schema + the jobs contract."""
        return {
            "api_version": API_PREFIX.lstrip("/"),
            "schema": experiment_spec_schema(),
            "design": design_target_schema(),
            "jobs": jobs_schema(),
        }

    def _registries(self) -> Dict[str, Any]:
        return {
            "topologies": registry.TOPOLOGIES,
            "traffic": registry.TRAFFIC,
            "routings": registry.ROUTINGS,
            "failures": registry.FAILURES,
            "solvers": registry.SOLVERS,
            "designs": registry.DESIGNS,
        }

    def _context(
        self, _body: Dict[str, Any], query: Optional[Dict[str, str]] = None
    ) -> Dict[str, Any]:
        """Self-describing manifest: versions, registries, cache stats.

        ``?registry=<name>`` narrows the response to one registry's
        entries (400 on an unknown name).
        """
        def describe(reg) -> Dict[str, str]:
            return {name: reg.describe(name) for name in reg.available()}

        registries = self._registries()
        wanted = (query or {}).get("registry")
        if wanted is not None:
            if wanted not in registries:
                raise ApiError(
                    400,
                    "bad_spec",
                    f"unknown registry {wanted!r}; valid choices: "
                    + ", ".join(sorted(registries)),
                    details={"registries": sorted(registries)},
                )
            return {
                "service": SERVICE_SCHEMA,
                "library_version": __version__,
                "registry": wanted,
                "entries": describe(registries[wanted]),
            }

        with self._counter_lock:
            requests = dict(self.request_counts)
            errors = dict(self.error_counts)
            deprecated = dict(self.deprecated_counts)
        payload = {
            "service": SERVICE_SCHEMA,
            "api_version": API_PREFIX.lstrip("/"),
            "library_version": __version__,
            "spec_hash_version": SPEC_HASH_VERSION,
            "started_at_unix": self.state.started_at,
            "uptime_s": round(time.time() - self.state.started_at, 3),
            "engines": list(ENGINES),
            "registries": {
                name: describe(reg) for name, reg in registries.items()
            },
            "endpoints": {
                **{
                    f"{method} {path}": (
                        (handler.__doc__ or "").strip().splitlines() or [""]
                    )[0]
                    for (method, path), handler in sorted(
                        self.routes().items()
                    )
                },
                "GET /v1/jobs/<id>": "Job state, progress, and results.",
                "DELETE /v1/jobs/<id>": "Cancel a job cooperatively.",
            },
            "caches": self.state.stats(),
            "jobs": self.jobs.stats(),
            "requests": {
                "by_endpoint": requests,
                "errors": errors,
                "deprecated": deprecated,
            },
            "limits": {
                "max_body_bytes": self.max_body_bytes,
                "max_sweep_points": self.max_sweep_points,
                "max_job_points": self.max_job_points,
                "max_design_candidates": self.max_design_candidates,
            },
        }
        payload["result_cache"] = (
            {"dir": self.cache_dir, "entries": len(self.cache)}
            if self.cache is not None
            else None
        )
        return payload

    # ------------------------------------------------------------------
    # POST /throughput (and the shared solve core /compare reuses)
    # ------------------------------------------------------------------
    def _throughput(
        self, body: Dict[str, Any], _query: Optional[Dict[str, str]] = None
    ) -> Dict[str, Any]:
        """Longest-matching throughput of one topology, served warm.

        Any non-optimal solve fails the request with 422 carrying the
        solver taxonomy for each failed fraction.
        """
        evaluation = self._evaluate_throughput(body, _require(body, "topology"))
        failed = [
            r for r in evaluation["results"] if r["status"] != "optimal"
        ]
        if failed:
            raise ApiError(
                422,
                "solver_failure",
                f"{len(failed)} of {len(evaluation['results'])} solves "
                "did not reach an optimum",
                details={"results": evaluation["results"]},
            )
        return evaluation

    def _evaluate_throughput(
        self, body: Dict[str, Any], topology_spec: Any
    ) -> Dict[str, Any]:
        """The throughput core: build/fetch warm state, solve, memoize."""
        fractions = self._fractions(body)
        solver_spec = body.get("solver", "highs-batched")
        solver_name, solver_params = registry.parse_spec(solver_spec, key="name")
        if solver_name not in registry.SOLVERS:
            raise ApiError(
                400,
                "bad_spec",
                f"unknown solver {solver_name!r}; valid choices: "
                + ", ".join(registry.SOLVERS.available()),
            )
        seed = int(body.get("seed", 0))
        demand = float(body.get("per_server_demand", 1.0))
        failures = body.get("failures")
        warm = bool(body.get("warm", True))

        t0 = time.perf_counter()
        if warm:
            topo, topo_hit = self.state.topology(topology_spec, failures)
            topo_key = self.state.topology_key(topology_spec, failures)
            properties = self._properties(shared_path_cache(topo), topo)
        else:
            topo = WarmState.build_topology(topology_spec, failures)
            topo_hit = False
            topo_key = ""
            properties = self._properties(PathCache(topo.graph), topo)

        context: Optional[BatchedTopologyContext] = None
        incremental: Optional[IncrementalTopologyContext] = None
        colgen: Optional[ColgenTopologyContext] = None
        context_hit = False
        uses_incremental = solver_name in _INCREMENTAL_SOLVERS
        uses_colgen = solver_name in _COLGEN_SOLVERS
        uses_context = solver_name in _CONTEXT_SOLVERS
        if uses_incremental:
            if warm:
                incremental, context_hit = self.state.incremental(
                    topology_spec, topo, failures
                )
            else:
                incremental = IncrementalTopologyContext(topo)
        elif uses_colgen:
            if warm:
                colgen, context_hit = self.state.colgen(
                    topology_spec, topo, failures
                )
            else:
                colgen = ColgenTopologyContext(topo)
        elif uses_context:
            if warm:
                context, context_hit = self.state.context(
                    topology_spec, topo, failures
                )
            else:
                context = BatchedTopologyContext(topo)
        else:
            backend = registry.SOLVERS.build(solver_name, **solver_params)

        results: List[Dict[str, Any]] = []
        for fraction in fractions:
            memo_key = canonical_key(
                {
                    "kind": "throughput",
                    "topology": topo_key,
                    "fraction": fraction,
                    "solver": [solver_name, solver_params],
                    "seed": seed,
                    "demand": demand,
                }
            )
            if warm:
                memo = self.state.result_get(memo_key)
                if memo is not None:
                    results.append({**memo, "cached": True})
                    continue
            tm = registry.TRAFFIC.build(
                "longest_matching", topo, fraction=fraction, seed=seed
            )
            if uses_incremental:
                outcome = incremental_solve_outcome(
                    incremental, tm, demand,
                    backend_name=solver_name, reuse_structure=warm,
                )
            elif uses_colgen:
                outcome = colgen_solve_outcome(
                    colgen, tm, demand,
                    backend_name=solver_name, reuse_pool=warm,
                )
            elif uses_context:
                outcome = solve_outcome(
                    solver_name, lambda: context.solve(tm, demand)
                )
            else:
                outcome = backend.solve(topo, tm, demand)
            entry = self._outcome_entry(fraction, outcome)
            if uses_incremental or uses_colgen:
                entry["warm_started"] = outcome.warm_started
                entry["basis_reused"] = outcome.basis_reused
            if warm and outcome.ok:
                self.state.result_put(memo_key, entry)
            results.append({**entry, "cached": False})

        return {
            "topology": {"name": topo.name, **properties},
            "solver": solver_name,
            "seed": seed,
            "results": results,
            "warm": {
                "enabled": warm,
                "topology": "hit" if topo_hit else "miss",
                "context": (
                    ("hit" if context_hit else "miss")
                    if (uses_context or uses_incremental or uses_colgen)
                    else None
                ),
                "results_cached": sum(1 for r in results if r["cached"]),
            },
            "wall_time_s": round(time.perf_counter() - t0, 6),
        }

    @staticmethod
    def _fractions(body: Dict[str, Any]) -> List[float]:
        raw = body.get("fractions")
        if raw is None:
            raw = [body.get("fraction", 1.0)]
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ApiError(
                400, "bad_spec", "'fractions' must be a non-empty array"
            )
        fractions: List[float] = []
        for value in raw:
            if not isinstance(value, (int, float)) or not 0 < value <= 1:
                raise ApiError(
                    400, "bad_spec",
                    f"fractions must be numbers in (0, 1], got {value!r}",
                )
            fractions.append(float(value))
        return fractions

    @staticmethod
    def _properties(path_cache: PathCache, topo) -> Dict[str, Any]:
        """Structural properties served from the (warm) path cache."""
        connected = topo.is_connected()
        return {
            "switches": topo.num_switches,
            "links": topo.num_links,
            "servers": topo.num_servers,
            "connected": connected,
            "diameter": path_cache.diameter() if connected else None,
            "avg_path_length": (
                round(path_cache.average_path_length(), 6)
                if connected and path_cache.num_nodes > 1
                else None
            ),
        }

    @staticmethod
    def _outcome_entry(fraction: float, outcome: SolveOutcome) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "fraction": fraction,
            "status": outcome.status.value,
            "iterations": outcome.iterations,
            "solve_time_s": round(outcome.wall_time_s, 6),
        }
        if outcome.ok:
            entry["per_server_throughput"] = outcome.result.per_server
            entry["disconnected_pairs"] = outcome.result.disconnected_pairs
        else:
            from .errors import _solver_details

            entry["error"] = _solver_details(outcome.error)
            entry["error"]["message"] = outcome.message
        return entry

    # ------------------------------------------------------------------
    # POST /simulate
    # ------------------------------------------------------------------
    def _simulate(
        self, body: Dict[str, Any], _query: Optional[Dict[str, str]] = None
    ) -> Dict[str, Any]:
        """One ExperimentSpec run to a RunRecord (packet/flow/lp)."""
        body = dict(body)
        options = body.pop("options", {})
        warm = bool(options.get("warm", True)) if isinstance(options, dict) else True
        try:
            spec = ExperimentSpec.from_dict(body)
        except TypeError as exc:
            raise ApiError(400, "bad_spec", str(exc))
        record = None
        if warm and self.cache is not None:
            record = self.cache.get(spec)
        if record is None:
            record = execute_spec(spec)
            if warm and self.cache is not None and record.ok:
                self.cache.put(spec, record)
        return {"record": record.to_dict(), "spec_hash": spec.content_hash()}

    # ------------------------------------------------------------------
    # POST /sweep
    # ------------------------------------------------------------------
    def _sweep(
        self, body: Dict[str, Any], _query: Optional[Dict[str, str]] = None
    ) -> Dict[str, Any]:
        """A defaults/grid/points sweep document run inline."""
        doc = self._sweep_doc(body)
        specs = expand_sweep(doc)
        if len(specs) > self.max_sweep_points:
            raise ApiError(
                400,
                "too_many_points",
                f"sweep expands to {len(specs)} points; the limit is "
                f"{self.max_sweep_points}",
                details={"max_sweep_points": self.max_sweep_points},
            )
        options = body.get("options", {})
        warm = bool(options.get("warm", True)) if isinstance(options, dict) else True
        runner = Runner(
            inline=True,
            retries=0,
            cache=self.cache if warm else None,
        )
        result = runner.run(specs)
        counts = result.counts
        return {
            "counts": counts,
            "cached": counts["cached"],
            "computed": counts["ok"],
            "wall_clock_s": round(result.wall_clock_s, 6),
            "records": [r.to_dict() for r in result.records],
        }

    @staticmethod
    def _sweep_doc(body: Dict[str, Any]) -> Dict[str, Any]:
        doc = {
            key: body[key]
            for key in ("defaults", "grid", "points")
            if key in body
        }
        if not doc:
            raise ApiError(
                400, "bad_spec",
                "sweep body needs at least one of defaults/grid/points",
            )
        return doc

    # ------------------------------------------------------------------
    # POST /design — inverse design against the warm engine
    # ------------------------------------------------------------------
    def _parse_design_target(self, body: Dict[str, Any]) -> DesignTarget:
        """Validate the ``target`` document and bound its candidate space."""
        target = DesignTarget.from_dict(_require(body, "target"))
        # Enumeration is arithmetic-only (no graphs, no LPs), so sizing
        # the space up front is cheap enough to gate the request on.
        return target

    def _design(
        self, body: Dict[str, Any], _query: Optional[Dict[str, str]] = None
    ) -> Dict[str, Any]:
        """The cheapest design meeting a declarative SLO target (sync)."""
        target = self._parse_design_target(body)
        candidates = len(enumerate_candidates(target))
        if candidates > self.max_design_candidates:
            raise ApiError(
                400,
                "too_many_points",
                f"design space has {candidates} candidates; the "
                f"synchronous limit is {self.max_design_candidates} "
                '(submit as a kind: "design" job instead)',
                details={
                    "max_design_candidates": self.max_design_candidates
                },
            )
        report = self.design_engine.search(target)
        return {"report": report.to_dict()}

    # ------------------------------------------------------------------
    # /v1/jobs — async sweep campaigns and design searches
    # ------------------------------------------------------------------
    def _jobs_create(
        self, body: Dict[str, Any], _query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """Submit a sweep document or a design target as an async job (202)."""
        kind = body.get("kind", "sweep")
        if kind == "design":
            target = self._parse_design_target(body)
            candidates = len(enumerate_candidates(target))
            if candidates > self.max_job_points:
                raise ApiError(
                    400,
                    "too_many_points",
                    f"design space has {candidates} candidates; the "
                    f"job limit is {self.max_job_points}",
                    details={"max_job_points": self.max_job_points},
                )
            try:
                job = self.jobs.submit_design(target, self.design_engine)
            except RuntimeError as exc:
                raise ApiError(409, "too_many_jobs", str(exc))
            return 202, {"job": job.summary()}
        if kind != "sweep":
            raise ApiError(
                400,
                "bad_spec",
                f"unknown job kind {kind!r}; valid kinds: design, sweep",
            )
        doc = self._sweep_doc(body)
        specs = expand_sweep(doc)
        if len(specs) > self.max_job_points:
            raise ApiError(
                400,
                "too_many_points",
                f"job expands to {len(specs)} points; the limit is "
                f"{self.max_job_points}",
                details={"max_job_points": self.max_job_points},
            )
        options = body.get("options", {})
        if not isinstance(options, dict):
            raise ApiError(400, "bad_spec", "'options' must be an object")
        try:
            job = self.jobs.submit(
                doc,
                shards=options.get("shards"),
                warm=bool(options.get("warm", True)),
            )
        except RuntimeError as exc:
            raise ApiError(409, "too_many_jobs", str(exc))
        return 202, {"job": job.summary()}

    def _jobs_list(
        self, _body: Dict[str, Any], _query: Optional[Dict[str, str]] = None
    ) -> Dict[str, Any]:
        """Summaries of every known job (no records)."""
        return {"jobs": [job.summary() for job in self.jobs.list()]}

    def _job_get(
        self, job_id: str, query: Optional[Dict[str, str]] = None
    ) -> Dict[str, Any]:
        """Job state, progress, and (when terminal) results."""
        job = self.jobs.get(job_id)
        if job is None:
            raise ApiError(404, "not_found", f"unknown job {job_id!r}")
        include = (query or {}).get("records", "true").lower() not in (
            "false", "0", "no",
        )
        return {"job": job.payload(include_records=include)}

    def _job_cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job cooperatively; idempotent on terminal jobs."""
        job = self.jobs.cancel(job_id)
        if job is None:
            raise ApiError(404, "not_found", f"unknown job {job_id!r}")
        return {"job": job.summary()}

    # ------------------------------------------------------------------
    # POST /compare
    # ------------------------------------------------------------------
    def _compare(
        self, body: Dict[str, Any], _query: Optional[Dict[str, str]] = None
    ) -> Dict[str, Any]:
        """Throughput across several topologies, ranked."""
        specs = _require(body, "topologies")
        if not isinstance(specs, (list, tuple)) or len(specs) < 2:
            raise ApiError(
                400, "bad_spec",
                "'topologies' must be an array of at least two specs",
            )
        entries: List[Dict[str, Any]] = []
        for spec in specs:
            evaluation = self._evaluate_throughput(body, spec)
            solved = [
                r["per_server_throughput"]
                for r in evaluation["results"]
                if r["status"] == "optimal"
            ]
            entries.append(
                {
                    "spec": spec,
                    "topology": evaluation["topology"],
                    "results": evaluation["results"],
                    "warm": evaluation["warm"],
                    # Cross-fraction mean: one scalar to rank on.
                    "mean_per_server_throughput": (
                        sum(solved) / len(solved) if solved else None
                    ),
                }
            )
        ranked = [
            e for e in entries if e["mean_per_server_throughput"] is not None
        ]
        if not ranked:
            raise ApiError(
                422,
                "solver_failure",
                "no topology produced an optimal solve",
                details={"results": [e["results"] for e in entries]},
            )
        best = max(ranked, key=lambda e: e["mean_per_server_throughput"])
        best_value = best["mean_per_server_throughput"]
        for entry in entries:
            value = entry["mean_per_server_throughput"]
            entry["relative_to_best"] = (
                round(value / best_value, 6)
                if value is not None and best_value
                else None
            )
        solver_name, _ = registry.parse_spec(
            body.get("solver", "highs-batched"), key="name"
        )
        return {
            "solver": solver_name,
            "results": entries,
            "best": best["topology"]["name"],
        }
