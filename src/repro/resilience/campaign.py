"""Failure campaigns: throughput-retained-vs-fraction-failed sweeps.

A *campaign* crosses a failure-rate grid with a set of topologies (and
optionally routings), runs every point through the harness
:class:`~repro.harness.Runner` — parallel workers, retries, and the
content-addressed result cache all apply — and reduces the records to
the paper's graceful-degradation figure: for each topology, the fraction
of its own zero-failure metric retained at each failure rate.

Campaign files are JSON::

    {
      "name": "equal-cost-degradation",
      "engine": "lp",
      "topologies": {
        "Xpander":  {"family": "xpander", "degree": 5, "lift": 8,
                     "servers": 3},
        "Fat-tree": {"family": "fattree", "k": 6}
      },
      "failures": {"mode": "links",
                   "fractions": [0.0, 0.04, 0.08, 0.12, 0.16],
                   "seeds": [0, 1, 2]},
      "workload": {"fraction": 1.0}
    }

``failures.mode`` is any :data:`repro.registry.FAILURES` mode;
``fractions`` is the x-axis (0.0 is the healthy baseline); ``seeds``
replicates each non-zero point and the reduction averages over them.
Optional sections: ``routings`` (list; series become
``topology/routing``), ``defaults`` (extra :class:`ExperimentSpec`
fields, e.g. measure windows), ``metric`` (record metric to reduce;
defaults to ``per_server_throughput`` for ``lp`` and ``avg_fct_ms`` —
inverted, since lower is better — for the simulators), and ``lcc``
(restrict degraded topologies to their largest component).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..analysis import format_series
from ..harness.records import RunRecord
from ..harness.runner import Runner, SweepResult
from ..harness.spec import ENGINES, ExperimentSpec, SpecError
from ..registry import parse_spec

__all__ = [
    "CampaignError",
    "Campaign",
    "CampaignResult",
    "load_campaign_file",
    "run_campaign",
]


class CampaignError(ValueError):
    """A campaign document is malformed."""


#: Default (metric, invert) per engine: invert means lower-is-better, so
#: retained = baseline / value instead of value / baseline.
_DEFAULT_METRICS = {
    "lp": ("per_server_throughput", False),
    "flow": ("avg_fct_ms", True),
    "packet": ("avg_fct_ms", True),
}

#: Error-class names (the prefix of a failure record's ``error`` field)
#: that mean the throughput solver itself reported a non-optimal status —
#: e.g. an LP made infeasible by a heavy failure scenario — rather than
#: the point crashing.  These flow through as nan holes like any other
#: failure, but are counted separately (``solver_failures`` in the
#: payload) so a campaign can distinguish "solver said no" from "bug".
_SOLVER_ERRORS = frozenset(
    {
        "SolverFailure",
        "InfeasibleError",
        "UnboundedError",
        "SolverNumericalError",
    }
)


def _is_solver_failure(record: RunRecord) -> bool:
    if record.ok or not record.error:
        return False
    return record.error.split(":", 1)[0] in _SOLVER_ERRORS


def _topology_mapping(spec: Any) -> Dict[str, Any]:
    """Normalize a campaign topology entry to the harness mapping form."""
    if isinstance(spec, str):
        family, params = parse_spec(spec, key="family")
        return {"family": family, **params}
    if isinstance(spec, Mapping):
        return dict(spec)
    raise CampaignError(
        f"topology spec must be a mapping or string, got {type(spec).__name__}"
    )


@dataclass
class Campaign:
    """A declarative failure campaign (see module docstring).

    ``topologies`` maps series labels to topology specs; ``fractions``
    is the shared failure-rate x-axis; each non-zero fraction is
    replicated across ``failure_seeds``.
    """

    name: str
    topologies: Dict[str, Dict[str, Any]]
    mode: str = "links"
    fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2)
    failure_seeds: Sequence[int] = (0,)
    engine: str = "lp"
    routings: Sequence[str] = ()
    workload: Dict[str, Any] = field(default_factory=dict)
    defaults: Dict[str, Any] = field(default_factory=dict)
    metric: str = ""
    invert: Optional[bool] = None
    lcc: bool = False

    def __post_init__(self) -> None:
        if not self.topologies:
            raise CampaignError("campaign needs at least one topology")
        if self.engine not in ENGINES:
            raise CampaignError(
                f"unknown engine {self.engine!r}; valid engines: {ENGINES}"
            )
        if not self.fractions:
            raise CampaignError("campaign needs at least one failure fraction")
        if any(f < 0 for f in self.fractions):
            raise CampaignError("failure fractions must be >= 0")
        if not self.failure_seeds:
            raise CampaignError("campaign needs at least one failure seed")
        self.topologies = {
            label: _topology_mapping(spec)
            for label, spec in self.topologies.items()
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_document(cls, doc: Mapping[str, Any]) -> "Campaign":
        """Build a campaign from a loaded JSON document."""
        if not isinstance(doc, Mapping):
            raise CampaignError("campaign document must be a JSON object")
        known = {
            "name", "topologies", "failures", "engine", "routings",
            "workload", "defaults", "metric", "lcc",
        }
        unknown = set(doc) - known
        if unknown:
            raise CampaignError(
                f"unknown campaign sections {sorted(unknown)}; "
                f"valid sections: {sorted(known)}"
            )
        failures = doc.get("failures")
        if not isinstance(failures, Mapping) or "fractions" not in failures:
            raise CampaignError(
                "campaign needs a 'failures' object with 'fractions' "
                "(and optionally 'mode' and 'seeds')"
            )
        extra = set(failures) - {"mode", "fractions", "seeds", "lcc"}
        if extra:
            raise CampaignError(
                f"unknown failures keys {sorted(extra)}; "
                "valid keys: mode, fractions, seeds, lcc"
            )
        metric = doc.get("metric", "")
        invert: Optional[bool] = None
        if isinstance(metric, Mapping):
            invert = bool(metric.get("invert", False))
            metric = str(metric.get("name", ""))
        return cls(
            name=str(doc.get("name", "resilience-campaign")),
            topologies=dict(doc.get("topologies", {})),
            mode=str(failures.get("mode", "links")),
            fractions=[float(f) for f in failures["fractions"]],
            failure_seeds=[int(s) for s in failures.get("seeds", [0])],
            engine=str(doc.get("engine", "lp")),
            routings=list(doc.get("routings", [])),
            workload=dict(doc.get("workload", {})),
            defaults=dict(doc.get("defaults", {})),
            metric=str(metric),
            invert=invert,
            lcc=bool(failures.get("lcc", doc.get("lcc", False))),
        )

    # ------------------------------------------------------------------
    def _routing_axis(self) -> List[Optional[str]]:
        if self.engine == "lp" or not self.routings:
            return [None]
        return list(self.routings)

    def series_label(self, topo_label: str, routing: Optional[str]) -> str:
        if routing is None or len(self._routing_axis()) == 1:
            return topo_label
        return f"{topo_label}/{routing}"

    def _failure_spec(self, fraction: float, seed: int) -> Dict[str, Any]:
        spec: Dict[str, Any] = {
            "mode": self.mode, "fraction": fraction, "seed": seed,
        }
        if self.lcc:
            spec["lcc"] = True
        return spec

    def expand(
        self,
    ) -> Tuple[List[ExperimentSpec], List[Tuple[str, Optional[str], float, int]]]:
        """All experiment points plus their (topo, routing, fraction, seed)
        keys, in submission order.

        The zero-failure baseline is generated once per series (failure
        seeds only differentiate non-zero fractions), with ``failures``
        left unset so it hashes — and caches — identically to an
        ordinary healthy run of the same spec.
        """
        specs: List[ExperimentSpec] = []
        keys: List[Tuple[str, Optional[str], float, int]] = []
        for topo_label, topo_spec in self.topologies.items():
            for routing in self._routing_axis():
                for fraction in self.fractions:
                    seeds = [0] if fraction == 0 else list(self.failure_seeds)
                    for fseed in seeds:
                        data: Dict[str, Any] = {
                            "topology": dict(topo_spec),
                            "workload": dict(self.workload),
                            "engine": self.engine,
                        }
                        data.update(self.defaults)
                        if routing is not None:
                            data["routing"] = routing
                        if fraction > 0:
                            data["failures"] = self._failure_spec(
                                fraction, fseed
                            )
                        label = self.series_label(topo_label, routing)
                        data["name"] = f"{label}/f={fraction:g}/s={fseed}"
                        try:
                            specs.append(ExperimentSpec.from_dict(data))
                        except SpecError as exc:
                            raise CampaignError(
                                f"campaign point {data['name']!r}: {exc}"
                            ) from exc
                        keys.append((topo_label, routing, fraction, fseed))
        return specs, keys

    def resolve_metric(self) -> Tuple[str, bool]:
        """The record metric to reduce and whether lower is better."""
        default_metric, default_invert = _DEFAULT_METRICS[self.engine]
        metric = self.metric or default_metric
        invert = self.invert if self.invert is not None else (
            default_invert if metric == default_metric else False
        )
        return metric, invert


@dataclass
class CampaignResult:
    """Reduced campaign outcome: retained-throughput series + records."""

    campaign: Campaign
    fractions: List[float]
    series: Dict[str, List[float]]
    values: Dict[str, List[float]]
    records: List[RunRecord]
    metric: str
    wall_clock_s: float = 0.0

    @property
    def counts(self) -> Dict[str, int]:
        return SweepResult(records=self.records).counts

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records)

    @property
    def solver_failures(self) -> int:
        """Failed points whose error was a typed throughput-solver failure."""
        return sum(1 for r in self.records if _is_solver_failure(r))

    def retained(self, label: str, fraction: float) -> float:
        """Retained fraction for one series at one failure rate."""
        return self.series[label][self.fractions.index(fraction)]

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready summary (what ``--out`` writes)."""
        return {
            "schema": "repro.resilience/1",
            "name": self.campaign.name,
            "engine": self.campaign.engine,
            "mode": self.campaign.mode,
            "metric": self.metric,
            "fraction_failed": list(self.fractions),
            "throughput_retained": {
                label: list(ys) for label, ys in self.series.items()
            },
            "metric_values": {
                label: list(ys) for label, ys in self.values.items()
            },
            "counts": self.counts,
            "solver_failures": self.solver_failures,
        }

    def render(self) -> str:
        """Plain-text figure: throughput retained vs. fraction failed."""
        return format_series(
            "fraction failed",
            [round(f, 6) for f in self.fractions],
            {
                label: [round(y, 4) if y == y else y for y in ys]
                for label, ys in self.series.items()
            },
            title=(
                f"{self.campaign.name}: {self.metric} retained vs. "
                f"fraction of {self.campaign.mode} failed "
                f"({self.campaign.engine} engine)"
            ),
        )


def load_campaign_file(path: str) -> Campaign:
    """Load a campaign JSON file."""
    with open(path) as f:
        doc = json.load(f)
    return Campaign.from_document(doc)


def _gauge_slug(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.]+", "-", label).strip("-").lower()


def run_campaign(
    campaign: Campaign, runner: Optional[Runner] = None
) -> CampaignResult:
    """Run every campaign point and reduce to retained-throughput series.

    Failed points (the :class:`Runner` never raises) leave ``nan`` holes
    in the affected series; :attr:`CampaignResult.ok` reports whether
    the campaign completed clean.  Points whose LP came back infeasible
    or otherwise non-optimal — disconnected demands under heavy failures,
    say — arrive as typed solver failures and are additionally counted in
    :attr:`CampaignResult.solver_failures`; ``workload: {"solver": ...}``
    selects the backend (see docs/solvers.md).
    """
    runner = runner or Runner()
    specs, keys = campaign.expand()
    metric, invert = campaign.resolve_metric()
    with obs.span(
        "resilience.campaign", campaign=campaign.name, points=len(specs)
    ):
        sweep = runner.run(specs)
        solver_failures = sum(
            1 for r in sweep.records if _is_solver_failure(r)
        )
        if solver_failures:
            obs.add("resilience.solver_failures", solver_failures)

        # Collect per-(series, fraction) metric samples across seeds.
        samples: Dict[Tuple[str, float], List[float]] = {}
        for key, record in zip(keys, sweep.records):
            topo_label, routing, fraction, _ = key
            label = campaign.series_label(topo_label, routing)
            if record.ok and metric in record.metrics:
                value = float(record.metrics[metric])
                if value == value:  # skip NaN metrics
                    samples.setdefault((label, fraction), []).append(value)

        fractions = [float(f) for f in campaign.fractions]
        labels = [
            campaign.series_label(topo_label, routing)
            for topo_label in campaign.topologies
            for routing in campaign._routing_axis()
        ]
        nan = float("nan")
        values: Dict[str, List[float]] = {}
        series: Dict[str, List[float]] = {}
        for label in labels:
            means = []
            for fraction in fractions:
                got = samples.get((label, fraction), [])
                means.append(sum(got) / len(got) if got else nan)
            values[label] = means
            base = means[fractions.index(0.0)] if 0.0 in fractions else nan
            retained = []
            for mean in means:
                if base == base and mean == mean and base > 0 and mean > 0:
                    retained.append(base / mean if invert else mean / base)
                else:
                    retained.append(nan)
            series[label] = retained

        for label in labels:
            obs.event(
                "resilience.campaign_series",
                label=label,
                metric=metric,
                retained=[
                    round(y, 6) if y == y else None for y in series[label]
                ],
            )
            finite = [y for y in series[label] if y == y]
            if finite:
                obs.set_gauge(
                    f"resilience.throughput_retained.{_gauge_slug(label)}",
                    finite[-1],
                )
    return CampaignResult(
        campaign=campaign,
        fractions=fractions,
        series=series,
        values=values,
        records=sweep.records,
        metric=metric,
        wall_clock_s=sweep.wall_clock_s,
    )
