"""Failure campaigns end-to-end: scenarios, degradation, campaign runner.

The resilience subsystem drives failures through every layer of the
library:

* :class:`FailureScenario` — a frozen, seeded, content-addressed
  description of what fails (random link/switch fractions, correlated
  fat-tree pod / aggregation wipeouts, Xpander meta-node wipeouts,
  bisection cuts), applied with ``topology.degrade(scenario)``;
* failure-aware execution — degraded topologies invalidate the shared
  path cache, routing policies fall back instead of dying, the flow
  simulator re-plans in-flight flows, and the LP/MCF engines report
  disconnected pairs;
* :class:`Campaign` / :func:`run_campaign` — "throughput retained vs.
  fraction failed" sweeps over failure grids x topologies x routings via
  the harness :class:`~repro.harness.Runner`
  (``python -m repro resilience <campaign.json>``).

See ``docs/resilience.md`` for the campaign file format.
"""

from .campaign import (
    Campaign,
    CampaignError,
    CampaignResult,
    load_campaign_file,
    run_campaign,
)
from .scenario import MODES, FailureScenario, ScenarioError

__all__ = [
    "FailureScenario",
    "ScenarioError",
    "MODES",
    "Campaign",
    "CampaignError",
    "CampaignResult",
    "load_campaign_file",
    "run_campaign",
]
