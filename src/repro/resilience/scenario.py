"""Failure scenarios: frozen, seeded, content-addressed degradation specs.

A :class:`FailureScenario` describes *what fails* — independently of any
particular topology instance — and :meth:`~FailureScenario.apply` turns
it into a :class:`~repro.topologies.DegradedTopology` deterministically:
the same scenario applied to structurally equal topologies selects the
same elements in any process.  Scenarios are keyword-only, immutable,
JSON-round-trippable (:meth:`to_spec` / :meth:`from_spec`), and carry a
stable :meth:`content_hash`, so they compose with the harness's
content-addressed result cache exactly like experiment specs do.

Modes
-----
``links`` / ``switches``
    Uniform-random failures — the Jellyfish/Xpander resilience ablation.
    Select by ``fraction`` (replicating the historical RNG sequence of
    ``random_link_failures`` / ``random_switch_failures`` bit-for-bit),
    by ``count``, or by naming elements explicitly.
``pods`` / ``aggregation``
    Correlated fat-tree failures: whole-pod wipeout (a pod's aggregation
    *and* edge switches die — the paper's "fat-trees lose subtrees"
    story) and aggregation-layer attrition.  Both read the ``layer`` /
    ``pod`` node annotations the fat-tree generator stamps.
``metanodes``
    Correlated expander failure: an Xpander meta-node (one complete lift
    group) dies, via the generator's ``meta_node`` annotations.
``bisection``
    Adversarial cut: fail a fraction (or count) of the cables crossing
    the sorted-halves switch partition, approaching a bisection cut as
    the fraction approaches 1.

Applying a scenario drops any shared :class:`~repro.perf.PathCache`
entry for the degraded graph (so routing tables are rebuilt fresh) and,
when observability is enabled, emits a ``resilience.degrade`` event plus
the ``resilience.connectivity`` / ``*_retained`` gauge family.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Dict, Iterable, Optional, Tuple

from .. import obs
from ..topologies.base import Topology, TopologyError
from ..topologies.failures import (
    DegradedTopology,
    degrade_topology,
    largest_connected_component,
)

__all__ = [
    "ScenarioError",
    "FailureScenario",
    "MODES",
]


class ScenarioError(TopologyError):
    """A failure scenario is misconfigured or inapplicable to a topology."""


#: Valid scenario modes, in documentation order.
MODES = (
    "links",
    "switches",
    "pods",
    "aggregation",
    "metanodes",
    "bisection",
)

#: Modes whose random fraction must replicate the historical
#: ``random_*_failures`` bound of [0, 1); the structural modes accept a
#: full wipeout (fraction 1.0).
_HALF_OPEN_FRACTION = ("links", "switches")


def _normalize_links(
    links: Iterable[Tuple[int, int]],
) -> Tuple[Tuple[int, int], ...]:
    out = []
    for pair in links:
        u, v = pair
        out.append((u, v) if u <= v else (v, u))
    return tuple(sorted(out))


class FailureScenario:
    """One immutable, seeded failure pattern (see module docstring).

    All parameters are keyword-only::

        FailureScenario(mode="links", fraction=0.08, seed=3)
        FailureScenario(mode="pods", count=1, lcc=True)
        FailureScenario(mode="links", links=[(0, 1), (2, 5)])

    Parameters
    ----------
    mode:
        One of :data:`MODES`.
    fraction:
        Fraction of the mode's population to fail (``[0, 1)`` for
        ``links``/``switches``, ``[0, 1]`` otherwise).
    count:
        Absolute number of elements to fail (capped at the population).
    seed:
        RNG seed for the random selection; ignored when elements are
        named explicitly.
    links / switches:
        Explicit elements (``links`` mode / ``switches`` mode only).
    lcc:
        Restrict the degraded topology to its largest connected
        component (the operational network after stranding).
    """

    __slots__ = ("mode", "fraction", "count", "seed", "links", "switches", "lcc")

    def __init__(
        self,
        *,
        mode: str,
        fraction: Optional[float] = None,
        count: Optional[int] = None,
        seed: int = 0,
        links: Optional[Iterable[Tuple[int, int]]] = None,
        switches: Optional[Iterable[int]] = None,
        lcc: bool = False,
    ) -> None:
        if mode not in MODES:
            raise ScenarioError(
                f"unknown failure mode {mode!r}; valid modes: {MODES}"
            )
        if links is not None and mode != "links":
            raise ScenarioError("explicit links need mode='links'")
        if switches is not None and mode != "switches":
            raise ScenarioError("explicit switches need mode='switches'")
        given = [
            x for x in (fraction, count, links, switches) if x is not None
        ]
        if len(given) != 1:
            raise ScenarioError(
                "a scenario needs exactly one of fraction, count, or an "
                f"explicit element list; got {len(given)} for mode {mode!r}"
            )
        if fraction is not None:
            fraction = float(fraction)
            upper_open = mode in _HALF_OPEN_FRACTION
            if not (0 <= fraction < 1 if upper_open else 0 <= fraction <= 1):
                bound = "[0, 1)" if upper_open else "[0, 1]"
                raise ScenarioError(
                    f"failure fraction must be in {bound}, got {fraction}"
                )
        if count is not None:
            count = int(count)
            if count < 0:
                raise ScenarioError(f"failure count must be >= 0, got {count}")
        if not isinstance(seed, int):
            raise ScenarioError(f"seed must be an int, got {seed!r}")
        set_ = object.__setattr__
        set_(self, "mode", mode)
        set_(self, "fraction", fraction)
        set_(self, "count", count)
        set_(self, "seed", int(seed))
        set_(
            self, "links", _normalize_links(links) if links is not None else None
        )
        set_(
            self,
            "switches",
            tuple(sorted(int(s) for s in switches))
            if switches is not None
            else None,
        )
        set_(self, "lcc", bool(lcc))

    # ------------------------------------------------------------------
    # Immutability and identity
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            f"FailureScenario is immutable; cannot set {name!r}"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"FailureScenario is immutable; cannot delete {name!r}"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, FailureScenario):
            return NotImplemented
        return self.to_spec() == other.to_spec()

    def __hash__(self) -> int:
        return hash(self.content_hash())

    def __repr__(self) -> str:
        parts = [f"mode={self.mode!r}"]
        for key in ("fraction", "count", "links", "switches"):
            value = getattr(self, key)
            if value is not None:
                parts.append(f"{key}={value!r}")
        parts.append(f"seed={self.seed}")
        if self.lcc:
            parts.append("lcc=True")
        return f"FailureScenario({', '.join(parts)})"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_spec(self) -> Dict[str, Any]:
        """The JSON-ready mapping :meth:`from_spec` round-trips."""
        spec: Dict[str, Any] = {"mode": self.mode, "seed": self.seed}
        if self.fraction is not None:
            spec["fraction"] = self.fraction
        if self.count is not None:
            spec["count"] = self.count
        if self.links is not None:
            spec["links"] = [list(pair) for pair in self.links]
        if self.switches is not None:
            spec["switches"] = list(self.switches)
        if self.lcc:
            spec["lcc"] = True
        return spec

    @classmethod
    def from_spec(cls, spec: Any) -> "FailureScenario":
        """Build a scenario from a mapping, a compact string, or itself.

        Accepts :meth:`to_spec` mappings, registry-style strings such as
        ``"links:fraction=0.08,seed=3"``, and (idempotently) scenario
        instances.
        """
        if isinstance(spec, FailureScenario):
            return spec
        from ..registry import FAILURES, RegistryError, parse_spec

        try:
            mode, params = parse_spec(spec, key="mode")
            return FAILURES.build(mode, **params)
        except RegistryError as exc:
            raise ScenarioError(str(exc)) from exc

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical spec encoding."""
        blob = json.dumps(
            self.to_spec(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def _resolve_count(self, population: int) -> int:
        if self.count is not None:
            return min(self.count, population)
        return round(self.fraction * population)

    def select(
        self, topology: Topology
    ) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...]]:
        """The ``(links, switches)`` this scenario fails on ``topology``.

        Deterministic in (scenario, topology structure); raises
        :class:`ScenarioError` when the topology lacks the annotations a
        correlated mode needs (pods on fat-trees, meta-nodes on
        Xpanders).
        """
        g = topology.graph
        rng = random.Random(self.seed)
        if self.mode == "links":
            if self.links is not None:
                return self.links, ()
            # Exact historical RNG sequence of random_link_failures.
            edges = sorted(tuple(sorted(e)) for e in g.edges())
            return tuple(rng.sample(edges, self._resolve_count(len(edges)))), ()
        if self.mode == "switches":
            if self.switches is not None:
                return (), self.switches
            # Exact historical RNG sequence of random_switch_failures.
            switches = topology.switches
            count = self._resolve_count(len(switches))
            return (), tuple(rng.sample(switches, count))
        if self.mode == "bisection":
            nodes = sorted(g.nodes())
            left = set(nodes[: len(nodes) // 2])
            cut = sorted(
                tuple(sorted((u, v)))
                for u, v in g.edges()
                if (u in left) != (v in left)
            )
            return tuple(rng.sample(cut, self._resolve_count(len(cut)))), ()
        if self.mode == "metanodes":
            metas = sorted(
                {
                    data["meta_node"]
                    for _, data in g.nodes(data=True)
                    if "meta_node" in data
                }
            )
            if not metas:
                raise ScenarioError(
                    "mode 'metanodes' needs meta_node annotations "
                    "(xpander topologies)"
                )
            chosen = set(rng.sample(metas, self._resolve_count(len(metas))))
            return (), tuple(
                sorted(
                    v
                    for v, data in g.nodes(data=True)
                    if data.get("meta_node") in chosen
                )
            )
        # Fat-tree correlated modes read the generator's layer/pod stamps.
        layers = {
            v: data.get("layer")
            for v, data in g.nodes(data=True)
            if "layer" in data
        }
        if not layers:
            raise ScenarioError(
                f"mode {self.mode!r} needs layer/pod annotations "
                "(fat-tree topologies)"
            )
        if self.mode == "aggregation":
            aggs = sorted(v for v, lay in layers.items() if lay == "agg")
            return (), tuple(
                sorted(rng.sample(aggs, self._resolve_count(len(aggs))))
            )
        # pods: every agg + edge switch of the chosen pods dies.
        pods = sorted(
            {
                data["pod"]
                for _, data in g.nodes(data=True)
                if data.get("pod", -1) >= 0
            }
        )
        if not pods:
            raise ScenarioError(
                "mode 'pods' needs pod annotations (fat-tree topologies)"
            )
        chosen_pods = set(rng.sample(pods, self._resolve_count(len(pods))))
        return (), tuple(
            sorted(
                v
                for v, data in g.nodes(data=True)
                if data.get("pod", -1) in chosen_pods
            )
        )

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, topology: Topology) -> DegradedTopology:
        """Degrade ``topology`` under this scenario.

        Returns a :class:`~repro.topologies.DegradedTopology` carrying
        full provenance.  Any shared path cache entry for the degraded
        graph is invalidated so ECMP tables and path sets are rebuilt
        against the degraded structure, and the obs degradation event /
        connectivity gauges are emitted when a run is active.
        """
        with obs.span("resilience.degrade", mode=self.mode):
            links, switches = self.select(topology)
            degraded = degrade_topology(
                topology, links=links, switches=switches, scenario=self
            )
            connectivity = degraded.connectivity()
            if self.lcc:
                degraded = largest_connected_component(degraded)
            from ..perf import invalidate_shared_cache

            invalidate_shared_cache(degraded.graph)
        obs.add("resilience.degrades")
        obs.event(
            "resilience.degrade",
            mode=self.mode,
            scenario=self.content_hash()[:12],
            topology=topology.name,
            failed_links=len(degraded.failed_links),
            failed_switches=len(degraded.failed_switches),
            connectivity=round(connectivity, 6),
        )
        obs.set_gauge("resilience.connectivity", connectivity)
        obs.set_gauge("resilience.links_retained", degraded.links_retained)
        obs.set_gauge(
            "resilience.switches_retained", degraded.switches_retained
        )
        return degraded


# ----------------------------------------------------------------------
# Registry bindings (see repro.registry)
# ----------------------------------------------------------------------
from ..registry import FAILURES as _FAILURES  # noqa: E402


def _mode_factory(mode: str):
    def factory(**params: Any) -> FailureScenario:
        return FailureScenario(mode=mode, **params)

    factory.__name__ = f"_{mode}_scenario_factory"
    return factory


for _mode, _desc in (
    ("links", "uniform-random link failures; fraction|count|links, seed"),
    (
        "switches",
        "uniform-random switch failures; fraction|count|switches, seed",
    ),
    ("pods", "fat-tree pod wipeout (agg+edge); count|fraction, seed"),
    ("aggregation", "fat-tree aggregation-layer attrition; fraction|count"),
    ("metanodes", "xpander meta-node (lift group) wipeout; count|fraction"),
    ("bisection", "cut cables crossing the sorted-halves partition"),
):
    _FAILURES.register(_mode, _mode_factory(_mode), _desc)
