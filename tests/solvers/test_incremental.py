"""Warm-started incremental solving: equivalence, refactorization, flags.

The ISSUE's property test: across ≥50 random jellyfish/xpander instances
and multi-point load grids, warm-started objective values must match
``highs-exact`` within 1e-9 (the scipy fallback is in fact byte-identical
— it patches cached canonical CSR matrices into exactly what fresh
assembly would build).  Plus the forced-refactorization contract: any
topology change mid-batch — including a capacity-only change the
structural content hash ignores — must rebuild the model, never reuse a
stale basis.
"""

import random

import pytest

from repro import registry
from repro.solvers import (
    HighsIncrementalBackend,
    IncrementalTopologyContext,
    have_highspy,
    reset_warm_start_stats,
    topology_fingerprint,
    warm_start_stats,
)
from repro.throughput import max_concurrent_throughput, skew_sweep
from repro.topologies import jellyfish, xpander
from repro.traffic import longest_matching_tm

LOAD_GRID = (0.5, 0.8, 1.0, 1.4)


def _random_instances(count, seed=20260808):
    """≥``count`` seeded random small jellyfish/xpander instances."""
    rng = random.Random(seed)
    builders = []
    for i in range(count):
        if i % 2 == 0:
            switches = rng.randint(8, 14)
            degree = rng.randint(3, 4)
            if (switches * degree) % 2:  # r-regular needs n*r even
                switches += 1
            servers = rng.randint(1, 2)
            s = rng.randint(0, 10_000)
            builders.append(
                pytest.param(
                    lambda sw=switches, d=degree, sv=servers, s=s: jellyfish(
                        sw, d, sv, seed=s
                    ),
                    id=f"jellyfish-{i}",
                )
            )
        else:
            degree = rng.randint(3, 5)
            lift = rng.randint(2, 3)
            servers = rng.randint(1, 2)
            s = rng.randint(0, 10_000)
            builders.append(
                pytest.param(
                    lambda d=degree, lf=lift, sv=servers, s=s: xpander(
                        d, d + 1, sv, seed=s
                    ),
                    id=f"xpander-{i}",
                )
            )
    return builders


INSTANCES = _random_instances(50)


@pytest.mark.parametrize("build", INSTANCES)
def test_warm_objectives_match_exact_within_1e9(build):
    """Property test: warm solves track highs-exact to 1e-9 everywhere."""
    topo = build()
    base = longest_matching_tm(topo, 1.0, seed=1)
    tms = [base.scaled(s) for s in LOAD_GRID]
    outcomes = HighsIncrementalBackend().solve_many(topo, tms)
    for tm, outcome in zip(tms, outcomes):
        assert outcome.ok
        exact = max_concurrent_throughput(topo, tm)
        assert abs(outcome.result.throughput - exact.throughput) <= 1e-9
        assert abs(outcome.result.per_server - exact.per_server) <= 1e-9
    # The first point built the model; the rest warm-started off it.
    assert [o.warm_started for o in outcomes] == [False, True, True, True]


def test_fallback_is_byte_identical_to_exact():
    """Stronger than the 1e-9 envelope: the scipy fallback patches the
    cached matrices into exactly fresh assembly, so every field matches
    bit for bit."""
    topo = jellyfish(12, 4, 2, seed=3)
    base = longest_matching_tm(topo, 1.0, seed=1)
    tms = [base.scaled(s) for s in LOAD_GRID]
    backend = HighsIncrementalBackend(mode="fallback")
    for tm, outcome in zip(tms, backend.solve_many(topo, tms)):
        exact = max_concurrent_throughput(topo, tm)
        result = outcome.result
        assert result.throughput == exact.throughput
        assert result.per_server == exact.per_server
        assert result.iterations == exact.iterations
        assert result.link_utilization == exact.link_utilization
        assert result.disconnected_pairs == exact.disconnected_pairs


def test_varying_support_matches_exact():
    """Skew-style sweeps change the demand support (different dests per
    fraction): each support is its own structure, and repeats of a
    support warm-start while results stay exact."""
    topo = jellyfish(12, 4, 2, seed=3)
    fractions = [0.4, 0.7, 1.0, 0.4, 0.7, 1.0]
    tms = [longest_matching_tm(topo, f, seed=1) for f in fractions]
    outcomes = HighsIncrementalBackend().solve_many(topo, tms)
    for tm, outcome in zip(tms, outcomes):
        exact = max_concurrent_throughput(topo, tm)
        assert outcome.result.throughput == exact.throughput
    assert [o.warm_started for o in outcomes] == [
        False, False, False, True, True, True,
    ]


def test_topology_change_mid_batch_forces_refactorization():
    """A different topology between calls must rebuild, not reuse."""
    backend = HighsIncrementalBackend()
    topo_a = jellyfish(12, 4, 2, seed=3)
    topo_b = xpander(4, 6, 2, seed=0)
    tm_a = longest_matching_tm(topo_a, 1.0, seed=1)
    tm_b = longest_matching_tm(topo_b, 1.0, seed=1)

    first = backend.solve_many(topo_a, [tm_a, tm_a])
    assert [o.warm_started for o in first] == [False, True]
    switched = backend.solve_many(topo_b, [tm_b, tm_b])
    assert switched[0].warm_started is False  # rebuilt for topo_b
    assert switched[1].warm_started is True
    exact_b = max_concurrent_throughput(topo_b, tm_b)
    assert switched[0].result.throughput == exact_b.throughput


def test_capacity_change_forces_refactorization():
    """Same graph structure, different capacities → different fingerprint
    → rebuild.  (The perf path cache's content hash ignores capacities;
    the LP fingerprint must not.)"""
    import copy

    topo = jellyfish(10, 4, 2, seed=5)
    scaled = copy.deepcopy(topo)
    for _u, _v, data in scaled.graph.edges(data=True):
        data["capacity"] *= 2.0
    assert topology_fingerprint(topo) != topology_fingerprint(scaled)

    backend = HighsIncrementalBackend()
    tm = longest_matching_tm(topo, 1.0, seed=1)
    cold = backend.solve_many(topo, [tm])
    recap = backend.solve_many(scaled, [tm])
    assert recap[0].warm_started is False
    exact = max_concurrent_throughput(scaled, tm)
    assert recap[0].result.throughput == exact.throughput
    assert cold[0].result.throughput != recap[0].result.throughput


def test_warm_false_forces_every_point_cold():
    topo = jellyfish(12, 4, 2, seed=3)
    tm = longest_matching_tm(topo, 1.0, seed=1)
    backend = HighsIncrementalBackend()
    outcomes = backend.solve_many(topo, [tm, tm, tm], warm=False)
    assert [o.warm_started for o in outcomes] == [False, False, False]
    assert all(not o.basis_reused for o in outcomes)
    exact = max_concurrent_throughput(topo, tm)
    for o in outcomes:
        assert o.result.throughput == exact.throughput


def test_warm_start_counters_and_context_stats():
    reset_warm_start_stats()
    topo = jellyfish(12, 4, 2, seed=3)
    base = longest_matching_tm(topo, 1.0, seed=1)
    backend = HighsIncrementalBackend()
    backend.solve_many(topo, [base.scaled(s) for s in (0.5, 1.0, 1.5)])
    stats = warm_start_stats()
    assert stats["miss"] == 1
    assert stats["hit"] == 2
    assert stats["context_miss"] == 1
    assert stats["models_built"] == 1
    ctx = backend.context_stats()
    assert ctx["cold_solves"] == 1
    assert ctx["warm_solves"] == 2
    assert ctx["structures"] == 1
    # A second solve_many on the same topology reuses the live context.
    backend.solve_many(topo, [base])
    assert warm_start_stats()["context_hit"] == 1


def test_degenerate_conventions_match_backend_contract():
    """Empty and fully disconnected TMs follow the documented
    conventions (cf. tests/throughput/test_bounds.py)."""
    topo = jellyfish(10, 4, 2, seed=5)
    empty = longest_matching_tm(topo, 1.0, seed=1).restricted_to_pairs([])
    context = IncrementalTopologyContext(topo)
    result = context.solve(empty)
    assert result.throughput == float("inf")
    assert result.per_server == 1.0


def test_mode_validation():
    with pytest.raises(ValueError, match="auto/highspy/fallback"):
        HighsIncrementalBackend(mode="bogus")
    if not have_highspy():
        with pytest.raises(ValueError, match=r"\[perf\] extra"):
            HighsIncrementalBackend(mode="highspy")


def test_registry_exposes_incremental():
    assert "highs-incremental" in registry.SOLVERS
    backend = registry.solver("highs-incremental")
    assert backend.name == "highs-incremental"
    assert backend.supports_batching is True
    backend = registry.solver("highs-incremental:mode=fallback")
    assert backend.mode == "fallback"


def test_skew_sweep_routes_through_incremental_backend():
    topo = jellyfish(12, 4, 2, seed=3)
    fractions = [0.4, 0.7, 1.0]
    warm = skew_sweep(topo, fractions, solver="highs-incremental", seed=1)
    exact = skew_sweep(topo, fractions, solver="exact", seed=1)
    assert warm.ok and exact.ok
    assert warm.throughput == exact.throughput

    # warm=False is accepted and still exact.
    cold = skew_sweep(
        topo, fractions, solver="highs-incremental", seed=1, warm=False
    )
    assert cold.throughput == exact.throughput


def test_skew_sweep_warm_kwarg_tolerates_legacy_backends():
    """Backends without the ``warm`` kwarg still work (no TypeError)."""

    class LegacyBackend:
        def solve_many(self, topology, tms):
            return HighsIncrementalBackend().solve_many(topology, tms)

    topo = jellyfish(10, 4, 2, seed=5)
    result = skew_sweep(topo, [0.5, 1.0], solver=LegacyBackend(), seed=1)
    assert result.ok


@pytest.mark.skipif(not have_highspy(), reason="needs the [perf] extra")
def test_highspy_basis_reuse_flags_and_equivalence():
    """With highspy installed the warm path really reuses the basis —
    and stays within 1e-9 of highs-exact."""
    topo = jellyfish(12, 4, 2, seed=3)
    base = longest_matching_tm(topo, 1.0, seed=1)
    tms = [base.scaled(s) for s in LOAD_GRID]
    backend = HighsIncrementalBackend(mode="highspy")
    outcomes = backend.solve_many(topo, tms)
    assert [o.basis_reused for o in outcomes] == [False, True, True, True]
    for tm, outcome in zip(tms, outcomes):
        exact = max_concurrent_throughput(topo, tm)
        assert abs(outcome.result.throughput - exact.throughput) <= 1e-9
