"""Solver backend protocol: registry wiring and outcome classification."""

import pytest

from repro import registry
from repro.solvers import (
    HighsBatchedBackend,
    HighsExactBackend,
    HighsPathsBackend,
    McfApproxBackend,
    SolveOutcome,
    SolveStatus,
    SolverBackend,
)
from repro.throughput import (
    InfeasibleError,
    SolverFailure,
    SolverNumericalError,
    UnboundedError,
)
from repro.topologies import jellyfish
from repro.traffic import longest_matching_tm


class _FakeRes:
    """A scipy OptimizeResult stand-in with a chosen HiGHS status."""

    def __init__(self, status, success=False, x=None, message="", nit=7):
        self.status = status
        self.success = success
        self.x = x
        self.message = message
        self.nit = nit


@pytest.fixture
def small():
    topo = jellyfish(8, 3, 2, seed=0)
    return topo, longest_matching_tm(topo, 1.0, seed=0)


class TestRegistry:
    def test_builtin_names(self):
        names = set(registry.SOLVERS.available())
        assert {
            "exact", "highs-exact", "highs-batched", "highs-paths",
            "paths", "mcf-approx",
        } <= names

    def test_aliases_build_same_backend_class(self):
        assert type(registry.solver("exact")) is type(
            registry.solver("highs-exact")
        )
        assert type(registry.solver("paths")) is type(
            registry.solver("highs-paths")
        )

    def test_spec_string_parameters(self):
        backend = registry.solver("mcf-approx:epsilon=0.1")
        assert isinstance(backend, McfApproxBackend)
        assert backend.epsilon == 0.1
        assert registry.solver("highs-paths:k=4").k == 4

    def test_defaults_do_not_override_spec(self):
        backend = registry.solver("highs-paths:k=4", k=16)
        assert backend.k == 4

    def test_unknown_solver_raises(self):
        with pytest.raises(registry.RegistryError, match="unknown solver"):
            registry.solver("cplex")

    def test_describe_solver(self):
        assert "batch" in registry.SOLVERS.describe("highs-batched").lower()
        assert "epsilon" in registry.SOLVERS.describe("mcf-approx").lower()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            McfApproxBackend(epsilon=0.7)
        with pytest.raises(ValueError):
            HighsPathsBackend(k=0)

    def test_batching_flags(self):
        assert HighsBatchedBackend.supports_batching
        assert not HighsExactBackend.supports_batching
        assert not McfApproxBackend.supports_batching


class TestOutcomeClassification:
    @pytest.mark.parametrize(
        "status,cls,terminal",
        [
            (2, InfeasibleError, SolveStatus.INFEASIBLE),
            (3, UnboundedError, SolveStatus.UNBOUNDED),
            (1, SolverNumericalError, SolveStatus.NUMERICAL),
            (4, SolverNumericalError, SolveStatus.NUMERICAL),
        ],
    )
    def test_highs_statuses(self, small, monkeypatch, status, cls, terminal):
        import repro.throughput.lp as lp

        monkeypatch.setattr(
            lp, "linprog",
            lambda *a, **k: _FakeRes(status, message="solver said no"),
        )
        topo, tm = small
        outcome = HighsExactBackend().solve(topo, tm)
        assert outcome.status is terminal
        assert not outcome.ok
        assert outcome.result is None
        assert outcome.iterations == 7
        assert isinstance(outcome.error, cls)
        assert "solver said no" in outcome.message
        with pytest.raises(cls):
            outcome.raise_for_status()

    def test_success_without_solution_vector(self, small, monkeypatch):
        import repro.throughput.lp as lp

        monkeypatch.setattr(
            lp, "linprog", lambda *a, **k: _FakeRes(0, success=True, x=None)
        )
        topo, tm = small
        outcome = HighsExactBackend().solve(topo, tm)
        assert outcome.status is SolveStatus.NUMERICAL
        assert "no solution" in outcome.message

    def test_optimal_outcome(self, small):
        topo, tm = small
        outcome = HighsExactBackend().solve(topo, tm)
        assert outcome.ok and outcome.status is SolveStatus.OPTIMAL
        assert outcome.status.value == "optimal"
        assert outcome.backend == "highs-exact"
        assert outcome.result.per_server > 0
        assert outcome.iterations > 0
        assert outcome.wall_time_s > 0
        assert outcome.raise_for_status() is outcome

    def test_non_solver_exceptions_propagate(self, small, monkeypatch):
        import repro.throughput.lp as lp

        def boom(*a, **k):
            raise KeyError("formulation bug")

        monkeypatch.setattr(lp, "linprog", boom)
        topo, tm = small
        with pytest.raises(KeyError):
            HighsExactBackend().solve(topo, tm)

    def test_outcome_without_error_raises_base_class(self):
        outcome = SolveOutcome(
            status=SolveStatus.INFEASIBLE, backend="test", message="nope"
        )
        with pytest.raises(SolverFailure, match="nope"):
            outcome.raise_for_status()

    def test_default_solve_many_is_sequential(self, small):
        topo, tm = small
        outcomes = McfApproxBackend().solve_many(topo, [tm, tm])
        assert len(outcomes) == 2
        assert all(o.ok for o in outcomes)

    def test_abstract_backend_is_abstract(self, small):
        topo, tm = small
        with pytest.raises(NotImplementedError):
            SolverBackend()._solve_result(topo, tm, 1.0)
