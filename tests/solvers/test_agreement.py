"""Cross-backend agreement on seeded instances (the ISSUE's property test).

``highs-batched`` must be byte-identical to ``highs-exact`` — they share
one LP implementation, so any drift is a refactoring bug.  ``mcf-approx``
carries the Garg–Könemann guarantee: at accuracy ``epsilon`` the returned
throughput is within ``(1 - epsilon')`` of optimal for a small
``epsilon'`` polynomial in ``epsilon``; we assert the documented
conservative envelope ``approx >= (1 - 4 * epsilon) * exact``.
"""

import pytest

from repro import registry
from repro.throughput import max_concurrent_throughput
from repro.topologies import fattree, jellyfish, xpander
from repro.traffic import longest_matching_tm

EPSILON = 0.05

INSTANCES = [
    pytest.param(lambda: jellyfish(12, 4, 2, seed=3), id="jellyfish"),
    pytest.param(lambda: xpander(4, 6, 3, seed=0), id="xpander"),
    pytest.param(lambda: fattree(4).topology, id="fattree"),
]
FRACTIONS = [0.5, 1.0]


@pytest.mark.parametrize("build", INSTANCES)
@pytest.mark.parametrize("fraction", FRACTIONS)
class TestBackendAgreement:
    def test_batched_byte_identical_to_exact(self, build, fraction):
        topo = build()
        tm = longest_matching_tm(topo, fraction, seed=1)
        exact = max_concurrent_throughput(topo, tm)
        (batched,) = registry.solver("highs-batched").solve_many(topo, [tm])
        assert batched.ok
        result = batched.result
        assert result.throughput == exact.throughput
        assert result.per_server == exact.per_server
        assert result.disconnected_pairs == exact.disconnected_pairs
        assert result.iterations == exact.iterations
        assert result.link_utilization == exact.link_utilization

    def test_mcf_within_epsilon_guarantee(self, build, fraction):
        topo = build()
        tm = longest_matching_tm(topo, fraction, seed=1)
        exact = max_concurrent_throughput(topo, tm).throughput
        outcome = registry.solver(f"mcf-approx:epsilon={EPSILON}").solve(
            topo, tm
        )
        assert outcome.ok
        approx = outcome.result.throughput
        assert approx <= exact + 1e-9
        assert approx >= (1 - 4 * EPSILON) * exact


def test_batched_solve_many_matches_per_call_across_fractions():
    topo = jellyfish(12, 4, 2, seed=3)
    tms = [longest_matching_tm(topo, f, seed=1) for f in (0.25, 0.5, 0.75, 1.0)]
    outcomes = registry.solver("highs-batched").solve_many(topo, tms)
    for tm, outcome in zip(tms, outcomes):
        exact = max_concurrent_throughput(topo, tm)
        assert outcome.result.throughput == exact.throughput
        assert outcome.result.link_utilization == exact.link_utilization
