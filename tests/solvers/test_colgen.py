"""Column-generation backend: exactness, warm pools, contract flags.

The ISSUE's property test: across ≥50 random jellyfish/xpander instances
and multi-point load grids, the colgen optimum must match ``highs-exact``
(the edge-formulation LP) within 1e-9 — the pricing loop terminates only
when LP duality certifies that no path anywhere in the graph can improve
the restricted master, so the result is the exact optimum, not a bound.
Plus the warm-pool contract: the persistent path pool warm-starts repeat
solves (``warm_started`` flips once every demand pair is covered), never
survives a topology change, and is bypassed entirely by ``warm=False``.
"""

import random

import pytest

from repro import registry
from repro.solvers import (
    ColgenTopologyContext,
    HighsColgenBackend,
    reset_warm_start_stats,
    topology_fingerprint,
    warm_start_stats,
)
from repro.throughput import max_concurrent_throughput, skew_sweep
from repro.throughput.colgen import have_highs_core, path_colgen_throughput
from repro.topologies import jellyfish, xpander
from repro.traffic import longest_matching_tm

LOAD_GRID = (0.5, 0.8, 1.0, 1.4)


def _random_instances(count, seed=20260808):
    """≥``count`` seeded random small jellyfish/xpander instances."""
    rng = random.Random(seed)
    builders = []
    for i in range(count):
        if i % 2 == 0:
            switches = rng.randint(8, 14)
            degree = rng.randint(3, 4)
            if (switches * degree) % 2:  # r-regular needs n*r even
                switches += 1
            servers = rng.randint(1, 2)
            s = rng.randint(0, 10_000)
            builders.append(
                pytest.param(
                    lambda sw=switches, d=degree, sv=servers, s=s: jellyfish(
                        sw, d, sv, seed=s
                    ),
                    id=f"jellyfish-{i}",
                )
            )
        else:
            degree = rng.randint(3, 5)
            lift = rng.randint(2, 3)
            servers = rng.randint(1, 2)
            s = rng.randint(0, 10_000)
            builders.append(
                pytest.param(
                    lambda d=degree, lf=lift, sv=servers, s=s: xpander(
                        d, d + 1, sv, seed=s
                    ),
                    id=f"xpander-{i}",
                )
            )
    return builders


INSTANCES = _random_instances(50)


@pytest.mark.parametrize("build", INSTANCES)
def test_colgen_matches_exact_within_1e9(build):
    """Property test: colgen tracks highs-exact to 1e-9 everywhere."""
    topo = build()
    base = longest_matching_tm(topo, 1.0, seed=1)
    tms = [base.scaled(s) for s in LOAD_GRID]
    outcomes = HighsColgenBackend().solve_many(topo, tms)
    for tm, outcome in zip(tms, outcomes):
        assert outcome.ok
        exact = max_concurrent_throughput(topo, tm)
        assert abs(outcome.result.throughput - exact.throughput) <= 1e-9
        assert abs(outcome.result.per_server - exact.per_server) <= 1e-9
    # The first point built the pool; later points were fully covered.
    assert outcomes[0].warm_started is False
    assert [o.warm_started for o in outcomes[1:]] == [True, True, True]
    # Column generation rebuilds the master per solve; only columns
    # persist — no simplex basis ever crosses solves.
    assert all(o.basis_reused is False for o in outcomes)


def test_fallback_engine_matches_exact():
    """The pure-linprog engine runs the same pool/pricing/stop rule and
    must land on the same certified optimum."""
    topo = jellyfish(12, 4, 2, seed=3)
    base = longest_matching_tm(topo, 1.0, seed=1)
    tms = [base.scaled(s) for s in LOAD_GRID]
    backend = HighsColgenBackend(mode="fallback")
    for tm, outcome in zip(tms, backend.solve_many(topo, tms)):
        assert outcome.ok
        exact = max_concurrent_throughput(topo, tm)
        assert abs(outcome.result.throughput - exact.throughput) <= 1e-9
    stats = backend.context_stats()
    assert stats["engine"] == "linprog"


def test_link_utilization_is_feasible_and_tight():
    """The recovered per-link loads respect capacities and the max one
    is (numerically) saturated at the optimum."""
    topo = jellyfish(12, 4, 2, seed=3)
    tm = longest_matching_tm(topo, 1.0, seed=1)
    result = path_colgen_throughput(topo, tm)
    assert result.link_utilization
    peak = max(result.link_utilization.values())
    assert peak <= 1.0 + 1e-7
    assert peak >= 1.0 - 1e-6  # some arc binds at a max-concurrent optimum


def test_varying_support_matches_exact():
    """Skew-style sweeps change the demand support; repeats of a support
    warm-start off the accumulated pool while staying exact."""
    topo = jellyfish(12, 4, 2, seed=3)
    fractions = [0.4, 0.7, 1.0, 0.4, 0.7, 1.0]
    tms = [longest_matching_tm(topo, f, seed=1) for f in fractions]
    outcomes = HighsColgenBackend().solve_many(topo, tms)
    for tm, outcome in zip(tms, outcomes):
        exact = max_concurrent_throughput(topo, tm)
        assert abs(outcome.result.throughput - exact.throughput) <= 1e-9
    # The pool accumulates per (src, dst) pair, so once a support's
    # pairs have all been seen the solve starts warm.
    assert outcomes[0].warm_started is False
    assert [o.warm_started for o in outcomes[3:]] == [True, True, True]


def test_topology_change_drops_the_pool():
    """A different topology between calls must rebuild the context: the
    pool's arc ids are table-specific and capacities shape the optimum."""
    backend = HighsColgenBackend()
    topo_a = jellyfish(12, 4, 2, seed=3)
    topo_b = xpander(4, 6, 2, seed=0)
    tm_a = longest_matching_tm(topo_a, 1.0, seed=1)
    tm_b = longest_matching_tm(topo_b, 1.0, seed=1)

    first = backend.solve_many(topo_a, [tm_a, tm_a])
    assert [o.warm_started for o in first] == [False, True]
    switched = backend.solve_many(topo_b, [tm_b, tm_b])
    assert switched[0].warm_started is False  # fresh pool for topo_b
    assert switched[1].warm_started is True
    exact_b = max_concurrent_throughput(topo_b, tm_b)
    assert abs(switched[0].result.throughput - exact_b.throughput) <= 1e-9


def test_capacity_change_forces_fresh_context():
    """Same structure, different capacities → different fingerprint →
    new context (the perf path cache's content hash ignores capacities;
    the colgen fingerprint must not)."""
    import copy

    topo = jellyfish(10, 4, 2, seed=5)
    scaled = copy.deepcopy(topo)
    for _u, _v, data in scaled.graph.edges(data=True):
        data["capacity"] *= 2.0
    assert topology_fingerprint(topo) != topology_fingerprint(scaled)

    backend = HighsColgenBackend()
    tm = longest_matching_tm(topo, 1.0, seed=1)
    cold = backend.solve_many(topo, [tm])
    recap = backend.solve_many(scaled, [tm])
    assert recap[0].warm_started is False
    exact = max_concurrent_throughput(scaled, tm)
    assert abs(recap[0].result.throughput - exact.throughput) <= 1e-9
    assert cold[0].result.throughput != recap[0].result.throughput


def test_warm_false_bypasses_the_pool():
    topo = jellyfish(12, 4, 2, seed=3)
    tm = longest_matching_tm(topo, 1.0, seed=1)
    backend = HighsColgenBackend()
    outcomes = backend.solve_many(topo, [tm, tm, tm], warm=False)
    assert [o.warm_started for o in outcomes] == [False, False, False]
    assert backend.context_stats() is None  # nothing was cached
    exact = max_concurrent_throughput(topo, tm)
    for o in outcomes:
        assert abs(o.result.throughput - exact.throughput) <= 1e-9


def test_warm_start_counters_and_context_stats():
    reset_warm_start_stats()
    topo = jellyfish(12, 4, 2, seed=3)
    base = longest_matching_tm(topo, 1.0, seed=1)
    backend = HighsColgenBackend()
    backend.solve_many(topo, [base.scaled(s) for s in (0.5, 1.0, 1.5)])
    stats = warm_start_stats()
    assert stats["miss"] == 1
    assert stats["hit"] == 2
    assert stats["context_miss"] == 1
    ctx = backend.context_stats()
    assert ctx["solves"] == 3
    assert ctx["warm_solves"] == 2
    assert ctx["pool_pairs"] == base.num_flows
    assert ctx["pricing_rounds"] >= 3
    # A second solve_many on the same topology reuses the live context.
    backend.solve_many(topo, [base])
    assert warm_start_stats()["context_hit"] == 1


def test_degenerate_conventions_match_backend_contract():
    """Empty and disconnected TMs follow the documented conventions
    (cf. tests/throughput/test_bounds.py)."""
    topo = jellyfish(10, 4, 2, seed=5)
    empty = longest_matching_tm(topo, 1.0, seed=1).restricted_to_pairs([])
    context = ColgenTopologyContext(topo)
    result = context.solve(empty)
    assert result.throughput == float("inf")
    assert result.per_server == 1.0


def test_mode_and_knob_validation():
    with pytest.raises(ValueError, match="auto/core/fallback"):
        HighsColgenBackend(mode="bogus")
    with pytest.raises(ValueError, match="k must be"):
        HighsColgenBackend(k=0)
    with pytest.raises(ValueError, match="max_rounds must be"):
        HighsColgenBackend(max_rounds=0)
    if not have_highs_core():
        with pytest.raises(ValueError, match="bundled HiGHS core"):
            HighsColgenBackend(mode="core")


def test_registry_exposes_colgen():
    assert "highs-colgen" in registry.SOLVERS
    backend = registry.solver("highs-colgen")
    assert backend.name == "highs-colgen"
    assert backend.supports_batching is True
    backend = registry.solver("highs-colgen:k=3,max_rounds=50,mode=fallback")
    assert backend.k == 3
    assert backend.max_rounds == 50
    assert backend.mode == "fallback"


def test_skew_sweep_routes_through_colgen_backend():
    topo = jellyfish(12, 4, 2, seed=3)
    fractions = [0.4, 0.7, 1.0]
    colgen = skew_sweep(topo, fractions, solver="highs-colgen", seed=1)
    exact = skew_sweep(topo, fractions, solver="exact", seed=1)
    assert colgen.ok and exact.ok
    for ours, ref in zip(colgen.throughput, exact.throughput):
        assert abs(ours - ref) <= 1e-9


@pytest.mark.skipif(
    not have_highs_core(), reason="needs scipy's bundled HiGHS core"
)
def test_core_engine_matches_fallback_engine():
    """Both engines share pool + pricing + stop rule, so they certify
    the same optimum — within LP tolerance of each other."""
    topo = xpander(4, 6, 2, seed=0)
    tm = longest_matching_tm(topo, 1.0, seed=1)
    core = HighsColgenBackend(mode="core").solve(topo, tm)
    fallback = HighsColgenBackend(mode="fallback").solve(topo, tm)
    assert abs(core.result.throughput - fallback.result.throughput) <= 1e-9
    assert core.result.iterations > 0
