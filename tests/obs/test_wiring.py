"""End-to-end: an observed inline sweep covers every instrumented layer."""

import json

import pytest

from repro import obs
from repro.harness import ExperimentSpec, Runner
from repro.perf import clear_shared_caches

TOPO = {"family": "jellyfish", "switches": 8, "degree": 4, "servers": 2,
        "seed": 1}


@pytest.fixture(autouse=True)
def _fresh_state():
    obs.disable()
    clear_shared_caches()
    yield
    obs.disable()


def _specs():
    wl = {"pattern": "permute", "fraction": 0.5, "rate": 300.0,
          "sizes": "pfabric", "mean_flow_bytes": 200_000}
    return [
        ExperimentSpec(
            name="lp", topology=TOPO, engine="lp",
            workload={"pattern": "longest_matching", "solver": "paths",
                      "k_paths": 4, "fraction": 1.0},
        ),
        ExperimentSpec(
            name="flow", topology=TOPO, engine="flow", routing="ecmp",
            workload=wl, measure_start=0.0, measure_end=0.02,
        ),
        ExperimentSpec(
            name="packet", topology=TOPO, engine="packet", routing="hyb",
            workload=wl, measure_start=0.0, measure_end=0.02,
            max_sim_time=0.5,
        ),
    ]


class TestObservedInlineSweep:
    def test_all_span_families_and_manifest(self, tmp_path):
        with obs.session(str(tmp_path)):
            result = Runner(inline=True, retries=0).run(_specs())
        assert result.ok, [r.error for r in result.records]

        manifest = json.loads((tmp_path / "manifest.json").read_text())
        names = set(manifest["spans"]["by_name"])
        for family in ("runner.sweep", "runner.task", "sim.run",
                       "flowsim.run", "lp.assemble", "lp.solve"):
            assert family in names, f"missing span family {family}"
        assert any(n.startswith("pathcache.") for n in names)

        counters = {
            k: v["value"]
            for k, v in manifest["metrics"].items()
            if v.get("type") == "counter"
        }
        assert counters["runner.tasks"] == 3
        assert counters["sim.events_processed"] > 0
        assert counters["flowsim.fairshare_recomputes"] > 0
        assert counters["lp.calls"] == 1

        trace = [json.loads(line)
                 for line in (tmp_path / "trace.jsonl").read_text().splitlines()]
        task_spans = [r for r in trace
                      if r["type"] == "span" and r["name"] == "runner.task"]
        assert {s["attrs"]["name"] for s in task_spans} == {
            "lp", "flow", "packet"
        }
        assert all(s["parent"] == "runner.sweep" for s in task_spans)

    def test_inline_results_match_pool_results(self):
        specs = _specs()
        inline = Runner(inline=True, retries=0).run(specs)
        clear_shared_caches()
        pooled = Runner(jobs=2, retries=0).run(specs)
        assert inline.ok and pooled.ok
        assert [r.metrics for r in inline.records] == [
            r.metrics for r in pooled.records
        ]

    def test_unobserved_inline_sweep_still_works(self):
        result = Runner(inline=True, retries=0).run(_specs()[:1])
        assert result.ok
        assert not obs.enabled()
