"""Tests for manifest validation and the rendered profile breakdown."""

import pytest

from repro import obs
from repro.obs import load_manifest, render_profile, validate_manifest


def _finished_manifest(tmp_path):
    with obs.session(str(tmp_path)):
        obs.add("pathcache.hits", 7)
        obs.set_gauge("sim.max_queue_bytes", 1000)
        with obs.span("lp.solve"):
            pass
    return load_manifest(str(tmp_path / "manifest.json"))


class TestValidateManifest:
    def test_real_manifest_is_valid(self, tmp_path):
        manifest = _finished_manifest(tmp_path)
        assert validate_manifest(manifest) == []

    def test_non_dict_rejected(self):
        assert validate_manifest([]) != []

    def test_missing_keys_reported(self):
        problems = validate_manifest({"schema": obs.SCHEMA})
        assert any("run_id" in p for p in problems)

    def test_wrong_schema_reported(self, tmp_path):
        manifest = _finished_manifest(tmp_path)
        manifest["schema"] = "repro.obs/0"
        assert any("schema" in p for p in validate_manifest(manifest))

    def test_span_aggregate_shape_checked(self, tmp_path):
        manifest = _finished_manifest(tmp_path)
        del manifest["spans"]["by_name"]["lp.solve"]["total_s"]
        assert any("total_s" in p for p in validate_manifest(manifest))

    def test_load_manifest_raises_on_invalid(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_manifest(str(path))


class TestRenderProfile:
    def test_breakdown_sections(self, tmp_path):
        manifest = _finished_manifest(tmp_path)
        text = render_profile(manifest)
        assert "spans (by total time):" in text
        assert "lp.solve" in text
        assert "counters:" in text
        assert "pathcache.hits" in text
        assert "gauges:" in text
        assert "sim.max_queue_bytes" in text

    def test_meta_line(self, tmp_path):
        with obs.session(str(tmp_path), meta={"sweep_file": "s.json"}):
            obs.add("x")
        manifest = load_manifest(str(tmp_path / "manifest.json"))
        assert "sweep_file=s.json" in render_profile(manifest)
