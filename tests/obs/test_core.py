"""Tests for the obs run lifecycle, spans, trace, and manifest."""

import json
import os
import time

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _no_leaked_run():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


class TestDisabledNoOps:
    def test_module_api_is_inert(self):
        assert not obs.enabled()
        assert obs.current() is None
        obs.add("c")
        obs.set_gauge("g", 1.0)
        obs.observe("h", 0.5)
        obs.event("e", detail=1)
        assert obs.snapshot() == {}

    def test_span_is_shared_null_singleton(self):
        s1 = obs.span("a")
        s2 = obs.span("b", attr=1)
        assert s1 is s2  # no allocation while disabled
        with s1:
            pass

    def test_null_span_overhead_is_small(self):
        """Disabled instrumentation must be orders cheaper than work."""
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with obs.span("x"):
                pass
            obs.add("c")
        elapsed = time.perf_counter() - t0
        assert elapsed < 0.5  # ~microseconds per call, generous CI margin


class TestRunLifecycle:
    def test_enable_twice_raises(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            obs.enable()

    def test_disable_returns_none_without_run_dir(self):
        obs.enable()
        assert obs.disable() is None
        assert not obs.enabled()

    def test_session_context_manager(self, tmp_path):
        with obs.session(str(tmp_path)) as run:
            assert obs.current() is run
            obs.add("k", 3)
        assert not obs.enabled()
        assert (tmp_path / "manifest.json").exists()

    def test_finalize_idempotent(self, tmp_path):
        run = obs.enable(str(tmp_path))
        obs.add("k")
        first = obs.disable()
        assert first == run.finalize()


class TestSpans:
    def test_nested_spans_record_parents(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner", depth=2):
                pass
        run = obs.current()
        names = {s["name"]: s for s in run.spans}
        assert names["inner"]["parent"] == "outer"
        assert names["outer"]["parent"] is None
        assert names["inner"]["attrs"] == {"depth": 2}

    def test_span_summary_aggregates(self):
        run = obs.enable()
        run.record_span("stage", 0.0, 0.25)
        run.record_span("stage", 0.5, 0.75)
        agg = run.span_summary()["stage"]
        assert agg["count"] == 2
        assert agg["total_s"] == pytest.approx(1.0)
        assert agg["min_s"] == pytest.approx(0.25)
        assert agg["max_s"] == pytest.approx(0.75)

    def test_retrospective_span_uses_explicit_timing(self):
        run = obs.enable()
        start = time.perf_counter()
        run.record_span("task", start, 0.1, attrs={"name": "p0"})
        (rec,) = run.spans
        assert rec["duration_s"] == pytest.approx(0.1)
        assert rec["attrs"]["name"] == "p0"


class TestOutput:
    def test_trace_is_sorted_jsonl(self, tmp_path):
        with obs.session(str(tmp_path)) as run:
            run.record_span("late", 2.0, 0.1)
            run.record_span("early", 1.0, 0.1)
            obs.event("marker", detail="x")
        lines = (tmp_path / "trace.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["early", "late"]
        assert any(r["type"] == "event" and r["kind"] == "marker"
                   for r in records)

    def test_manifest_contents(self, tmp_path):
        with obs.session(str(tmp_path), run_id="r1", meta={"a": 1}):
            obs.add("hits", 2)
            with obs.span("stage"):
                pass
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["schema"] == obs.SCHEMA
        assert manifest["run_id"] == "r1"
        assert manifest["meta"] == {"a": 1}
        assert manifest["metrics"]["hits"]["value"] == 2
        assert manifest["spans"]["by_name"]["stage"]["count"] == 1
        assert manifest["trace_file"] == "trace.jsonl"

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        with obs.session(str(tmp_path)):
            obs.add("x")
        leftovers = [f for f in os.listdir(tmp_path)
                     if f not in ("trace.jsonl", "manifest.json")]
        assert leftovers == []
