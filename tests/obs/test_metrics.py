"""Tests for the metrics primitives (counters, gauges, histograms)."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.add()
        c.add(5)
        assert c.value == 6

    def test_rejects_negative_increments(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.add(-1)

    def test_zero_increment_allowed(self):
        c = Counter()
        c.add(0)
        assert c.value == 0


class TestGauge:
    def test_tracks_last_value(self):
        g = Gauge()
        g.set(3.5)
        g.set(-2)
        assert g.value == -2


class TestHistogram:
    def test_aggregates(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestMetricsRegistry:
    def test_same_name_returns_same_metric(self):
        reg = MetricsRegistry()
        reg.counter("a").add(2)
        reg.counter("a").add(3)
        assert reg.counter("a").value == 5

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.gauge("b").set(1)
        reg.counter("a").add(4)
        reg.histogram("c").observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["a"]["type"] == "counter"
        assert snap["a"]["value"] == 4
        assert snap["b"]["type"] == "gauge"
        assert snap["c"]["type"] == "histogram"
        assert snap["c"]["count"] == 1
