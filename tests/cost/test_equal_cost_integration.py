"""Integration tests for the equal-cost methodology (paper §4, §6.4)."""


from repro.cost import delta_ratio, equal_cost_switch_budget, topology_port_cost
from repro.topologies import (
    equal_cost_dynamic_ports,
    fattree,
    xpander_from_budget,
)


class TestPaperSizings:
    def test_paper_6_4_configuration(self):
        """§6.4: k=16 fat-tree (320 switches, 1024 servers) vs an Xpander
        of 216 16-port switches carrying 1080 servers."""
        ft = fattree(16)
        assert ft.topology.num_switches == 320
        assert ft.topology.num_servers == 1024
        budget = equal_cost_switch_budget(320, 2 / 3)  # 213
        xp = xpander_from_budget(budget, 16, 1024)
        # 213 rounds up to the next full lift: 216 = 12 x 18 (as in the
        # paper, which also uses 216).
        assert xp.num_switches == 216
        assert xp.num_servers == 1080
        assert all(xp.network_degree(s) == 11 for s in xp.switches)

    def test_xpander_really_cheaper_in_ports(self):
        ft = fattree(16)
        xp = xpander_from_budget(216, 16, 1024)
        ratio = topology_port_cost(xp) / topology_port_cost(ft.topology)
        # "33% lower cost" in switch terms; port-cost accounting lands in
        # the same ballpark (Xpander hosts extra servers, so not exact).
        assert ratio < 0.75

    def test_delta_adjusted_dynamic_ports(self):
        # A dynamic design matching an 11-net-port static ToR affords
        # floor(11 / 1.5) = 7 flexible ports.
        assert equal_cost_dynamic_ports(11, delta_ratio()) == 7

    def test_fig15_configuration(self):
        """§6.7: k=24 fat-tree (720 switches) vs an Xpander of 322
        24-port switches — 45% of the cost."""
        ft = fattree(24)
        assert ft.topology.num_switches == 720
        budget = equal_cost_switch_budget(720, 0.45)
        assert budget == 324  # paper rounds to 322 with its server split
        xp = xpander_from_budget(budget, 24, ft.topology.num_servers)
        assert xp.num_switches <= 324
        assert xp.num_servers >= ft.topology.num_servers
