"""Tests for the Table 1 cost model."""

import pytest

from repro.cost import (
    FIREFLY_PORT,
    PROJECTOR_PORT_HIGH,
    PROJECTOR_PORT_LOW,
    STATIC_PORT,
    delta_ratio,
    equal_cost_switch_budget,
    topology_port_cost,
)
from repro.topologies import fattree, xpander


class TestTable1:
    def test_static_port_total(self):
        assert STATIC_PORT.total == pytest.approx(215.0)

    def test_firefly_port_total(self):
        assert FIREFLY_PORT.total == pytest.approx(370.0)

    def test_projector_range(self):
        assert PROJECTOR_PORT_LOW.total == pytest.approx(320.0)
        assert PROJECTOR_PORT_HIGH.total == pytest.approx(420.0)

    def test_cable_share(self):
        # 300 m at $0.3/m shared over two ports = $45.
        assert STATIC_PORT.components["optical_cable"] == pytest.approx(45.0)

    def test_delta_is_about_1_5(self):
        assert delta_ratio() == pytest.approx(1.5, abs=0.02)

    def test_firefly_delta_higher(self):
        assert delta_ratio(FIREFLY_PORT) > delta_ratio(PROJECTOR_PORT_LOW)


class TestTopologyCost:
    def test_port_counting(self):
        ft = fattree(4).topology
        cost = topology_port_cost(ft)
        expected = 2 * ft.num_links * 215.0 + ft.num_servers * 90.0
        assert cost == pytest.approx(expected)

    def test_xpander_cheaper_than_same_k_fattree(self):
        ft = fattree(8).topology
        xp = xpander(5, 9, 2)  # 54 switches vs the fat-tree's 80
        assert topology_port_cost(xp) < topology_port_cost(ft)


class TestEqualCostBudget:
    def test_paper_sizing(self):
        # k=16 fat-tree has 320 switches; 33% lower cost -> ~213.
        assert equal_cost_switch_budget(320, 2 / 3) == 213

    def test_full_fraction(self):
        assert equal_cost_switch_budget(100, 1.0) == 100

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            equal_cost_switch_budget(100, 0.0)

    def test_tiny_budget_rejected(self):
        with pytest.raises(ValueError):
            equal_cost_switch_budget(2, 0.1)
